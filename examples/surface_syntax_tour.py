#!/usr/bin/env python3
"""Tour of the surface syntax: parse a textual program, differentiate it, print the result.

The library ships a concrete syntax for the quantum while-language (the
"#lines" column of the evaluation tables measures programs in this syntax).
This example

1. parses a textual program containing initialization, rotations, a
   two-qubit coupling, a ``case`` statement, and a 2-bounded ``while`` loop;
2. checks it is well-formed and reports its static metrics;
3. applies the differentiation transformation and prints both the additive
   intermediate program and every compiled derivative program, again as
   concrete syntax;
4. verifies the printed derivative programs re-parse to the same ASTs
   (the pretty-printer/parser round-trip).

Run with::

    python examples/surface_syntax_tour.py
"""

from __future__ import annotations

from repro.api import Estimator
from repro.lang import Parameter, parse_program, pretty_print
from repro.lang.wellformed import check_well_formed
from repro.lang.traversal import reassociate
from repro.analysis.resources import analyze_program

SOURCE = """
q1 := |0>;
q2 := |0>;
q1 := RX(theta)[q1];
q1, q2 := RXX(phi)[q1, q2];
case M[q1] =
  0 -> {
    q2 := RY(theta)[q2]
  }
  1 -> {
    q2 := RZ(theta)[q2];
    q2 := H[q2]
  }
end;
while(2) M[q2] = 1 do
  q1 := RX(theta)[q1]
done
"""


def main() -> None:
    theta = Parameter("theta")

    print("Input program (surface syntax):")
    print(SOURCE.strip())

    program = parse_program(SOURCE)
    check_well_formed(program, allow_additive=False)

    report = analyze_program(program, theta, name="tour")
    print("\nStatic metrics for θ = theta:")
    print(f"  occurrence count OC        : {report.occurrence_count}")
    print(f"  non-aborting derivative(s) : {report.derivative_program_count}")
    print(f"  #gates                     : {report.gate_count}")
    print(f"  #lines                     : {report.line_count}")
    print(f"  #qubits                    : {report.qubit_count}")

    # The estimator owns the compile-time pipeline; asking for the program
    # set runs transform (Figure 4) + compile (Figure 3) once and caches it.
    estimator = Estimator(program, parameters=[theta])
    program_set = estimator.program_set(theta)
    print(f"\nAdditive derivative program ∂P/∂theta (ancilla {program_set.ancilla}):")
    print(pretty_print(program_set.additive))

    for index, compiled in enumerate(program_set.nonaborting_programs()):
        text = pretty_print(compiled)
        reparsed = parse_program(text)
        assert reparsed == reassociate(compiled)
        print(f"\nCompiled derivative program #{index + 1} (re-parses identically):")
        print(text)


if __name__ == "__main__":
    main()
