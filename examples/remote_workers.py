#!/usr/bin/env python3
"""Supervised remote workers: the crash-tolerant distributed executor.

The :class:`repro.service.WorkerPoolServiceExecutor` drains the service
queue through a fleet of *worker processes* that speak a length-prefixed,
CRC-checked wire protocol over pipes.  A :class:`~repro.service.WorkerSupervisor`
owns the fleet: it detects crashes (process sentinels), hangs (call
timeouts and heartbeats) and protocol violations (bad frames), restarts
workers under a bounded backoff budget, and re-dispatches the work a dead
worker was holding — bit-identically, because groups are content-addressed
the same way the denotation cache keys them.

The script runs the same parameter-sweep workload three times:

1. inline, on the submitting thread — the reference bits;
2. through a healthy two-worker fleet — must match bit-for-bit;
3. through a fleet whose workers are *scripted to die* mid-execution —
   the supervisor respawns and re-dispatches, and the answers still
   match bit-for-bit.

Run with::

    python examples/remote_workers.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.lang.builder import rx, rxx, ry, seq
from repro.lang.parameters import ParameterBinding, ParameterVector
from repro.linalg.observables import pauli_observable
from repro.sim.hilbert import RegisterLayout
from repro.sim.statevector import StateVector
from repro.api import Estimator
from repro.service import (
    EstimatorService,
    SupervisorPolicy,
    WorkerFaultPlan,
    WorkerPoolServiceExecutor,
)


def build_workload():
    """A small entangling ladder swept over parameter points."""
    theta = ParameterVector("theta", 3)
    qubits = ("q1", "q2")
    program = seq(
        [
            ry(theta[0], qubits[0]),
            rx(theta[1], qubits[1]),
            rxx(theta[2], qubits[0], qubits[1]),
        ]
    )
    estimator = Estimator(
        program, pauli_observable("ZZ"), targets=qubits, backend="auto"
    )
    bindings = [
        ParameterBinding.from_values(
            sorted(theta, key=lambda p: p.name), [0.3 + 0.1 * k, 0.7, 1.1 - 0.05 * k]
        )
        for k in range(8)
    ]
    layout = RegisterLayout(qubits)
    amplitudes = np.zeros(layout.total_dim, dtype=complex)
    amplitudes[0] = 1.0
    state = StateVector(layout, amplitudes)
    return estimator, state, bindings


def drain(service, estimator, state, bindings):
    start = time.perf_counter()
    handles = [service.submit(estimator.request_value(state, b)) for b in bindings]
    service.flush()
    values = np.array([h.result(timeout=120) for h in handles])
    return values, time.perf_counter() - start


def main() -> None:
    estimator, state, bindings = build_workload()

    # ---- 1. inline reference bits ----------------------------------------
    inline_service = EstimatorService("auto", executor="inline")
    reference, inline_s = drain(inline_service, estimator, state, bindings)
    inline_service.close()
    print(f"inline reference      : {len(reference)} values in {inline_s * 1000:6.1f} ms")

    # ---- 2. a healthy two-worker fleet -----------------------------------
    # max_workers is explicit: on a single-core host the pool would
    # otherwise degrade to inline (the right default, the wrong demo).
    pool = WorkerPoolServiceExecutor(max_workers=2)
    service = EstimatorService("auto", executor=pool)
    values, pool_s = drain(service, estimator, state, bindings)
    service.close()
    assert np.array_equal(values, reference), "worker fleet must be bit-identical"
    print(f"2-worker fleet        : bit-identical in {pool_s * 1000:6.1f} ms "
          f"(spawns={pool.telemetry['spawns']})")

    # ---- 3. workers scripted to die mid-execution ------------------------
    # Both slots kill themselves while executing their first group, on
    # every respawn generation up to the redispatch budget's last try.
    plans = {
        0: WorkerFaultPlan(kill_on_call=0, phase="execute"),
        1: WorkerFaultPlan(kill_on_call=0, phase="execute"),
    }
    faulty = WorkerPoolServiceExecutor(
        max_workers=2,
        policy=SupervisorPolicy(call_timeout=120.0),
        fault_plans=plans,
    )
    service = EstimatorService("auto", executor=faulty)
    values, faulty_s = drain(service, estimator, state, bindings)
    service.close()
    assert np.array_equal(values, reference), "recovery must be bit-identical"
    telemetry = faulty.telemetry
    print(f"fleet with kill faults: bit-identical in {faulty_s * 1000:6.1f} ms")
    print(
        "  supervisor telemetry: "
        f"crashes={telemetry['crashes']} restarts={telemetry['restarts']} "
        f"redispatches={telemetry['redispatches']} spawns={telemetry['spawns']}"
    )


if __name__ == "__main__":
    main()
