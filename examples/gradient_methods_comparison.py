#!/usr/bin/env python3
"""Compare gradient methods: the paper's gadget, the phase-shift rule, finite differences.

On a plain circuit every method agrees; the comparison shows

* the numerical agreement of the three methods,
* the per-parameter resource cost (programs to run, extra ancillae),
* the shot-based estimate converging to the exact value as the precision
  target tightens (the O(m²/δ²) execution scheme of Section 7),

and then repeats the exercise on a program *with controls*, where only the
paper's scheme still applies.

Run with::

    python examples/gradient_methods_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro.api import Estimator, ShotSamplingBackend
from repro.lang import Parameter, ParameterBinding
from repro.lang.builder import case_on_qubit, rx, rxx, ry, rz, seq
from repro.linalg.observables import pauli_observable
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.baselines.comparison import estimator_scheme_costs
from repro.baselines.finite_diff import finite_difference_derivative
from repro.baselines.phase_shift import phase_shift_derivative
from repro.errors import TransformError


def report(program, parameter, observable, state, binding, *, title):
    print(f"\n=== {title} ===")
    estimator = Estimator(program, observable, parameters=[parameter])
    exact = estimator.gradient(state, binding)[0]
    numeric = finite_difference_derivative(program, parameter, observable, state, binding)
    print(f"  gadget pipeline (exact)   : {exact:+.6f}")
    print(f"  finite differences        : {numeric:+.6f}")
    try:
        shifted = phase_shift_derivative(program, parameter, observable, state, binding)
        print(f"  phase-shift rule          : {shifted:+.6f}")
    except TransformError as error:
        print(f"  phase-shift rule          : not applicable ({error})")

    costs = estimator_scheme_costs(estimator)[parameter]
    gadget, shift = costs["gadget"], costs["phase_shift"]
    shift_text = (
        f"{shift.programs_per_parameter} circuits" if shift.applicable else "not applicable"
    )
    print(
        f"  cost per gradient entry   : gadget {gadget.programs_per_parameter} program(s) "
        f"+ 1 ancilla, phase-shift {shift_text}"
    )

    rng = np.random.default_rng(1)
    print("  shot-based estimates (Section 7 execution scheme):")
    for precision in (0.2, 0.1, 0.05):
        # Same estimator, sampled backend: the compiled multiset and every
        # simulated output state are reused; only the readout is re-sampled.
        sampled = estimator.with_backend(
            ShotSamplingBackend(precision=precision, rng=rng)
        )
        estimate = sampled.gradient(state, binding)[0]
        print(f"    δ = {precision:4.2f} → {estimate:+.6f}   (|error| = {abs(estimate - exact):.4f})")


def main() -> None:
    theta, phi = Parameter("theta"), Parameter("phi")
    layout = RegisterLayout(["q1", "q2"])
    state = DensityState.basis_state(layout, {"q1": 0, "q2": 1})
    observable = pauli_observable("ZZ")
    binding = ParameterBinding({theta: 0.9, phi: -0.3})

    circuit = seq([rx(theta, "q1"), ry(phi, "q2"), rxx(theta, "q1", "q2"), rz(0.2, "q2")])
    report(circuit, theta, observable, state, binding, title="Plain circuit (both schemes apply)")

    controlled = seq(
        [
            rx(theta, "q1"),
            case_on_qubit("q1", {0: ry(theta, "q2"), 1: seq([rz(theta, "q2"), rx(phi, "q2")])}),
        ]
    )
    report(
        controlled,
        theta,
        observable,
        state,
        binding,
        title="Program with a measurement-controlled branch (only the gadget scheme applies)",
    )


if __name__ == "__main__":
    main()
