#!/usr/bin/env python3
"""Quickstart: differentiate a small quantum program with controls.

The recommended entry point is the :class:`repro.api.Estimator`: construct
it once from ``(program, observable, layout)`` and it owns the whole
transform → compile → execute pipeline — derivative program multisets are
compiled lazily (once per parameter), every simulation is memoized in a
denotation cache, and the execution scheme is a pluggable backend.

The script walks through the pipeline on a two-qubit program containing a
measurement-controlled branch — exactly the kind of program existing
circuit-only auto-differentiation cannot handle:

1. build the program (rotations, a coupling, and a ``case`` statement);
2. build an ``Estimator`` and evaluate the observable semantics
   ``tr(O[[P(θ*)]]ρ)`` together with the full gradient in one call;
3. inspect the compile-time artifacts the estimator built under the hood;
4. swap in the ``ShotSamplingBackend`` (the paper's O(m²/δ²) execution
   scheme) without recompiling, and cross-check against finite differences.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.api import Estimator, ShotSamplingBackend
from repro.lang import Parameter, ParameterBinding, pretty_print
from repro.lang.builder import case_on_qubit, rx, rxx, ry, seq
from repro.linalg.observables import pauli_observable
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.analysis.resources import occurrence_count
from repro.baselines.finite_diff import finite_difference_derivative


def main() -> None:
    theta = Parameter("theta")
    phi = Parameter("phi")

    # 1. A parameterized program with a measurement-controlled branch.
    program = seq(
        [
            rx(theta, "q1"),
            rxx(phi, "q1", "q2"),
            case_on_qubit("q1", {0: ry(theta, "q2"), 1: rx(theta, "q2")}),
        ]
    )
    print("Program P(θ):")
    print(pretty_print(program))
    print()

    # 2. One estimator, constructed once, answers every question.
    layout = RegisterLayout(["q1", "q2"])
    estimator = Estimator(program, pauli_observable("ZZ"), layout)
    state = DensityState.basis_state(layout, {"q1": 0, "q2": 1})
    binding = ParameterBinding({theta: 0.7, phi: -0.4})

    value, grad = estimator.value_and_grad(state, binding)
    print(f"Observable semantics  tr(O[[P(θ*)]]ρ) = {value:+.6f}")
    for parameter, entry in zip(estimator.parameters, grad):
        print(f"  ∂/∂{parameter}: {entry:+.6f}")

    # 3. The compile-time artifacts (transform, Figure 4; compile, Figure 3)
    #    were built lazily by the gradient call and are cached on the
    #    estimator — inspect the multiset for θ.
    program_set = estimator.program_set(theta)
    print(f"\nDerivative w.r.t. {theta}:")
    print(f"  ancilla qubit          : {program_set.ancilla}")
    print(f"  occurrence count OC    : {occurrence_count(program, theta)}")
    print(f"  non-aborting programs  : {program_set.nonaborting_count}")
    for index, compiled in enumerate(program_set.nonaborting_programs()):
        print(f"\n  --- compiled derivative program #{index + 1} ---")
        print("  " + pretty_print(compiled).replace("\n", "\n  "))

    # 4. Same estimator, different execution scheme: the shot-based backend
    #    shares the compiled multisets and the denotation cache, so only the
    #    readout is re-done (sampled at the Chernoff-bounded shot count).
    sampled = estimator.with_backend(
        ShotSamplingBackend(precision=0.05, rng=np.random.default_rng(0))
    )
    estimate = sampled.gradient(state, binding, parameters=[theta])[0]
    numeric = finite_difference_derivative(
        program, theta, pauli_observable("ZZ"), state, binding
    )
    print("\nDerivative of the observable semantics w.r.t. theta:")
    print(f"  exact (gadget pipeline)      : {grad[0]:+.6f}")
    print(f"  shot-based estimate (δ=0.05) : {estimate:+.6f}")
    print(f"  finite differences           : {numeric:+.6f}")
    stats = estimator.cache_stats
    print(
        f"\nDenotation cache: {stats.misses} simulations, {stats.hits} reused "
        f"(hit rate {stats.hit_rate:.0%}) — the sampled gradient re-ran zero programs."
    )

    # 5. backend="auto": the simulability-aware fast paths.  Measurement-free
    #    programs (every circuit, and the Table 2/3 instances) run on O(2^n)
    #    statevector amplitudes instead of O(4^n) density entries, batched
    #    across inputs; this program *branches*, so "auto" runs it on the
    #    branch-splitting trajectory tier — one sub-normalized pure branch
    #    per measurement outcome, still O(2^n) per branch.  Same results
    #    either way.
    fast = estimator.with_backend("auto")
    auto_value = fast.value(state, binding)
    tier = fast.backend.tier_for(program)
    print(
        f"\nbackend='auto' value            : {auto_value:+.6f} "
        f"(the simulation analysis routed this branching program to the {tier!r} tier)"
    )


if __name__ == "__main__":
    main()
