#!/usr/bin/env python3
"""Quickstart: differentiate a small quantum program with controls.

The script walks through the library's whole pipeline on a two-qubit
program containing a measurement-controlled branch — exactly the kind of
program existing circuit-only auto-differentiation cannot handle:

1. build the program (rotations, a coupling, and a ``case`` statement);
2. evaluate its observable semantics ``tr(O[[P(θ*)]]ρ)``;
3. apply the code-transformation rules to obtain the additive derivative
   program, compile it into a multiset of normal programs, and inspect it;
4. evaluate the derivative exactly and with the shot-based estimator, and
   cross-check against finite differences.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.lang import Parameter, ParameterBinding, pretty_print
from repro.lang.builder import case_on_qubit, rx, rxx, ry, seq
from repro.linalg.observables import pauli_observable
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.semantics.observable import observable_semantics
from repro.autodiff.execution import differentiate_and_compile, estimate_derivative_expectation
from repro.analysis.resources import occurrence_count
from repro.baselines.finite_diff import finite_difference_derivative


def main() -> None:
    theta = Parameter("theta")
    phi = Parameter("phi")

    # 1. A parameterized program with a measurement-controlled branch.
    program = seq(
        [
            rx(theta, "q1"),
            rxx(phi, "q1", "q2"),
            case_on_qubit("q1", {0: ry(theta, "q2"), 1: rx(theta, "q2")}),
        ]
    )
    print("Program P(θ):")
    print(pretty_print(program))
    print()

    # 2. Observable semantics at a concrete parameter point.
    layout = RegisterLayout(["q1", "q2"])
    state = DensityState.basis_state(layout, {"q1": 0, "q2": 1})
    observable = pauli_observable("ZZ")
    binding = ParameterBinding({theta: 0.7, phi: -0.4})
    value = observable_semantics(program, observable, state, binding)
    print(f"Observable semantics  tr(O[[P(θ*)]]ρ) = {value:+.6f}")

    # 3. Differentiate: transform (Figure 4) and compile (Figure 3).
    program_set = differentiate_and_compile(program, theta)
    print(f"\nDerivative w.r.t. {theta}:")
    print(f"  ancilla qubit          : {program_set.ancilla}")
    print(f"  occurrence count OC    : {occurrence_count(program, theta)}")
    print(f"  non-aborting programs  : {program_set.nonaborting_count}")
    for index, compiled in enumerate(program_set.nonaborting_programs()):
        print(f"\n  --- compiled derivative program #{index + 1} ---")
        print("  " + pretty_print(compiled).replace("\n", "\n  "))

    # 4. Evaluate the derivative three ways.
    exact = program_set.evaluate(observable, state, binding)
    sampled = estimate_derivative_expectation(
        program, theta, observable, state, binding, precision=0.05,
        rng=np.random.default_rng(0),
    )
    numeric = finite_difference_derivative(program, theta, observable, state, binding)
    print("\nDerivative of the observable semantics:")
    print(f"  exact (gadget pipeline)      : {exact:+.6f}")
    print(f"  shot-based estimate (δ=0.05) : {sampled:+.6f}")
    print(f"  finite differences           : {numeric:+.6f}")


if __name__ == "__main__":
    main()
