#!/usr/bin/env python3
"""Reproduce the Figure 6 case study: training a VQC with controls (Section 8.1).

Trains the two 4-qubit classifiers of the paper on the boolean labelling
``f(z) = ¬(z1 ⊕ z4)``:

* ``P1(Θ, Φ) = Q(Θ); Q(Φ)`` — no control flow, 24 parameters;
* ``P2(Θ, Φ, Ψ) = Q(Θ); case M[q1] = 0 → Q(Φ), 1 → Q(Ψ) end`` — one
  measurement-controlled branch, 36 parameters.

Gradients are computed with the paper's differentiation pipeline (transform,
compile, run each derivative program with the ancilla observable), driven
through the shared :class:`repro.api.Estimator` of each classifier: every
derivative multiset is compiled once, and one forward pass per epoch feeds
the loss, the accuracy and the chain-rule gradient weights.  The expected
outcome, as in the paper: P1's loss plateaus (50 % accuracy), P2's loss
keeps decreasing to (near) zero and classifies perfectly.

Run with::

    python examples/train_controlled_classifier.py --epochs 60

An ASCII rendering of the two loss curves is printed at the end; pass
``--loss nll`` to train with the average negative log-likelihood, the loss
the paper mentions but could not use with PennyLane.
"""

from __future__ import annotations

import argparse

from repro.vqc.classifier import build_p1, build_p2
from repro.vqc.datasets import paper_dataset
from repro.vqc.training import GradientDescentTrainer, TrainingConfig


def ascii_curve(values, width: int = 60, height: int = 12) -> str:
    """Render a loss curve as a crude ASCII plot (epochs on x, loss on y)."""
    if len(values) > width:
        stride = max(1, len(values) // width)
        values = values[::stride]
    top = max(values)
    bottom = min(values)
    span = (top - bottom) or 1.0
    rows = []
    for row in range(height, -1, -1):
        threshold = bottom + span * row / height
        line = "".join("*" if value >= threshold else " " for value in values)
        rows.append(f"{threshold:8.3f} |{line}")
    rows.append(" " * 9 + "+" + "-" * len(values))
    return "\n".join(rows)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=60, help="training epochs per classifier")
    parser.add_argument("--learning-rate", type=float, default=0.5)
    parser.add_argument("--loss", choices=("squared", "nll"), default="squared")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = paper_dataset()
    config = TrainingConfig(
        epochs=args.epochs,
        learning_rate=args.learning_rate,
        loss=args.loss,
        seed=args.seed,
        record_accuracy=True,
    )

    results = {}
    for classifier in (build_p1(), build_p2()):
        print(f"Training {classifier.name} ({len(classifier.parameters)} parameters) ...")
        trainer = GradientDescentTrainer(classifier, config)
        result = trainer.train(dataset)
        results[classifier.name] = result
        stats = trainer.estimator.cache_stats
        print(
            f"  final loss {result.final_loss:.4f}, best loss {result.best_loss:.4f}, "
            f"final accuracy {result.accuracies[-1]:.2f}"
        )
        print(
            f"  estimator: {stats.misses} program simulations "
            f"({stats.hits} served from the denotation cache)"
        )

    print("\nLoss curves (cf. Figure 6 of the paper):")
    for name, result in results.items():
        print(f"\n{name}")
        print(ascii_curve(result.losses))

    p1 = results["P1 (no control)"]
    p2 = results["P2 (with control)"]
    print("\nSummary")
    print(f"  P1 (no control)  : loss plateaus at {p1.final_loss:.3f}, accuracy {p1.accuracies[-1]:.2f}")
    print(f"  P2 (with control): loss reaches    {p2.final_loss:.3f}, accuracy {p2.accuracies[-1]:.2f}")
    print(
        "  As in the paper, the classifier with measurement-controlled branching learns the\n"
        "  labelling while the plain circuit of the same per-run gate count cannot."
    )


if __name__ == "__main__":
    main()
