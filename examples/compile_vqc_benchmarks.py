#!/usr/bin/env python3
"""Reproduce Tables 2 and 3: run the differentiation compiler on the VQC benchmark suite.

For every benchmark instance (QNN / VQE / QAOA at small / medium / large
scale, with basic / shared / if / while variants) the script

1. builds the program with the generators of Appendix F.2,
2. applies the code transformation ``∂/∂θ₁`` and the additive-program
   compiler,
3. reports the occurrence count ``OC``, the number of non-aborting compiled
   programs ``|#∂/∂θ₁|``, and the static size metrics (#gates, #lines,
   #layers, #qubits),

and prints the resulting table next to the values the paper reports.

Run with::

    python examples/compile_vqc_benchmarks.py             # Table 2 (medium/large)
    python examples/compile_vqc_benchmarks.py --table 3   # Table 3 (all 24 instances)
"""

from __future__ import annotations

import argparse
import time

from repro.api import Estimator
from repro.analysis.resources import analyze_program
from repro.vqc.generators import table2_suite, table3_suite

PAPER = {
    "QNN_S,b": (1, 1, 20), "QNN_S,s": (5, 5, 20), "QNN_S,i": (10, 10, 60), "QNN_S,w": (15, 10, 60),
    "QNN_M,i": (24, 24, 165), "QNN_M,w": (56, 24, 231), "QNN_L,i": (48, 48, 363), "QNN_L,w": (504, 48, 2079),
    "VQE_S,b": (1, 1, 14), "VQE_S,s": (2, 2, 14), "VQE_S,i": (4, 4, 28), "VQE_S,w": (6, 4, 42),
    "VQE_M,i": (15, 15, 224), "VQE_M,w": (35, 15, 224), "VQE_L,i": (40, 40, 576), "VQE_L,w": (248, 40, 1984),
    "QAOA_S,b": (1, 1, 12), "QAOA_S,s": (3, 3, 12), "QAOA_S,i": (6, 6, 36), "QAOA_S,w": (9, 6, 36),
    "QAOA_M,i": (18, 18, 120), "QAOA_M,w": (42, 18, 168), "QAOA_L,i": (36, 36, 264), "QAOA_L,w": (378, 36, 1512),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--table", type=int, choices=(2, 3), default=2)
    args = parser.parse_args()

    instances = table2_suite() if args.table == 2 else table3_suite()
    header = (
        f"{'instance':10s} {'OC':>5s} {'(p)':>5s} {'|#∂θ1|':>7s} {'(p)':>5s} "
        f"{'#gates':>7s} {'(p)':>6s} {'#lines':>7s} {'#layers':>8s} {'#qb':>4s} {'time':>8s}"
    )
    print(f"Table {args.table} — differentiation compiler output (measured vs paper '(p)')")
    print(header)
    print("-" * len(header))
    for instance in instances:
        # The estimator is the compile-time entry point: program_set() runs
        # transform (Figure 4) + compile (Figure 3) exactly once and caches
        # the multiset; the timing below is that compile-time cost.
        estimator = Estimator(instance.program, parameters=[instance.shared_parameter])
        start = time.perf_counter()
        program_set = estimator.program_set(instance.shared_parameter)
        elapsed = time.perf_counter() - start
        # The static metrics reuse the estimator's measured multiset count so
        # the transform + compile runs exactly once per instance.
        report = analyze_program(
            instance.program,
            instance.shared_parameter,
            name=instance.label,
            layer_count=instance.declared_layers,
            measured_derivative_count=program_set.nonaborting_count,
        )
        paper_oc, paper_count, paper_gates = PAPER[instance.label]
        print(
            f"{instance.label:10s} {report.occurrence_count:5d} {paper_oc:5d} "
            f"{report.derivative_program_count:7d} {paper_count:5d} "
            f"{report.gate_count:7d} {paper_gates:6d} {report.line_count:7d} "
            f"{report.layer_count:8d} {report.qubit_count:4d} {elapsed:7.2f}s"
        )
        assert report.satisfies_bound(), "Proposition 7.2 violated!"
    print(
        "\nEvery row satisfies |#∂/∂θ1| ≤ OC (Proposition 7.2); the while variants are the\n"
        "rows where the inequality is strict, because differentiating the unrolled bounded\n"
        "loop produces essentially aborting programs that the compiler optimizes away."
    )


if __name__ == "__main__":
    main()
