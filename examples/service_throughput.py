#!/usr/bin/env python3
"""Throughput through the request protocol: ``submit_many`` over P1/P2/P3.

One :class:`repro.service.EstimatorService` plays the quantum device; three
estimators — the paper's Figure 6 classifiers P1 (measurement-free), P2
(measurement-controlled ``case``) and P3 (bounded ``while``) — play three
concurrent users.  Every user submits its whole workload as *requests*;
the service plans the queue into per-program batched backend calls (the
statevector tiers advance each program's whole batch through every gate in
one broadcasted contraction), coalesces duplicate points, and drains.

The script contrasts that with the per-call loop the blocking API forced —
one ``Estimator.value`` per point — and prints the service telemetry:
queue depth, groups, coalesce rate, per-tier timings, cache hit rate.

Run with::

    python examples/service_throughput.py
"""

from __future__ import annotations

import time

from repro.service import EstimatorService
from repro.vqc.classifier import build_p1, build_p2, build_p3
from repro.vqc.datasets import paper_dataset


def main() -> None:
    dataset = paper_dataset()  # all sixteen 4-bit inputs, labelled
    classifiers = [build_p1(), build_p2(), build_p3()]
    estimators = {c.name: c.estimator("auto") for c in classifiers}
    bindings = {c.name: c.initial_binding(seed=0) for c in classifiers}

    # Duplicate a third of the points: "many users ask the same question".
    workload = [(bits, 1) for bits, _ in dataset] + [
        (bits, 2) for bits, _ in dataset[::3]
    ]

    # ---- the blocking per-call loop (what the old seam allowed) ----------
    start = time.perf_counter()
    per_call = {}
    for classifier in classifiers:
        estimator = estimators[classifier.name].with_backend("auto")
        binding = bindings[classifier.name]
        per_call[classifier.name] = [
            estimator.value(classifier.input_statevector(bits), binding)
            for bits, _ in workload
        ]
    per_call_s = time.perf_counter() - start

    # ---- the request protocol: one shared service, one drain -------------
    service = EstimatorService(backend="auto")
    sessions = {c.name: service.session(name=c.name) for c in classifiers}
    start = time.perf_counter()
    handles = {}
    for classifier in classifiers:
        estimator = estimators[classifier.name]
        binding = bindings[classifier.name]
        handles[classifier.name] = sessions[classifier.name].submit_many(
            [
                estimator.request_value(classifier.input_statevector(bits), binding)
                for bits, _ in workload
            ]
        )
    depth = service.queue_depth
    service.flush()  # one drain: plan → group → coalesce → batched calls
    submitted = {
        name: [handle.result() for handle in batch] for name, batch in handles.items()
    }
    service_s = time.perf_counter() - start

    for name, values in per_call.items():
        mismatch = max(abs(a - b) for a, b in zip(values, submitted[name]))
        assert mismatch < 1e-10, (name, mismatch)

    stats = service.stats
    print("mixed P1/P2/P3 workload:", depth, "requests queued across 3 sessions")
    print(f"  per-call Estimator loop : {per_call_s * 1000:8.1f} ms")
    print(f"  service submit_many     : {service_s * 1000:8.1f} ms "
          f"({per_call_s / service_s:.1f}x)")
    print(f"  groups                  : {stats.groups} batched backend calls")
    print(f"  coalesced               : {stats.coalesced} requests "
          f"({100 * stats.coalesce_rate:.0f}% of submissions shared a computation)")
    # The statevector tiers keep their own amplitude-stack cache on the
    # backend; the service cache serves the density paths.
    cache_stats = getattr(service.backend, "cache", service.cache).stats
    print(f"  cache hit rate          : {100 * cache_stats.hit_rate:.0f}%")
    print("  per-tier timings        :")
    for tier, seconds in sorted(stats.timings.items()):
        print(f"    {tier:24s} {seconds * 1000:8.1f} ms")

    # A repeat of the same workload is almost free: every point is already
    # in the shared denotation cache, and duplicates still coalesce.
    start = time.perf_counter()
    repeat = service.submit_many(
        [
            estimators[c.name].request_value(
                c.input_statevector(bits), bindings[c.name]
            )
            for c in classifiers
            for bits, _ in workload
        ]
    )
    for handle in repeat:
        handle.result()
    repeat_s = time.perf_counter() - start
    print(f"  cache-hot repeat        : {repeat_s * 1000:8.1f} ms "
          f"({per_call_s / repeat_s:.0f}x vs the per-call loop)")

    # The cost model's predicted flops per tier, next to the measured wall
    # time: the numbers admission control and group ordering decide on.
    print("  predicted cost per tier :")
    for tier, flops in sorted(stats.predicted.items()):
        print(f"    {tier:24s} {flops:12.3g} model flops")

    # ---- admission control: a budgeted service rejects the long pole -----
    # A max_cost between a value's and a gradient's predicted cost admits
    # the cheap requests and refuses the expensive one *before* it is
    # queued — the handle fails with a typed, non-retryable
    # ResourceLimitError and the siblings' bits are untouched.
    from repro.errors import ResourceLimitError
    from repro.service import request_cost

    classifier = classifiers[0]
    estimator = estimators[classifier.name]
    binding = bindings[classifier.name]
    state = classifier.input_statevector(workload[0][0])
    value_cost = request_cost(estimator.request_value(state, binding))
    gradient_cost = request_cost(estimator.request_gradient(state, binding))
    budgeted = EstimatorService(
        backend="auto", max_cost=(value_cost + gradient_cost) / 2.0
    )
    admitted = budgeted.submit(estimator.request_value(state, binding))
    refused = budgeted.submit(estimator.request_gradient(state, binding))
    admitted.result()
    try:
        refused.result()
    except ResourceLimitError as error:
        verdict = f"rejected ({error.predicted_cost:.3g} > {error.max_cost:.3g})"
    else:  # pragma: no cover - the budget above guarantees rejection
        verdict = "unexpectedly admitted"
    print(f"  budgeted service        : max_cost={budgeted.max_cost:.3g} model flops")
    print(f"    value request         : admitted ({value_cost:.3g})")
    print(f"    gradient request      : {verdict}")
    print(f"    rejected counter      : {budgeted.stats.rejected} of "
          f"{budgeted.stats.submitted} submissions")


if __name__ == "__main__":
    main()
