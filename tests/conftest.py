"""Shared fixtures and hypothesis strategies for the test-suite.

The strategies build random — but well-formed — parameterized quantum
programs over a small register, which the property-based tests use to
validate the paper's propositions (operational/denotational agreement,
compilation consistency, soundness of the differentiation transformation,
the resource bound) on inputs nobody hand-picked.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.lang.ast import Program, Seq, Sum
from repro.lang.builder import (
    bounded_while_on_qubit,
    case_on_qubit,
    rx,
    rxx,
    ry,
    rz,
    seq,
)
from repro.lang.ast import Abort, Init, Skip
from repro.lang.parameters import Parameter, ParameterBinding
from repro.linalg.observables import Observable, pauli_observable
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout

# ---------------------------------------------------------------------------
# Plain fixtures
# ---------------------------------------------------------------------------

THETA = Parameter("theta")
PHI = Parameter("phi")

TWO_QUBITS = ("q1", "q2")


@pytest.fixture
def theta() -> Parameter:
    return THETA


@pytest.fixture
def phi() -> Parameter:
    return PHI


@pytest.fixture
def two_qubit_layout() -> RegisterLayout:
    return RegisterLayout(TWO_QUBITS)


@pytest.fixture
def two_qubit_state(two_qubit_layout: RegisterLayout) -> DensityState:
    return DensityState.basis_state(two_qubit_layout, {"q1": 0, "q2": 1})


@pytest.fixture
def binding() -> ParameterBinding:
    return ParameterBinding({THETA: 0.37, PHI: -1.1})


@pytest.fixture
def zz_observable() -> Observable:
    return pauli_observable("ZZ")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


# ---------------------------------------------------------------------------
# Hypothesis strategies for random programs
# ---------------------------------------------------------------------------

QUBITS = ("q1", "q2")
PARAMETERS = (THETA, PHI)


def _leaf_statements(parameters: tuple[Parameter, ...]) -> st.SearchStrategy[Program]:
    """Atomic statements over the two-qubit register."""
    qubit = st.sampled_from(QUBITS)
    angle = st.one_of(
        st.sampled_from(parameters),
        st.floats(min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False),
    )
    rotations = st.builds(
        lambda builder, a, q: builder(a, q),
        st.sampled_from((rx, ry, rz)),
        angle,
        qubit,
    )
    couplings = st.builds(lambda a: rxx(a, "q1", "q2"), angle)
    simple = st.one_of(
        st.builds(Skip, st.just(QUBITS)),
        st.builds(Init, qubit),
        st.builds(Abort, st.just(QUBITS)),
    )
    # Rotations dominate so that programs usually depend on the parameters.
    return st.one_of(rotations, rotations, couplings, simple)


def program_strategy(
    *,
    max_depth: int = 3,
    allow_sum: bool = False,
    allow_abort: bool = True,
    allow_controls: bool = True,
    allow_init: bool = True,
) -> st.SearchStrategy[Program]:
    """Random well-formed programs over the fixed two-qubit register.

    ``allow_controls=False`` drops ``case``/``while`` nodes and
    ``allow_init=False`` drops resets — together they generate exactly the
    measurement-free fragment the purity analysis certifies as
    statevector-simulable.
    """
    leaves = _leaf_statements(PARAMETERS)
    if not allow_abort:
        leaves = leaves.filter(lambda p: not isinstance(p, Abort))
    if not allow_init:
        leaves = leaves.filter(lambda p: not isinstance(p, Init))

    def extend(children: st.SearchStrategy[Program]) -> st.SearchStrategy[Program]:
        sequences = st.lists(children, min_size=2, max_size=3).map(seq)
        cases = st.builds(
            lambda q, left, right: case_on_qubit(q, {0: left, 1: right}),
            st.sampled_from(QUBITS),
            children,
            children,
        )
        whiles = st.builds(
            lambda q, body, bound: bounded_while_on_qubit(q, body, bound),
            st.sampled_from(QUBITS),
            children,
            st.integers(min_value=1, max_value=2),
        )
        options = [sequences]
        if allow_controls:
            options.extend([cases, whiles])
        if allow_sum:
            options.append(st.builds(Sum, children, children))
        return st.one_of(*options)

    return st.recursive(leaves, extend, max_leaves=max_depth * 3)


def binding_strategy(parameters: tuple[Parameter, ...] = PARAMETERS) -> st.SearchStrategy[ParameterBinding]:
    """Random parameter bindings at moderate angles."""
    return st.builds(
        lambda values: ParameterBinding(dict(zip(parameters, values))),
        st.lists(
            st.floats(min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False),
            min_size=len(parameters),
            max_size=len(parameters),
        ),
    )


def observable_strategy() -> st.SearchStrategy[Observable]:
    """Random two-qubit Pauli-string observables (all satisfy −I ⊑ O ⊑ I)."""
    return st.sampled_from(
        [pauli_observable(label) for label in ("ZZ", "ZI", "IZ", "XX", "XZ", "YI", "ZX")]
    )


def input_state_strategy() -> st.SearchStrategy[DensityState]:
    """Random two-qubit computational-basis product states."""
    layout = RegisterLayout(QUBITS)
    return st.builds(
        lambda b1, b2: DensityState.basis_state(layout, {"q1": b1, "q2": b2}),
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=1),
    )
