"""Unit tests for the benchmark VQC generators (Appendix F.2 instances)."""

import pytest

from repro.errors import TrainingError
from repro.lang.traversal import contains_case, contains_while, is_circuit
from repro.lang.wellformed import check_well_formed
from repro.analysis.resources import (
    derivative_program_count,
    gate_count,
    occurrence_count,
    qubit_count,
)
from repro.vqc.generators import (
    SHARED_PARAMETER,
    VQCInstance,
    build_instance,
    table2_suite,
    table3_suite,
)


class TestBuildInstance:
    def test_unknown_family_scale_variant(self):
        with pytest.raises(TrainingError):
            build_instance("QFT", "S", "b")
        with pytest.raises(TrainingError):
            build_instance("QNN", "XL", "b")
        with pytest.raises(TrainingError):
            build_instance("QNN", "S", "z")

    def test_labels(self):
        instance = build_instance("QNN", "M", "i")
        assert instance.label == "QNN_M,i"
        assert isinstance(instance, VQCInstance)

    def test_generators_are_deterministic(self):
        first = build_instance("VQE", "M", "w")
        second = build_instance("VQE", "M", "w")
        assert first.program == second.program

    def test_programs_are_well_formed(self):
        for family in ("QNN", "VQE", "QAOA"):
            for variant in ("b", "s", "i", "w"):
                instance = build_instance(family, "S", variant)
                check_well_formed(instance.program, allow_additive=False)

    def test_basic_variant_has_single_occurrence(self):
        for family in ("QNN", "VQE", "QAOA"):
            instance = build_instance(family, "S", "b")
            assert occurrence_count(instance.program, SHARED_PARAMETER) == 1
            assert is_circuit(instance.program)

    def test_shared_variant_has_multiple_occurrences(self):
        for family in ("QNN", "VQE", "QAOA"):
            instance = build_instance(family, "S", "s")
            assert occurrence_count(instance.program, SHARED_PARAMETER) > 1

    def test_if_variant_contains_case_but_no_while(self):
        instance = build_instance("QAOA", "M", "i")
        assert contains_case(instance.program)
        assert not contains_while(instance.program)

    def test_while_variant_contains_while(self):
        instance = build_instance("QAOA", "M", "w")
        assert contains_while(instance.program)

    def test_qubit_counts_match_paper(self):
        expected = {
            ("QNN", "S"): 4, ("QNN", "M"): 18, ("QNN", "L"): 36,
            ("VQE", "S"): 2, ("VQE", "M"): 12, ("VQE", "L"): 40,
            ("QAOA", "S"): 3, ("QAOA", "M"): 18, ("QAOA", "L"): 36,
        }
        for (family, scale), qubits in expected.items():
            instance = build_instance(family, scale, "i")
            assert instance.num_qubits == qubits
            assert qubit_count(instance.program) == qubits


class TestPaperRowValues:
    """Exact reproduction of the Table 2 rows this construction matches."""

    PAPER_ROWS = {
        # label: (OC, |#∂θ1|, #gates)
        "QNN_M,i": (24, 24, 165),
        "QNN_M,w": (56, 24, 231),
        "QNN_L,i": (48, 48, 363),
        "QNN_L,w": (504, 48, 2079),
        "VQE_L,i": (40, 40, 576),
        "VQE_L,w": (248, 40, 1984),
        "QAOA_M,i": (18, 18, 120),
        "QAOA_M,w": (42, 18, 168),
        "QAOA_L,i": (36, 36, 264),
        "QAOA_L,w": (378, 36, 1512),
    }

    @pytest.mark.parametrize("label", sorted(PAPER_ROWS))
    def test_row_matches_paper(self, label):
        family, rest = label.split("_")
        scale, variant = rest.split(",")
        instance = build_instance(family, scale, variant)
        expected_oc, expected_count, expected_gates = self.PAPER_ROWS[label]
        assert occurrence_count(instance.program, SHARED_PARAMETER) == expected_oc
        assert gate_count(instance.program) == expected_gates
        assert derivative_program_count(instance.program, SHARED_PARAMETER) == expected_count

    def test_while_variants_strictly_improve_on_occurrence_count(self):
        """|#∂θ1| < OC for every while variant (essentially aborting unrollings pruned)."""
        for family in ("QNN", "VQE", "QAOA"):
            instance = build_instance(family, "M", "w")
            oc = occurrence_count(instance.program, SHARED_PARAMETER)
            count = derivative_program_count(instance.program, SHARED_PARAMETER)
            assert count < oc

    def test_if_variants_match_occurrence_count(self):
        for family in ("QNN", "VQE", "QAOA"):
            instance = build_instance(family, "M", "i")
            oc = occurrence_count(instance.program, SHARED_PARAMETER)
            count = derivative_program_count(instance.program, SHARED_PARAMETER)
            assert count == oc


class TestSuites:
    def test_table2_suite_has_twelve_instances(self):
        suite = table2_suite()
        assert len(suite) == 12
        assert all(instance.scale in ("M", "L") for instance in suite)
        assert all(instance.variant in ("i", "w") for instance in suite)

    def test_table3_suite_has_twenty_four_instances(self):
        suite = table3_suite()
        assert len(suite) == 24
        labels = [instance.label for instance in suite]
        assert len(set(labels)) == 24
