"""Unit tests for losses and the gradient-descent trainer (short runs)."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.lang.parameters import ParameterBinding
from repro.vqc.classifier import build_p1, build_p2, build_p3
from repro.vqc.datasets import paper_dataset
from repro.vqc.training import (
    GradientDescentTrainer,
    TrainingConfig,
    TrainingResult,
    negative_log_likelihood,
    negative_log_likelihood_gradient_weight,
    squared_loss,
    squared_loss_gradient_weight,
)


class TestLosses:
    def test_squared_loss_value(self):
        assert squared_loss([1.0, 0.0], [1, 0]) == pytest.approx(0.0)
        assert squared_loss([0.5, 0.5], [1, 0]) == pytest.approx(0.25)

    def test_squared_loss_length_check(self):
        with pytest.raises(TrainingError):
            squared_loss([0.5], [1, 0])

    def test_squared_loss_gradient_weight(self):
        assert squared_loss_gradient_weight(0.7, 1) == pytest.approx(-0.3)

    def test_nll_value(self):
        assert negative_log_likelihood([1.0, 0.0], [1, 0]) == pytest.approx(0.0, abs=1e-6)
        assert negative_log_likelihood([0.5, 0.5], [1, 0]) == pytest.approx(np.log(2), abs=1e-6)

    def test_nll_clamps_extreme_predictions(self):
        assert np.isfinite(negative_log_likelihood([0.0], [1]))

    def test_nll_gradient_weight_sign(self):
        assert negative_log_likelihood_gradient_weight(0.4, 1, count=4) < 0
        assert negative_log_likelihood_gradient_weight(0.6, 0, count=4) > 0


class TestConfig:
    def test_validation(self):
        with pytest.raises(TrainingError):
            TrainingConfig(epochs=0)
        with pytest.raises(TrainingError):
            TrainingConfig(learning_rate=0.0)
        with pytest.raises(TrainingError):
            TrainingConfig(loss="hinge")

    def test_defaults(self):
        config = TrainingConfig()
        assert config.loss == "squared"
        assert config.epochs > 0


class TestTrainer:
    @pytest.fixture(scope="class")
    def dataset(self):
        return paper_dataset()

    def test_training_reduces_loss_for_p2(self, dataset):
        classifier = build_p2()
        trainer = GradientDescentTrainer(
            classifier, TrainingConfig(epochs=3, learning_rate=0.5, record_accuracy=False)
        )
        result = trainer.train(dataset)
        assert isinstance(result, TrainingResult)
        assert len(result.losses) == 4  # initial + after each epoch
        assert result.final_loss < result.losses[0]
        assert result.final_binding is not None

    def test_training_records_accuracy_when_asked(self, dataset):
        classifier = build_p1()
        trainer = GradientDescentTrainer(
            classifier, TrainingConfig(epochs=1, learning_rate=0.3, record_accuracy=True)
        )
        result = trainer.train(dataset)
        assert len(result.accuracies) == len(result.losses)
        assert all(0.0 <= a <= 1.0 for a in result.accuracies)

    def test_loss_gradient_matches_finite_differences(self, dataset):
        classifier = build_p1()
        trainer = GradientDescentTrainer(classifier, TrainingConfig(epochs=1))
        binding = classifier.initial_binding(seed=2, spread=0.4)
        small_dataset = dataset[:4]
        gradient = trainer.loss_gradient(small_dataset, binding)
        # Finite-difference check on two representative parameters.
        for index in (0, 13):
            parameter = classifier.parameters[index]
            eps = 1e-5
            upper = trainer.loss(small_dataset, binding.shifted(parameter, +eps))
            lower = trainer.loss(small_dataset, binding.shifted(parameter, -eps))
            assert gradient[index] == pytest.approx((upper - lower) / (2 * eps), abs=1e-5)

    def test_nll_loss_gradient_matches_finite_differences(self, dataset):
        classifier = build_p1()
        trainer = GradientDescentTrainer(classifier, TrainingConfig(epochs=1, loss="nll"))
        binding = classifier.initial_binding(seed=4, spread=0.4)
        small_dataset = dataset[:3]
        gradient = trainer.loss_gradient(small_dataset, binding)
        parameter = classifier.parameters[5]
        eps = 1e-5
        upper = trainer.loss(small_dataset, binding.shifted(parameter, +eps))
        lower = trainer.loss(small_dataset, binding.shifted(parameter, -eps))
        assert gradient[5] == pytest.approx((upper - lower) / (2 * eps), abs=1e-5)

    def test_empty_dataset_rejected(self):
        trainer = GradientDescentTrainer(build_p1(), TrainingConfig(epochs=1))
        with pytest.raises(TrainingError):
            trainer.train([])

    def test_result_accessors_require_history(self):
        result = TrainingResult(classifier_name="empty")
        with pytest.raises(TrainingError):
            result.final_loss
        with pytest.raises(TrainingError):
            result.best_loss

    def test_custom_initial_binding_is_used(self, dataset):
        classifier = build_p1()
        trainer = GradientDescentTrainer(
            classifier, TrainingConfig(epochs=1, record_accuracy=False)
        )
        binding = ParameterBinding.zeros(classifier.parameters)
        result = trainer.train(dataset[:2], initial_binding=binding)
        assert len(result.losses) == 2

    def test_p3_trains_and_loses_mass_to_the_abort_branch(self, dataset):
        classifier = build_p3()
        trainer = GradientDescentTrainer(
            classifier, TrainingConfig(epochs=2, learning_rate=0.5, record_accuracy=True)
        )
        result = trainer.train(dataset)
        assert len(result.losses) == 3
        assert all(np.isfinite(loss) for loss in result.losses)
        # The readout is taken on the sub-normalized terminated state, so
        # every prediction is a valid (≤ 1) probability.
        binding = result.final_binding
        predictions = trainer.predictions(dataset, binding)
        assert all(0.0 <= p <= 1.0 + 1e-12 for p in predictions)


class TestTrajectoryTierReproducesTheSeedTrajectory:
    """Acceptance pin: P2/P3 train through ``backend="auto"`` on the
    branch-splitting trajectory tier and reproduce the exact-density loss
    trajectory to ≤ 1e-8 (ε-pruning is off by default, so the only
    divergence is floating-point association across branches)."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return paper_dataset()

    @pytest.mark.parametrize("build", [build_p2, build_p3])
    def test_auto_matches_exact_density_losses(self, dataset, build):
        def run(backend):
            trainer = GradientDescentTrainer(
                build(),
                TrainingConfig(
                    epochs=3, learning_rate=0.5, record_accuracy=True, backend=backend
                ),
            )
            return trainer.train(dataset)

        auto, exact = run("auto"), run("exact-density")
        assert np.allclose(auto.losses, exact.losses, atol=1e-8)
        assert auto.accuracies == exact.accuracies

    def test_p2_forward_program_is_attributed_to_the_trajectory_tier(self):
        classifier = build_p2()
        trainer = GradientDescentTrainer(classifier, TrainingConfig(epochs=1))
        assert trainer.estimator.backend.tier_for(classifier.program) == "trajectory"
