"""Unit tests for the Section 8.1 classifiers P1/P2 and the P3 extension."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.lang.ast import Case, Seq, While
from repro.lang.parameters import Parameter, ParameterBinding, ParameterVector
from repro.lang.traversal import contains_case, is_circuit
from repro.analysis.resources import gate_count
from repro.baselines.finite_diff import finite_difference_derivative
from repro.vqc.classifier import BooleanClassifier, build_p1, build_p2, build_p3, build_q_layer
from repro.vqc.datasets import paper_dataset


class TestQLayer:
    def test_structure_and_gate_count(self):
        params = ParameterVector("g", 12).as_tuple()
        layer = build_q_layer(params)
        assert gate_count(layer) == 12
        assert layer.qvars() == {"q1", "q2", "q3", "q4"}
        assert is_circuit(layer)

    def test_requires_three_parameters_per_qubit(self):
        with pytest.raises(TrainingError):
            build_q_layer(ParameterVector("g", 8).as_tuple())


class TestBuildClassifiers:
    def test_p1_is_a_plain_circuit_with_24_parameters(self):
        p1 = build_p1()
        assert len(p1.parameters) == 24
        assert is_circuit(p1.program)
        assert gate_count(p1.program) == 24

    def test_p2_has_controls_and_36_parameters(self):
        p2 = build_p2()
        assert len(p2.parameters) == 36
        assert contains_case(p2.program)
        assert isinstance(p2.program, Seq)
        assert isinstance(p2.program.second, Case)

    def test_p3_has_a_bounded_while_and_24_parameters(self):
        p3 = build_p3()
        assert len(p3.parameters) == 24
        assert isinstance(p3.program, Seq)
        assert isinstance(p3.program.second, While)
        assert p3.program.second.bound == 2
        assert gate_count(p3.program.second.body) == 12

    def test_p3_predictions_are_sub_normalized_probabilities(self):
        p3 = build_p3()
        binding = p3.initial_binding(seed=1, spread=0.6)
        for bits in ((0, 0, 0, 0), (1, 0, 1, 0), (1, 1, 1, 1)):
            probability = p3.predict_probability(bits, binding)
            assert 0.0 <= probability <= 1.0 + 1e-12

    def test_p1_and_p2_execute_the_same_number_of_gates_per_run(self):
        """Each run of P2 applies one of the two 12-gate branches: 24 gates, like P1."""
        p2 = build_p2()
        case = p2.program.second
        assert gate_count(p2.program.first) == 12
        assert gate_count(case.branch(0)) == 12
        assert gate_count(case.branch(1)) == 12

    def test_custom_parameters_are_accepted(self):
        theta = ParameterVector("a", 12).as_tuple()
        phi = ParameterVector("b", 12).as_tuple()
        classifier = build_p1(theta, phi)
        assert classifier.parameters == theta + phi


class TestClassifierBehaviour:
    def test_layout_and_input_state(self):
        p1 = build_p1()
        state = p1.input_state((1, 0, 1, 1))
        assert state.layout.names == ("q1", "q2", "q3", "q4")
        assert np.isclose(state.trace(), 1.0)
        index = int("1011", 2)
        assert np.isclose(state.matrix[index, index], 1.0)

    def test_input_state_validates_length(self):
        with pytest.raises(TrainingError):
            build_p1().input_state((1, 0))

    def test_prediction_at_zero_parameters_reads_input_bit(self):
        """With all angles 0 the circuit is the identity, so l(z) = z4."""
        p1 = build_p1()
        binding = ParameterBinding.zeros(p1.parameters)
        assert p1.predict_probability((0, 0, 0, 0), binding) == pytest.approx(0.0)
        assert p1.predict_probability((0, 0, 0, 1), binding) == pytest.approx(1.0)

    def test_prediction_is_a_probability(self):
        p2 = build_p2()
        binding = p2.initial_binding(seed=3, spread=1.5)
        for bits, _ in paper_dataset()[:6]:
            probability = p2.predict_probability(bits, binding)
            assert -1e-9 <= probability <= 1 + 1e-9

    def test_predict_label_thresholds(self):
        p1 = build_p1()
        binding = ParameterBinding.zeros(p1.parameters)
        assert p1.predict_label((0, 0, 0, 1), binding) == 1
        assert p1.predict_label((0, 0, 0, 0), binding) == 0

    def test_accuracy_at_identity_parameters(self):
        """The identity circuit predicts z4, which matches f(z)=¬(z1⊕z4) on half the inputs."""
        p1 = build_p1()
        binding = ParameterBinding.zeros(p1.parameters)
        assert p1.accuracy(paper_dataset(), binding) == pytest.approx(0.5)

    def test_accuracy_requires_data(self):
        with pytest.raises(TrainingError):
            build_p1().accuracy([], ParameterBinding.zeros(build_p1().parameters))

    def test_initial_binding_is_deterministic(self):
        p1 = build_p1()
        assert p1.initial_binding(seed=5).to_dict() == p1.initial_binding(seed=5).to_dict()

    def test_derivative_program_sets_cover_every_parameter(self):
        p2 = build_p2()
        program_sets = p2.derivative_program_sets()
        assert len(program_sets) == 36
        # Each parameter occurs exactly once, so at most one program per parameter survives.
        assert all(ps.nonaborting_count <= 1 for ps in program_sets)

    def test_gradient_of_prediction_matches_finite_differences(self):
        p2 = build_p2()
        binding = p2.initial_binding(seed=1, spread=0.7)
        bits = (1, 0, 1, 0)
        state = p2.input_state(bits)
        observable = p2.readout_observable()
        parameter = p2.parameters[0]
        program_set = p2.derivative_program_sets()[0]
        exact = program_set.evaluate(observable, state, binding)
        reference = finite_difference_derivative(
            p2.program, parameter, observable, state, binding
        )
        assert exact == pytest.approx(reference, abs=1e-6)
