"""Unit tests for the boolean datasets of the case study."""

import pytest

from repro.errors import TrainingError
from repro.vqc.datasets import (
    all_bitstrings,
    boolean_dataset,
    majority_label_function,
    paper_dataset,
    paper_label_function,
    parity_label_function,
)


class TestLabelFunctions:
    def test_paper_label_truth_table(self):
        """f(z) = ¬(z1 ⊕ z4)."""
        assert paper_label_function((0, 0, 0, 0)) == 1
        assert paper_label_function((1, 0, 0, 1)) == 1
        assert paper_label_function((1, 0, 0, 0)) == 0
        assert paper_label_function((0, 1, 1, 1)) == 0

    def test_paper_label_ignores_middle_bits(self):
        assert paper_label_function((1, 0, 0, 1)) == paper_label_function((1, 1, 1, 1))

    def test_paper_label_requires_four_bits(self):
        with pytest.raises(TrainingError):
            paper_label_function((0, 1))

    def test_parity(self):
        assert parity_label_function((1, 1, 0)) == 0
        assert parity_label_function((1, 0, 0)) == 1

    def test_majority(self):
        assert majority_label_function((1, 1, 0)) == 1
        assert majority_label_function((1, 0, 0, 0)) == 0


class TestDatasets:
    def test_all_bitstrings(self):
        assert len(all_bitstrings(3)) == 8
        assert all_bitstrings(1) == [(0,), (1,)]
        with pytest.raises(TrainingError):
            all_bitstrings(0)

    def test_paper_dataset_covers_all_inputs(self):
        dataset = paper_dataset()
        assert len(dataset) == 16
        assert sum(label for _, label in dataset) == 8  # the label is balanced

    def test_boolean_dataset_with_selected_inputs(self):
        dataset = boolean_dataset(parity_label_function, inputs=[(0, 1), (1, 1)])
        assert dataset == [((0, 1), 1), ((1, 1), 0)]

    def test_boolean_dataset_validates_bits(self):
        with pytest.raises(TrainingError):
            boolean_dataset(parity_label_function, inputs=[(0, 2)])

    def test_boolean_dataset_validates_labels(self):
        with pytest.raises(TrainingError):
            boolean_dataset(lambda bits: 7, num_bits=2)
