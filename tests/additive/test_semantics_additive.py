"""Unit tests for the additive multiset semantics and Proposition 4.2."""

import numpy as np
import pytest

from repro.lang.ast import Abort, Skip, Sum
from repro.lang.builder import bounded_while_on_qubit, case_on_qubit, rx, ry, seq
from repro.lang.parameters import Parameter, ParameterBinding
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.additive.semantics import (
    additive_terminal_states,
    check_compilation_consistency,
    compiled_terminal_states,
    states_match_as_multisets,
)

THETA = Parameter("theta")
LAYOUT = RegisterLayout(["q1", "q2"])
BINDING = ParameterBinding({THETA: 0.6})


def _state(q1=0, q2=0):
    return DensityState.basis_state(LAYOUT, {"q1": q1, "q2": q2})


class TestMultisetSemantics:
    def test_sum_yields_one_terminal_per_choice(self):
        program = Sum(rx(THETA, "q1"), ry(0.3, "q1"))
        states = additive_terminal_states(program, _state(), BINDING)
        assert len(states) == 2

    def test_definition_4_1_does_not_sum_traces(self):
        """Each trace in the multiset stays ≤ 1; the entries are not merged."""
        program = Sum(Skip(["q1"]), Skip(["q1"]))
        states = additive_terminal_states(program, _state(), BINDING)
        assert len(states) == 2
        assert all(np.isclose(s.trace(), 1.0) for s in states)

    def test_aborting_choice_is_dropped(self):
        program = Sum(Skip(["q1"]), Abort(["q1"]))
        states = additive_terminal_states(program, _state(), BINDING)
        assert len(states) == 1


class TestProposition42:
    @pytest.mark.parametrize("q1_value", [0, 1])
    def test_sum_inside_case(self, q1_value):
        program = case_on_qubit(
            "q1",
            {0: Sum(rx(THETA, "q2"), ry(0.8, "q2")), 1: rx(0.2, "q2")},
        )
        state = _state(q1=q1_value)
        assert check_compilation_consistency(program, state, BINDING)

    def test_sum_inside_sequence(self):
        program = seq(
            [
                rx(THETA, "q1"),
                Sum(ry(0.3, "q2"), Skip(["q2"])),
                case_on_qubit("q1", {0: Skip(["q1"]), 1: ry(0.1, "q2")}),
            ]
        )
        assert check_compilation_consistency(program, _state(), BINDING)

    def test_sum_inside_while_body(self):
        program = bounded_while_on_qubit("q1", Sum(rx(THETA, "q1"), ry(0.7, "q1")), 2)
        assert check_compilation_consistency(program, _state(q1=1), BINDING)

    def test_exact_multiset_match_for_simple_sum(self):
        program = Sum(rx(THETA, "q1"), ry(0.3, "q1"))
        left = additive_terminal_states(program, _state(), BINDING)
        right = compiled_terminal_states(program, _state(), BINDING)
        assert states_match_as_multisets(left, right)

    def test_normal_program_sides_coincide(self):
        program = seq([rx(THETA, "q1"), case_on_qubit("q1", {0: Skip(["q1"]), 1: ry(0.5, "q2")})])
        left = additive_terminal_states(program, _state(), BINDING)
        right = compiled_terminal_states(program, _state(), BINDING)
        assert states_match_as_multisets(left, right)


class TestMultisetMatcher:
    def test_length_mismatch(self):
        assert not states_match_as_multisets([_state()], [])

    def test_value_mismatch(self):
        assert not states_match_as_multisets([_state(0, 0)], [_state(1, 0)])

    def test_permutation_invariance(self):
        a, b = _state(0, 0), _state(1, 1)
        assert states_match_as_multisets([a, b], [b, a])

    def test_multiplicity_sensitivity(self):
        a, b = _state(0, 0), _state(1, 1)
        assert not states_match_as_multisets([a, a], [a, b])
