"""Unit tests for the "essentially aborts" predicate (Definition 3.2)."""

from repro.lang.ast import Abort, Init, Seq, Skip, Sum
from repro.lang.builder import bounded_while_on_qubit, case_on_qubit, rx, seq
from repro.lang.parameters import Parameter
from repro.additive.essential_abort import essentially_aborts

THETA = Parameter("theta")


class TestAtomic:
    def test_abort_aborts(self):
        assert essentially_aborts(Abort(["q1"]))

    def test_skip_init_unitary_do_not(self):
        assert not essentially_aborts(Skip(["q1"]))
        assert not essentially_aborts(Init("q1"))
        assert not essentially_aborts(rx(THETA, "q1"))


class TestSequence:
    def test_abort_anywhere_in_sequence(self):
        assert essentially_aborts(Seq(Abort(["q1"]), Skip(["q1"])))
        assert essentially_aborts(Seq(Skip(["q1"]), Abort(["q1"])))
        assert essentially_aborts(seq([rx(THETA, "q1"), Skip(["q1"]), Abort(["q1"])]))

    def test_abort_free_sequence(self):
        assert not essentially_aborts(seq([rx(THETA, "q1"), Skip(["q1"])]))

    def test_nested_sequence(self):
        inner = Seq(Skip(["q1"]), Abort(["q1"]))
        assert essentially_aborts(Seq(rx(THETA, "q1"), inner))


class TestCase:
    def test_all_branches_abort(self):
        program = case_on_qubit("q1", {0: Abort(["q1"]), 1: Seq(rx(THETA, "q1"), Abort(["q1"]))})
        assert essentially_aborts(program)

    def test_one_live_branch_suffices(self):
        program = case_on_qubit("q1", {0: Abort(["q1"]), 1: Skip(["q1"])})
        assert not essentially_aborts(program)


class TestWhileAndSum:
    def test_while_never_essentially_aborts(self):
        loop = bounded_while_on_qubit("q1", Abort(["q1"]), 2)
        assert not essentially_aborts(loop)

    def test_sum_aborts_only_when_both_sides_do(self):
        assert essentially_aborts(Sum(Abort(["q1"]), Seq(Skip(["q1"]), Abort(["q1"]))))
        assert not essentially_aborts(Sum(Abort(["q1"]), Skip(["q1"])))
        assert not essentially_aborts(Sum(Skip(["q1"]), Abort(["q1"])))
