"""Unit tests for the additive-program compiler (Figure 3), including Example 4.1."""

import pytest

from repro.errors import CompilationError
from repro.lang.ast import Abort, Case, Seq, Skip, Sum
from repro.lang.builder import bounded_while_on_qubit, case_on_qubit, rx, ry, rz, seq, sum_programs
from repro.lang.parameters import Parameter
from repro.additive.compile import canonical_abort, compile_additive, nonaborting_count
from repro.additive.essential_abort import essentially_aborts

THETA = Parameter("theta")


class TestNormalPrograms:
    def test_normal_program_compiles_to_itself(self):
        program = seq([rx(THETA, "q1"), ry(0.2, "q2")])
        assert compile_additive(program) == [program]

    def test_normal_aborting_program_collapses(self):
        program = seq([rx(THETA, "q1"), Abort(["q1"])])
        assert compile_additive(program) == [Abort(("q1",))]

    def test_while_is_preserved(self):
        program = bounded_while_on_qubit("q1", rx(THETA, "q1"), 2)
        assert compile_additive(program) == [program]

    def test_canonical_abort_uses_sorted_qvars(self):
        program = seq([rx(THETA, "q2"), ry(0.1, "q1")])
        assert canonical_abort(program) == Abort(("q1", "q2"))


class TestSumRule:
    def test_plain_sum_unions(self):
        program = Sum(rx(THETA, "q1"), ry(0.1, "q1"))
        assert compile_additive(program) == [rx(THETA, "q1"), ry(0.1, "q1")]

    def test_sum_drops_aborting_side(self):
        program = Sum(rx(THETA, "q1"), Abort(["q1"]))
        assert compile_additive(program) == [rx(THETA, "q1")]
        program = Sum(Abort(["q1"]), rx(THETA, "q1"))
        assert compile_additive(program) == [rx(THETA, "q1")]

    def test_sum_of_two_aborts_collapses(self):
        program = Sum(Abort(["q1"]), Seq(Skip(["q1"]), Abort(["q1"])))
        assert compile_additive(program) == [Abort(("q1",))]

    def test_nested_sum_flattens_to_multiset(self):
        program = sum_programs([rx(THETA, "q1"), ry(0.1, "q1"), rz(0.2, "q1")])
        assert len(compile_additive(program)) == 3

    def test_duplicate_summands_are_kept_as_multiset(self):
        program = Sum(rx(THETA, "q1"), rx(THETA, "q1"))
        assert compile_additive(program) == [rx(THETA, "q1"), rx(THETA, "q1")]


class TestSequenceRule:
    def test_cross_product(self):
        program = Seq(Sum(rx(THETA, "q1"), ry(0.1, "q1")), Sum(rz(0.2, "q1"), Skip(["q1"])))
        compiled = compile_additive(program)
        assert len(compiled) == 4
        assert Seq(rx(THETA, "q1"), rz(0.2, "q1")) in compiled
        assert Seq(ry(0.1, "q1"), Skip(["q1"])) in compiled

    def test_aborting_first_operand_collapses_everything(self):
        program = Seq(Abort(["q1"]), Sum(rx(THETA, "q1"), ry(0.1, "q1")))
        assert compile_additive(program) == [Abort(("q1",))]

    def test_aborting_second_operand_collapses_everything(self):
        program = Seq(Sum(rx(THETA, "q1"), ry(0.1, "q1")), Seq(Skip(["q1"]), Abort(["q1"])))
        assert compile_additive(program) == [Abort(("q1",))]


class TestCaseRule:
    def test_fill_and_break_of_example_4_1(self):
        """Example 4.1: case 0 → P1+P2, 1 → P3 compiles to two case programs."""
        p1, p2, p3 = rx(THETA, "q1"), ry(0.4, "q1"), rz(0.7, "q1")
        program = case_on_qubit("q1", {0: Sum(p1, p2), 1: p3})
        compiled = compile_additive(program)
        assert len(compiled) == 2
        first, second = compiled
        assert isinstance(first, Case) and isinstance(second, Case)
        assert first.branch(0) == p1 and first.branch(1) == p3
        assert second.branch(0) == p2
        assert isinstance(second.branch(1), Abort)

    def test_all_branches_aborting_collapse(self):
        program = case_on_qubit(
            "q1", {0: Sum(Abort(["q1"]), Abort(["q1"])), 1: Seq(Skip(["q1"]), Abort(["q1"]))}
        )
        assert compile_additive(program) == [Abort(("q1",))]

    def test_padding_keeps_branch_alignment(self):
        p1, p2, p3 = rx(THETA, "q1"), ry(0.4, "q1"), rz(0.7, "q1")
        program = case_on_qubit("q1", {0: sum_programs([p1, p2, p3]), 1: Skip(["q1"])})
        compiled = compile_additive(program)
        assert len(compiled) == 3
        # The 1-branch appears once and is padded with aborts afterwards.
        one_branches = [c.branch(1) for c in compiled]
        assert one_branches[0] == Skip(["q1"])
        assert all(isinstance(b, Abort) for b in one_branches[1:])


class TestWhileRule:
    def test_additive_while_body_is_unfolded_and_compiled(self):
        body = Sum(rx(THETA, "q1"), ry(0.4, "q1"))
        program = bounded_while_on_qubit("q1", body, 2)
        compiled = compile_additive(program)
        # Two choices for the first body execution (the second is a smaller loop).
        assert len(compiled) == 2
        assert all(isinstance(c, Case) for c in compiled)

    def test_additive_while_bound_one_collapses(self):
        """With bound 1 the guard-1 branch always ends in abort, so only the
        skip branch survives and fill-and-break produces a single program."""
        body = Sum(rx(THETA, "q1"), ry(0.4, "q1"))
        program = bounded_while_on_qubit("q1", body, 1)
        compiled = compile_additive(program)
        assert len(compiled) == 1
        assert isinstance(compiled[0], Case)
        assert isinstance(compiled[0].branch(1), Abort)


class TestCountsAndInvariants:
    def test_nonaborting_count_of_normal_program(self):
        assert nonaborting_count(rx(THETA, "q1")) == 1
        assert nonaborting_count(Abort(["q1"])) == 0

    def test_nonaborting_count_of_sum(self):
        program = sum_programs([rx(THETA, "q1"), Abort(["q1"]), ry(0.1, "q1")])
        assert nonaborting_count(program) == 2

    def test_exponential_example_from_section_4(self):
        """(Q1+R1); ...; (Qn+Rn) compiles to 2^n programs."""
        factors = [Sum(rx(THETA, "q1"), ry(0.1, "q1")) for _ in range(4)]
        program = seq(factors)
        assert nonaborting_count(program) == 2**4

    def test_compiled_output_contains_no_sums_or_stray_aborts(self):
        program = Seq(
            Sum(rx(THETA, "q1"), Abort(["q1"])),
            case_on_qubit("q1", {0: Sum(ry(0.1, "q2"), rz(0.2, "q2")), 1: Skip(["q1"])}),
        )
        compiled = compile_additive(program)
        for entry in compiled:
            assert not entry.is_additive()
            assert not essentially_aborts(entry)

    def test_canonical_abort_requires_variables(self):
        class Empty:
            def qvars(self):
                return frozenset()

        with pytest.raises(CompilationError):
            canonical_abort(Empty())
