"""Integration tests reproducing the worked examples of the paper.

* Example 6.1 (Simple-Case): transformation + compilation of a case program
  whose branches are rotation sequences;
* Appendix F.1: the compiled derivative multisets of the case-study
  classifiers P1 and P2 for parameters from each layer;
* the MUL/QMUL discussion of Section 1: the derivative of a two-rotation
  composition is a two-element collection (product rule without cloning).
"""

import numpy as np
import pytest

from repro.lang.ast import Abort, Case, Seq
from repro.lang.builder import case_on_qubit, rx, ry, rz, seq
from repro.lang.gates import ControlledRotation
from repro.lang.parameters import Parameter, ParameterBinding
from repro.lang.traversal import iter_gate_applications
from repro.linalg.observables import pauli_observable, projector_observable
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.additive.compile import compile_additive
from repro.autodiff.execution import differentiate_and_compile
from repro.autodiff.gadgets import rotation_prime
from repro.autodiff.transform import differentiate
from repro.baselines.finite_diff import finite_difference_derivative
from repro.vqc.classifier import build_p1, build_p2

THETA = Parameter("theta")


class TestSectionOneQMUL:
    """QMUL ≡ U1(θ); U2(θ): its derivative is a collection of two programs."""

    def test_derivative_of_composition_has_two_components(self):
        qmul = Seq(rx(THETA, "q1"), ry(THETA, "q1"))
        program_set = differentiate_and_compile(qmul, THETA)
        assert program_set.nonaborting_count == 2
        first, second = program_set.nonaborting_programs()
        # One component differentiates U2 (keeps U1), the other differentiates U1 (keeps U2).
        assert first == Seq(rx(THETA, "q1"), rotation_prime("Y", THETA, "anc_theta", "q1"))
        assert second == Seq(rotation_prime("X", THETA, "anc_theta", "q1"), ry(THETA, "q1"))

    def test_both_components_are_needed_for_the_value(self):
        qmul = Seq(rx(THETA, "q1"), ry(THETA, "q1"))
        layout = RegisterLayout(["q1"])
        state = DensityState.zero_state(layout)
        binding = ParameterBinding({THETA: 0.8})
        observable = pauli_observable("Z")
        program_set = differentiate_and_compile(qmul, THETA)
        total = program_set.evaluate(observable, state, binding)
        reference = finite_difference_derivative(qmul, THETA, observable, state, binding)
        assert total == pytest.approx(reference, abs=1e-6)
        assert abs(total) > 1e-3  # neither the value nor the test is vacuous


class TestExample61SimpleCase:
    """Example 6.1: P(θ) ≡ case M[q1] = 0 → RX(θ);RY(θ), 1 → RZ(θ)."""

    def _program(self):
        return case_on_qubit(
            "q1", {0: seq([rx(THETA, "q1"), ry(THETA, "q1")]), 1: rz(THETA, "q1")}
        )

    def test_transformation_shape(self):
        derivative = differentiate(self._program(), THETA, ancilla="A")
        assert isinstance(derivative, Case)
        zero_branch = derivative.branch(0)
        # The 0-branch is the additive choice (R'X; RY) + (RX; R'Y).
        assert zero_branch.left == Seq(rx(THETA, "q1"), rotation_prime("Y", THETA, "A", "q1"))
        assert zero_branch.right == Seq(rotation_prime("X", THETA, "A", "q1"), ry(THETA, "q1"))
        # The 1-branch is the single gadget R'Z.
        assert derivative.branch(1) == rotation_prime("Z", THETA, "A", "q1")

    def test_compilation_produces_the_two_case_programs_of_the_paper(self):
        derivative = differentiate(self._program(), THETA, ancilla="A")
        compiled = compile_additive(derivative)
        assert len(compiled) == 2
        # The paper's Example 6.1 multiset, up to the order of the two entries:
        # one case pairs a differentiated 0-branch with R'Z, the other pairs the
        # remaining differentiated 0-branch with abort.
        zero_branches = {id(c): c.branch(0) for c in compiled}
        assert sorted(
            str(branch) for branch in zero_branches.values()
        ) == sorted(
            [
                str(Seq(rotation_prime("X", THETA, "A", "q1"), ry(THETA, "q1"))),
                str(Seq(rx(THETA, "q1"), rotation_prime("Y", THETA, "A", "q1"))),
            ]
        )
        one_branches = [c.branch(1) for c in compiled]
        assert rotation_prime("Z", THETA, "A", "q1") in one_branches
        assert any(isinstance(branch, Abort) for branch in one_branches)

    def test_compiled_programs_compute_the_derivative(self):
        program = self._program()
        layout = RegisterLayout(["q1"])
        observable = pauli_observable("X")
        binding = ParameterBinding({THETA: 1.1})
        program_set = differentiate_and_compile(program, THETA)
        for q1_value in (0, 1):
            state = DensityState.basis_state(layout, {"q1": q1_value})
            value = program_set.evaluate(observable, state, binding)
            reference = finite_difference_derivative(program, THETA, observable, state, binding)
            assert value == pytest.approx(reference, abs=1e-6)


class TestAppendixF1ClassifierDerivatives:
    """Appendix F.1: shapes of Compile(∂P1/∂α) and Compile(∂P2/∂α) per layer."""

    def test_p1_theta_layer_derivative_is_a_single_program(self):
        p1 = build_p1()
        alpha = p1.parameters[0]  # θ1, in the first layer
        program_set = differentiate_and_compile(p1.program, alpha)
        assert program_set.nonaborting_count == 1
        (program,) = program_set.nonaborting_programs()
        gadget_gates = [
            g for g in iter_gate_applications(program) if isinstance(g.gate, ControlledRotation)
        ]
        assert len(gadget_gates) == 1

    def test_p1_phi_layer_derivative_is_a_single_program(self):
        p1 = build_p1()
        alpha = p1.parameters[12]  # φ1, in the second layer
        program_set = differentiate_and_compile(p1.program, alpha)
        assert program_set.nonaborting_count == 1

    def test_p2_derivatives_keep_the_case_structure(self):
        p2 = build_p2()
        for index in (0, 12, 24):  # one parameter from Θ, Φ and Ψ
            alpha = p2.parameters[index]
            program_set = differentiate_and_compile(p2.program, alpha)
            assert program_set.nonaborting_count == 1
            (program,) = program_set.nonaborting_programs()
            if index == 0:
                # ∂/∂θ1: the gadget sits before the unchanged case statement.
                assert isinstance(program, Seq)
                assert isinstance(program.second, Case)
            else:
                # ∂/∂φ1 and ∂/∂ψ1: the gadget sits inside one branch of the case.
                assert isinstance(program, Seq)
                case = program.second
                assert isinstance(case, Case)
                branch = case.branch(0) if index == 12 else case.branch(1)
                gadgets = [
                    g
                    for g in iter_gate_applications(branch)
                    if isinstance(g.gate, ControlledRotation)
                ]
                assert len(gadgets) == 1

    def test_p2_gradient_entry_against_finite_differences(self):
        p2 = build_p2()
        binding = p2.initial_binding(seed=0, spread=0.6)
        bits = (0, 1, 1, 0)
        state = p2.input_state(bits)
        observable = p2.readout_observable()
        alpha = p2.parameters[30]
        value = differentiate_and_compile(p2.program, alpha).evaluate(observable, state, binding)
        reference = finite_difference_derivative(p2.program, alpha, observable, state, binding)
        assert value == pytest.approx(reference, abs=1e-6)
