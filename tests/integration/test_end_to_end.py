"""End-to-end integration tests across the whole stack.

These tests deliberately cross module boundaries: text → AST → semantics →
differentiation → execution → training, plus cross-checks between the two
simulators and between exact and shot-based execution.
"""

import numpy as np
import pytest

import repro
from repro.errors import ReproError, TransformError
from repro.lang import Parameter, ParameterBinding, parse_program, pretty_print
from repro.lang.builder import rx, ry, rxx, seq
from repro.lang.traversal import reassociate
from repro.linalg.observables import pauli_observable
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.sim.statevector import StateVector
from repro.semantics.denotational import denote
from repro.autodiff.execution import differentiate_and_compile
from repro.baselines.finite_diff import finite_difference_derivative
from repro.vqc.classifier import build_p2
from repro.vqc.datasets import boolean_dataset, parity_label_function
from repro.vqc.training import GradientDescentTrainer, TrainingConfig

THETA = Parameter("theta")
PHI = Parameter("phi")


class TestPackageSurface:
    def test_top_level_import_exposes_subpackages(self):
        assert repro.__version__
        for name in ("lang", "linalg", "sim", "semantics", "additive", "autodiff",
                     "analysis", "baselines", "vqc"):
            assert hasattr(repro, name)

    def test_error_hierarchy(self):
        assert issubclass(TransformError, ReproError)
        from repro.errors import (
            CompilationError,
            LinalgError,
            LogicError,
            ParameterError,
            ParseError,
            SemanticsError,
            TrainingError,
            WellFormednessError,
        )

        for error_type in (
            CompilationError,
            LinalgError,
            LogicError,
            ParameterError,
            ParseError,
            SemanticsError,
            TrainingError,
            WellFormednessError,
        ):
            assert issubclass(error_type, ReproError)


class TestTextToGradient:
    SOURCE = """
    q1 := |0>;
    q1 := RX(theta)[q1];
    q1, q2 := RXX(phi)[q1, q2];
    case M[q1] =
      0 -> { q2 := RY(theta)[q2] }
      1 -> { q2 := RZ(theta)[q2] }
    end
    """

    def test_parse_differentiate_execute(self):
        program = parse_program(self.SOURCE)
        binding = ParameterBinding({THETA: 1.2, PHI: -0.5})
        layout = RegisterLayout(["q1", "q2"])
        state = DensityState.basis_state(layout, {"q1": 1, "q2": 0})
        observable = pauli_observable("IZ")
        program_set = differentiate_and_compile(program, THETA)
        value = program_set.evaluate(observable, state, binding)
        reference = finite_difference_derivative(program, THETA, observable, state, binding)
        assert value == pytest.approx(reference, abs=1e-6)

    def test_derivative_programs_round_trip_through_the_surface_syntax(self):
        program = parse_program(self.SOURCE)
        program_set = differentiate_and_compile(program, THETA)
        binding = ParameterBinding({THETA: 0.3, PHI: 0.9})
        layout = RegisterLayout(["anc_theta", "q1", "q2"])
        state = DensityState.zero_state(layout)
        for compiled in program_set.nonaborting_programs():
            reparsed = parse_program(pretty_print(compiled))
            assert reparsed == reassociate(compiled)
            # Semantically identical too.
            direct = denote(compiled, state, binding)
            via_text = denote(reparsed, state, binding)
            assert np.allclose(direct.matrix, via_text.matrix)


class TestSimulatorCrossChecks:
    def test_statevector_matches_density_matrix_on_unitary_programs(self):
        program = seq([rx(0.7, "q1"), ry(-0.4, "q2"), rxx(1.1, "q1", "q2")])
        layout = RegisterLayout(["q1", "q2"])
        density = denote(program, DensityState.zero_state(layout))
        vector = StateVector(layout)
        for statement in [rx(0.7, "q1"), ry(-0.4, "q2"), rxx(1.1, "q1", "q2")]:
            vector.apply_unitary(statement.gate.matrix(), statement.qubits)
        assert np.allclose(vector.density_matrix(), density.matrix, atol=1e-10)

    def test_trajectory_average_matches_density_for_branching_program(self):
        """Sampling the guard measurement and averaging reproduces the case semantics."""
        from repro.lang.builder import case_on_qubit
        from repro.linalg.measurement import computational_measurement

        layout = RegisterLayout(["q1", "q2"])
        binding = ParameterBinding({THETA: 0.9})
        program = seq([rx(1.1, "q1"), case_on_qubit("q1", {0: ry(THETA, "q2"), 1: rx(0.2, "q2")})])
        observable = pauli_observable("IZ")
        exact = denote(program, DensityState.zero_state(layout), binding).expectation(
            observable.matrix
        )
        rng = np.random.default_rng(3)
        measurement = computational_measurement(1)
        readouts = []
        for _ in range(600):
            vector = StateVector(layout)
            vector.apply_unitary(rx(1.1, "q1").gate.matrix(), ("q1",))
            outcome = vector.measure(measurement, ["q1"], rng=rng)
            branch = ry(THETA, "q2") if outcome == 0 else rx(0.2, "q2")
            vector.apply_unitary(branch.gate.matrix(binding), branch.qubits)
            readouts.append(vector.expectation(observable.matrix))
        assert np.mean(readouts) == pytest.approx(exact, abs=0.08)


class TestSmallTrainingRun:
    def test_p2_can_learn_a_two_bit_parity_slice(self):
        """A tiny end-to-end training run on a 4-point sub-task finishes and improves."""
        classifier = build_p2()
        dataset = boolean_dataset(
            lambda bits: parity_label_function((bits[0], bits[3])),
            inputs=[(0, 0, 0, 0), (0, 0, 0, 1), (1, 0, 0, 0), (1, 0, 0, 1)],
        )
        trainer = GradientDescentTrainer(
            classifier,
            TrainingConfig(epochs=4, learning_rate=0.6, record_accuracy=True, seed=1),
        )
        result = trainer.train(dataset)
        assert result.final_loss < result.losses[0]
        assert result.accuracies[-1] >= 0.75
