"""Property-based tests of the language front-end (printer/parser, traversals)."""

from hypothesis import HealthCheck, given, settings

from repro.lang.parser import parse_program
from repro.lang.pretty import line_count, pretty_print
from repro.lang.traversal import (
    contains_while,
    fully_unfold_whiles,
    program_size,
    reassociate,
)
from repro.lang.wellformed import check_well_formed

from tests.conftest import program_strategy

_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(program=program_strategy(allow_sum=True))
@settings(**_SETTINGS)
def test_pretty_parse_roundtrip(program):
    """parse(pretty(P)) recovers P up to the (associative) nesting of ; and +."""
    assert parse_program(pretty_print(program)) == reassociate(program)


@given(program=program_strategy(allow_sum=True))
@settings(**_SETTINGS)
def test_reassociation_is_idempotent_and_stable_under_reparsing(program):
    canonical = reassociate(program)
    assert reassociate(canonical) == canonical
    assert parse_program(pretty_print(canonical)) == canonical


@given(program=program_strategy(allow_sum=True))
@settings(**_SETTINGS)
def test_line_count_matches_rendered_lines(program):
    rendered = [line for line in pretty_print(program).splitlines() if line.strip()]
    assert line_count(program) == len(rendered)


@given(program=program_strategy(allow_sum=True))
@settings(**_SETTINGS)
def test_generated_programs_are_well_formed(program):
    check_well_formed(program)


@given(program=program_strategy(allow_sum=False))
@settings(**_SETTINGS)
def test_unfolding_removes_whiles_and_does_not_shrink(program):
    unfolded = fully_unfold_whiles(program)
    assert not contains_while(unfolded)
    assert program_size(unfolded) >= program_size(program)
