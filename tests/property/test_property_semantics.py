"""Property-based tests of the semantics on randomly generated programs.

Hypothesis generates well-formed programs over a two-qubit register; the
properties checked are the paper's structural results:

* the denotational semantics is trace-non-increasing and completely positive
  in effect (outputs remain partial density operators);
* Proposition 3.1 — operational and denotational semantics agree for normal
  programs;
* Proposition 4.2 — the compiled multiset of an additive program reproduces
  its nondeterministic semantics.
"""

import numpy as np
from hypothesis import given, settings, HealthCheck

from repro.linalg.states import is_partial_density_operator
from repro.semantics.denotational import denote
from repro.semantics.operational import operational_denotation
from repro.additive.semantics import check_compilation_consistency

from tests.conftest import binding_strategy, input_state_strategy, program_strategy

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(
    program=program_strategy(allow_sum=False),
    state=input_state_strategy(),
    binding=binding_strategy(),
)
@settings(**_SETTINGS)
def test_denotation_outputs_partial_density_operators(program, state, binding):
    output = denote(program, state, binding)
    assert is_partial_density_operator(output.matrix, atol=1e-6)
    assert output.trace() <= 1.0 + 1e-7


@given(
    program=program_strategy(allow_sum=False),
    state=input_state_strategy(),
    binding=binding_strategy(),
)
@settings(**_SETTINGS)
def test_proposition_3_1_operational_denotational_agreement(program, state, binding):
    assert np.allclose(
        operational_denotation(program, state, binding).matrix,
        denote(program, state, binding).matrix,
        atol=1e-8,
    )


@given(
    program=program_strategy(allow_sum=True),
    state=input_state_strategy(),
    binding=binding_strategy(),
)
@settings(**_SETTINGS)
def test_proposition_4_2_compilation_consistency(program, state, binding):
    assert check_compilation_consistency(program, state, binding)


@given(
    program=program_strategy(allow_sum=False),
    state=input_state_strategy(),
    binding=binding_strategy(),
)
@settings(**_SETTINGS)
def test_denotation_is_monotone_in_the_state(program, state, binding):
    """Scaling the input scales the output (linearity on the PSD cone)."""
    half_output = denote(program, state.scaled(0.5), binding)
    output = denote(program, state, binding)
    assert np.allclose(half_output.matrix, 0.5 * output.matrix, atol=1e-8)
