"""Property-based tests of the differentiation pipeline on random programs.

The headline property is Theorem 6.2: for a randomly generated program, the
transformed program's ancilla readout equals the numerical derivative of the
observable semantics — for random observables, input states, and parameter
points.  Proposition 7.2 (the resource bound) and the structural invariants
of the transformation are checked alongside.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis.resources import derivative_program_count, occurrence_count
from repro.autodiff.execution import differentiate_and_compile
from repro.autodiff.logic import check_derivation, derive
from repro.autodiff.transform import ancilla_name_for, differentiate
from repro.baselines.finite_diff import finite_difference_derivative

from tests.conftest import (
    THETA,
    binding_strategy,
    input_state_strategy,
    observable_strategy,
    program_strategy,
)

_SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(program=program_strategy(allow_sum=False))
@settings(**_SETTINGS)
def test_transformation_adds_exactly_one_ancilla(program):
    ancilla = ancilla_name_for(program, THETA)
    derivative = differentiate(program, THETA, ancilla=ancilla)
    assert derivative.qvars() <= program.qvars() | {ancilla}


@given(program=program_strategy(allow_sum=False))
@settings(**_SETTINGS)
def test_proposition_7_2_resource_bound(program):
    assert derivative_program_count(program, THETA) <= occurrence_count(program, THETA)


@given(program=program_strategy(allow_sum=False))
@settings(**_SETTINGS)
def test_compiled_derivatives_are_normal_programs(program):
    program_set = differentiate_and_compile(program, THETA)
    for compiled in program_set.programs:
        assert not compiled.is_additive()


@given(program=program_strategy(allow_sum=True))
@settings(**_SETTINGS)
def test_canonical_derivation_checks(program):
    ancilla = ancilla_name_for(program, THETA)
    derivation = derive(program, THETA, ancilla=ancilla)
    assert check_derivation(derivation, ancilla=ancilla, variables=sorted(program.qvars()))


@given(
    program=program_strategy(allow_sum=False, max_depth=2),
    observable=observable_strategy(),
    state=input_state_strategy(),
    binding=binding_strategy(),
)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
def test_theorem_6_2_soundness_numerically(program, observable, state, binding):
    program_set = differentiate_and_compile(program, THETA)
    value = program_set.evaluate(observable, state, binding)
    reference = finite_difference_derivative(program, THETA, observable, state, binding)
    assert value == pytest.approx(reference, abs=5e-5)
