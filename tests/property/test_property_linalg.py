"""Property-based tests of the linear-algebra substrate."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.linalg.gates import (
    controlled_coupling_matrix,
    controlled_rotation_matrix,
    coupling_matrix,
    rotation_matrix,
)
from repro.linalg.observables import Observable
from repro.linalg.operators import is_unitary
from repro.linalg.states import is_density_operator, random_density_operator
from repro.linalg.superop import Superoperator, unitary_channel

_SETTINGS = dict(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

angles = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)
axes = st.sampled_from(["X", "Y", "Z"])
coupling_axes = st.sampled_from(["XX", "YY", "ZZ"])


@given(axis=axes, theta=angles)
@settings(**_SETTINGS)
def test_rotations_are_unitary_and_compose_additively(axis, theta):
    assert is_unitary(rotation_matrix(axis, theta))
    composed = rotation_matrix(axis, theta) @ rotation_matrix(axis, 0.7)
    assert np.allclose(composed, rotation_matrix(axis, theta + 0.7))


@given(axis=coupling_axes, theta=angles)
@settings(**_SETTINGS)
def test_couplings_are_unitary_and_periodic(axis, theta):
    assert is_unitary(coupling_matrix(axis, theta))
    assert np.allclose(coupling_matrix(axis, theta + 4 * np.pi), coupling_matrix(axis, theta))


@given(axis=axes, theta=angles)
@settings(**_SETTINGS)
def test_controlled_rotation_is_unitary_and_block_diagonal(axis, theta):
    gate = controlled_rotation_matrix(axis, theta)
    assert is_unitary(gate)
    assert np.allclose(gate[:2, 2:], 0.0)
    assert np.allclose(gate[2:, :2], 0.0)


@given(axis=coupling_axes, theta=angles)
@settings(**_SETTINGS)
def test_controlled_coupling_is_unitary(axis, theta):
    assert is_unitary(controlled_coupling_matrix(axis, theta))


@given(seed=st.integers(min_value=0, max_value=10_000), axis=axes, theta=angles)
@settings(**_SETTINGS)
def test_unitary_channels_preserve_density_operators(seed, axis, theta):
    rng = np.random.default_rng(seed)
    rho = random_density_operator(1, rng=rng)
    output = unitary_channel(rotation_matrix(axis, theta))(rho)
    assert is_density_operator(output, atol=1e-7)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(**_SETTINGS)
def test_dual_trace_identity_for_random_channels(seed):
    rng = np.random.default_rng(seed)
    kraus = [
        0.4 * (rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))) for _ in range(3)
    ]
    channel = Superoperator(tuple(kraus))
    rho = random_density_operator(1, rng=rng)
    observable = Observable(np.array([[0.3, 0.1 - 0.2j], [0.1 + 0.2j, -0.7]]))
    lhs = np.trace(observable.matrix @ channel(rho))
    rhs = np.trace(channel.apply_dual(observable.matrix) @ rho)
    assert np.isclose(lhs, rhs)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(**_SETTINGS)
def test_spectral_measurement_recovers_expectation(seed):
    rng = np.random.default_rng(seed)
    raw = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
    observable = Observable((raw + raw.conj().T) / 8)
    rho = random_density_operator(2, rng=rng)
    measurement, values = observable.spectral_measurement()
    probabilities = measurement.probabilities(rho)
    recovered = sum(values[m] * probabilities[m] for m in probabilities)
    assert np.isclose(recovered, observable.expectation(rho), atol=1e-8)
