"""Unit tests for repro.linalg.measurement."""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError, LinalgError
from repro.linalg.gates import PAULI_X, PAULI_Z
from repro.linalg.measurement import (
    Measurement,
    computational_measurement,
    projective_measurement_from_observable,
)
from repro.linalg.states import plus, pure_density, zero


class TestConstruction:
    def test_from_mapping(self):
        m = Measurement({0: np.diag([1.0, 0.0]), 1: np.diag([0.0, 1.0])})
        assert m.outcomes == (0, 1)
        assert m.num_outcomes == 2

    def test_rejects_empty(self):
        with pytest.raises(LinalgError):
            Measurement(())

    def test_rejects_duplicate_outcomes(self):
        with pytest.raises(LinalgError):
            Measurement((np.eye(2), np.eye(2)), outcomes=(0, 0))

    def test_rejects_outcome_count_mismatch(self):
        with pytest.raises(LinalgError):
            Measurement((np.eye(2),), outcomes=(0, 1))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            Measurement((np.eye(2), np.eye(4)))

    def test_rejects_double_outcomes_with_mapping(self):
        with pytest.raises(LinalgError):
            Measurement({0: np.eye(2)}, outcomes=(0,))

    def test_num_qubits(self):
        assert computational_measurement(2).num_qubits() == 2

    def test_equality_and_hash(self):
        assert computational_measurement(1) == computational_measurement(1)
        assert hash(computational_measurement(1)) == hash(computational_measurement(1))


class TestStatistics:
    def test_computational_measurement_is_complete_and_projective(self):
        m = computational_measurement(2)
        assert m.is_complete()
        assert m.is_projective()

    def test_probabilities_on_plus_state(self):
        m = computational_measurement(1)
        probabilities = m.probabilities(pure_density(plus()))
        assert np.isclose(probabilities[0], 0.5)
        assert np.isclose(probabilities[1], 0.5)

    def test_probabilities_dimension_check(self):
        with pytest.raises(DimensionMismatchError):
            computational_measurement(1).probabilities(np.eye(4) / 4)

    def test_post_measurement_state(self):
        m = computational_measurement(1)
        probability, post = m.post_measurement_state(pure_density(plus()), 0)
        assert np.isclose(probability, 0.5)
        assert np.allclose(post, pure_density(zero()))

    def test_post_measurement_zero_probability(self):
        m = computational_measurement(1)
        probability, post = m.post_measurement_state(pure_density(zero()), 1)
        assert probability == 0.0
        assert np.allclose(post, 0.0)

    def test_unknown_outcome(self):
        with pytest.raises(LinalgError):
            computational_measurement(1).operator(7)

    def test_branch_channel_matches_operator(self):
        m = computational_measurement(1)
        rho = pure_density(plus())
        assert np.allclose(m.branch_channel(0)(rho), m.operator(0) @ rho @ m.operator(0))

    def test_sampling_distribution(self):
        rng = np.random.default_rng(11)
        m = computational_measurement(1)
        samples = [m.sample(pure_density(plus()), rng) for _ in range(400)]
        assert 0.4 < np.mean(samples) < 0.6

    def test_sampling_zero_state_fails(self):
        with pytest.raises(LinalgError):
            computational_measurement(1).sample(np.zeros((2, 2)))


class TestSpectralMeasurement:
    def test_pauli_z_decomposition(self):
        measurement, values = projective_measurement_from_observable(PAULI_Z)
        assert sorted(values) == [-1.0, 1.0]
        assert measurement.is_complete()
        assert measurement.is_projective()

    def test_expectation_recovery(self):
        """tr(Oρ) = Σ_m λ_m tr(M_m ρ M_m†) — Eq. (5.1)."""
        measurement, values = projective_measurement_from_observable(PAULI_X)
        rho = pure_density(plus())
        probabilities = measurement.probabilities(rho)
        recovered = sum(values[m] * probabilities[m] for m in probabilities)
        assert np.isclose(recovered, np.real(np.trace(PAULI_X @ rho)))

    def test_degenerate_eigenvalues_grouped(self):
        measurement, values = projective_measurement_from_observable(np.eye(2))
        assert len(values) == 1
        assert np.allclose(measurement.operator(0), np.eye(2))

    def test_rejects_non_hermitian(self):
        with pytest.raises(LinalgError):
            projective_measurement_from_observable(np.array([[0, 1], [0, 0]]))
