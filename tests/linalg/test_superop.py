"""Unit tests for repro.linalg.superop."""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError, LinalgError
from repro.linalg.gates import HADAMARD, PAULI_X, PAULI_Z
from repro.linalg.states import pure_density, zero, one, plus
from repro.linalg.superop import (
    Superoperator,
    identity_channel,
    initialization_channel,
    measurement_branch_channel,
    superoperator_sum,
    unitary_channel,
    zero_channel,
)


class TestConstruction:
    def test_requires_at_least_one_kraus(self):
        with pytest.raises(LinalgError):
            Superoperator(())

    def test_requires_matching_shapes(self):
        with pytest.raises(DimensionMismatchError):
            Superoperator((np.eye(2), np.eye(4)))

    def test_dims(self):
        channel = unitary_channel(HADAMARD)
        assert channel.input_dim == 2
        assert channel.output_dim == 2


class TestApplication:
    def test_unitary_channel_action(self):
        channel = unitary_channel(PAULI_X)
        assert np.allclose(channel(pure_density(zero())), pure_density(one()))

    def test_zero_channel(self):
        assert np.allclose(zero_channel(2)(pure_density(plus())), np.zeros((2, 2)))

    def test_identity_channel(self):
        rho = pure_density(plus())
        assert np.allclose(identity_channel(2)(rho), rho)

    def test_initialization_channel_resets(self):
        rho = pure_density(plus())
        assert np.allclose(initialization_channel(2)(rho), pure_density(zero()))

    def test_initialization_channel_is_trace_preserving(self):
        assert initialization_channel(4).is_trace_preserving()

    def test_measurement_branch_is_trace_decreasing(self):
        projector = np.diag([1.0, 0.0])
        branch = measurement_branch_channel(projector)
        rho = pure_density(plus())
        assert np.isclose(np.trace(branch(rho)), 0.5)
        assert branch.is_trace_nonincreasing()
        assert not branch.is_trace_preserving()

    def test_apply_validates_dimension(self):
        with pytest.raises(DimensionMismatchError):
            unitary_channel(PAULI_X)(np.eye(4) / 4)


class TestAlgebra:
    def test_composition_order(self):
        # X then Z equals the channel of the product ZX.
        composed = unitary_channel(PAULI_X).then(unitary_channel(PAULI_Z))
        direct = unitary_channel(PAULI_Z @ PAULI_X)
        assert composed == direct

    def test_compose_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            unitary_channel(PAULI_X).compose(unitary_channel(np.eye(4)))

    def test_add_forms_kraus_union(self):
        half_x = unitary_channel(PAULI_X).scale(0.5)
        half_i = identity_channel(2).scale(0.5)
        mixed = half_x.add(half_i)
        rho = pure_density(zero())
        assert np.allclose(mixed(rho), 0.5 * pure_density(one()) + 0.5 * pure_density(zero()))

    def test_scale_rejects_negative(self):
        with pytest.raises(LinalgError):
            identity_channel(2).scale(-1.0)

    def test_tensor_product(self):
        channel = unitary_channel(PAULI_X).tensor(identity_channel(2))
        rho = np.kron(pure_density(zero()), pure_density(one()))
        expected = np.kron(pure_density(one()), pure_density(one()))
        assert np.allclose(channel(rho), expected)

    def test_superoperator_sum_helper(self):
        with pytest.raises(LinalgError):
            superoperator_sum([])
        total = superoperator_sum([identity_channel(2).scale(0.3), identity_channel(2).scale(0.7)])
        rho = pure_density(plus())
        assert np.allclose(total(rho), rho)


class TestDuality:
    def test_dual_satisfies_trace_identity(self):
        rng = np.random.default_rng(3)
        kraus = [rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2)) for _ in range(2)]
        channel = Superoperator(tuple(k * 0.5 for k in kraus))
        rho = pure_density(plus())
        observable = PAULI_Z
        lhs = np.trace(observable @ channel(rho))
        rhs = np.trace(channel.apply_dual(observable) @ rho)
        assert np.isclose(lhs, rhs)

    def test_dual_of_unitary_channel(self):
        channel = unitary_channel(HADAMARD)
        observable = PAULI_Z
        assert np.allclose(channel.apply_dual(observable), HADAMARD.conj().T @ observable @ HADAMARD)

    def test_dual_dimension_check(self):
        with pytest.raises(DimensionMismatchError):
            unitary_channel(PAULI_X).apply_dual(np.eye(4))


class TestValidation:
    def test_unitary_channel_is_cptp(self):
        channel = unitary_channel(HADAMARD)
        assert channel.is_trace_preserving()
        assert channel.is_completely_positive()

    def test_choi_matrix_of_identity(self):
        choi = identity_channel(2).choi_matrix()
        # The Choi matrix of the identity is the (unnormalized) maximally entangled projector.
        bell = np.array([1, 0, 0, 1], dtype=complex)
        assert np.allclose(choi, np.outer(bell, bell))

    def test_matrix_representation_reproduces_action(self):
        channel = unitary_channel(HADAMARD)
        rho = pure_density(zero())
        vec = rho.reshape(-1, order="F")
        out = channel.matrix_representation() @ vec
        assert np.allclose(out.reshape(2, 2, order="F"), channel(rho))

    def test_equality_ignores_kraus_decomposition(self):
        phase = np.exp(1j * 0.3)
        assert unitary_channel(PAULI_X) == unitary_channel(phase * PAULI_X)
