"""Unit tests for repro.linalg.gates, including Lemma D.1 identities."""

import numpy as np
import pytest

from repro.errors import LinalgError
from repro.linalg import gates
from repro.linalg.operators import is_unitary


ALL_AXES = ("X", "Y", "Z")
COUPLING_AXES = ("XX", "YY", "ZZ")


class TestFixedGates:
    def test_fixed_gates_are_unitary(self):
        for matrix in (gates.HADAMARD, gates.PAULI_X, gates.PAULI_Y, gates.PAULI_Z,
                       gates.S_GATE, gates.T_GATE, gates.CNOT, gates.CZ, gates.SWAP):
            assert is_unitary(matrix)

    def test_hadamard_maps_computational_to_plus_minus(self):
        plus = gates.HADAMARD @ np.array([1, 0])
        assert np.allclose(plus, np.array([1, 1]) / np.sqrt(2))

    def test_cnot_truth_table(self):
        for control, target, expected in ((0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)):
            vec = np.zeros(4)
            vec[2 * control + target] = 1.0
            out = gates.CNOT @ vec
            assert np.isclose(abs(out[2 * control + expected]), 1.0)

    def test_pauli_lookup(self):
        assert np.allclose(gates.pauli("x"), gates.PAULI_X)
        with pytest.raises(LinalgError):
            gates.pauli("Q")


class TestRotations:
    @pytest.mark.parametrize("axis", ALL_AXES)
    def test_rotation_is_unitary(self, axis):
        assert is_unitary(gates.rotation_matrix(axis, 0.7))

    @pytest.mark.parametrize("axis", ALL_AXES)
    def test_rotation_at_zero_is_identity(self, axis):
        assert np.allclose(gates.rotation_matrix(axis, 0.0), np.eye(2))

    @pytest.mark.parametrize("axis", ALL_AXES)
    def test_rotation_at_two_pi_is_minus_identity(self, axis):
        assert np.allclose(gates.rotation_matrix(axis, 2 * np.pi), -np.eye(2))

    @pytest.mark.parametrize("axis", ALL_AXES)
    def test_rotation_matches_exponential(self, axis):
        theta = 0.93
        sigma = gates.pauli(axis)
        eigenvalues, eigenvectors = np.linalg.eigh(sigma)
        expected = eigenvectors @ np.diag(np.exp(-1j * theta / 2 * eigenvalues)) @ eigenvectors.conj().T
        assert np.allclose(gates.rotation_matrix(axis, theta), expected)

    @pytest.mark.parametrize("axis", ALL_AXES)
    def test_lemma_d1_derivative_is_half_pi_shift(self, axis):
        """d/dθ R_σ(θ) = ½ R_σ(θ + π) — Lemma D.1."""
        theta, eps = 0.41, 1e-6
        numeric = (
            gates.rotation_matrix(axis, theta + eps) - gates.rotation_matrix(axis, theta - eps)
        ) / (2 * eps)
        assert np.allclose(numeric, 0.5 * gates.rotation_matrix(axis, theta + np.pi), atol=1e-6)

    def test_rotation_rejects_coupling_axis(self):
        with pytest.raises(LinalgError):
            gates.rotation_matrix("XX", 0.2)


class TestCouplings:
    @pytest.mark.parametrize("axis", COUPLING_AXES)
    def test_coupling_is_unitary(self, axis):
        assert is_unitary(gates.coupling_matrix(axis, 1.3))

    @pytest.mark.parametrize("axis", COUPLING_AXES)
    def test_coupling_generator_squares_to_identity(self, axis):
        generator = gates.rotation_generator(axis)
        assert np.allclose(generator @ generator, np.eye(4))

    @pytest.mark.parametrize("axis", COUPLING_AXES)
    def test_lemma_d1_for_couplings(self, axis):
        theta, eps = -0.77, 1e-6
        numeric = (
            gates.coupling_matrix(axis, theta + eps) - gates.coupling_matrix(axis, theta - eps)
        ) / (2 * eps)
        assert np.allclose(numeric, 0.5 * gates.coupling_matrix(axis, theta + np.pi), atol=1e-6)

    def test_xx_coupling_generates_entanglement(self):
        state = np.zeros(4)
        state[0] = 1.0
        out = gates.coupling_matrix("XX", np.pi / 2) @ state
        # The output (|00⟩ − i|11⟩)/√2 is maximally entangled.
        rho = np.outer(out, out.conj()).reshape(2, 2, 2, 2)
        reduced = np.trace(rho, axis1=1, axis2=3)
        assert np.allclose(reduced, np.eye(2) / 2)

    def test_coupling_rejects_single_axis(self):
        with pytest.raises(LinalgError):
            gates.coupling_matrix("X", 0.2)


class TestControlledGates:
    def test_controlled_unitary_block_structure(self):
        controlled_x = gates.controlled(gates.PAULI_X)
        assert np.allclose(controlled_x, gates.CNOT)

    def test_controlled_on_zero_value(self):
        gate = gates.controlled(gates.PAULI_X, control_value=0)
        vec = np.array([1, 0, 0, 0], dtype=complex)
        assert np.isclose(abs((gate @ vec)[1]), 1.0)

    def test_controlled_rejects_bad_control_value(self):
        with pytest.raises(LinalgError):
            gates.controlled(gates.PAULI_X, control_value=2)

    @pytest.mark.parametrize("axis", ALL_AXES)
    def test_controlled_rotation_definition(self, axis):
        """C_Rσ(θ) = |0⟩⟨0|⊗Rσ(θ) + |1⟩⟨1|⊗Rσ(θ+π) — Definition 6.1."""
        theta = 0.61
        gate = gates.controlled_rotation_matrix(axis, theta)
        assert is_unitary(gate)
        assert np.allclose(gate[:2, :2], gates.rotation_matrix(axis, theta))
        assert np.allclose(gate[2:, 2:], gates.rotation_matrix(axis, theta + np.pi))
        assert np.allclose(gate[:2, 2:], 0.0)

    @pytest.mark.parametrize("axis", COUPLING_AXES)
    def test_controlled_coupling_definition(self, axis):
        theta = -1.2
        gate = gates.controlled_coupling_matrix(axis, theta)
        assert is_unitary(gate)
        assert np.allclose(gate[:4, :4], gates.coupling_matrix(axis, theta))
        assert np.allclose(gate[4:, 4:], gates.coupling_matrix(axis, theta + np.pi))

    def test_rotation_generator_unknown_axis(self):
        with pytest.raises(LinalgError):
            gates.rotation_generator("XY")
