"""Unit tests for repro.linalg.operators."""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError, LinalgError
from repro.linalg import operators
from repro.linalg.gates import HADAMARD, PAULI_X, PAULI_Y, PAULI_Z
from repro.linalg.states import bell_state, pure_density


class TestPredicates:
    def test_dagger(self):
        matrix = np.array([[1, 1j], [0, 2]])
        assert np.allclose(operators.dagger(matrix), np.array([[1, 0], [-1j, 2]]))

    def test_paulis_are_hermitian_and_unitary(self):
        for sigma in (PAULI_X, PAULI_Y, PAULI_Z, HADAMARD):
            assert operators.is_hermitian(sigma)
            assert operators.is_unitary(sigma)

    def test_non_square_is_not_hermitian(self):
        assert not operators.is_hermitian(np.ones((2, 3)))

    def test_is_unitary_rejects_projector(self):
        assert not operators.is_unitary(np.diag([1.0, 0.0]))

    def test_positive_semidefinite(self):
        assert operators.is_positive_semidefinite(np.diag([0.0, 1.0]))
        assert not operators.is_positive_semidefinite(np.diag([1.0, -0.2]))
        assert not operators.is_positive_semidefinite(np.array([[0, 1], [0, 0]]))

    def test_loewner_order(self):
        assert operators.loewner_leq(np.zeros((2, 2)), np.eye(2))
        assert not operators.loewner_leq(np.eye(2), np.zeros((2, 2)))
        with pytest.raises(DimensionMismatchError):
            operators.loewner_leq(np.eye(2), np.eye(4))


class TestAlgebra:
    def test_pauli_commutator(self):
        assert np.allclose(operators.commutator(PAULI_X, PAULI_Y), 2j * PAULI_Z)

    def test_pauli_anticommutator_vanishes(self):
        assert np.allclose(operators.anticommutator(PAULI_X, PAULI_Y), np.zeros((2, 2)))

    def test_operator_norm_of_pauli(self):
        assert np.isclose(operators.operator_norm(PAULI_Z), 1.0)

    def test_frobenius_inner(self):
        assert np.isclose(operators.frobenius_inner(PAULI_X, PAULI_X), 2.0)
        with pytest.raises(DimensionMismatchError):
            operators.frobenius_inner(PAULI_X, np.eye(4))

    def test_kron_all_empty_is_identity(self):
        assert np.allclose(operators.kron_all([]), np.eye(1))

    def test_kron_all_matches_numpy(self):
        assert np.allclose(
            operators.kron_all([PAULI_X, PAULI_Z]), np.kron(PAULI_X, PAULI_Z)
        )


class TestPartialTrace:
    def test_product_state_partial_trace(self):
        rho = np.kron(pure_density([1, 0]), pure_density([0, 1]))
        reduced = operators.partial_trace(rho, keep=[0], dims=[2, 2])
        assert np.allclose(reduced, pure_density([1, 0]))

    def test_bell_state_reduces_to_maximally_mixed(self):
        rho = pure_density(bell_state())
        reduced = operators.partial_trace(rho, keep=[1], dims=[2, 2])
        assert np.allclose(reduced, np.eye(2) / 2)

    def test_keep_order_permutes_factors(self):
        a = pure_density([1, 0])
        b = pure_density([0, 1])
        rho = np.kron(a, b)
        swapped = operators.partial_trace(rho, keep=[1, 0], dims=[2, 2])
        assert np.allclose(swapped, np.kron(b, a))

    def test_partial_trace_validates_inputs(self):
        with pytest.raises(DimensionMismatchError):
            operators.partial_trace(np.eye(3), keep=[0], dims=[2, 2])
        with pytest.raises(LinalgError):
            operators.partial_trace(np.eye(4), keep=[2], dims=[2, 2])
        with pytest.raises(LinalgError):
            operators.partial_trace(np.eye(4), keep=[0, 0], dims=[2, 2])

    def test_trace_preservation(self):
        rng = np.random.default_rng(7)
        raw = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        rho = raw @ raw.conj().T
        rho = rho / np.trace(rho)
        reduced = operators.partial_trace(rho, keep=[0, 2], dims=[2, 2, 2])
        assert np.isclose(np.trace(reduced), 1.0)
