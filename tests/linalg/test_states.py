"""Unit tests for repro.linalg.states."""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError, LinalgError
from repro.linalg import states


class TestKetBra:
    def test_ket_normalizes(self):
        psi = states.ket([3.0, 4.0])
        assert np.isclose(np.linalg.norm(psi), 1.0)

    def test_ket_rejects_zero_vector(self):
        with pytest.raises(LinalgError):
            states.ket([0.0, 0.0])

    def test_bra_is_conjugate(self):
        psi = states.ket([1.0, 1.0j])
        assert np.allclose(states.bra(psi), np.conj(psi))

    def test_basis_state(self):
        assert np.allclose(states.basis_state(2, 4), [0, 0, 1, 0])

    def test_basis_state_out_of_range(self):
        with pytest.raises(LinalgError):
            states.basis_state(4, 4)

    def test_computational_basis_is_orthonormal(self):
        basis = states.computational_basis(2)
        gram = np.array([[np.vdot(a, b) for b in basis] for a in basis])
        assert np.allclose(gram, np.eye(4))


class TestNamedStates:
    def test_zero_one_orthogonal(self):
        assert np.isclose(np.vdot(states.zero(), states.one()), 0.0)

    def test_plus_minus_orthogonal(self):
        assert np.isclose(np.vdot(states.plus(), states.minus()), 0.0)

    def test_plus_is_hadamard_of_zero(self):
        expected = np.array([1, 1]) / np.sqrt(2)
        assert np.allclose(states.plus(), expected)

    def test_bell_states_are_orthonormal(self):
        bells = [states.bell_state(k) for k in range(4)]
        gram = np.array([[np.vdot(a, b) for b in bells] for a in bells])
        assert np.allclose(gram, np.eye(4))

    def test_bell_state_rejects_bad_index(self):
        with pytest.raises(LinalgError):
            states.bell_state(5)


class TestDensityOperators:
    def test_pure_density_has_unit_trace(self):
        rho = states.pure_density(states.plus())
        assert np.isclose(np.trace(rho), 1.0)
        assert states.is_density_operator(rho)

    def test_mixed_density_from_ensemble(self):
        rho = states.mixed_density([(0.5, states.zero()), (0.5, states.one())])
        assert np.allclose(rho, np.eye(2) / 2)

    def test_mixed_density_rejects_negative_probability(self):
        with pytest.raises(LinalgError):
            states.mixed_density([(-0.1, states.zero()), (1.1, states.one())])

    def test_mixed_density_rejects_overweight_ensemble(self):
        with pytest.raises(LinalgError):
            states.mixed_density([(0.8, states.zero()), (0.8, states.one())])

    def test_mixed_density_requires_matching_dimensions(self):
        with pytest.raises(DimensionMismatchError):
            states.mixed_density([(0.5, states.zero()), (0.5, states.bell_state())])

    def test_density_coerces_vectors(self):
        rho = states.density(states.one())
        assert np.allclose(rho, [[0, 0], [0, 1]])

    def test_density_validates_matrices(self):
        with pytest.raises(LinalgError):
            states.density(np.array([[1.0, 2.0], [2.0, 1.0]]))

    def test_partial_density_accepts_subnormalized(self):
        rho = 0.25 * states.pure_density(states.zero())
        assert states.is_partial_density_operator(rho)
        assert not states.is_density_operator(rho)

    def test_is_density_rejects_non_hermitian(self):
        assert not states.is_density_operator(np.array([[0.5, 1.0], [0.0, 0.5]]))

    def test_is_density_rejects_negative_eigenvalues(self):
        assert not states.is_density_operator(np.array([[1.5, 0], [0, -0.5]]))


class TestDistances:
    def test_purity_of_pure_state(self):
        assert np.isclose(states.purity(states.pure_density(states.plus())), 1.0)

    def test_purity_of_maximally_mixed(self):
        assert np.isclose(states.purity(np.eye(2) / 2), 0.5)

    def test_fidelity_identical_states(self):
        rho = states.pure_density(states.plus())
        assert np.isclose(states.fidelity(rho, rho), 1.0)

    def test_fidelity_orthogonal_states(self):
        rho = states.pure_density(states.zero())
        sigma = states.pure_density(states.one())
        assert np.isclose(states.fidelity(rho, sigma), 0.0, atol=1e-9)

    def test_trace_distance_extremes(self):
        rho = states.pure_density(states.zero())
        sigma = states.pure_density(states.one())
        assert np.isclose(states.trace_distance(rho, sigma), 1.0)
        assert np.isclose(states.trace_distance(rho, rho), 0.0)

    def test_trace_distance_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            states.trace_distance(np.eye(2) / 2, np.eye(4) / 4)


class TestRandomStates:
    def test_random_pure_state_is_normalized(self):
        rng = np.random.default_rng(0)
        psi = states.random_pure_state(3, rng)
        assert np.isclose(np.linalg.norm(psi), 1.0)
        assert psi.shape == (8,)

    def test_random_density_operator_is_valid(self):
        rng = np.random.default_rng(0)
        rho = states.random_density_operator(2, rng=rng)
        assert states.is_density_operator(rho)

    def test_random_density_operator_rank_bound(self):
        with pytest.raises(LinalgError):
            states.random_density_operator(1, rank=3)
