"""Unit tests for repro.linalg.observables."""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError, LinalgError
from repro.linalg.gates import PAULI_Z
from repro.linalg.observables import (
    Observable,
    diagonal_observable,
    pauli_observable,
    projector_observable,
)
from repro.linalg.states import plus, pure_density, zero


class TestObservable:
    def test_requires_hermitian(self):
        with pytest.raises(LinalgError):
            Observable(np.array([[0, 1], [0, 0]]))

    def test_expectation_of_z_on_zero(self):
        assert np.isclose(Observable(PAULI_Z).expectation(pure_density(zero())), 1.0)

    def test_expectation_of_z_on_plus(self):
        assert np.isclose(Observable(PAULI_Z).expectation(pure_density(plus())), 0.0)

    def test_expectation_dimension_check(self):
        with pytest.raises(DimensionMismatchError):
            Observable(PAULI_Z).expectation(np.eye(4) / 4)

    def test_boundedness_check(self):
        assert Observable(PAULI_Z).is_bounded()
        assert not Observable(2 * PAULI_Z).is_bounded()

    def test_tensor(self):
        zz = Observable(PAULI_Z).tensor(Observable(PAULI_Z))
        assert zz.dim == 4
        assert np.allclose(zz.matrix, np.kron(PAULI_Z, PAULI_Z))

    def test_scaled(self):
        half = Observable(PAULI_Z).scaled(0.5)
        assert np.allclose(half.matrix, 0.5 * PAULI_Z)

    def test_num_qubits(self):
        assert pauli_observable("ZIZ").num_qubits() == 3

    def test_spectral_radius(self):
        assert np.isclose(Observable(3 * PAULI_Z).spectral_radius(), 3.0)

    def test_spectral_measurement_roundtrip(self):
        observable = pauli_observable("ZZ")
        measurement, values = observable.spectral_measurement()
        rho = np.kron(pure_density(plus()), pure_density(zero()))
        probabilities = measurement.probabilities(rho)
        recovered = sum(values[m] * probabilities[m] for m in probabilities)
        assert np.isclose(recovered, observable.expectation(rho))

    def test_equality(self):
        assert pauli_observable("Z") == Observable(PAULI_Z)


class TestConstructors:
    def test_pauli_observable_labels(self):
        assert pauli_observable("ZI").dim == 4
        with pytest.raises(LinalgError):
            pauli_observable("")
        with pytest.raises(LinalgError):
            pauli_observable("ZQ")

    def test_projector_observable(self):
        projector = projector_observable(3, 2)
        assert np.isclose(projector.matrix[3, 3], 1.0)
        assert np.isclose(np.trace(projector.matrix), 1.0)
        with pytest.raises(LinalgError):
            projector_observable(4, 2)

    def test_diagonal_observable(self):
        observable = diagonal_observable([1.0, -1.0, 0.5, 0.0])
        assert observable.dim == 4
        assert observable.is_bounded()
