"""Unit tests for the code-transformation rules of Figure 4."""

import numpy as np
import pytest

from repro.errors import TransformError
from repro.lang.ast import Abort, Case, Init, Seq, Skip, Sum, UnitaryApp, While
from repro.lang.builder import (
    apply_gate,
    bounded_while_on_qubit,
    case_on_qubit,
    rx,
    rxx,
    ry,
    rz,
    seq,
)
from repro.lang.gates import ControlledRotation, FixedGate, hadamard
from repro.lang.parameters import Parameter, ParameterBinding
from repro.linalg.gates import rotation_matrix
from repro.linalg.observables import pauli_observable
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.autodiff.transform import DifferentiationContext, ancilla_name_for, differentiate
from repro.autodiff.gadgets import differentiation_gadget
from repro.semantics.observable import (
    additive_observable_semantics_with_ancilla,
    differential_semantics,
)

THETA = Parameter("theta")
PHI = Parameter("phi")


class TestAncillaNaming:
    def test_default_name_embeds_parameter(self):
        assert ancilla_name_for(rx(THETA, "q1"), THETA) == "anc_theta"

    def test_name_avoids_collision(self):
        program = seq([rx(THETA, "q1"), Skip(["anc_theta"])])
        assert ancilla_name_for(program, THETA) == "anc_theta_1"

    def test_explicit_ancilla_collision_rejected(self):
        with pytest.raises(TransformError):
            differentiate(rx(THETA, "q1"), THETA, ancilla="q1")


class TestTrivialRules:
    def test_abort_skip_init_become_abort(self):
        context_vars = ("q1",)
        for statement in (Abort(["q1"]), Skip(["q1"]), Init("q1")):
            derivative = differentiate(statement, THETA, ancilla="a", variables=context_vars)
            assert derivative == Abort(("a", "q1"))

    def test_parameter_free_unitary_becomes_abort(self):
        derivative = differentiate(apply_gate(hadamard(), "q1"), THETA, ancilla="a")
        assert derivative == Abort(("a", "q1"))

    def test_unitary_with_other_parameter_becomes_abort(self):
        derivative = differentiate(rx(PHI, "q1"), THETA, ancilla="a")
        assert derivative == Abort(("a", "q1"))

    def test_fixed_angle_rotation_becomes_abort(self):
        derivative = differentiate(rx(0.4, "q1"), THETA, ancilla="a")
        assert derivative == Abort(("a", "q1"))


class TestRotationRules:
    def test_single_qubit_rotation_becomes_gadget(self):
        statement = rx(THETA, "q1")
        derivative = differentiate(statement, THETA, ancilla="a")
        assert derivative == differentiation_gadget(statement, "a")

    def test_coupling_becomes_gadget(self):
        statement = rxx(THETA, "q1", "q2")
        derivative = differentiate(statement, THETA, ancilla="a")
        assert derivative == differentiation_gadget(statement, "a")

    def test_unsupported_parameterized_gate_rejected(self):
        bespoke = FixedGate("U", rotation_matrix("X", 0.3))

        class FakeParameterizedGate(FixedGate):
            def uses(self, parameter):
                return True

        gate = FakeParameterizedGate("U", rotation_matrix("X", 0.3))
        statement = UnitaryApp(gate, ("q1",))
        with pytest.raises(TransformError):
            differentiate(statement, THETA)
        # Sanity: the plain fixed gate is fine (trivial rule applies).
        assert isinstance(differentiate(UnitaryApp(bespoke, ("q1",)), THETA), Abort)


class TestCompositeRules:
    def test_sequence_product_rule(self):
        s0, s1 = rx(THETA, "q1"), ry(THETA, "q2")
        derivative = differentiate(Seq(s0, s1), THETA, ancilla="a")
        assert isinstance(derivative, Sum)
        assert derivative.left == Seq(s0, differentiate(s1, THETA, ancilla="a", variables=["q1", "q2"]))
        assert derivative.right == Seq(differentiate(s0, THETA, ancilla="a", variables=["q1", "q2"]), s1)

    def test_case_rule_differentiates_branches_under_same_guard(self):
        program = case_on_qubit("q1", {0: rx(THETA, "q2"), 1: rz(THETA, "q2")})
        derivative = differentiate(program, THETA, ancilla="a")
        assert isinstance(derivative, Case)
        assert derivative.measurement == program.measurement
        assert derivative.qubits == program.qubits
        assert derivative.branch(0) == differentiation_gadget(rx(THETA, "q2"), "a")
        assert derivative.branch(1) == differentiation_gadget(rz(THETA, "q2"), "a")

    def test_sum_rule_distributes(self):
        program = Sum(rx(THETA, "q1"), ry(THETA, "q1"))
        derivative = differentiate(program, THETA, ancilla="a")
        assert isinstance(derivative, Sum)
        assert derivative.left == differentiation_gadget(rx(THETA, "q1"), "a")
        assert derivative.right == differentiation_gadget(ry(THETA, "q1"), "a")

    def test_while_rule_unfolds_to_case(self):
        program = bounded_while_on_qubit("q1", rx(THETA, "q1"), 2)
        derivative = differentiate(program, THETA, ancilla="a")
        assert isinstance(derivative, Case)
        # 0-branch of the derivative is the trivial abort.
        assert isinstance(derivative.branch(0), Abort)
        # 1-branch contains the additive choice of the product rule.
        assert isinstance(derivative.branch(1), Sum)

    def test_transform_output_is_additive_over_extended_register(self):
        program = seq([rx(THETA, "q1"), ry(0.2, "q2"), rxx(THETA, "q1", "q2")])
        derivative = differentiate(program, THETA, ancilla="a")
        assert derivative.is_additive()
        assert derivative.qvars() == {"a", "q1", "q2"}

    def test_transform_is_purely_syntactic(self):
        """The same parameter object can be differentiated before any values exist."""
        program = seq([rx(THETA, "q1"), rz(PHI, "q1")])
        derivative = differentiate(program, THETA)
        assert derivative.parameters() >= {THETA}


class TestSemanticCorrectness:
    """Spot-checks of Theorem 6.2 directly on the transform output."""

    @pytest.mark.parametrize(
        "program_builder",
        [
            lambda: rx(THETA, "q1"),
            lambda: seq([rx(THETA, "q1"), ry(THETA, "q1")]),
            lambda: seq([rx(THETA, "q1"), rxx(PHI, "q1", "q2"), rz(THETA, "q2")]),
            lambda: case_on_qubit("q1", {0: rx(THETA, "q2"), 1: seq([ry(THETA, "q2"), rz(0.3, "q1")])}),
            lambda: seq([rx(THETA, "q1"), bounded_while_on_qubit("q1", ry(THETA, "q2"), 2)]),
            lambda: seq([Init("q1"), rx(THETA, "q1"), case_on_qubit("q1", {0: Skip(["q1"]), 1: Abort(["q1"])})]),
        ],
    )
    @pytest.mark.parametrize("theta_value", [0.3, -1.7])
    def test_transformed_program_computes_differential_semantics(self, program_builder, theta_value):
        program = program_builder()
        binding = ParameterBinding({THETA: theta_value, PHI: 0.8})
        layout = RegisterLayout(["q1", "q2"])
        state = DensityState.basis_state(layout, {"q1": 0, "q2": 1})
        observable = pauli_observable("ZZ")
        ancilla = ancilla_name_for(program, THETA)
        derivative = differentiate(program, THETA, ancilla=ancilla)
        transformed_value = additive_observable_semantics_with_ancilla(
            derivative, observable, state, ancilla, binding
        )
        reference = differential_semantics(program, THETA, observable, state, binding)
        assert transformed_value == pytest.approx(reference, abs=1e-6)

    def test_derivative_with_respect_to_absent_parameter_is_zero(self):
        program = seq([rx(PHI, "q1"), ry(0.3, "q2")])
        binding = ParameterBinding({THETA: 0.2, PHI: 0.9})
        layout = RegisterLayout(["q1", "q2"])
        state = DensityState.zero_state(layout)
        observable = pauli_observable("ZI")
        derivative = differentiate(program, THETA, ancilla="a")
        value = additive_observable_semantics_with_ancilla(derivative, observable, state, "a", binding)
        assert value == pytest.approx(0.0, abs=1e-12)


class TestDifferentiationContext:
    def test_trivial_abort_covers_all_variables(self):
        context = DifferentiationContext(THETA, "a", ("q2", "q1"))
        assert context.trivial_abort() == Abort(("a", "q1", "q2"))
