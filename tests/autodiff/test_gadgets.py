"""Unit tests for the R' differentiation gadget (Definition 6.1 / Lemma D.1)."""

import numpy as np
import pytest

from repro.errors import TransformError
from repro.lang.ast import Seq, UnitaryApp
from repro.lang.builder import apply_gate, rx, rxx
from repro.lang.gates import ControlledCoupling, ControlledRotation, hadamard
from repro.lang.parameters import Parameter, ParameterBinding
from repro.linalg.gates import PAULI_Z, coupling_matrix, rotation_matrix
from repro.linalg.observables import pauli_observable
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.semantics.denotational import denote
from repro.semantics.observable import observable_semantics_with_ancilla
from repro.autodiff.gadgets import (
    ANCILLA_OBSERVABLE,
    coupling_prime,
    differentiation_gadget,
    rotation_prime,
)

THETA = Parameter("theta")
BINDING = ParameterBinding({THETA: 0.73})


class TestGadgetStructure:
    def test_rotation_prime_shape(self):
        gadget = rotation_prime("X", THETA, "a", "q1")
        statements = []
        node = gadget
        while isinstance(node, Seq):
            statements.insert(0, node.second)
            node = node.first
        statements.insert(0, node)
        assert len(statements) == 3
        assert statements[0].gate.name == "H" and statements[0].qubits == ("a",)
        assert isinstance(statements[1].gate, ControlledRotation)
        assert statements[1].qubits == ("a", "q1")
        assert statements[2].gate.name == "H"

    def test_coupling_prime_shape(self):
        gadget = coupling_prime("XX", THETA, "a", "q1", "q2")
        assert gadget.qvars() == {"a", "q1", "q2"}
        inner = gadget.first.second
        assert isinstance(inner.gate, ControlledCoupling)
        assert inner.qubits == ("a", "q1", "q2")

    def test_differentiation_gadget_dispatch(self):
        assert differentiation_gadget(rx(THETA, "q1"), "a").qvars() == {"a", "q1"}
        assert differentiation_gadget(rxx(THETA, "q1", "q2"), "a").qvars() == {"a", "q1", "q2"}

    def test_differentiation_gadget_rejects_fixed_gates(self):
        with pytest.raises(TransformError):
            differentiation_gadget(apply_gate(hadamard(), "q1"), "a")

    def test_ancilla_observable_is_pauli_z(self):
        assert np.allclose(ANCILLA_OBSERVABLE, PAULI_Z)


class TestGadgetSemantics:
    """The key identity: the gadget's Z_A ⊗ O readout equals the analytic derivative."""

    @pytest.mark.parametrize("axis", ["X", "Y", "Z"])
    @pytest.mark.parametrize("theta_value", [0.0, 0.41, 1.57, -2.2])
    def test_rotation_gadget_computes_derivative(self, axis, theta_value):
        binding = ParameterBinding({THETA: theta_value})
        layout = RegisterLayout(["q1"])
        state = DensityState.basis_state(layout, {"q1": 0})
        observable = pauli_observable("Z")
        gadget = rotation_prime(axis, THETA, "a", "q1")
        readout = observable_semantics_with_ancilla(
            gadget, observable, state, "a", binding, ANCILLA_OBSERVABLE
        )
        eps = 1e-6
        f = lambda t: np.real(
            np.trace(
                observable.matrix
                @ rotation_matrix(axis, t)
                @ state.matrix
                @ rotation_matrix(axis, t).conj().T
            )
        )
        numeric = (f(theta_value + eps) - f(theta_value - eps)) / (2 * eps)
        assert readout == pytest.approx(numeric, abs=1e-6)

    @pytest.mark.parametrize("axis", ["XX", "YY", "ZZ"])
    def test_coupling_gadget_computes_derivative(self, axis):
        theta_value = 0.93
        binding = ParameterBinding({THETA: theta_value})
        layout = RegisterLayout(["q1", "q2"])
        state = DensityState.basis_state(layout, {"q1": 0, "q2": 1})
        observable = pauli_observable("ZZ")
        gadget = coupling_prime(axis, THETA, "a", "q1", "q2")
        readout = observable_semantics_with_ancilla(
            gadget, observable, state, "a", binding, ANCILLA_OBSERVABLE
        )
        eps = 1e-6
        f = lambda t: np.real(
            np.trace(
                observable.matrix
                @ coupling_matrix(axis, t)
                @ state.matrix
                @ coupling_matrix(axis, t).conj().T
            )
        )
        numeric = (f(theta_value + eps) - f(theta_value - eps)) / (2 * eps)
        assert readout == pytest.approx(numeric, abs=1e-6)

    def test_gadget_matches_lemma_d1_closed_form(self):
        """½ tr(O (U(θ)ρU(θ+π)† + U(θ+π)ρU(θ)†)) — Eq. (D.3)."""
        theta_value = 1.21
        binding = ParameterBinding({THETA: theta_value})
        layout = RegisterLayout(["q1"])
        state = DensityState.basis_state(layout, {"q1": 0})
        observable = pauli_observable("X")
        gadget = rotation_prime("Y", THETA, "a", "q1")
        readout = observable_semantics_with_ancilla(
            gadget, observable, state, "a", binding, ANCILLA_OBSERVABLE
        )
        u = rotation_matrix("Y", theta_value)
        u_shift = rotation_matrix("Y", theta_value + np.pi)
        closed_form = 0.5 * np.real(
            np.trace(observable.matrix @ (u @ state.matrix @ u_shift.conj().T
                                          + u_shift @ state.matrix @ u.conj().T))
        )
        assert readout == pytest.approx(closed_form, abs=1e-9)

    def test_gadget_output_state_keeps_original_circuit_on_average(self):
        """Tracing out the ancilla with the identity observable recovers
        the *average* of the θ and θ+π circuits, as in Eq. (D.76)."""
        binding = ParameterBinding({THETA: 0.5})
        layout = RegisterLayout(["q1"])
        state = DensityState.basis_state(layout, {"q1": 0})
        gadget = rotation_prime("X", THETA, "a", "q1")
        extended = state.extended("a", front=True)
        output = denote(gadget, extended, binding)
        identity_readout = output.expectation(np.kron(np.eye(2), PAULI_Z))
        u = rotation_matrix("X", 0.5)
        u_shift = rotation_matrix("X", 0.5 + np.pi)
        average = 0.5 * (
            np.real(np.trace(PAULI_Z @ u @ state.matrix @ u.conj().T))
            + np.real(np.trace(PAULI_Z @ u_shift @ state.matrix @ u_shift.conj().T))
        )
        assert identity_readout == pytest.approx(average, abs=1e-9)
