"""Tests for the higher-order differentiation extension."""

import numpy as np
import pytest

from repro.errors import TransformError
from repro.lang.ast import Seq, UnitaryApp
from repro.lang.builder import case_on_qubit, rx, rxx, ry, seq
from repro.lang.gates import ControlledCoupling, ControlledRotation
from repro.lang.parameters import Parameter, ParameterBinding
from repro.lang.traversal import iter_gate_applications
from repro.linalg.observables import pauli_observable
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.semantics.denotational import denote
from repro.semantics.observable import observable_semantics
from repro.autodiff.gadgets import rotation_prime, coupling_prime
from repro.autodiff.higher_order import (
    eliminate_controlled_rotations,
    higher_order_derivative_expectation,
    iterated_derivative,
)

THETA = Parameter("theta")
PHI = Parameter("phi")
LAYOUT = RegisterLayout(["q1", "q2"])
BINDING = ParameterBinding({THETA: 0.7, PHI: -0.4})


def _state():
    return DensityState.zero_state(LAYOUT)


def _numeric_second_derivative(program, parameter, observable, state, binding, step=1e-3):
    def f(value):
        return observable_semantics(program, observable, state, binding.with_value(parameter, value))

    point = binding[parameter]
    return (f(point + step) - 2 * f(point) + f(point - step)) / step**2


def _numeric_mixed_derivative(program, p1, p2, observable, state, binding, step=1e-4):
    def f(a, b):
        shifted = binding.with_value(p1, a).with_value(p2, b)
        return observable_semantics(program, observable, state, shifted)

    a0, b0 = binding[p1], binding[p2]
    return (
        f(a0 + step, b0 + step)
        - f(a0 + step, b0 - step)
        - f(a0 - step, b0 + step)
        + f(a0 - step, b0 - step)
    ) / (4 * step**2)


class TestElimination:
    def test_gadget_gates_are_removed(self):
        gadget = rotation_prime("X", THETA, "a", "q1")
        rewritten = eliminate_controlled_rotations(gadget)
        assert not any(
            isinstance(g.gate, (ControlledRotation, ControlledCoupling))
            for g in iter_gate_applications(rewritten)
        )

    def test_elimination_preserves_semantics_for_rotations(self):
        gadget = rotation_prime("Y", THETA, "a", "q1")
        rewritten = eliminate_controlled_rotations(gadget)
        layout = RegisterLayout(["a", "q1"])
        state = DensityState.basis_state(layout, {"a": 1, "q1": 0})
        assert np.allclose(
            denote(gadget, state, BINDING).matrix,
            denote(rewritten, state, BINDING).matrix,
        )

    def test_elimination_preserves_semantics_for_couplings(self):
        gadget = coupling_prime("ZZ", PHI, "a", "q1", "q2")
        rewritten = eliminate_controlled_rotations(gadget)
        layout = RegisterLayout(["a", "q1", "q2"])
        state = DensityState.basis_state(layout, {"a": 1, "q2": 1})
        assert np.allclose(
            denote(gadget, state, BINDING).matrix,
            denote(rewritten, state, BINDING).matrix,
        )

    def test_programs_without_gadget_gates_are_untouched(self):
        program = seq([rx(THETA, "q1"), ry(0.3, "q2")])
        assert eliminate_controlled_rotations(program) == program


class TestIteratedDerivative:
    def test_requires_at_least_one_parameter(self):
        with pytest.raises(TransformError):
            iterated_derivative(rx(THETA, "q1"), [])

    def test_one_fresh_ancilla_per_order(self):
        program = seq([rx(THETA, "q1"), ry(THETA, "q1")])
        derivative, ancillae = iterated_derivative(program, [THETA, THETA])
        assert len(ancillae) == 2
        assert len(set(ancillae)) == 2
        assert set(ancillae) <= derivative.qvars()


class TestSecondDerivatives:
    def test_second_derivative_of_single_rotation_is_analytic(self):
        """⟨Z⟩ after RX(θ)|0⟩ is cos θ, so the second derivative is −cos θ."""
        program = rx(THETA, "q1")
        observable = pauli_observable("ZI")
        value = higher_order_derivative_expectation(
            program, [THETA, THETA], observable, _state(), BINDING
        )
        assert value == pytest.approx(-np.cos(0.7), abs=1e-9)

    def test_second_derivative_of_composition(self):
        program = seq([rx(THETA, "q1"), ry(THETA, "q1"), rxx(0.4, "q1", "q2")])
        observable = pauli_observable("ZZ")
        value = higher_order_derivative_expectation(
            program, [THETA, THETA], observable, _state(), BINDING
        )
        numeric = _numeric_second_derivative(program, THETA, observable, _state(), BINDING)
        assert value == pytest.approx(numeric, abs=1e-4)

    def test_second_derivative_of_program_with_controls(self):
        program = seq(
            [rx(THETA, "q1"), case_on_qubit("q1", {0: ry(THETA, "q2"), 1: rx(THETA, "q2")})]
        )
        observable = pauli_observable("IZ")
        value = higher_order_derivative_expectation(
            program, [THETA, THETA], observable, _state(), BINDING
        )
        numeric = _numeric_second_derivative(program, THETA, observable, _state(), BINDING)
        assert value == pytest.approx(numeric, abs=1e-4)

    def test_mixed_partial_derivative(self):
        program = seq([rx(THETA, "q1"), rxx(PHI, "q1", "q2"), ry(THETA, "q2")])
        observable = pauli_observable("ZZ")
        value = higher_order_derivative_expectation(
            program, [THETA, PHI], observable, _state(), BINDING
        )
        numeric = _numeric_mixed_derivative(program, THETA, PHI, observable, _state(), BINDING)
        assert value == pytest.approx(numeric, abs=1e-4)

    def test_mixed_partials_commute(self):
        program = seq([rx(THETA, "q1"), rxx(PHI, "q1", "q2"), ry(THETA, "q2")])
        observable = pauli_observable("ZZ")
        theta_phi = higher_order_derivative_expectation(
            program, [THETA, PHI], observable, _state(), BINDING
        )
        phi_theta = higher_order_derivative_expectation(
            program, [PHI, THETA], observable, _state(), BINDING
        )
        assert theta_phi == pytest.approx(phi_theta, abs=1e-9)

    def test_first_order_reduces_to_standard_pipeline(self):
        from repro.autodiff.execution import derivative_expectation

        program = seq([rx(THETA, "q1"), ry(PHI, "q2")])
        observable = pauli_observable("ZZ")
        via_higher_order = higher_order_derivative_expectation(
            program, [THETA], observable, _state(), BINDING
        )
        via_pipeline = derivative_expectation(program, THETA, observable, _state(), BINDING)
        assert via_higher_order == pytest.approx(via_pipeline, abs=1e-9)

    def test_observable_dimension_validated(self):
        with pytest.raises(TransformError):
            higher_order_derivative_expectation(
                rx(THETA, "q1"), [THETA], pauli_observable("Z"), _state(), BINDING
            )
