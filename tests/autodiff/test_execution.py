"""Unit tests for the end-to-end gradient execution pipeline (Section 7)."""

import numpy as np
import pytest

from repro.errors import SemanticsError
from repro.lang.ast import Abort, Skip
from repro.lang.builder import bounded_while_on_qubit, case_on_qubit, rx, rxx, ry, rz, seq
from repro.lang.parameters import Parameter, ParameterBinding
from repro.linalg.observables import pauli_observable
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.autodiff.execution import (
    DerivativeProgramSet,
    derivative_expectation,
    differentiate_and_compile,
    estimate_derivative_expectation,
    expectation,
    gradient,
)
from repro.analysis.resources import occurrence_count
from repro.baselines.finite_diff import finite_difference_derivative, finite_difference_gradient

THETA = Parameter("theta")
PHI = Parameter("phi")
LAYOUT = RegisterLayout(["q1", "q2"])
ZZ = pauli_observable("ZZ")
BINDING = ParameterBinding({THETA: 0.52, PHI: -0.8})


def _state(q1=0, q2=0):
    return DensityState.basis_state(LAYOUT, {"q1": q1, "q2": q2})


def _control_program():
    return seq(
        [
            rx(THETA, "q1"),
            rxx(PHI, "q1", "q2"),
            case_on_qubit("q1", {0: ry(THETA, "q2"), 1: rz(THETA, "q2")}),
        ]
    )


class TestDerivativeProgramSet:
    def test_compile_time_artifact_structure(self):
        program_set = differentiate_and_compile(_control_program(), THETA)
        assert program_set.parameter == THETA
        assert program_set.ancilla == "anc_theta"
        assert program_set.additive.is_additive()
        assert len(program_set.programs) >= program_set.nonaborting_count
        assert all(not p.is_additive() for p in program_set.programs)

    def test_nonaborting_count_respects_occurrence_bound(self):
        program = _control_program()
        program_set = differentiate_and_compile(program, THETA)
        assert program_set.nonaborting_count <= occurrence_count(program, THETA)

    def test_programs_extend_register_with_one_ancilla(self):
        program_set = differentiate_and_compile(_control_program(), THETA)
        for compiled in program_set.nonaborting_programs():
            assert compiled.qvars() <= {"q1", "q2", "anc_theta"}

    def test_evaluate_matches_finite_differences(self):
        program = _control_program()
        program_set = differentiate_and_compile(program, THETA)
        value = program_set.evaluate(ZZ, _state(), BINDING)
        reference = finite_difference_derivative(program, THETA, ZZ, _state(), BINDING)
        assert value == pytest.approx(reference, abs=1e-6)

    def test_evaluate_checks_observable_dimension(self):
        program_set = differentiate_and_compile(rx(THETA, "q1"), THETA)
        state = DensityState.basis_state(RegisterLayout(["q1"]), {})
        with pytest.raises(SemanticsError):
            program_set.evaluate(ZZ, state, BINDING)

    def test_zero_derivative_when_parameter_absent(self):
        program = seq([rx(PHI, "q1"), ry(0.3, "q2")])
        program_set = differentiate_and_compile(program, THETA)
        assert program_set.nonaborting_count == 0
        assert program_set.evaluate(ZZ, _state(), BINDING) == pytest.approx(0.0)


class TestExpectationHelpers:
    def test_expectation_is_observable_semantics(self):
        value = expectation(Skip(["q1"]), ZZ, _state(0, 1), BINDING)
        assert value == pytest.approx(-1.0)

    def test_derivative_expectation_single_rotation(self):
        value = derivative_expectation(rx(THETA, "q1"), THETA, ZZ, _state(), BINDING)
        assert value == pytest.approx(-np.sin(0.52), abs=1e-9)

    def test_derivative_expectation_on_while_program(self):
        program = seq(
            [rx(THETA, "q1"), bounded_while_on_qubit("q1", seq([ry(THETA, "q2"), rx(0.4, "q1")]), 2)]
        )
        value = derivative_expectation(program, THETA, ZZ, _state(), BINDING)
        reference = finite_difference_derivative(program, THETA, ZZ, _state(), BINDING)
        assert value == pytest.approx(reference, abs=1e-6)

    def test_derivative_of_aborting_program_is_zero(self):
        program = seq([rx(THETA, "q1"), Abort(["q1"])])
        assert derivative_expectation(program, THETA, ZZ, _state(), BINDING) == pytest.approx(0.0)


class TestGradient:
    def test_gradient_matches_finite_differences(self):
        program = _control_program()
        parameters = [THETA, PHI]
        exact = gradient(program, parameters, ZZ, _state(), BINDING)
        reference = finite_difference_gradient(program, parameters, ZZ, _state(), BINDING)
        assert np.allclose(exact, reference, atol=1e-6)

    def test_gradient_with_prebuilt_program_sets(self):
        program = _control_program()
        parameters = [THETA, PHI]
        program_sets = [differentiate_and_compile(program, p) for p in parameters]
        first = gradient(program, parameters, ZZ, _state(), BINDING, program_sets=program_sets)
        second = gradient(program, parameters, ZZ, _state(), BINDING)
        assert np.allclose(first, second)

    def test_gradient_program_set_count_mismatch(self):
        program = _control_program()
        with pytest.raises(SemanticsError):
            gradient(program, [THETA, PHI], ZZ, _state(), BINDING, program_sets=[])

    def test_gradient_rejects_reordered_program_sets(self):
        # A reordered list used to be accepted silently and computed the
        # gradient entries against the wrong parameters.
        program = _control_program()
        program_sets = [differentiate_and_compile(program, p) for p in (PHI, THETA)]
        with pytest.raises(SemanticsError, match="was built for parameter"):
            gradient(program, [THETA, PHI], ZZ, _state(), BINDING, program_sets=program_sets)

    def test_gradient_rejects_program_sets_for_foreign_parameters(self):
        program = _control_program()
        foreign = differentiate_and_compile(program, Parameter("unrelated"))
        good = differentiate_and_compile(program, THETA)
        with pytest.raises(SemanticsError):
            gradient(program, [THETA, PHI], ZZ, _state(), BINDING, program_sets=[good, foreign])

    def test_gradient_accepts_equal_parameter_objects(self):
        # Parameters are value objects: a structurally equal Parameter built
        # elsewhere must be accepted for the same position.
        program = _control_program()
        program_sets = [
            differentiate_and_compile(program, Parameter("theta")),
            differentiate_and_compile(program, Parameter("phi")),
        ]
        first = gradient(program, [THETA, PHI], ZZ, _state(), BINDING, program_sets=program_sets)
        second = gradient(program, [THETA, PHI], ZZ, _state(), BINDING)
        assert np.allclose(first, second)

    def test_gradient_changes_with_the_point(self):
        program = _control_program()
        at_origin = gradient(program, [THETA], ZZ, _state(), ParameterBinding({THETA: 0.0, PHI: 0.0}))
        elsewhere = gradient(program, [THETA], ZZ, _state(), BINDING)
        assert not np.allclose(at_origin, elsewhere)


class TestSampledExecution:
    def test_sampled_estimate_close_to_exact(self):
        program = seq([rx(THETA, "q1"), ry(THETA, "q1")])
        rng = np.random.default_rng(7)
        exact = derivative_expectation(program, THETA, ZZ, _state(), BINDING)
        estimate = estimate_derivative_expectation(
            program, THETA, ZZ, _state(), BINDING, precision=0.15, rng=rng
        )
        assert abs(estimate - exact) < 0.15

    def test_sampled_estimate_of_zero_derivative(self):
        program = rx(PHI, "q1")
        rng = np.random.default_rng(8)
        estimate = estimate_derivative_expectation(
            program, THETA, ZZ, _state(), BINDING, precision=0.2, rng=rng
        )
        assert estimate == pytest.approx(0.0)
