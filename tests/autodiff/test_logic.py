"""Unit tests for the differentiation logic (Figure 5) and Theorem 6.2."""

import pytest

from repro.errors import LogicError
from repro.lang.ast import Abort, Init, Seq, Skip, Sum
from repro.lang.builder import bounded_while_on_qubit, case_on_qubit, rx, rxx, ry, rz, seq
from repro.lang.parameters import Parameter, ParameterBinding
from repro.linalg.observables import pauli_observable
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.autodiff.logic import (
    Derivation,
    Judgement,
    check_derivation,
    derive,
    validate_soundness,
)
from repro.autodiff.transform import ancilla_name_for, differentiate

THETA = Parameter("theta")
PHI = Parameter("phi")


def _derivation_for(program):
    ancilla = ancilla_name_for(program, THETA)
    derivation = derive(program, THETA, ancilla=ancilla)
    return derivation, ancilla


class TestDerivationConstruction:
    def test_axiom_rules(self):
        derivation, _ = _derivation_for(Skip(["q1"]))
        assert derivation.rule == "Skip"
        assert derivation.premises == ()

        derivation, _ = _derivation_for(Init("q1"))
        assert derivation.rule == "Initialization"

        derivation, _ = _derivation_for(rx(0.3, "q1"))
        assert derivation.rule == "Trivial-Unitary"

        derivation, _ = _derivation_for(rx(THETA, "q1"))
        assert derivation.rule == "Rot-Couple"

    def test_composite_rules(self):
        derivation, _ = _derivation_for(Seq(rx(THETA, "q1"), ry(THETA, "q2")))
        assert derivation.rule == "Sequence"
        assert len(derivation.premises) == 2

        derivation, _ = _derivation_for(case_on_qubit("q1", {0: rx(THETA, "q2"), 1: Skip(["q1"])}))
        assert derivation.rule == "Case"
        assert len(derivation.premises) == 2

        derivation, _ = _derivation_for(bounded_while_on_qubit("q1", rx(THETA, "q1"), 2))
        assert derivation.rule == "While"
        assert len(derivation.premises) == 1

        derivation, _ = _derivation_for(Sum(rx(THETA, "q1"), ry(THETA, "q1")))
        assert derivation.rule == "Sum-Component"

    def test_derivation_size_and_rules_used(self):
        program = seq([rx(THETA, "q1"), case_on_qubit("q1", {0: ry(THETA, "q2"), 1: Skip(["q1"])})])
        derivation, _ = _derivation_for(program)
        assert derivation.size() >= 5
        assert {"Sequence", "Case", "Rot-Couple", "Skip"} <= derivation.rules_used()

    def test_conclusion_matches_code_transformation(self):
        """The canonical derivation proves exactly the transformed program."""
        programs = [
            rx(THETA, "q1"),
            seq([rx(THETA, "q1"), ry(THETA, "q2"), rxx(PHI, "q1", "q2")]),
            case_on_qubit("q1", {0: seq([rx(THETA, "q1"), ry(THETA, "q1")]), 1: rz(THETA, "q1")}),
            seq([rx(THETA, "q1"), bounded_while_on_qubit("q1", ry(THETA, "q2"), 2)]),
        ]
        for program in programs:
            ancilla = ancilla_name_for(program, THETA)
            derivation = derive(program, THETA, ancilla=ancilla)
            assert derivation.judgement.derivative == differentiate(program, THETA, ancilla=ancilla)
            assert derivation.judgement.original == program


class TestDerivationChecking:
    def test_valid_derivations_pass(self):
        programs = [
            rx(THETA, "q1"),
            seq([rx(THETA, "q1"), ry(THETA, "q2")]),
            case_on_qubit("q1", {0: rx(THETA, "q2"), 1: Abort(["q1"])}),
            bounded_while_on_qubit("q1", seq([rx(THETA, "q1"), ry(PHI, "q2")]), 2),
            Sum(rx(THETA, "q1"), seq([ry(THETA, "q2"), rz(0.2, "q1")])),
        ]
        for program in programs:
            ancilla = ancilla_name_for(program, THETA)
            derivation = derive(program, THETA, ancilla=ancilla)
            assert check_derivation(
                derivation, ancilla=ancilla, variables=sorted(program.qvars())
            )

    def test_wrong_conclusion_is_rejected(self):
        program = Seq(rx(THETA, "q1"), ry(THETA, "q2"))
        ancilla = "a"
        derivation = derive(program, THETA, ancilla=ancilla)
        # Swap the summands of the conclusion: no longer literally the rule's shape.
        tampered = Derivation(
            derivation.rule,
            Judgement(
                Sum(derivation.judgement.derivative.right, derivation.judgement.derivative.left),
                program,
                THETA,
            ),
            derivation.premises,
        )
        with pytest.raises(LogicError):
            check_derivation(tampered, ancilla=ancilla, variables=["q1", "q2"])

    def test_wrong_rule_name_is_rejected(self):
        program = rx(THETA, "q1")
        derivation = derive(program, THETA, ancilla="a")
        tampered = Derivation("Skip", derivation.judgement, derivation.premises)
        with pytest.raises(LogicError):
            check_derivation(tampered, ancilla="a", variables=["q1"])

    def test_missing_premise_is_rejected(self):
        program = Seq(rx(THETA, "q1"), ry(THETA, "q2"))
        derivation = derive(program, THETA, ancilla="a")
        tampered = Derivation(derivation.rule, derivation.judgement, derivation.premises[:1])
        with pytest.raises(LogicError):
            check_derivation(tampered, ancilla="a", variables=["q1", "q2"])

    def test_trivial_unitary_side_condition(self):
        # Claiming Trivial-Unitary for a gate that *does* use θ must fail.
        program = rx(THETA, "q1")
        bad = Derivation("Trivial-Unitary", Judgement(Abort(("a", "q1")), program, THETA))
        with pytest.raises(LogicError):
            check_derivation(bad, ancilla="a", variables=["q1"])

    def test_unknown_rule_rejected(self):
        bad = Derivation("Magic", Judgement(Abort(("a", "q1")), Skip(["q1"]), THETA))
        with pytest.raises(LogicError):
            check_derivation(bad, ancilla="a", variables=["q1"])


class TestSoundness:
    """Numerical validation of Theorem 6.2 over observables, states and points."""

    def test_soundness_on_control_flow_program(self):
        program = seq(
            [
                rx(THETA, "q1"),
                case_on_qubit("q1", {0: ry(THETA, "q2"), 1: rz(THETA, "q2")}),
            ]
        )
        layout = RegisterLayout(["q1", "q2"])
        cases = [
            (pauli_observable("ZZ"), DensityState.basis_state(layout, {"q1": 0, "q2": 0})),
            (pauli_observable("XZ"), DensityState.basis_state(layout, {"q1": 1, "q2": 0})),
            (pauli_observable("IZ"), DensityState.basis_state(layout, {"q1": 0, "q2": 1})),
        ]
        bindings = [ParameterBinding({THETA: value, PHI: 0.0}) for value in (-1.1, 0.0, 0.4, 2.0)]
        worst = validate_soundness(program, THETA, cases, bindings)
        assert worst < 1e-6

    def test_soundness_on_while_program(self):
        program = seq(
            [rx(THETA, "q1"), bounded_while_on_qubit("q1", seq([ry(THETA, "q2"), rx(0.7, "q1")]), 2)]
        )
        layout = RegisterLayout(["q1", "q2"])
        cases = [(pauli_observable("ZZ"), DensityState.basis_state(layout, {"q1": 1, "q2": 0}))]
        bindings = [ParameterBinding({THETA: 0.9})]
        assert validate_soundness(program, THETA, cases, bindings) < 1e-6

    def test_soundness_strongest_quantifier_order(self):
        """One fixed derivative program works for *every* (O, ρ) pair (Definition 5.3)."""
        program = seq([rx(THETA, "q1"), rxx(THETA, "q1", "q2")])
        layout = RegisterLayout(["q1", "q2"])
        observables = [pauli_observable(label) for label in ("ZZ", "XX", "ZI", "IZ", "YI")]
        states = [
            DensityState.basis_state(layout, {"q1": a, "q2": b}) for a in (0, 1) for b in (0, 1)
        ]
        cases = [(obs, state) for obs in observables for state in states]
        bindings = [ParameterBinding({THETA: 0.37})]
        assert validate_soundness(program, THETA, cases, bindings) < 1e-6
