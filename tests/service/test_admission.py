"""Cost-model wiring into the service: admission control, cost-ordered
planning, predicted-vs-actual telemetry, and cost-balanced worker dispatch.

The admission contract: ``EstimatorService(max_cost=...)`` rejects a
request whose predicted cost exceeds the budget *before it is queued* —
the handle fails with the typed, non-retryable
:class:`~repro.errors.ResourceLimitError`, the backend never sees the
work, and sibling requests of the same drain produce bit-for-bit the
results they would have produced had the rejected request never existed.
"""

import numpy as np
import pytest

from repro.errors import ResourceLimitError, SemanticsError, is_retryable
from repro.lang.builder import case_on_qubit, rx, rxx, ry, seq
from repro.lang.parameters import Parameter, ParameterBinding
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.api import Estimator, ExactDensityBackend
from repro.service import EstimatorService, request_cost
from repro.service.planner import GroupCall, plan, QueueItem
from repro.service.workers import _Dispatch, _Unit, _Worker, WorkerSupervisor
from repro.service.resilience import SupervisorPolicy

THETA = Parameter("theta")
PHI = Parameter("phi")
BINDING = ParameterBinding({THETA: 0.37, PHI: -1.1})
LAYOUT = RegisterLayout(("q1", "q2"))
ZZ = np.diag([1.0, -1.0, -1.0, 1.0]).astype(complex)


def _program():
    return seq([rx(THETA, "q1"), rxx(PHI, "q1", "q2"), ry(0.4, "q2")])


def _state(index: int = 0) -> DensityState:
    return DensityState.basis_state(LAYOUT, {"q1": index % 2, "q2": (index // 2) % 2})


class _CountingBackend(ExactDensityBackend):
    """Counts batched calls: proof the rejected work never executed."""

    def __init__(self):
        super().__init__()
        self.calls = 0

    def value_batch(self, *args, **kwargs):
        self.calls += 1
        return super().value_batch(*args, **kwargs)

    def derivative_batch(self, *args, **kwargs):
        self.calls += 1
        return super().derivative_batch(*args, **kwargs)


class TestMaxCostValidation:
    def test_nonpositive_budget_rejected(self):
        with pytest.raises(SemanticsError):
            EstimatorService(ExactDensityBackend(), max_cost=0.0)
        with pytest.raises(SemanticsError):
            EstimatorService(ExactDensityBackend(), max_cost=-1.0)

    def test_none_admits_everything(self):
        service = EstimatorService(ExactDensityBackend())
        assert service.max_cost is None
        estimator = Estimator(_program(), ZZ)
        handle = service.submit(estimator.request_value(_state(), BINDING))
        handle.result()
        assert service.stats.rejected == 0


class TestRejection:
    def test_over_budget_request_fails_typed_before_execution(self):
        backend = _CountingBackend()
        service = EstimatorService(backend, max_cost=1.0)
        estimator = Estimator(_program(), ZZ)
        request = estimator.request_value(_state(), BINDING)
        predicted = request_cost(request)
        assert predicted > 1.0

        handle = service.submit(request)
        # Rejection is synchronous: no flush has happened, yet the handle
        # is already resolved and the queue is empty.
        assert handle.done()
        assert service.queue_depth == 0
        with pytest.raises(ResourceLimitError) as excinfo:
            handle.result()
        assert excinfo.value.predicted_cost == predicted
        assert excinfo.value.max_cost == 1.0
        assert not is_retryable(excinfo.value)
        assert backend.calls == 0

    def test_rejection_stats_and_error_taxonomy(self):
        service = EstimatorService(ExactDensityBackend(), max_cost=1.0)
        estimator = Estimator(_program(), ZZ)
        for index in range(3):
            service.submit(estimator.request_value(_state(index), BINDING))
        assert service.stats.submitted == 3
        assert service.stats.rejected == 3
        assert service.stats.failed == 3
        assert service.stats.errors.get("ResourceLimitError") == 3
        service.stats.reset()
        assert service.stats.rejected == 0
        assert service.stats.predicted == {}

    def test_under_budget_requests_pass(self):
        estimator = Estimator(_program(), ZZ)
        request = estimator.request_value(_state(), BINDING)
        budget = request_cost(request) + 1.0
        service = EstimatorService(ExactDensityBackend(), max_cost=budget)
        handle = service.submit(estimator.request_value(_state(), BINDING))
        handle.result()
        assert service.stats.rejected == 0
        assert service.stats.completed == 1

    def test_siblings_are_bit_identical_with_and_without_the_rejection(self):
        estimator = Estimator(_program(), ZZ)
        value_request = estimator.request_value(_state(), BINDING)
        budget = request_cost(value_request) + 1.0

        # Baseline: no admission control, no doomed request.
        baseline = EstimatorService(ExactDensityBackend())
        baseline_handles = [
            baseline.submit(estimator.request_value(_state(i), BINDING))
            for i in range(3)
        ]
        expected = [handle.result() for handle in baseline_handles]

        # Same siblings, plus a gradient request the budget rejects.
        service = EstimatorService(ExactDensityBackend(), max_cost=budget)
        doomed = service.submit(estimator.request_gradient(_state(), BINDING))
        handles = [
            service.submit(estimator.request_value(_state(i), BINDING))
            for i in range(3)
        ]
        with pytest.raises(ResourceLimitError):
            doomed.result()
        assert [handle.result() for handle in handles] == expected
        assert service.stats.rejected == 1
        assert service.stats.completed == 3

    def test_gradient_requests_cost_more_than_values(self):
        estimator = Estimator(_program(), ZZ)
        value_cost = request_cost(estimator.request_value(_state(), BINDING))
        gradient_cost = request_cost(estimator.request_gradient(_state(), BINDING))
        assert gradient_cost > value_cost
        # A budget between the two admits values and rejects gradients.
        service = EstimatorService(
            ExactDensityBackend(), max_cost=(value_cost + gradient_cost) / 2.0
        )
        ok = service.submit(estimator.request_value(_state(), BINDING))
        rejected = service.submit(estimator.request_gradient(_state(), BINDING))
        ok.result()
        with pytest.raises(ResourceLimitError):
            rejected.result()


class TestCostOrderedPlanning:
    def _items(self, requests):
        return [
            QueueItem(request=request, handle=None, session_rank=rank, seq=rank)
            for rank, request in enumerate(requests)
        ]

    def test_groups_ordered_largest_cost_first(self):
        estimator = Estimator(_program(), ZZ)
        requests = [
            estimator.request_value(_state(), BINDING),
            estimator.request_gradient(_state(), BINDING),
        ]
        execution_plan = plan(self._items(requests))
        costs = [group.predicted_cost for group in execution_plan.groups]
        assert costs == sorted(costs, reverse=True)
        assert execution_plan.groups[0].kind.value == "gradient" or (
            execution_plan.groups[0].rows[0].request.kind.value in ("gradient", "derivative")
        )

    def test_order_by_cost_false_keeps_fairness_order(self):
        estimator = Estimator(_program(), ZZ)
        requests = [
            estimator.request_value(_state(), BINDING),
            estimator.request_gradient(_state(), BINDING),
        ]
        execution_plan = plan(self._items(requests), order_by_cost=False)
        assert execution_plan.groups[0].rows[0].request is requests[0]

    def test_group_call_carries_the_predicted_cost(self):
        estimator = Estimator(_program(), ZZ)
        execution_plan = plan(
            self._items([estimator.request_value(_state(), BINDING)])
        )
        group = execution_plan.groups[0]
        call = group.call()
        assert isinstance(call, GroupCall)
        assert call.cost == group.predicted_cost > 0.0

    def test_subset_preserves_row_costs(self):
        estimator = Estimator(_program(), ZZ)
        execution_plan = plan(
            self._items(
                [estimator.request_value(_state(i), BINDING) for i in range(2)]
            )
        )
        group = execution_plan.groups[0]
        survivor = group.subset(group.rows[:1])
        assert survivor.predicted_cost == group.rows[0].cost > 0.0


class TestPredictedTelemetry:
    def test_flush_accumulates_predicted_next_to_timings(self):
        service = EstimatorService(ExactDensityBackend())
        estimator = Estimator(_program(), ZZ)
        handles = [
            service.submit(estimator.request_value(_state(i), BINDING))
            for i in range(2)
        ]
        service.flush()
        for handle in handles:
            handle.result()
        assert set(service.stats.predicted) == set(service.stats.timings)
        total_predicted = sum(service.stats.predicted.values())
        assert total_predicted > 0.0


class TestCostBalancedDispatch:
    def _worker(self, slot: int, costs) -> _Worker:
        worker = _Worker(slot, 0, process=object(), conn=None)
        for index, cost in enumerate(costs):
            call = GroupCall(
                kind="value",
                program=None,
                program_sets=None,
                observable=None,
                inputs=[(None, None)],
                cost=cost,
            )
            unit = _Unit(index, call, digest=f"d{slot}-{index}", artifact=b"")
            worker.inflight[index] = _Dispatch(unit, sent_at=0.0)
        return worker

    def _supervisor(self, workers) -> WorkerSupervisor:
        supervisor = WorkerSupervisor(
            b"", slots=len(workers), policy=SupervisorPolicy()
        )
        supervisor._fleet = {worker.slot: worker for worker in workers}
        return supervisor

    def test_dispatch_prefers_the_cheapest_backlog(self):
        # Worker 0 holds one giant group, worker 1 two tiny ones: count-based
        # balancing would pick worker 0; cost-based balancing must pick 1.
        supervisor = self._supervisor(
            [self._worker(0, [1000.0]), self._worker(1, [1.0, 1.0])]
        )
        chosen = supervisor.least_loaded(capacity=8)
        assert chosen.slot == 1

    def test_zero_costs_fall_back_to_count_then_slot(self):
        supervisor = self._supervisor(
            [self._worker(0, [0.0, 0.0]), self._worker(1, [0.0])]
        )
        assert supervisor.least_loaded(capacity=8).slot == 1
        tied = self._supervisor([self._worker(0, [0.0]), self._worker(1, [0.0])])
        assert tied.least_loaded(capacity=8).slot == 0

    def test_capacity_still_bounds_inflight(self):
        supervisor = self._supervisor([self._worker(0, [1.0, 1.0])])
        assert supervisor.least_loaded(capacity=2) is None
