"""The supervised worker pool (`repro.service.workers`).

The fault matrix this file proves: a worker killed, hung, or replying
garbage at *any* protocol phase (receive / execute / reply) yields either
bit-identical recovery (the group re-dispatched to a healthy worker
produces exactly the fault-free bits) or a typed
:class:`~repro.errors.ServiceError` — never a wrong value, never a stuck
handle, never a poisoned cache.  Sibling groups of the same drain are
unaffected; a fleet that cannot spawn at all degrades the service to the
inline executor and the run still completes.

Everything here uses an explicit ``max_workers=2`` — on the 1-core CI
host the default worker pool (correctly) skips process spawning, and
these tests exist to exercise real processes, real pipes, real deaths.
"""

import numpy as np
import pytest

from repro.errors import (
    SemanticsError,
    ServiceError,
    WireProtocolError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.lang.builder import rx, rxx, ry, seq
from repro.lang.parameters import Parameter, ParameterBinding
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.api import Estimator, ExactDensityBackend, ShotSamplingBackend
from repro.service import (
    EstimatorService,
    RetryPolicy,
    SupervisorPolicy,
    WorkerFaultPlan,
    WorkerPoolServiceExecutor,
    resolve_supervisor,
)

THETA = Parameter("theta")
PHI = Parameter("phi")
BINDING = ParameterBinding({THETA: 0.37, PHI: -1.1})
LAYOUT = RegisterLayout(("q1", "q2"))
ZZ = np.diag([1.0, -1.0, -1.0, 1.0]).astype(complex)

#: Supervisor tuned for tests: fast restarts, a short call timeout so
#: hung workers are detected in test time, frequent heartbeats.
FAST = SupervisorPolicy(
    restart=RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.05, jitter=0.0),
    heartbeat_interval=0.2,
    heartbeat_timeout=2.0,
    call_timeout=3.0,
    spawn_timeout=20.0,
)


def _program():
    return seq([rx(THETA, "q1"), rxx(PHI, "q1", "q2"), ry(0.4, "q2")])


def _other_program():
    return seq([ry(PHI, "q2"), rx(THETA, "q1")])


def _state(index: int = 0) -> DensityState:
    return DensityState.basis_state(LAYOUT, {"q1": index % 2, "q2": (index // 2) % 2})


@pytest.fixture(scope="module")
def estimator() -> Estimator:
    return Estimator(_program(), ZZ)


@pytest.fixture(scope="module")
def sibling() -> Estimator:
    return Estimator(_other_program(), ZZ)


@pytest.fixture(scope="module")
def clean(estimator, sibling):
    """Fault-free bits, straight off the inline executor."""
    service = EstimatorService(backend="exact")
    values = [
        service.submit(estimator.request_value(_state(i), BINDING))
        for i in range(4)
    ]
    other = service.submit(sibling.request_value(_state(), BINDING))
    gradient = service.submit(estimator.request_gradient(_state(), BINDING))
    return {
        "values": [handle.result() for handle in values],
        "sibling": other.result(),
        "gradient": gradient.result(),
    }


def _pool(fault_plans=None, policy=FAST, **kwargs):
    return WorkerPoolServiceExecutor(
        max_workers=2, policy=policy, fault_plans=fault_plans, **kwargs
    )


class TestWorkerFaultPlan:
    def test_phase_is_validated(self):
        with pytest.raises(SemanticsError):
            WorkerFaultPlan(kill_on_call=0, phase="teleport")

    def test_rates_are_validated(self):
        with pytest.raises(SemanticsError):
            WorkerFaultPlan(kill_rate=1.5)
        with pytest.raises(SemanticsError):
            WorkerFaultPlan(kill_rate=0.7, hang_rate=0.7)

    def test_scripted_indices_are_validated(self):
        with pytest.raises(SemanticsError):
            WorkerFaultPlan(kill_on_call=-1)

    def test_rng_exists_only_for_probabilistic_plans(self):
        assert WorkerFaultPlan(kill_on_call=0).rng() is None
        assert WorkerFaultPlan(kill_rate=0.1, seed=7).rng() is not None

    def test_scripted_action_fires_on_its_call_and_phase(self):
        plan = WorkerFaultPlan(kill_on_call=1, phase="reply")
        assert plan.action_for(0, "reply", None) is None
        assert plan.action_for(1, "execute", None) is None
        assert plan.action_for(1, "reply", None) == "kill"

    def test_probabilistic_draws_are_seed_reproducible(self):
        plans = [WorkerFaultPlan(kill_rate=0.4, seed=3) for _ in range(2)]
        draws = [
            [plan.action_for(i, "execute", plan.rng()) for i in range(30)]
            for plan in plans
        ]
        # Same seed, same stream; and at 0.4 over 30 calls some draw fired.
        assert draws[0] == draws[1]
        assert "kill" in draws[0]


class TestSupervisorPolicy:
    def test_defaults_resolve(self):
        policy = resolve_supervisor(None)
        assert policy.redispatch_limit >= 1
        assert resolve_supervisor(policy) is policy

    def test_bad_spec_is_rejected(self):
        with pytest.raises(SemanticsError):
            resolve_supervisor("aggressive")
        with pytest.raises(SemanticsError):
            SupervisorPolicy(max_inflight=0)
        with pytest.raises(SemanticsError):
            SupervisorPolicy(heartbeat_interval=-1.0)


class TestBitIdenticalBaseline:
    def test_matches_inline_bitwise_without_faults(self, estimator, clean):
        executor = _pool()
        service = EstimatorService(ExactDensityBackend(), executor=executor)
        try:
            handles = [
                service.submit(estimator.request_value(_state(i), BINDING))
                for i in range(4)
            ]
            gradient = service.submit(estimator.request_gradient(_state(), BINDING))
            assert [h.result(timeout=60) for h in handles] == clean["values"]
            assert np.array_equal(gradient.result(timeout=60), clean["gradient"])
        finally:
            service.close()

    def test_result_store_serves_repeat_requests_without_dispatch(
        self, estimator, clean
    ):
        executor = _pool()
        service = EstimatorService(ExactDensityBackend(), executor=executor)
        try:
            first = service.submit(estimator.request_value(_state(), BINDING))
            assert first.result(timeout=60) == clean["values"][0]
            # A later drain of the same point is served from the client-side
            # content-addressed store — same bits, no wire round trip.
            again = service.submit(estimator.request_value(_state(), BINDING))
            assert again.result(timeout=60) == clean["values"][0]
            assert executor.telemetry["store_hits"] >= 1
        finally:
            service.close()

    def test_sampling_backends_stay_inline(self):
        # Shipping a pickled RNG snapshot to two workers would replay
        # correlated sample streams; the pool must refuse to try.
        executor = _pool()
        service = EstimatorService(
            ShotSamplingBackend(precision=0.5, rng=np.random.default_rng(11)),
            executor=executor,
        )
        try:
            estimator = Estimator(_program(), ZZ)
            handle = service.submit(estimator.request_value(_state(), BINDING))
            assert np.isfinite(handle.result(timeout=60))
            assert executor.telemetry["inline_fallbacks"] >= 1
            assert executor.telemetry["spawns"] == 0
        finally:
            service.close()


#: The tentpole matrix: (fault kind, protocol phase) -> recovery shape.
#: Kills and hangs are transient (the group re-dispatches, bits must
#: match); a corrupt frame is a protocol violation (typed, non-retryable).
_TRANSIENT_MATRIX = [
    ("kill", "receive"),
    ("kill", "execute"),
    ("kill", "reply"),
    ("hang", "receive"),
    ("hang", "execute"),
    ("hang", "reply"),
]


class TestFaultMatrix:
    @pytest.mark.parametrize("fault,phase", _TRANSIENT_MATRIX)
    def test_transient_faults_recover_bit_identically(
        self, fault, phase, estimator, sibling, clean
    ):
        kwargs = {f"{fault}_on_call": 0, "phase": phase}
        if fault == "hang":
            kwargs["hang_s"] = 30.0  # far beyond call_timeout; SIGTERM ends it
        plans = {0: WorkerFaultPlan(**kwargs), 1: WorkerFaultPlan(**kwargs)}
        executor = _pool(fault_plans=plans)
        service = EstimatorService(ExactDensityBackend(), executor=executor)
        try:
            handles = [
                service.submit(estimator.request_value(_state(i), BINDING))
                for i in range(4)
            ]
            other = service.submit(sibling.request_value(_state(), BINDING))
            assert [h.result(timeout=120) for h in handles] == clean["values"]
            assert other.result(timeout=120) == clean["sibling"]
            telemetry = executor.telemetry
            assert telemetry["redispatches"] >= 1
            assert telemetry[{"kill": "crashes", "hang": "hangs"}[fault]] >= 1
            assert telemetry["restarts"] >= 1
        finally:
            service.close()

    @pytest.mark.parametrize("phase", ["receive", "execute", "reply"])
    def test_corrupt_frames_fail_typed_and_siblings_complete(
        self, phase, estimator, sibling, clean
    ):
        # Only slot 0 replies garbage (once); slot 1 is healthy, so the
        # drain's other group must complete with clean bits.
        plans = {0: WorkerFaultPlan(corrupt_on_call=0, phase=phase)}
        executor = _pool(fault_plans=plans)
        service = EstimatorService(ExactDensityBackend(), executor=executor)
        try:
            handles = [
                service.submit(estimator.request_value(_state(i), BINDING))
                for i in range(4)
            ]
            other = service.submit(sibling.request_value(_state(), BINDING))
            resolved, failed = [], []
            for handle in handles + [other]:
                error = handle.exception(timeout=120)
                (failed if error is not None else resolved).append(
                    error if error is not None else handle.result()
                )
            # Exactly one group hit the corrupted frame: its handles fail
            # with the typed protocol error, everything else matches the
            # fault-free bits exactly.
            assert failed and all(
                isinstance(error, WireProtocolError) for error in failed
            )
            reference = clean["values"] + [clean["sibling"]]
            assert resolved and all(value in reference for value in resolved)
            assert executor.telemetry["protocol_errors"] >= 1
            # The service's denotation cache holds no stuck single-flight
            # markers — re-requesting on the same service cannot deadlock.
            assert service.cache._in_flight == {}
        finally:
            service.close()

    def test_persistent_crasher_exhausts_redispatch_typed(self, estimator):
        # Every generation of both slots dies on its first EXECUTE: the
        # group can never complete, so after `redispatch_limit` recoveries
        # it must fail with the typed transient error — not loop forever.
        plan = WorkerFaultPlan(kill_on_call=0, phase="execute", every_generation=True)
        policy = SupervisorPolicy(
            restart=RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.05, jitter=0.0),
            call_timeout=5.0,
            redispatch_limit=2,
        )
        executor = _pool(fault_plans={0: plan, 1: plan}, policy=policy)
        service = EstimatorService(ExactDensityBackend(), executor=executor)
        try:
            handle = service.submit(estimator.request_value(_state(), BINDING))
            with pytest.raises(WorkerCrashError):
                handle.result(timeout=120)
            assert executor.telemetry["redispatches"] >= policy.redispatch_limit
        finally:
            service.close()

    def test_persistent_hang_exhausts_redispatch_typed(self, estimator):
        plan = WorkerFaultPlan(
            hang_on_call=0, phase="execute", hang_s=30.0, every_generation=True
        )
        policy = SupervisorPolicy(
            restart=RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.05, jitter=0.0),
            call_timeout=0.5,
            redispatch_limit=1,
        )
        executor = _pool(fault_plans={0: plan, 1: plan}, policy=policy)
        service = EstimatorService(ExactDensityBackend(), executor=executor)
        try:
            handle = service.submit(estimator.request_value(_state(), BINDING))
            with pytest.raises(WorkerTimeoutError):
                handle.result(timeout=120)
            assert executor.telemetry["hangs"] >= 1
        finally:
            service.close()

    def test_idle_crash_is_detected_and_the_next_drain_recovers(
        self, estimator, clean
    ):
        executor = _pool()
        service = EstimatorService(ExactDensityBackend(), executor=executor)
        try:
            first = service.submit(estimator.request_value(_state(), BINDING))
            assert first.result(timeout=60) == clean["values"][0]
            # Kill a worker *between* drains — the next drain's liveness
            # sweep retires the corpse and respawns before dispatching.
            victim = executor.supervisor.workers()[0]
            victim.process.terminate()
            victim.process.join(timeout=10)
            again = service.submit(estimator.request_value(_state(1), BINDING))
            assert again.result(timeout=60) == clean["values"][1]
            assert executor.telemetry["restarts"] >= 1
        finally:
            service.close()


class TestFleetDeathDegradation:
    def test_unspawnable_fleet_degrades_to_inline_and_completes(
        self, estimator, clean
    ):
        plan = WorkerFaultPlan(exit_on_spawn=True, every_generation=True)
        policy = SupervisorPolicy(
            restart=RetryPolicy(attempts=2, base_delay=0.01, max_delay=0.02, jitter=0.0),
            spawn_timeout=10.0,
        )
        executor = _pool(fault_plans={0: plan, 1: plan}, policy=policy)
        service = EstimatorService(ExactDensityBackend(), executor=executor)
        try:
            handles = [
                service.submit(estimator.request_value(_state(i), BINDING))
                for i in range(4)
            ]
            # Degraded, not dead: every handle resolves to the clean bits.
            assert [h.result(timeout=120) for h in handles] == clean["values"]
            assert service.stats.degraded >= 1
            assert executor.telemetry["spawn_failures"] >= 2
            assert executor.telemetry["dead_slots"] == 2
        finally:
            service.close()

    def test_unpicklable_backend_degrades_instead_of_crashing(self, clean):
        backend = ExactDensityBackend()
        backend.probe = lambda: None  # closures cannot cross the wire
        executor = _pool()
        service = EstimatorService(backend, executor=executor)
        try:
            estimator = Estimator(_program(), ZZ)
            handle = service.submit(estimator.request_value(_state(), BINDING))
            assert handle.result(timeout=60) == clean["values"][0]
            assert service.stats.degraded >= 1
            assert executor.telemetry["spawns"] == 0
        finally:
            service.close()


class TestServiceTelemetryHarvest:
    def test_stats_absorb_redispatches_and_restarts(self, estimator, clean):
        plans = {0: WorkerFaultPlan(kill_on_call=0, phase="execute")}
        executor = _pool(fault_plans=plans)
        service = EstimatorService(ExactDensityBackend(), executor=executor)
        try:
            handles = [
                service.submit(estimator.request_value(_state(i), BINDING))
                for i in range(4)
            ]
            assert [h.result(timeout=120) for h in handles] == clean["values"]
            assert service.stats.redispatches >= 1
            assert service.stats.worker_restarts >= 1
        finally:
            service.close()


class TestWorkerStorm:
    def test_many_sessions_bounded_queue_no_starvation(self, clean):
        # The storm smoke: several sessions racing submissions through a
        # bounded queue.  Backpressure must flush (never reject, never
        # deadlock) and every handle must resolve to the clean bits.
        executor = _pool()
        service = EstimatorService(
            ExactDensityBackend(), executor=executor, max_queue_depth=3
        )
        estimators = [Estimator(_program(), ZZ), Estimator(_other_program(), ZZ)]
        reference_service = EstimatorService(backend="exact")
        references = {
            (e, i): reference_service.submit(
                estimators[e].request_value(_state(i), BINDING)
            ).result()
            for e in range(2)
            for i in range(4)
        }
        try:
            handles = []
            for round_index in range(3):
                for session_index, estimator in enumerate(estimators):
                    with service.session(name=f"s{session_index}") as session:
                        handles.extend(
                            (session.submit(estimator.request_value(_state(i), BINDING)),
                             (session_index, i))
                            for i in range(4)
                        )
            for handle, key in handles:
                assert handle.result(timeout=120) == references[key]
            assert service.stats.backpressure_flushes >= 1
            assert service.stats.failed == 0
        finally:
            service.close()
