"""Thread-safety of the shared cache and the service under real contention.

Three guarantees, hammered from many threads:

* the :class:`~repro.api.cache.DenotationCache` computes every unique key
  exactly once (single-flight) and never tears its statistics;
* one :class:`~repro.service.EstimatorService` accepts concurrent
  submitters and resolves every handle with the right number, with exact
  bookkeeping;
* the thread-pool executor is *observationally identical* to the inline
  one — the hypothesis sweep asserts bit-for-bit equality, because both
  executors run the very same grouped backend calls.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings

from repro.lang.builder import rx, rxx, ry, seq
from repro.lang.parameters import Parameter, ParameterBinding
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.api import (
    DenotationCache,
    Estimator,
    StatevectorBackend,
    ThreadPoolBackend,
)
from repro.service import EstimatorService

from tests.conftest import binding_strategy, input_state_strategy, program_strategy

THETA = Parameter("theta")
PHI = Parameter("phi")
BINDING = ParameterBinding({THETA: 0.52, PHI: -0.8})
LAYOUT = RegisterLayout(("q1", "q2"))
ZZ = np.diag([1.0, -1.0, -1.0, 1.0]).astype(complex)

THREADS = 8
ROUNDS = 60


def _program(shift: float = 0.0):
    return seq([rx(THETA, "q1"), rxx(PHI, "q1", "q2"), ry(0.4 + shift, "q2")])


def _state(index: int = 0) -> DensityState:
    return DensityState.basis_state(LAYOUT, {"q1": index % 2, "q2": (index // 2) % 2})


def _hammer(worker, count: int = THREADS):
    """Run ``worker`` on ``count`` threads through a start barrier."""
    barrier = threading.Barrier(count)
    errors = []

    def run():
        try:
            barrier.wait()
            worker()
        except BaseException as error:  # pragma: no cover - failure reporting
            errors.append(error)

    threads = [threading.Thread(target=run) for _ in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestCacheUnderContention:
    def test_single_flight_means_one_compute_per_key(self):
        cache = DenotationCache()
        programs = [_program(0.01 * i) for i in range(10)]
        state = _state()
        computes = []
        compute_lock = threading.Lock()

        def compute(program):
            with compute_lock:
                computes.append(program)
            return state  # any object; the cache stores what compute returns

        def worker():
            for round_index in range(ROUNDS):
                program = programs[round_index % len(programs)]
                result = cache.get_or_compute(
                    program, state, BINDING, lambda p=program: compute(p)
                )
                assert result is state

        _hammer(worker)
        # No duplicate denotes beyond the coalescing guarantee: every key
        # computed exactly once, no matter how many threads raced on it.
        assert len(computes) == len(programs)
        assert cache.stats.misses == len(programs)
        assert cache.stats.hits == THREADS * ROUNDS - len(programs)
        assert cache.stats.lookups == THREADS * ROUNDS

    def test_waiters_reraise_the_computing_threads_error(self):
        cache = DenotationCache()
        program = _program()
        state = _state()
        gate = threading.Barrier(THREADS)
        failures = []
        failures_lock = threading.Lock()

        def compute():
            raise RuntimeError("deterministic failure")

        def worker():
            gate.wait()
            try:
                cache.get_or_compute(program, state, None, compute)
            except RuntimeError:
                with failures_lock:
                    failures.append(1)

        _hammer(worker)
        assert len(failures) == THREADS  # owner and every waiter alike

    def test_eviction_stays_consistent_under_contention(self):
        cache = DenotationCache(max_entries=4)
        programs = [_program(0.01 * i) for i in range(16)]
        state = _state()

        def worker():
            for round_index in range(ROUNDS):
                program = programs[round_index % len(programs)]
                cache.get_or_compute(program, state, BINDING, lambda: state)

        _hammer(worker)
        assert len(cache) <= 4
        assert cache.stats.lookups == THREADS * ROUNDS
        assert cache.stats.hits + cache.stats.misses == cache.stats.lookups


class TestServiceUnderContention:
    @pytest.mark.parametrize("executor", ["inline", "threads"])
    def test_concurrent_submitters_get_exact_books(self, executor):
        service = EstimatorService("auto", executor=executor)
        estimator = Estimator(_program(), ZZ)
        expected = {
            index: Estimator(_program(), ZZ, backend="exact-density").value(
                _state(index), BINDING
            )
            for index in range(4)
        }
        per_thread = 20

        def worker():
            session = service.session()
            handles = session.submit_many(
                [
                    estimator.request_value(_state(index % 4), BINDING)
                    for index in range(per_thread)
                ]
            )
            for index, handle in enumerate(handles):
                assert handle.result() == pytest.approx(expected[index % 4], abs=1e-10)

        _hammer(worker)
        service.close()
        total = THREADS * per_thread
        assert service.stats.submitted == total
        assert service.stats.completed == total
        assert service.stats.failed == 0
        # No torn stats: every request is accounted for exactly once.
        assert service.stats.coalesced <= total - 4

    def test_one_cache_many_threads_no_duplicate_denotes(self):
        backend = StatevectorBackend()
        service = EstimatorService(backend, executor="threads")
        estimator = Estimator(_program(), ZZ)

        def worker():
            handles = service.submit_many(
                [estimator.request_value(_state(index % 4), BINDING) for index in range(8)]
            )
            for handle in handles:
                handle.result()

        _hammer(worker)
        service.close()
        # The pure tier stacks each drain's unique points into one batch;
        # every distinct (program, binding, stack) is denoted at most once
        # per distinct stack composition, and repeats are hits.
        stats = backend.cache.stats
        assert stats.hits + stats.misses == stats.lookups


class TestInlineVsThreadExecutors:
    @settings(max_examples=20, deadline=None)
    @given(
        program=program_strategy(allow_controls=True, allow_init=True),
        binding=binding_strategy(),
        state=input_state_strategy(),
    )
    def test_executors_agree_bit_for_bit(self, program, binding, state):
        """Inline and thread-pool executors run the same grouped calls —
        on any program the router handles, every number must be identical."""
        results = {}
        for executor in ("inline", "threads"):
            service = EstimatorService("auto", executor=executor)
            estimator = Estimator(program, ZZ)
            handles = service.submit_many(
                [estimator.request_value(state, binding)]
                + [estimator.request_gradient(state, binding)]
            )
            results[executor] = [np.asarray(handle.result()) for handle in handles]
            service.close()
        for inline_result, threaded_result in zip(results["inline"], results["threads"]):
            assert np.array_equal(inline_result, threaded_result)

    def test_multi_group_drain_agrees_bit_for_bit(self):
        programs = [_program(0.05 * i) for i in range(6)]
        states = [_state(i) for i in range(4)]

        def run(executor):
            service = EstimatorService("auto", executor=executor)
            estimators = [Estimator(p, ZZ) for p in programs]
            handles = service.submit_many(
                [e.request_value(s, BINDING) for e in estimators for s in states]
            )
            out = [handle.result() for handle in handles]
            service.close()
            return out

        assert run("inline") == run("threads")

    def test_thread_pool_backend_matches_inline_within_1e12(self):
        """The ``"threads"`` *backend* chunks batches across workers, which
        may change BLAS batch shapes — agreement to ≤ 1e-12 is the contract
        (and in practice the rows are bitwise equal)."""
        inline = Estimator(_program(), ZZ, backend=StatevectorBackend())
        threaded_backend = ThreadPoolBackend(StatevectorBackend(), max_workers=4)
        threaded = Estimator(_program(), ZZ, backend=threaded_backend)
        inputs = [(_state(i % 4), BINDING) for i in range(16)]
        try:
            assert np.allclose(
                threaded.values(inputs), inline.values(inputs), atol=1e-12, rtol=0
            )
            assert np.allclose(
                threaded.gradients(inputs), inline.gradients(inputs), atol=1e-12, rtol=0
            )
        finally:
            threaded_backend.shutdown()
