"""Deadlines, cancellation, retries, and degradation (`repro.service.resilience`).

Failure behavior is part of the service contract: a blown deadline or a
cancellation fails with its *typed* error while sibling groups complete; a
transient fault within the retry budget is invisible (the handle resolves
to the fault-free number); beyond the budget the failure is wrapped in
``RetryExhaustedError``; a dying executor pool degrades the drain to the
inline executor and eventually trips the circuit breaker.  And with no
policy configured, everything is bit-for-bit the PR-5 behavior.
"""

import time

import numpy as np
import pytest

from repro.errors import (
    CancelledError,
    DeadlineExceededError,
    RetryExhaustedError,
    SemanticsError,
    ServiceError,
    TransientServiceError,
    is_retryable,
)
from repro.lang.builder import rx, rxx, ry, seq
from repro.lang.parameters import Parameter, ParameterBinding
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.api import Estimator, ExactDensityBackend
from repro.service import (
    CircuitBreaker,
    EstimatorService,
    FaultSchedule,
    FaultyBackend,
    FaultyExecutor,
    InjectedCrash,
    InjectedFatalFault,
    InjectedFault,
    InlineExecutor,
    RetryPolicy,
    ThreadPoolServiceExecutor,
    deadline_after,
    resolve_breaker,
    resolve_retry,
)

THETA = Parameter("theta")
PHI = Parameter("phi")
BINDING = ParameterBinding({THETA: 0.37, PHI: -1.1})
LAYOUT = RegisterLayout(("q1", "q2"))
ZZ = np.diag([1.0, -1.0, -1.0, 1.0]).astype(complex)


def _program():
    return seq([rx(THETA, "q1"), rxx(PHI, "q1", "q2"), ry(0.4, "q2")])


def _state(index: int = 0) -> DensityState:
    return DensityState.basis_state(LAYOUT, {"q1": index % 2, "q2": (index // 2) % 2})


@pytest.fixture(scope="module")
def estimator() -> Estimator:
    return Estimator(_program(), ZZ)


@pytest.fixture(scope="module")
def clean_value(estimator) -> float:
    return Estimator(_program(), ZZ).value(_state(), BINDING)


class TestPolicyObjects:
    def test_retry_policy_validates(self):
        with pytest.raises(SemanticsError):
            RetryPolicy(attempts=0)
        with pytest.raises(SemanticsError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(SemanticsError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(SemanticsError):
            RetryPolicy(jitter=1.5)

    def test_backoff_is_bounded_and_zero_stays_zero(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.3, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(5) == pytest.approx(0.3)
        assert RetryPolicy(base_delay=0.0).delay(1) == 0.0

    def test_jitter_stays_within_the_fraction(self):
        policy = RetryPolicy(
            base_delay=0.1,
            multiplier=1.0,
            jitter=0.5,
            rng=np.random.default_rng(3),
        )
        for failures in range(1, 20):
            assert 0.05 <= policy.delay(failures) <= 0.15

    def test_resolve_retry_spellings(self):
        assert resolve_retry(None) is None
        policy = RetryPolicy(attempts=5)
        assert resolve_retry(policy) is policy
        assert resolve_retry(4).attempts == 4
        with pytest.raises(SemanticsError):
            resolve_retry(True)  # bool is an int — reject the ambiguity
        with pytest.raises(SemanticsError):
            resolve_retry("thrice")

    def test_resolve_breaker_spellings(self):
        assert resolve_breaker(None).threshold == CircuitBreaker().threshold
        assert resolve_breaker(True) is not None
        assert resolve_breaker(False) is None
        assert resolve_breaker(7).threshold == 7
        breaker = CircuitBreaker(2)
        assert resolve_breaker(breaker) is breaker
        with pytest.raises(SemanticsError):
            resolve_breaker("maybe")

    def test_breaker_trips_on_the_threshold_streak(self):
        breaker = CircuitBreaker(threshold=2)
        assert not breaker.record_failure()
        breaker.record_success()  # streak resets
        assert not breaker.record_failure()
        assert breaker.record_failure()  # second consecutive: trips
        assert breaker.tripped
        assert breaker.trips == 1
        assert breaker.failures == 3

    def test_error_classification(self):
        assert is_retryable(InjectedFault("x"))
        assert is_retryable(TransientServiceError("x"))
        assert is_retryable(ConnectionError("x"))
        assert not is_retryable(InjectedFatalFault("x"))
        assert not is_retryable(DeadlineExceededError("x"))
        assert not is_retryable(CancelledError("x"))
        assert not is_retryable(ValueError("x"))

    def test_deadline_after(self):
        assert deadline_after(None) is None
        assert deadline_after(10.0) > time.monotonic()


class TestDeadlines:
    def test_expired_request_fails_typed_while_siblings_complete(
        self, estimator, clean_value
    ):
        service = EstimatorService(ExactDensityBackend())
        expired = service.submit(
            estimator.request_value(_state(), BINDING, timeout=0.0)
        )
        alive = service.submit(estimator.request_value(_state(), BINDING))
        time.sleep(0.005)  # let the zero deadline pass before the drain
        with pytest.raises(DeadlineExceededError):
            expired.result()
        assert alive.result() == clean_value
        assert service.stats.timeouts == 1
        assert service.stats.errors.get("DeadlineExceededError") == 1

    def test_deadline_is_a_timeout_error_too(self, estimator):
        service = EstimatorService(ExactDensityBackend())
        handle = service.submit(
            estimator.request_value(_state(), BINDING, timeout=0.0)
        )
        time.sleep(0.005)
        with pytest.raises(TimeoutError):  # backward-compatible spelling
            handle.result()

    def test_deadline_bounds_the_retry_loop(self, estimator):
        # The first attempt fails transiently; the backoff sleep outlives
        # the deadline, so the retry round prunes the handle instead of
        # re-running it to exhaustion.
        schedule = FaultSchedule.transient_burst(10)
        service = EstimatorService(
            FaultyBackend(ExactDensityBackend(), schedule),
            retry=RetryPolicy(attempts=10, base_delay=0.6, jitter=0.0),
        )
        handle = service.submit(
            estimator.request_value(_state(), BINDING, timeout=0.25)
        )
        with pytest.raises(DeadlineExceededError):
            handle.result()
        assert service.stats.retries == 1
        assert service.stats.timeouts == 1
        assert len(schedule.injected) == 1  # the deadline stopped attempt 2

    def test_wait_expiry_raises_the_typed_error(self, estimator):
        from repro.service import ResultHandle

        class NeverDrains:
            def flush(self):
                pass

        handle = ResultHandle(
            estimator.request_value(_state(), BINDING), NeverDrains()
        )
        with pytest.raises(DeadlineExceededError):
            handle.result(timeout=0.01)
        with pytest.raises(DeadlineExceededError):
            handle.exception(timeout=0.01)


class TestCancellation:
    def test_cancel_from_the_queue(self, estimator, clean_value):
        service = EstimatorService(ExactDensityBackend())
        doomed = service.submit(estimator.request_value(_state(), BINDING))
        alive = service.submit(estimator.request_value(_state(1), BINDING))
        assert doomed.cancel() is True
        assert service.queue_depth == 1
        with pytest.raises(CancelledError):
            doomed.result()
        assert doomed.cancelled()
        alive.result()
        assert service.stats.cancelled == 1
        assert service.stats.errors.get("CancelledError") == 1

    def test_cancel_after_completion_is_refused(self, estimator, clean_value):
        service = EstimatorService(ExactDensityBackend())
        handle = service.submit(estimator.request_value(_state(), BINDING))
        assert handle.result() == clean_value
        assert handle.cancel() is False
        assert not handle.cancelled()
        assert service.stats.cancelled == 0


class TestRetries:
    def test_transient_fault_within_budget_is_invisible(
        self, estimator, clean_value
    ):
        schedule = FaultSchedule.transient_burst(1)
        service = EstimatorService(
            FaultyBackend(ExactDensityBackend(), schedule),
            retry=RetryPolicy(attempts=2, base_delay=0.0),
        )
        handle = service.submit(estimator.request_value(_state(), BINDING))
        assert handle.result() == clean_value  # bit-identical, not just close
        assert service.stats.retries == 1
        assert service.stats.completed == 1
        assert service.stats.failed == 0

    def test_no_policy_fails_fast_with_the_raw_error(self, estimator):
        schedule = FaultSchedule.transient_burst(1)
        service = EstimatorService(FaultyBackend(ExactDensityBackend(), schedule))
        handle = service.submit(estimator.request_value(_state(), BINDING))
        with pytest.raises(InjectedFault) as excinfo:
            handle.result()
        assert not isinstance(excinfo.value, RetryExhaustedError)
        assert service.stats.retries == 0

    def test_fatal_fault_is_not_retried(self, estimator):
        schedule = FaultSchedule.scripted(["fatal"])
        service = EstimatorService(
            FaultyBackend(ExactDensityBackend(), schedule),
            retry=RetryPolicy(attempts=5, base_delay=0.0),
        )
        handle = service.submit(estimator.request_value(_state(), BINDING))
        with pytest.raises(InjectedFatalFault):
            handle.result()
        assert service.stats.retries == 0
        assert schedule.calls == 1  # exactly one execution

    def test_exhausted_budget_wraps_the_last_error(self, estimator, clean_value):
        schedule = FaultSchedule.transient_burst({0: 99})
        service = EstimatorService(
            FaultyBackend(ExactDensityBackend(), schedule),
            retry=RetryPolicy(attempts=3, base_delay=0.0),
        )
        # The burst dooms the first group to execute — the gradient group,
        # under the planner's largest-cost-first order.
        sibling = service.submit(estimator.request_value(_state(), BINDING))
        doomed = service.submit(estimator.request_gradient(_state(), BINDING))
        with pytest.raises(RetryExhaustedError) as excinfo:
            doomed.result()
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, InjectedFault)
        assert excinfo.value.__cause__ is excinfo.value.last_error
        assert isinstance(excinfo.value, ServiceError)
        # The sibling group of the same drain completed untouched.
        assert sibling.result() == clean_value
        assert service.stats.retries == 2
        assert service.stats.errors.get("RetryExhaustedError") == 1

    def test_only_the_failed_group_reruns(self, estimator, clean_value):
        # Two groups; the gradient group (first to execute under
        # largest-cost-first order) fails twice, the value group is clean
        # and must execute exactly once.
        schedule = FaultSchedule.transient_burst({0: 2})
        service = EstimatorService(
            FaultyBackend(ExactDensityBackend(), schedule),
            retry=RetryPolicy(attempts=3, base_delay=0.0),
        )
        value = service.submit(estimator.request_value(_state(), BINDING))
        gradient = service.submit(estimator.request_gradient(_state(), BINDING))
        assert value.result() == clean_value
        gradient.result()
        faulted_calls = [key for _, key, _ in schedule.injected]
        assert schedule.calls == 4  # gradient×3 (2 faults + success) + value×1
        assert all(key[0] == "derivative" for key in faulted_calls)


class TestDegradation:
    def test_pool_death_degrades_then_trips(self, estimator, clean_value):
        schedule = FaultSchedule.scripted(["crash", "crash", None])
        service = EstimatorService(
            ExactDensityBackend(),
            executor=FaultyExecutor(schedule=schedule),
            breaker=2,
        )
        first = service.submit(estimator.request_value(_state(), BINDING))
        assert first.result() == clean_value  # drain 1: degraded inline
        assert service.stats.degraded == 1
        assert service.stats.trips == 0
        assert service.executor.name == "faulty(inline)"

        second = service.submit(estimator.request_value(_state(1), BINDING))
        second.result()  # drain 2: second consecutive crash trips
        assert service.stats.degraded == 2
        assert service.stats.trips == 1
        assert isinstance(service.executor, InlineExecutor)
        assert service.stats.executor_transitions == [("faulty(inline)", "inline")]

        third = service.submit(estimator.request_value(_state(2), BINDING))
        third.result()  # drain 3: permanently inline, no further degrading
        assert service.stats.degraded == 2
        assert service.stats.errors.get("InjectedCrash") == 2

    def test_breaker_disabled_keeps_the_fail_and_raise_contract(self, estimator):
        schedule = FaultSchedule.scripted(["crash"])
        service = EstimatorService(
            ExactDensityBackend(),
            executor=FaultyExecutor(schedule=schedule),
            breaker=False,
        )
        handle = service.submit(estimator.request_value(_state(), BINDING))
        with pytest.raises(InjectedCrash):
            service.flush()
        assert isinstance(handle.exception(), InjectedCrash)

    def test_keyboard_interrupt_is_not_swallowed(self, estimator):
        class InterruptingBackend(ExactDensityBackend):
            def value_batch(self, program, observable, inputs, **kwargs):
                raise KeyboardInterrupt()

        service = EstimatorService(InterruptingBackend(), breaker=True)
        handle = service.submit(estimator.request_value(_state(), BINDING))
        with pytest.raises(KeyboardInterrupt):
            service.flush()
        # The in-flight handle was failed first, so no caller can hang.
        assert handle.done()
        assert isinstance(handle._error, KeyboardInterrupt)


class TestLifecycle:
    def test_service_context_manager_shuts_the_pool_down(self, estimator):
        executor = ThreadPoolServiceExecutor(max_workers=1)
        with EstimatorService(ExactDensityBackend(), executor=executor) as service:
            handle = service.submit(estimator.request_value(_state(), BINDING))
            handle.result()
        assert executor._pool is None

    def test_close_flushes_pending_work(self, estimator, clean_value):
        service = EstimatorService(ExactDensityBackend())
        handle = service.submit(estimator.request_value(_state(), BINDING))
        service.close()
        assert handle.done()
        assert handle.result() == clean_value

    def test_estimator_context_manager_closes_its_service(self):
        executor = ThreadPoolServiceExecutor(max_workers=1)
        with Estimator(_program(), ZZ, executor=executor) as inner:
            inner.value(_state(), BINDING)
            assert inner._service is not None
        assert inner._service is None
        assert executor._pool is None

    def test_executor_context_manager(self):
        with ThreadPoolServiceExecutor(max_workers=1) as executor:
            executor._ensure_pool()
        assert executor._pool is None


class TestFaultFreeBitCompatibility:
    def test_resilient_service_is_bit_identical_without_faults(self, estimator):
        plain = EstimatorService(ExactDensityBackend())
        resilient = EstimatorService(
            ExactDensityBackend(),
            retry=RetryPolicy(attempts=3),
            breaker=True,
        )
        for index in range(4):
            state = _state(index)
            a = plain.submit(estimator.request_value(state, BINDING)).result()
            b = resilient.submit(
                estimator.request_value(state, BINDING, timeout=30.0)
            ).result()
            assert a == b
            ga = plain.submit(estimator.request_gradient(state, BINDING)).result()
            gb = resilient.submit(
                estimator.request_gradient(state, BINDING, timeout=30.0)
            ).result()
            assert np.array_equal(ga, gb)
        assert resilient.stats.retries == 0
        assert resilient.stats.degraded == 0
        assert resilient.stats.timeouts == 0
