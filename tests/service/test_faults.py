"""The fault-injection harness, and what it proves (`repro.service.faults`).

Two directions of evidence, per schedule mode:

* deterministic bursts — under any per-group transient budget *within* the
  retry policy's attempts, every submitted request (values, derivatives,
  gradients, a whole VQC training epoch) resolves within 1e-10 of the
  fault-free run; one fault *beyond* the budget fails with a typed
  ``ServiceError`` while the other groups of the same plan complete;
* seeded probabilistic schedules (the CI seed matrix sets
  ``REPRO_FAULT_SEED``) — every handle either matches the fault-free value
  or fails typed, and the service's accounting stays coherent.

Plus the planner-isolation satellite: a group failing mid-batch fails
exactly its coalesced handles, leaves sibling groups' results intact, and
releases the denotation cache's single-flight markers.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RetryExhaustedError, SemanticsError, ServiceError
from repro.lang.builder import rx, rxx, ry, seq
from repro.lang.parameters import Parameter, ParameterBinding
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.api import Estimator, ExactDensityBackend
from repro.api.backends import _plain_denote
from repro.service import (
    EstimatorService,
    FaultSchedule,
    FaultyBackend,
    InjectedFatalFault,
    InjectedFault,
    RetryPolicy,
)

THETA = Parameter("theta")
PHI = Parameter("phi")
BINDING = ParameterBinding({THETA: 0.37, PHI: -1.1})
LAYOUT = RegisterLayout(("q1", "q2"))
ZZ = np.diag([1.0, -1.0, -1.0, 1.0]).astype(complex)

def _program():
    return seq([rx(THETA, "q1"), rxx(PHI, "q1", "q2"), ry(0.4, "q2")])


def _state(index: int = 0) -> DensityState:
    return DensityState.basis_state(LAYOUT, {"q1": index % 2, "q2": (index // 2) % 2})


@pytest.fixture(scope="module")
def estimator() -> Estimator:
    return Estimator(_program(), ZZ)


@pytest.fixture(scope="module")
def clean(estimator):
    """Fault-free reference numbers for every request kind."""
    reference = Estimator(_program(), ZZ)
    theta = reference.parameters[0]
    return {
        "value": reference.value(_state(), BINDING),
        "derivative": reference.derivative(theta, _state(), BINDING),
        "gradient": reference.gradient(_state(), BINDING),
    }


class TestFaultSchedule:
    def test_exactly_one_mode(self):
        with pytest.raises(SemanticsError):
            FaultSchedule()
        with pytest.raises(SemanticsError):
            FaultSchedule(script=["transient"], burst=1)

    def test_scripted_actions_are_validated(self):
        with pytest.raises(SemanticsError):
            FaultSchedule.scripted(["explode"])

    def test_scripted_heals_past_the_end(self):
        schedule = FaultSchedule.scripted(["transient"])
        assert schedule.next_action("a") == "transient"
        assert schedule.next_action("a") is None
        assert schedule.injected == [(0, "a", "transient")]

    def test_probabilistic_is_seed_reproducible(self):
        schedule_a = FaultSchedule.probabilistic(11, transient=0.4)
        schedule_b = FaultSchedule.probabilistic(11, transient=0.4)
        draws_a = [schedule_a.next_action(i) for i in range(50)]
        draws_b = [schedule_b.next_action(i) for i in range(50)]
        assert draws_a == draws_b
        assert "transient" in draws_a  # 50 draws at 0.4: some fault fired

    def test_probabilistic_rates_are_validated(self):
        with pytest.raises(SemanticsError):
            FaultSchedule.probabilistic(0, transient=0.8, fatal=0.4)

    def test_burst_counts_per_work_unit_in_first_seen_order(self):
        schedule = FaultSchedule.transient_burst({0: 1, 1: 2})
        assert schedule.next_action("b") == "transient"  # unit 0: "b"
        assert schedule.next_action("a") == "transient"  # unit 1: "a"
        assert schedule.next_action("b") is None  # unit 0 budget spent
        assert schedule.next_action("a") == "transient"
        assert schedule.next_action("a") is None

    def test_burst_budget_is_validated(self):
        with pytest.raises(SemanticsError):
            FaultSchedule.transient_burst(-1)


class TestWithinBudget:
    @settings(max_examples=25, deadline=None)
    @given(
        budgets=st.tuples(
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=2),
        )
    )
    def test_every_request_kind_resolves_to_the_fault_free_number(
        self, estimator, clean, budgets
    ):
        # Three groups — value, single derivative, gradient row — in the
        # planner's largest-cost-first order, each failing transiently
        # `budgets[i]` times.  All budgets are < attempts, so every handle
        # must resolve as if nothing happened.
        schedule = FaultSchedule.transient_burst(dict(enumerate(budgets)))
        service = EstimatorService(
            FaultyBackend(ExactDensityBackend(), schedule),
            retry=RetryPolicy(attempts=3, base_delay=0.0),
        )
        theta = estimator.parameters[0]
        value = service.submit(estimator.request_value(_state(), BINDING))
        derivative = service.submit(
            estimator.request_derivative(theta, _state(), BINDING)
        )
        gradient = service.submit(estimator.request_gradient(_state(), BINDING))
        assert abs(value.result() - clean["value"]) <= 1e-10
        assert abs(derivative.result() - clean["derivative"]) <= 1e-10
        assert np.max(np.abs(gradient.result() - clean["gradient"])) <= 1e-10
        assert len(schedule.injected) == sum(budgets)
        assert service.stats.failed == 0
        assert service.stats.completed == 3

    def test_beyond_budget_fails_typed_while_other_groups_complete(
        self, estimator, clean
    ):
        # The burst hits the first group to execute; under the planner's
        # largest-cost-first order that is the gradient group (a multiset
        # sum dwarfs one value pass), so that's the doomed one.
        schedule = FaultSchedule.transient_burst({0: 5})
        service = EstimatorService(
            FaultyBackend(ExactDensityBackend(), schedule),
            retry=RetryPolicy(attempts=3, base_delay=0.0),
        )
        survivor = service.submit(estimator.request_value(_state(), BINDING))
        doomed = service.submit(estimator.request_gradient(_state(), BINDING))
        with pytest.raises(RetryExhaustedError) as excinfo:
            doomed.result()
        assert isinstance(excinfo.value, ServiceError)
        assert isinstance(excinfo.value.last_error, InjectedFault)
        assert abs(survivor.result() - clean["value"]) <= 1e-10
        assert service.stats.completed == 1
        assert service.stats.failed == 1


class _FailsMidBatch(ExactDensityBackend):
    """Denotes its first input, then dies — a worker crashing mid-group.

    The first input's denotation has already entered the service's cache
    through the supplied ``denote`` when the failure hits, so this is the
    shape that would poison single-flight markers if the cache's error
    path were wrong.
    """

    def __init__(self):
        super().__init__()
        self.remaining_failures = 1

    def value_batch(self, program, observable, inputs, *, denote=_plain_denote):
        if self.remaining_failures > 0:
            self.remaining_failures -= 1
            state, binding = inputs[0]
            denote(program, state, binding)
            raise InjectedFatalFault("mid-batch failure after one denotation")
        return super().value_batch(program, observable, inputs, denote=denote)


class TestFailureIsolation:
    def test_one_group_fails_only_its_coalesced_handles(self, estimator, clean):
        service = EstimatorService(_FailsMidBatch())
        # Two identical requests coalesce into one batch row, two handles.
        first = service.submit(estimator.request_value(_state(), BINDING))
        twin = service.submit(estimator.request_value(_state(), BINDING))
        sibling = service.submit(estimator.request_gradient(_state(), BINDING))
        with pytest.raises(InjectedFatalFault):
            first.result()
        with pytest.raises(InjectedFatalFault):
            twin.result()
        assert np.max(np.abs(sibling.result() - clean["gradient"])) <= 1e-10
        assert service.stats.coalesced == 1
        assert service.stats.failed == 2
        assert service.stats.completed == 1

    def test_single_flight_markers_are_released_and_rerequest_succeeds(
        self, estimator, clean
    ):
        service = EstimatorService(_FailsMidBatch())
        doomed = service.submit(estimator.request_value(_state(), BINDING))
        with pytest.raises(InjectedFatalFault):
            doomed.result()
        # No poisoned keys: every single-flight marker was cleaned up …
        assert service.cache._in_flight == {}
        # … and the same work re-requested on the same service resolves
        # (no deadlock on the cache), reusing the denotation the failed
        # group did complete.
        hits_before = service.cache_stats.hits
        retried = service.submit(estimator.request_value(_state(), BINDING))
        assert abs(retried.result() - clean["value"]) <= 1e-10
        assert service.cache_stats.hits == hits_before + 1


def _matrix_executors() -> tuple[str, ...]:
    """The seeded matrix's executor axis.

    CI's fault-injection job pins one tier per matrix cell through
    ``REPRO_FAULT_EXECUTOR``; an unset (or unknown) value runs all three.
    """
    chosen = os.environ.get("REPRO_FAULT_EXECUTOR")
    tiers = ("inline", "threads", "workers")
    return (chosen,) if chosen in tiers else tiers


def _matrix_executor(name: str):
    from repro.service import SupervisorPolicy, WorkerPoolServiceExecutor

    if name == "workers":
        # Explicit max_workers: the 1-core CI host must still spawn real
        # processes, and worker-side faults must survive the wire.
        return WorkerPoolServiceExecutor(
            max_workers=2, policy=SupervisorPolicy(call_timeout=30.0)
        )
    from repro.service import resolve_executor

    return resolve_executor(name)


class TestSeededScheduleMatrix:
    @pytest.mark.parametrize("executor_name", _matrix_executors())
    def test_probabilistic_faults_resolve_or_fail_typed(
        self, estimator, clean, executor_name
    ):
        seed = int(os.environ.get("REPRO_FAULT_SEED", "0"))
        schedule = FaultSchedule.probabilistic(seed, transient=0.15, fatal=0.05)
        service = EstimatorService(
            FaultyBackend(ExactDensityBackend(), schedule),
            executor=_matrix_executor(executor_name),
            retry=RetryPolicy(attempts=2, base_delay=0.0),
        )
        theta = estimator.parameters[0]
        expectations = []
        for index in range(4):
            state = _state(index)
            reference = Estimator(_program(), ZZ)
            expectations.append(
                (
                    service.submit(estimator.request_value(state, BINDING)),
                    reference.value(state, BINDING),
                )
            )
            expectations.append(
                (
                    service.submit(
                        estimator.request_derivative(theta, state, BINDING)
                    ),
                    reference.derivative(theta, state, BINDING),
                )
            )
        resolved = failed = 0
        try:
            for handle, expected in expectations:
                try:
                    observed = handle.result(timeout=120)
                except ServiceError:
                    failed += 1
                else:
                    resolved += 1
                    assert abs(observed - expected) <= 1e-10
        finally:
            service.close()
        assert resolved + failed == len(expectations)
        assert service.stats.completed == resolved
        assert service.stats.failed == failed
        assert service.stats.submitted == len(expectations)


class TestVQCTrainingUnderFaults:
    def test_one_epoch_matches_the_fault_free_run(self):
        from repro.vqc.classifier import build_p1
        from repro.vqc.datasets import paper_dataset
        from repro.vqc.training import GradientDescentTrainer, TrainingConfig

        dataset = paper_dataset()[:2]
        base = dict(epochs=1, seed=0, record_accuracy=False)

        clean_trainer = GradientDescentTrainer(
            build_p1(), TrainingConfig(backend="auto", **base)
        )
        clean_result = clean_trainer.train(dataset)

        schedule = FaultSchedule.transient_burst(1)
        from repro.api import StatevectorBackend

        faulty_trainer = GradientDescentTrainer(
            build_p1(),
            TrainingConfig(
                backend=FaultyBackend(StatevectorBackend(), schedule),
                retry=RetryPolicy(attempts=2, base_delay=0.0),
                **base,
            ),
        )
        faulty_result = faulty_trainer.train(dataset)

        assert len(schedule.injected) > 0  # faults actually fired
        assert faulty_trainer.estimator.service.stats.retries > 0
        assert len(faulty_result.losses) == len(clean_result.losses)
        for faulty_loss, clean_loss in zip(
            faulty_result.losses, clean_result.losses
        ):
            assert abs(faulty_loss - clean_loss) <= 1e-10

    def test_retry_spec_is_validated_at_configuration_time(self):
        from repro.errors import TrainingError
        from repro.vqc.training import TrainingConfig

        with pytest.raises(TrainingError):
            TrainingConfig(retry="thrice")
        with pytest.raises(TrainingError):
            TrainingConfig(timeout=0.0)
