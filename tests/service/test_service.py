"""Semantics of the request-based execution protocol (`repro.service`).

The service must be *observationally invisible* on the inline executor —
every number identical to the direct backend call — while actually
restructuring execution: grouping same-work requests into one batched
backend call, coalescing identical points, ordering by priority and
round-robin session fairness, and containing failures to their group.
"""

import numpy as np
import pytest

from repro.errors import SemanticsError, TrainingError
from repro.lang.builder import rx, rxx, ry, seq, case_on_qubit
from repro.lang.parameters import Parameter, ParameterBinding
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.api import (
    Estimator,
    ExactDensityBackend,
    ShotSamplingBackend,
    StatevectorBackend,
    ThreadPoolBackend,
    backend_spellings,
    resolve_backend,
)
from repro.service import (
    EstimatorService,
    ExecutionRequest,
    InlineExecutor,
    ProcessPoolServiceExecutor,
    RequestKind,
    ThreadPoolServiceExecutor,
    WorkerPoolServiceExecutor,
    resolve_executor,
)

THETA = Parameter("theta")
PHI = Parameter("phi")
BINDING = ParameterBinding({THETA: 0.37, PHI: -1.1})
LAYOUT = RegisterLayout(("q1", "q2"))
ZZ = np.diag([1.0, -1.0, -1.0, 1.0]).astype(complex)


def _program():
    return seq([rx(THETA, "q1"), rxx(PHI, "q1", "q2"), ry(0.4, "q2")])


def _branching_program():
    return seq(
        [rx(THETA, "q1"), case_on_qubit("q1", {0: ry(PHI, "q2"), 1: rx(PHI, "q2")})]
    )


def _state(index: int = 0) -> DensityState:
    return DensityState.basis_state(
        LAYOUT, {"q1": index % 2, "q2": (index // 2) % 2}
    )


class TestExecutionRequest:
    def test_value_request_requires_a_program(self):
        with pytest.raises(SemanticsError):
            ExecutionRequest(RequestKind.VALUE, Estimator(_program(), ZZ)._spec(), _state())

    def test_derivative_request_requires_exactly_one_set(self):
        estimator = Estimator(_program(), ZZ)
        sets = tuple(estimator.program_set(p) for p in estimator.parameters)
        with pytest.raises(SemanticsError):
            ExecutionRequest(
                RequestKind.DERIVATIVE, estimator._spec(), _state(), program_sets=sets
            )

    def test_gradient_request_allows_an_empty_axis(self):
        request = ExecutionRequest.gradient([], ZZ, _state())
        assert request.program_sets == ()

    def test_unparameterized_gradient_resolves_to_an_empty_row(self):
        estimator = Estimator(seq([ry(0.3, "q1"), rxx(0.2, "q1", "q2")]), ZZ)
        row = estimator.gradient(_state(), None)
        assert row.shape == (0,)


class TestHandles:
    def test_submit_returns_a_pending_handle(self):
        service = EstimatorService()
        estimator = Estimator(_program(), ZZ)
        handle = service.submit(estimator.request_value(_state(), BINDING))
        assert not handle.done()
        assert service.queue_depth == 1

    def test_result_drains_and_matches_the_direct_call(self):
        service = EstimatorService()
        estimator = Estimator(_program(), ZZ)
        handle = service.submit(estimator.request_value(_state(), BINDING))
        reference = ExactDensityBackend().value(
            _program(), estimator._spec(), _state(), BINDING
        )
        assert handle.result() == reference
        assert handle.done()
        assert service.queue_depth == 0

    def test_flush_resolves_every_handle(self):
        service = EstimatorService()
        estimator = Estimator(_program(), ZZ)
        handles = service.submit_many(
            [estimator.request_value(_state(i), BINDING) for i in range(4)]
        )
        service.flush()
        assert all(handle.done() for handle in handles)

    def test_exception_is_contained_to_its_group(self):
        service = EstimatorService()
        good = Estimator(_program(), ZZ)
        bad_observable = np.eye(8, dtype=complex)  # wrong dimension
        bad = Estimator(_program(), bad_observable)
        bad_handle = service.submit(bad.request_value(_state(), BINDING))
        good_handle = service.submit(good.request_value(_state(), BINDING))
        assert bad_handle.exception() is not None
        with pytest.raises(Exception):
            bad_handle.result()
        assert good_handle.result() == pytest.approx(
            ExactDensityBackend().value(_program(), good._spec(), _state(), BINDING)
        )
        assert service.stats.failed == 1
        assert service.stats.completed == 1


class TestPlanning:
    def test_same_program_value_requests_share_one_group(self):
        service = EstimatorService()
        estimator = Estimator(_program(), ZZ)
        service.submit_many(
            [estimator.request_value(_state(i), BINDING) for i in range(4)]
        )
        plan = service.plan_pending()
        assert len(plan.groups) == 1
        assert len(plan.groups[0].rows) == 4

    def test_different_programs_split_groups(self):
        service = EstimatorService()
        a = Estimator(_program(), ZZ)
        b = Estimator(_branching_program(), ZZ)
        service.submit_many(
            [a.request_value(_state(), BINDING), b.request_value(_state(), BINDING)]
        )
        assert len(service.plan_pending().groups) == 2

    def test_identical_points_coalesce_to_one_computation(self):
        service = EstimatorService(ExactDensityBackend())
        estimator = Estimator(_program(), ZZ)
        request = estimator.request_value(_state(), BINDING)
        handles = service.submit_many([request, request, request])
        values = [handle.result() for handle in handles]
        assert values[0] == values[1] == values[2]
        assert service.stats.coalesced == 2
        assert service.stats.coalesce_rate == pytest.approx(2 / 3)
        # One denotation total: the coalesced rows never reached the backend.
        assert service.cache_stats.misses == 1

    def test_cross_estimator_coalescing(self):
        """Two estimators over the same program coalesce on a shared service."""
        service = EstimatorService(ExactDensityBackend())
        program = _program()
        first = Estimator(program, ZZ)
        second = Estimator(program, ZZ, targets=None)
        # Same observable *object* is required for a shared group; same
        # matrix values under different objects stay separate (conservative).
        shared = first._spec()
        request_a = ExecutionRequest.value(program, shared, _state(), BINDING)
        request_b = ExecutionRequest.value(program, shared, _state(), BINDING)
        handles = service.submit_many([request_a, request_b])
        assert handles[0].result() == handles[1].result()
        assert service.stats.coalesced == 1
        assert second is not first  # the point: distinct clients, one compute

    def test_sampling_backends_do_not_coalesce(self):
        service = EstimatorService(
            ShotSamplingBackend(precision=0.4, rng=np.random.default_rng(0))
        )
        assert service.coalesce is False
        estimator = Estimator(_program(), ZZ)
        request = estimator.request_value(_state(), BINDING)
        handles = service.submit_many([request, request])
        results = {handles[0].result(), handles[1].result()}
        assert service.stats.coalesced == 0
        assert len(results) == 2  # independent draws

    def test_wrapped_sampling_backends_do_not_coalesce(self):
        from repro.api import ParallelBackend

        service = EstimatorService(
            ParallelBackend(ShotSamplingBackend(rng=np.random.default_rng(0)))
        )
        assert service.coalesce is False

    def test_derivative_and_gradient_share_a_batch_row(self):
        service = EstimatorService(ExactDensityBackend())
        estimator = Estimator(_program(), ZZ)
        program_set = estimator.program_set(estimator.parameters[0])
        derivative = ExecutionRequest.derivative(
            program_set, estimator._spec(), _state(), BINDING
        )
        gradient = ExecutionRequest.gradient(
            [program_set], estimator._spec(), _state(), BINDING
        )
        handles = service.submit_many([derivative, gradient])
        scalar = handles[0].result()
        row = handles[1].result()
        assert isinstance(scalar, float)
        assert row.shape == (1,)
        assert scalar == row[0]
        assert service.stats.coalesced == 1

    def test_priority_orders_groups(self):
        service = EstimatorService()
        low = Estimator(_program(), ZZ)
        high = Estimator(_branching_program(), ZZ)
        service.submit(low.request_value(_state(), BINDING))
        service.submit(high.request_value(_state(), BINDING, priority=5))
        plan = service.plan_pending()
        assert plan.groups[0].template.priority == 5

    def test_sessions_interleave_round_robin(self):
        service = EstimatorService()
        estimator = Estimator(_program(), ZZ)
        alice = service.session(name="alice")
        bob = service.session(name="bob")
        # Alice enqueues her whole batch before Bob submits anything…
        alice.submit_many([estimator.request_value(_state(i), BINDING) for i in range(3)])
        bob.submit_many([estimator.request_value(_state(3), BINDING)])
        plan = service.plan_pending()
        rows = plan.groups[0].rows
        # …but Bob's first request drains right after Alice's first: rank 0
        # of every session outranks rank 1 of any.
        states = [row.request.state for row in rows]
        assert states[1].matrix[3, 3] == pytest.approx(1.0)  # bob's |q1=1,q2=1⟩

    def test_session_priority_bumps_requests(self):
        service = EstimatorService()
        estimator = Estimator(_program(), ZZ)
        urgent = service.session(name="urgent", priority=10)
        handle = urgent.submit(estimator.request_value(_state(), BINDING))
        assert handle.request.priority == 10


class TestExecutors:
    def test_resolve_executor_names(self):
        assert isinstance(resolve_executor(None), InlineExecutor)
        assert isinstance(resolve_executor("inline"), InlineExecutor)
        assert isinstance(resolve_executor("threads"), ThreadPoolServiceExecutor)
        assert isinstance(resolve_executor("thread-pool"), ThreadPoolServiceExecutor)
        assert isinstance(resolve_executor("workers"), WorkerPoolServiceExecutor)
        assert isinstance(resolve_executor("worker-pool"), WorkerPoolServiceExecutor)
        instance = InlineExecutor()
        assert resolve_executor(instance) is instance

    def test_processes_spelling_is_a_deprecated_worker_pool_alias(self):
        with pytest.warns(DeprecationWarning, match="spell it 'workers'"):
            executor = resolve_executor("processes")
        assert isinstance(executor, WorkerPoolServiceExecutor)

    def test_resolve_executor_unknown_name_lists_spellings(self):
        with pytest.raises(SemanticsError, match="inline.*threads.*processes"):
            resolve_executor("bogus")

    def test_thread_executor_matches_inline_bitwise(self):
        programs = [_program(), _branching_program()]
        states = [_state(i) for i in range(4)]

        def run(executor):
            service = EstimatorService("auto", executor=executor)
            estimators = [Estimator(p, ZZ) for p in programs]
            handles = service.submit_many(
                [e.request_value(s, BINDING) for e in estimators for s in states]
                + [e.request_gradient(s, BINDING) for e in estimators for s in states[:2]]
            )
            results = [handle.result() for handle in handles]
            service.close()
            return results

        inline, threaded = run("inline"), run("threads")
        for a, b in zip(inline, threaded):
            assert np.array_equal(np.asarray(a), np.asarray(b))

    def test_process_executor_matches_inline(self):
        executor = ProcessPoolServiceExecutor(max_workers=2)
        service = EstimatorService(ExactDensityBackend(), executor=executor)
        a = Estimator(_program(), ZZ)
        b = Estimator(_branching_program(), ZZ)
        handles = service.submit_many(
            [a.request_value(_state(i), BINDING) for i in range(2)]
            + [b.request_value(_state(i), BINDING) for i in range(2)]
        )
        try:
            results = [handle.result() for handle in handles]
        finally:
            service.close()
        inline = EstimatorService(ExactDensityBackend())
        expected = [
            h.result()
            for h in inline.submit_many(
                [a.request_value(_state(i), BINDING) for i in range(2)]
                + [b.request_value(_state(i), BINDING) for i in range(2)]
            )
        ]
        assert results == expected

    def test_per_tier_timings_are_recorded(self):
        service = EstimatorService("auto")
        pure = Estimator(_program(), ZZ)
        branching = Estimator(_branching_program(), ZZ)
        service.submit_many(
            [
                pure.request_value(_state(), BINDING),
                branching.request_value(_state(), BINDING),
                pure.request_gradient(_state(), BINDING),
            ]
        )
        service.flush()
        assert "value/pure" in service.stats.timings
        assert "value/trajectory" in service.stats.timings
        assert "derivative/statevector" in service.stats.timings


class TestEstimatorClient:
    def test_estimator_entry_points_share_the_service_cache(self):
        estimator = Estimator(_program(), ZZ)
        estimator.value(_state(), BINDING)
        misses = estimator.cache_stats.misses
        handle = estimator.service.submit(estimator.request_value(_state(), BINDING))
        assert handle.result() == pytest.approx(estimator.value(_state(), BINDING))
        assert estimator.cache_stats.misses == misses  # pure cache hits

    def test_service_rebuilds_when_backend_is_swapped(self):
        estimator = Estimator(_program(), ZZ)
        first = estimator.service
        estimator.backend = StatevectorBackend()
        assert estimator.service is not first
        assert estimator.service.backend is estimator.backend

    def test_session_factory(self):
        estimator = Estimator(_program(), ZZ)
        with estimator.session(name="mine", priority=1) as session:
            handle = session.submit(estimator.request_value(_state(), BINDING))
        assert handle.done()


class TestBackendSpellings:
    def test_threads_spec_resolves_to_thread_pool_backend(self):
        backend = resolve_backend("threads")
        assert isinstance(backend, ThreadPoolBackend)
        assert isinstance(backend.inner, StatevectorBackend)
        assert isinstance(resolve_backend("thread-pool"), ThreadPoolBackend)

    def test_unknown_backend_error_lists_every_spelling(self):
        with pytest.raises(SemanticsError) as excinfo:
            resolve_backend("not-a-backend")
        message = str(excinfo.value)
        for spelling in backend_spellings():
            assert spelling in message

    def test_estimator_accepts_threads_backend_spec(self):
        estimator = Estimator(_program(), ZZ, backend="threads")
        reference = Estimator(_program(), ZZ, backend="auto")
        inputs = [(_state(i), BINDING) for i in range(4)]
        assert np.allclose(
            estimator.values(inputs), reference.values(inputs), atol=1e-12
        )
        estimator.backend.shutdown()

    def test_training_config_validates_backend_spec(self):
        from repro.vqc.training import TrainingConfig

        with pytest.raises(TrainingError) as excinfo:
            TrainingConfig(backend="not-a-backend")
        message = str(excinfo.value)
        for spelling in backend_spellings():
            assert spelling in message
        TrainingConfig(backend="threads")  # every valid spelling passes
