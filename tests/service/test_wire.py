"""The worker wire protocol (`repro.service.wire`).

Two properties carry the whole distributed design:

* **Round-trip identity** — every :class:`ExecutionRequest` kind (value,
  derivative, gradient; qubit and qutrit states; compiled derivative
  multisets) survives ``encode_request`` → ``decode_request`` with its
  computation unchanged.  The worker executes the decoded request; if the
  round trip lost anything, "bit-identical recovery" would be a lie.
* **Key agreement** — two requests share a wire key
  (:func:`request_wire_key`, content-addressed) **iff** they share a
  :class:`~repro.api.cache.DenotationCache` key (identity-addressed, via
  the planner's group + coalesce keys).  The client's result store and the
  worker-side install cache both dedupe on the wire key, so disagreement
  in either direction means wrong reuse or lost reuse.  The equivalence
  holds over any request pool whose distinct work objects have distinct
  content — the situation every real submitter is in.

Framing malformations (short frame, truncation, unknown type, CRC
corruption, oversize claims) must each be a typed
:class:`~repro.errors.WireProtocolError` — never a wrong value.
"""

import pickle
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    RemoteExecutionError,
    SemanticsError,
    TransientServiceError,
    WireProtocolError,
)
from repro.api import Estimator
from repro.lang.builder import rx, rxx, ry, seq
from repro.lang.parameters import Parameter, ParameterBinding
from repro.linalg.observables import pauli_observable
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.sim.statevector import StateVector
from repro.service import (
    EstimatorService,
    ExecutionRequest,
    decode_request,
    encode_request,
    request_wire_key,
)
from repro.service import wire
from repro.service.planner import _state_point_key
from repro.service.wire import request_cache_key

from tests.conftest import (
    PARAMETERS,
    QUBITS,
    binding_strategy,
    input_state_strategy,
    observable_strategy,
    program_strategy,
)

THETA, PHI = PARAMETERS
LAYOUT = RegisterLayout(QUBITS)
BINDING = ParameterBinding({THETA: 0.37, PHI: -1.1})
ZZ = np.diag([1.0, -1.0, -1.0, 1.0]).astype(complex)


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


class TestFraming:
    @pytest.mark.parametrize("message_type", sorted(wire._MESSAGE_TYPES))
    def test_round_trip_every_message_type(self, message_type):
        for payload in (b"", b"x", b"a" * 1000):
            frame = wire.encode_frame(message_type, payload)
            assert wire.decode_frame(frame) == (message_type, payload)

    def test_encode_rejects_unknown_type(self):
        with pytest.raises(SemanticsError):
            wire.encode_frame(99, b"")

    def test_short_frame_is_a_protocol_violation(self):
        with pytest.raises(WireProtocolError, match="short frame"):
            wire.decode_frame(b"\xde\xad\xbe\xef")

    def test_truncated_payload_is_a_protocol_violation(self):
        frame = wire.encode_frame(wire.RESULT, b"hello world")
        with pytest.raises(WireProtocolError, match="length mismatch"):
            wire.decode_frame(frame[:-3])

    def test_unknown_message_type_is_a_protocol_violation(self):
        frame = bytearray(wire.encode_frame(wire.PING, b""))
        frame[4] = 200  # the type byte, after the 4-byte length
        with pytest.raises(WireProtocolError, match="unknown wire message type"):
            wire.decode_frame(bytes(frame))

    def test_flipped_payload_byte_fails_the_crc(self):
        frame = bytearray(wire.encode_frame(wire.RESULT, b"hello world"))
        frame[-1] ^= 0xFF
        with pytest.raises(WireProtocolError, match="CRC"):
            wire.decode_frame(bytes(frame))

    def test_oversize_length_claim_is_rejected_before_reading(self):
        header = struct.pack("!IBI", wire.MAX_FRAME_BYTES + 1, wire.PING, 0)
        with pytest.raises(WireProtocolError, match="wire limit"):
            wire.decode_frame(header)

    def test_undecodable_payload_is_a_protocol_violation(self):
        with pytest.raises(WireProtocolError, match="undecodable"):
            wire.loads(b"\x00not a pickle")


# ---------------------------------------------------------------------------
# Error transport
# ---------------------------------------------------------------------------


class TestErrorTransport:
    def test_picklable_error_travels_verbatim(self):
        original = TransientServiceError("backend hiccup")
        decoded = wire.decode_error(wire.encode_error(original))
        assert type(decoded) is TransientServiceError
        assert str(decoded) == "backend hiccup"
        assert decoded.retryable is True

    def test_unpicklable_error_degrades_to_a_summary(self):
        class LocalFailure(Exception):  # class unreachable by pickle
            retryable = True

        try:
            raise LocalFailure("cannot cross the wire whole")
        except LocalFailure as error:
            decoded = wire.decode_error(wire.encode_error(error))
        assert isinstance(decoded, RemoteExecutionError)
        assert "LocalFailure" in str(decoded)
        assert decoded.retryable is True  # the original's flag is mirrored
        assert "cannot cross the wire whole" in decoded.remote_traceback


# ---------------------------------------------------------------------------
# Request round-trips
# ---------------------------------------------------------------------------


def _assert_same_computation(decoded, request):
    """The decoded request denotes the same computation as the original.

    Field-for-field equality plus *execution identity*: both requests run
    through the deterministic inline service and must produce the same
    bits.  (Wire-key equality across a round trip is deliberately NOT
    asserted here: pickle bytes are identity-sensitive — the unpickler
    interns short strings the source graph held as equal-but-distinct
    objects — so content digests are only canonical within one process,
    which is the only place the executor ever compares them.)
    """
    assert decoded.kind is request.kind
    assert decoded.priority == request.priority
    assert decoded.observable == request.observable
    assert _state_point_key(decoded.state) == _state_point_key(request.state)
    if request.binding is None:
        assert decoded.binding is None
    else:
        assert decoded.binding.to_dict() == request.binding.to_dict()
    service = EstimatorService(backend="exact")
    handles = [service.submit(r) for r in (request, decoded)]
    original, round_tripped = [h.result() for h in handles]
    assert np.array_equal(np.asarray(original), np.asarray(round_tripped))


class TestRequestRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        program=program_strategy(max_depth=2),
        observable=observable_strategy(),
        state=input_state_strategy(),
        binding=binding_strategy(),
        priority=st.integers(min_value=-5, max_value=5),
    )
    def test_value_requests(self, program, observable, state, binding, priority):
        request = ExecutionRequest.value(
            program, observable, state, binding, priority=priority
        )
        decoded = decode_request(encode_request(request))
        assert decoded.program_sets is None
        _assert_same_computation(decoded, request)

    @settings(max_examples=15, deadline=None)
    @given(
        program=program_strategy(max_depth=2),
        observable=observable_strategy(),
        state=input_state_strategy(),
        binding=binding_strategy(),
    )
    def test_derivative_and_gradient_requests(
        self, program, observable, state, binding
    ):
        estimator = Estimator(program, observable)
        sets = tuple(estimator.program_set(p) for p in estimator.parameters)
        requests = [ExecutionRequest.gradient(sets, observable, state, binding)]
        if sets:  # an unparameterized draw still exercises the empty row
            requests.append(
                ExecutionRequest.derivative(sets[0], observable, state, binding)
            )
        for request in requests:
            decoded = decode_request(encode_request(request))
            assert decoded.program is None
            assert len(decoded.program_sets) == len(request.program_sets)
            _assert_same_computation(decoded, request)

    def test_qutrit_state_round_trips(self):
        layout = RegisterLayout(("q1", "t1"), {"q1": 2, "t1": 3})
        state = DensityState.basis_state(layout, {"q1": 0, "t1": 2})
        observable = np.diag([1.0, 0.5, -1.0, -0.5, 0.0, 1.0]).astype(complex)
        request = ExecutionRequest.value(
            seq([rx(THETA, "q1")]), observable, state, ParameterBinding({THETA: 0.3})
        )
        decoded = decode_request(encode_request(request))
        _assert_same_computation(decoded, request)
        assert decoded.state.layout.dims == (2, 3)

    def test_statevector_state_round_trips(self):
        state = StateVector.basis_state(LAYOUT, {"q1": 1, "q2": 0})
        request = ExecutionRequest.value(
            seq([rx(THETA, "q1"), rxx(PHI, "q1", "q2")]), ZZ, state, BINDING
        )
        decoded = decode_request(encode_request(request))
        _assert_same_computation(decoded, request)
        assert isinstance(decoded.state, StateVector)

    def test_deadline_is_dropped_by_design(self):
        request = ExecutionRequest.value(
            seq([rx(THETA, "q1")]), ZZ, DensityState.basis_state(LAYOUT, {}),
            BINDING, timeout=30.0,
        )
        assert request.deadline is not None
        decoded = decode_request(encode_request(request))
        assert decoded.deadline is None  # client clock never crosses the wire

    def test_garbage_payload_is_a_protocol_violation(self):
        with pytest.raises(WireProtocolError):
            decode_request(wire.dumps(("not", "a", "request")))

    def test_version_mismatch_is_a_protocol_violation(self):
        request = ExecutionRequest.value(
            seq([rx(THETA, "q1")]), ZZ, DensityState.basis_state(LAYOUT, {}), BINDING
        )
        payload = list(pickle.loads(encode_request(request)))
        payload[1] = wire.WIRE_VERSION + 1
        with pytest.raises(WireProtocolError, match="version"):
            decode_request(wire.dumps(tuple(payload)))


# ---------------------------------------------------------------------------
# Wire key <=> cache key agreement
# ---------------------------------------------------------------------------

# A fixed pool whose distinct work objects have distinct *content* (three
# structurally different programs, two observables), shared across draws so
# that repeats reuse the same object — the regime where identity keys and
# content keys must induce the same partition.
_POOL_PROGRAMS = (
    seq([rx(THETA, "q1")]),
    seq([rx(THETA, "q1"), rxx(PHI, "q1", "q2")]),
    seq([ry(0.25, "q2"), rx(THETA, "q1")]),
)
_POOL_OBSERVABLES = (pauli_observable("ZZ"), pauli_observable("XX"))
_POOL_STATES = tuple(
    DensityState.basis_state(LAYOUT, {"q1": i % 2, "q2": (i // 2) % 2})
    for i in range(3)
)
_POOL_BINDINGS = (
    ParameterBinding({THETA: 0.1, PHI: 0.2}),
    ParameterBinding({THETA: 0.1, PHI: 0.3}),
)
_POOL_ESTIMATORS = tuple(
    Estimator(program, observable)
    for program in _POOL_PROGRAMS[:2]
    for observable in _POOL_OBSERVABLES
)


def _pool_request(kind, work_index, observable_index, state_index, binding_index):
    state = _POOL_STATES[state_index]
    binding = _POOL_BINDINGS[binding_index]
    if kind == "value":
        return ExecutionRequest.value(
            _POOL_PROGRAMS[work_index % len(_POOL_PROGRAMS)],
            _POOL_OBSERVABLES[observable_index],
            state,
            binding,
        )
    estimator = _POOL_ESTIMATORS[work_index % len(_POOL_ESTIMATORS)]
    sets = tuple(estimator.program_set(p) for p in estimator.parameters)
    if kind == "derivative":
        return ExecutionRequest.derivative(
            sets[0], estimator._spec(), state, binding
        )
    return ExecutionRequest.gradient(sets, estimator._spec(), state, binding)


_REQUEST_DRAW = st.tuples(
    st.sampled_from(("value", "derivative", "gradient")),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=1),
)


class TestKeyAgreement:
    @settings(max_examples=60, deadline=None)
    @given(left=_REQUEST_DRAW, right=_REQUEST_DRAW)
    def test_wire_key_iff_denotation_cache_key(self, left, right):
        a, b = _pool_request(*left), _pool_request(*right)
        assert (request_wire_key(a) == request_wire_key(b)) == (
            request_cache_key(a) == request_cache_key(b)
        )

    def test_same_request_twice_shares_both_keys(self):
        a = _pool_request("value", 0, 0, 0, 0)
        b = _pool_request("value", 0, 0, 0, 0)
        assert request_wire_key(a) == request_wire_key(b)
        assert request_cache_key(a) == request_cache_key(b)

    def test_binding_values_split_the_key(self):
        a = _pool_request("value", 0, 0, 0, 0)
        b = _pool_request("value", 0, 0, 0, 1)
        assert request_wire_key(a) != request_wire_key(b)
        assert request_cache_key(a) != request_cache_key(b)

    def test_derivative_and_single_set_gradient_share_a_row(self):
        # A DERIVATIVE over one multiset and a GRADIENT whose axis is that
        # same one-set tuple denote the same batch row: one wire key.
        estimator = Estimator(seq([rx(THETA, "q1")]), pauli_observable("ZZ"))
        (program_set,) = (estimator.program_set(THETA),)
        state, binding = _POOL_STATES[0], _POOL_BINDINGS[0]
        derivative = ExecutionRequest.derivative(
            program_set, estimator._spec(), state, binding
        )
        gradient = ExecutionRequest.gradient(
            (program_set,), estimator._spec(), state, binding
        )
        assert request_wire_key(derivative) == request_wire_key(gradient)

    def test_wire_key_is_content_addressed_across_processes(self):
        # The same request rebuilt from its wire bytes — new object
        # identities everywhere — keeps its wire key: that is what lets a
        # respawned worker's install cache and the client's result store
        # recognize work they have seen before.
        request = _pool_request("value", 1, 1, 2, 0)
        decoded = decode_request(encode_request(request))
        assert request_wire_key(decoded) == request_wire_key(request)
