"""Statistical cross-checks of the execution backends (Section 7).

The shot-sampling backend must agree with the exact density backend within
its Chernoff precision target — including on programs with control flow
(``case``/``while``), on mixed qubit/qutrit registers, and for *local*
observables (the path that spectrally decomposes the small target operator
instead of the full-space one).
"""

import numpy as np
import pytest

from repro.errors import SemanticsError
from repro.lang.builder import (
    apply_gate,
    bounded_while_on_qubit,
    case_on_qubit,
    rx,
    rxx,
    ry,
    rz,
    seq,
)
from repro.lang.ast import Init
from repro.lang.gates import hadamard
from repro.lang.parameters import Parameter, ParameterBinding
from repro.linalg.observables import diagonal_observable, pauli_observable
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.api import Estimator, ExactDensityBackend, ShotSamplingBackend
from repro.autodiff.execution import differentiate_and_compile

THETA = Parameter("theta")
PHI = Parameter("phi")
BINDING = ParameterBinding({THETA: 0.52, PHI: -0.8})
PRECISION = 0.2


def _case_program():
    return seq(
        [
            rx(THETA, "q1"),
            rxx(PHI, "q1", "q2"),
            case_on_qubit("q1", {0: ry(THETA, "q2"), 1: rz(THETA, "q2")}),
        ]
    )


def _while_program():
    return seq(
        [
            rx(THETA, "q1"),
            bounded_while_on_qubit("q1", seq([ry(THETA, "q2"), rx(0.4, "q1")]), 2),
        ]
    )


def _cross_check(program, observable, state, *, targets=None, seed=0):
    exact = Estimator(program, observable, targets=targets)
    sampled = exact.with_backend(
        ShotSamplingBackend(
            precision=PRECISION, confidence=0.95, rng=np.random.default_rng(seed)
        )
    )
    for parameter in exact.parameters:
        reference = exact.derivative(parameter, state, BINDING)
        estimate = sampled.derivative(parameter, state, BINDING)
        assert abs(estimate - reference) < PRECISION, parameter
    assert abs(sampled.value(state, BINDING) - exact.value(state, BINDING)) < PRECISION


class TestSampledAgainstExact:
    def test_case_program_full_observable(self):
        layout = RegisterLayout(["q1", "q2"])
        state = DensityState.basis_state(layout, {"q2": 1})
        _cross_check(_case_program(), pauli_observable("ZZ"), state, seed=1)

    def test_while_program_full_observable(self):
        layout = RegisterLayout(["q1", "q2"])
        state = DensityState.basis_state(layout, {})
        _cross_check(_while_program(), pauli_observable("ZZ"), state, seed=2)

    def test_case_program_local_observable(self):
        layout = RegisterLayout(["q1", "q2"])
        state = DensityState.basis_state(layout, {"q2": 1})
        _cross_check(
            _case_program(), np.diag([0.0, 1.0]), state, targets=["q2"], seed=3
        )

    def test_mixed_qubit_qutrit_layout(self):
        # A qutrit rides along in the register: the full-space observable has
        # dimension 2·3 and the sampled path must reshape/reduce with mixed
        # per-variable dimensions.
        layout = RegisterLayout(["q1", "t1"], {"q1": 2, "t1": 3})
        program = seq([Init("t1"), rx(THETA, "q1"), ry(PHI, "q1")])
        observable = diagonal_observable([1.0, 0.5, -1.0, -0.5, 0.0, 1.0])
        state = DensityState.basis_state(layout, {"q1": 0, "t1": 2})
        _cross_check(program, observable, state, seed=4)

    def test_mixed_layout_local_observable(self):
        layout = RegisterLayout(["q1", "t1"], {"q1": 2, "t1": 3})
        program = seq([rx(THETA, "q1"), case_on_qubit("q1", {0: Init("t1"), 1: rz(PHI, "q1")})])
        state = DensityState.basis_state(layout, {"t1": 1})
        _cross_check(program, np.diag([1.0, -1.0]), state, targets=["q1"], seed=5)

    def test_additive_forward_program_full_observable(self):
        """The additive ``+`` forward value samples the sum over Compile(P)
        — the multi-program uniform mixture — instead of raising."""
        from repro.lang.builder import sum_programs

        layout = RegisterLayout(["q1", "q2"])
        program = sum_programs(
            [seq([rx(THETA, "q1")]), seq([ry(PHI, "q2"), rxx(0.3, "q1", "q2")])]
        )
        state = DensityState.basis_state(layout, {"q2": 1})
        exact = Estimator(program, pauli_observable("ZZ"))
        sampled = exact.with_backend(
            ShotSamplingBackend(
                precision=PRECISION, confidence=0.95, rng=np.random.default_rng(6)
            )
        )
        reference = exact.value(state, BINDING)
        # The m=2 mixture widens the estimate's range to [-m, m] scaled back,
        # but the Chernoff bound still guarantees the precision target.
        assert abs(sampled.value(state, BINDING) - reference) < PRECISION

    def test_additive_forward_program_local_observable(self):
        from repro.lang.builder import sum_programs

        layout = RegisterLayout(["q1", "q2"])
        program = sum_programs([seq([rx(THETA, "q1")]), seq([ry(PHI, "q1")])])
        state = DensityState.basis_state(layout, {})
        exact = Estimator(program, np.diag([1.0, -1.0]), targets=["q1"])
        sampled = exact.with_backend(
            ShotSamplingBackend(
                precision=PRECISION, confidence=0.95, rng=np.random.default_rng(7)
            )
        )
        reference = exact.value(state, BINDING)
        assert abs(sampled.value(state, BINDING) - reference) < PRECISION


class TestSampledLocalTargetsShim:
    """Satellite: ``evaluate_sampled`` now accepts ``targets`` like ``evaluate``."""

    def test_evaluate_sampled_supports_targets(self):
        program_set = differentiate_and_compile(_case_program(), THETA)
        layout = RegisterLayout(["q1", "q2"])
        state = DensityState.basis_state(layout, {"q2": 1})
        observable = np.diag([0.0, 1.0])
        exact = program_set.evaluate(observable, state, BINDING, targets=["q2"])
        estimate = program_set.evaluate_sampled(
            observable,
            state,
            BINDING,
            targets=["q2"],
            precision=PRECISION,
            rng=np.random.default_rng(6),
        )
        assert abs(estimate - exact) < PRECISION

    def test_evaluate_sampled_targets_match_full_space_estimate_statistically(self):
        program_set = differentiate_and_compile(_case_program(), THETA)
        layout = RegisterLayout(["q1", "q2"])
        state = DensityState.basis_state(layout, {"q2": 1})
        local = np.diag([0.0, 1.0])
        embedded = layout.embed_operator(local, ["q2"])
        local_estimate = program_set.evaluate_sampled(
            local, state, BINDING, targets=["q2"],
            precision=PRECISION, rng=np.random.default_rng(7),
        )
        full_estimate = program_set.evaluate_sampled(
            embedded, state, BINDING,
            precision=PRECISION, rng=np.random.default_rng(7),
        )
        assert abs(local_estimate - full_estimate) < 2 * PRECISION

    def test_evaluate_sampled_rejects_bad_target_dimension(self):
        program_set = differentiate_and_compile(_case_program(), THETA)
        layout = RegisterLayout(["q1", "q2"])
        state = DensityState.basis_state(layout, {})
        with pytest.raises(SemanticsError):
            program_set.evaluate_sampled(
                np.eye(4), state, BINDING, targets=["q2"], precision=PRECISION
            )


class TestBackendProtocol:
    def test_value_batch_default_matches_sequential(self):
        layout = RegisterLayout(["q1", "q2"])
        backend = ExactDensityBackend()
        estimator = Estimator(_case_program(), pauli_observable("ZZ"), backend=backend)
        states = [
            DensityState.basis_state(layout, {"q1": a, "q2": b})
            for a in (0, 1)
            for b in (0, 1)
        ]
        batched = estimator.values([(s, BINDING) for s in states])
        assert batched.tolist() == [estimator.value(s, BINDING) for s in states]

    def test_sampling_backend_validates_parameters(self):
        with pytest.raises(SemanticsError):
            ShotSamplingBackend(precision=0.0)
        with pytest.raises(SemanticsError):
            ShotSamplingBackend(confidence=1.0)

    def test_sampling_is_deterministic_under_a_seeded_rng(self):
        program = seq([rx(THETA, "q1"), apply_gate(hadamard(), "q2")])
        layout = RegisterLayout(["q1", "q2"])
        state = DensityState.basis_state(layout, {})
        values = []
        for _ in range(2):
            estimator = Estimator(
                program,
                pauli_observable("ZX"),
                backend=ShotSamplingBackend(
                    precision=PRECISION, rng=np.random.default_rng(11)
                ),
            )
            values.append(estimator.derivative(THETA, state, BINDING))
        assert values[0] == values[1]


class TestSharedSpectralCache:
    """Satellite: the spectral decomposition is shared across backend instances."""

    def test_equal_matrices_share_one_decomposition(self, monkeypatch):
        from repro.api import backends as backends_module

        calls = {"count": 0}
        real = backends_module.Observable.spectral_measurement

        def counting(self):
            calls["count"] += 1
            return real(self)

        monkeypatch.setattr(backends_module.Observable, "spectral_measurement", counting)
        backends_module._SPECTRAL_CACHE.clear()

        layout = RegisterLayout(["q1", "q2"])
        state = DensityState.basis_state(layout, {})
        program = seq([rx(THETA, "q1"), ry(PHI, "q2")])
        # Two independent backends (fresh estimators, as the legacy shims
        # build per call) with value-equal observable matrices.
        for seed in (0, 1, 2):
            estimator = Estimator(
                program,
                pauli_observable("ZZ"),
                backend=ShotSamplingBackend(
                    precision=PRECISION, rng=np.random.default_rng(seed)
                ),
            )
            estimator.value(state, BINDING)
        assert calls["count"] == 1

    def test_distinct_matrices_get_distinct_entries(self):
        from repro.api.backends import _SPECTRAL_CACHE, _spectral_decomposition

        _SPECTRAL_CACHE.clear()
        _spectral_decomposition(np.diag([1.0, -1.0]).astype(complex))
        _spectral_decomposition(np.diag([1.0, 1.0]).astype(complex))
        assert len(_SPECTRAL_CACHE) == 2

    def test_cache_is_bounded(self):
        from repro.api import backends as backends_module

        backends_module._SPECTRAL_CACHE.clear()
        for value in range(backends_module._SPECTRAL_CACHE_LIMIT + 8):
            matrix = np.diag([float(value), -float(value) - 1.0]).astype(complex)
            backends_module._spectral_decomposition(matrix)
        assert len(backends_module._SPECTRAL_CACHE) == backends_module._SPECTRAL_CACHE_LIMIT
