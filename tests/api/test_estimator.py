"""Unit tests for the :class:`repro.api.Estimator` facade."""

import numpy as np
import pytest

from repro.errors import SemanticsError
from repro.lang.builder import case_on_qubit, rx, rxx, ry, rz, seq
from repro.lang.parameters import Parameter, ParameterBinding
from repro.linalg.observables import pauli_observable
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.api import (
    Estimator,
    ExactDensityBackend,
    ObservableSpec,
    ShotSamplingBackend,
    ordered_parameters,
)
from repro.autodiff import execution
from repro.baselines.finite_diff import finite_difference_gradient
from repro.semantics.observable import observable_semantics

THETA = Parameter("theta")
PHI = Parameter("phi")
LAYOUT = RegisterLayout(["q1", "q2"])
ZZ = pauli_observable("ZZ")
BINDING = ParameterBinding({THETA: 0.52, PHI: -0.8})


def _state(q1=0, q2=0):
    return DensityState.basis_state(LAYOUT, {"q1": q1, "q2": q2})


def _control_program():
    return seq(
        [
            rx(THETA, "q1"),
            rxx(PHI, "q1", "q2"),
            case_on_qubit("q1", {0: ry(THETA, "q2"), 1: rz(THETA, "q2")}),
        ]
    )


class TestConstruction:
    def test_parameters_discovered_in_first_occurrence_order(self):
        estimator = Estimator(_control_program(), ZZ)
        assert estimator.parameters == (THETA, PHI)

    def test_ordered_parameters_helper(self):
        program = seq([ry(PHI, "q2"), rx(THETA, "q1"), rz(PHI, "q2")])
        assert ordered_parameters(program) == (PHI, THETA)

    def test_explicit_parameter_axis_is_respected(self):
        estimator = Estimator(_control_program(), ZZ, parameters=[PHI, THETA])
        assert estimator.parameters == (PHI, THETA)

    def test_layout_validation_rejects_missing_variables(self):
        with pytest.raises(SemanticsError):
            Estimator(_control_program(), ZZ, RegisterLayout(["q1"]))

    def test_layout_validation_rejects_observable_dimension(self):
        with pytest.raises(SemanticsError):
            Estimator(rx(THETA, "q1"), ZZ, RegisterLayout(["q1"]))

    def test_observable_spec_targets_roundtrip(self):
        spec = ObservableSpec.coerce(np.diag([0.0, 1.0]), targets=["q2"])
        estimator = Estimator(_control_program(), spec, LAYOUT)
        assert estimator.observable.targets == ("q2",)

    def test_value_without_observable_raises(self):
        estimator = Estimator(_control_program())
        with pytest.raises(SemanticsError):
            estimator.value(_state(), BINDING)

    def test_seeded_program_sets_must_match_their_parameter(self):
        from repro.autodiff.execution import differentiate_and_compile

        built_for_phi = differentiate_and_compile(_control_program(), PHI)
        with pytest.raises(SemanticsError, match="was built for"):
            Estimator(
                _control_program(), ZZ, program_sets={THETA: built_for_phi}
            )


class TestValueAndGradient:
    def test_value_matches_observable_semantics(self):
        estimator = Estimator(_control_program(), ZZ, LAYOUT)
        expected = observable_semantics(_control_program(), ZZ, _state(), BINDING)
        assert estimator.value(_state(), BINDING) == expected

    def test_gradient_matches_finite_differences(self):
        estimator = Estimator(_control_program(), ZZ, LAYOUT)
        grad = estimator.gradient(_state(), BINDING)
        reference = finite_difference_gradient(
            _control_program(), [THETA, PHI], ZZ, _state(), BINDING
        )
        assert np.allclose(grad, reference, atol=1e-6)

    def test_gradient_matches_legacy_free_function_bitwise(self):
        program = _control_program()
        estimator = Estimator(program, ZZ, LAYOUT)
        legacy = execution.gradient(program, [THETA, PHI], ZZ, _state(), BINDING)
        assert estimator.gradient(_state(), BINDING).tolist() == legacy.tolist()

    def test_gradient_parameter_subset(self):
        estimator = Estimator(_control_program(), ZZ, LAYOUT)
        full = estimator.gradient(_state(), BINDING)
        only_phi = estimator.gradient(_state(), BINDING, parameters=[PHI])
        assert only_phi.shape == (1,)
        assert only_phi[0] == full[1]

    def test_value_and_grad_consistent_with_separate_calls(self):
        estimator = Estimator(_control_program(), ZZ, LAYOUT)
        value, grad = estimator.value_and_grad(_state(), BINDING)
        assert value == estimator.value(_state(), BINDING)
        assert grad.tolist() == estimator.gradient(_state(), BINDING).tolist()

    def test_local_targets_match_embedded_observable(self):
        observable = np.diag([0.0, 1.0])
        local = Estimator(_control_program(), observable, LAYOUT, targets=["q2"])
        embedded = Estimator(
            _control_program(), LAYOUT.embed_operator(observable, ["q2"]), LAYOUT
        )
        state = _state(1, 0)
        assert local.value(state, BINDING) == pytest.approx(embedded.value(state, BINDING))
        assert np.allclose(
            local.gradient(state, BINDING), embedded.gradient(state, BINDING), atol=1e-9
        )

    def test_derivative_single_entry(self):
        estimator = Estimator(_control_program(), ZZ, LAYOUT)
        grad = estimator.gradient(_state(), BINDING)
        assert estimator.derivative(THETA, _state(), BINDING) == grad[0]


class TestBatching:
    def test_values_batch_matches_loop(self):
        estimator = Estimator(_control_program(), ZZ, LAYOUT)
        inputs = [(_state(0, 0), BINDING), (_state(1, 0), BINDING), (_state(0, 1), BINDING)]
        batched = estimator.values(inputs)
        assert batched.tolist() == [estimator.value(s, b) for s, b in inputs]

    def test_gradients_batch_matches_loop(self):
        estimator = Estimator(_control_program(), ZZ, LAYOUT)
        inputs = [(_state(0, 0), BINDING), (_state(1, 1), BINDING)]
        rows = estimator.gradients(inputs)
        assert rows.shape == (2, 2)
        for row, (state, binding) in zip(rows, inputs):
            assert row.tolist() == estimator.gradient(state, binding).tolist()

    def test_values_accept_bare_states_for_unparameterized_programs(self):
        from repro.lang.builder import apply_gate
        from repro.lang.gates import hadamard

        estimator = Estimator(apply_gate(hadamard(), "q1"), pauli_observable("XZ"), LAYOUT)
        values = estimator.values([_state(0, 0), _state(0, 1)])
        assert values.tolist() == [pytest.approx(1.0), pytest.approx(-1.0)]


class TestCompileArtifacts:
    def test_program_sets_are_built_lazily_and_cached(self, monkeypatch):
        calls = []
        real = execution.differentiate_and_compile

        def counting(program, parameter):
            calls.append(parameter)
            return real(program, parameter)

        monkeypatch.setattr(execution, "differentiate_and_compile", counting)
        estimator = Estimator(_control_program(), ZZ, LAYOUT)
        assert calls == []
        estimator.gradient(_state(), BINDING)
        assert calls == [THETA, PHI]
        estimator.gradient(_state(1, 1), BINDING)
        estimator.program_set(THETA)
        assert calls == [THETA, PHI]

    def test_compile_all_builds_every_parameter(self):
        estimator = Estimator(_control_program(), ZZ, LAYOUT)
        estimator.compile_all()
        assert estimator.program_set(THETA).parameter == THETA
        assert estimator.program_set(PHI).parameter == PHI

    def test_with_backend_shares_compiled_artifacts_and_cache(self):
        estimator = Estimator(_control_program(), ZZ, LAYOUT)
        estimator.compile_all()
        sampled = estimator.with_backend(ShotSamplingBackend(rng=np.random.default_rng(0)))
        assert sampled.program_set(THETA) is estimator.program_set(THETA)
        assert sampled.cache is estimator.cache
        # and newly compiled sets propagate in both directions
        extra = Parameter("extra")
        sampled.program_set(extra)
        assert estimator.program_set(extra) is sampled.program_set(extra)

    def test_default_backend_is_exact(self):
        assert isinstance(Estimator(_control_program(), ZZ).backend, ExactDensityBackend)
