"""The process-pool fan-out must be result-identical to inline evaluation."""

import numpy as np
import pytest

from repro.lang.builder import rx, rxx, ry, seq
from repro.lang.parameters import Parameter, ParameterBinding
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.api import (
    Estimator,
    ExactDensityBackend,
    ParallelBackend,
    StatevectorBackend,
)
from repro.api.parallel import _chunks

THETA = Parameter("theta")
PHI = Parameter("phi")
BINDING = ParameterBinding({THETA: 0.37, PHI: -1.1})
ZZ = np.diag([1.0, -1.0, -1.0, 1.0]).astype(complex)


def _program():
    return seq([rx(THETA, "q1"), rxx(PHI, "q1", "q2"), ry(0.4, "q2")])


def _inputs(count=5):
    layout = RegisterLayout(("q1", "q2"))
    states = [
        DensityState.basis_state(layout, {"q1": index % 2, "q2": (index // 2) % 2})
        for index in range(count)
    ]
    return [(state, BINDING) for state in states]


@pytest.fixture(scope="module")
def pool_backend():
    backend = ParallelBackend(ExactDensityBackend(), max_workers=2)
    yield backend
    backend.shutdown()


class TestChunking:
    def test_chunks_cover_everything_in_order(self):
        assert _chunks(list(range(7)), 3) == [[0, 1, 2], [3, 4], [5, 6]]
        assert _chunks([1], 4) == [[1]]
        assert _chunks(list(range(4)), 2) == [[0, 1], [2, 3]]


class TestPoolEquivalence:
    def test_value_batch_matches_inline(self, pool_backend):
        inputs = _inputs()
        inline = Estimator(_program(), ZZ, backend=ExactDensityBackend())
        pooled = Estimator(_program(), ZZ, backend=pool_backend)
        assert np.array_equal(pooled.values(inputs), inline.values(inputs))

    def test_gradients_match_inline(self, pool_backend):
        inputs = _inputs(3)
        inline = Estimator(_program(), ZZ, backend=ExactDensityBackend())
        pooled = Estimator(_program(), ZZ, backend=pool_backend)
        assert np.array_equal(pooled.gradients(inputs), inline.gradients(inputs))

    def test_single_point_gradient_fans_out_over_parameters(self, pool_backend):
        # One input, two parameters: the pool splits the parameter axis.
        state, binding = _inputs(1)[0]
        inline = Estimator(_program(), ZZ)
        pooled = Estimator(_program(), ZZ, backend=pool_backend)
        assert np.array_equal(
            pooled.gradient(state, binding), inline.gradient(state, binding)
        )

    def test_small_batches_run_inline(self):
        backend = ParallelBackend(ExactDensityBackend(), max_workers=2, min_batch_size=64)
        inputs = _inputs(2)
        estimator = Estimator(_program(), ZZ, backend=backend)
        reference = Estimator(_program(), ZZ)
        assert np.array_equal(estimator.values(inputs), reference.values(inputs))
        assert backend._executor is None  # the pool was never spun up

    def test_statevector_inner_backend(self, ):
        backend = ParallelBackend(StatevectorBackend(), max_workers=2)
        try:
            inputs = _inputs(4)
            pooled = Estimator(_program(), ZZ, backend=backend)
            reference = Estimator(_program(), ZZ)
            assert np.allclose(pooled.values(inputs), reference.values(inputs), atol=1e-10)
        finally:
            backend.shutdown()

    def test_single_point_calls_delegate_inline(self, pool_backend):
        state, binding = _inputs(1)[0]
        estimator = Estimator(_program(), ZZ, backend=pool_backend)
        reference = Estimator(_program(), ZZ)
        assert estimator.value(state, binding) == reference.value(state, binding)


class TestStochasticInnerBackend:
    """Chunks must draw from independent RNG streams, and repeated calls
    must advance — pickling a snapshot of the inner backend would otherwise
    replay identical 'random' samples per chunk and per call."""

    def test_chunks_and_repeated_calls_are_decorrelated(self):
        from repro.api import ShotSamplingBackend

        backend = ParallelBackend(
            ShotSamplingBackend(precision=0.4, rng=np.random.default_rng(0)),
            max_workers=2,
        )
        try:
            state, binding = _inputs(1)[0]
            # Four *identical* points: any spread comes from sampling noise.
            inputs = [(state, binding)] * 4
            estimator = Estimator(_program(), ZZ, backend=backend, cache_size=0)
            first = estimator.values(inputs)
            second = estimator.values(inputs)
            # Chunk [0,1] vs chunk [2,3] must not be byte-identical copies...
            assert not np.array_equal(first[:2], first[2:])
            # ...and a second batch must not replay the first one.
            assert not np.array_equal(first, second)
        finally:
            backend.shutdown()

    def test_chunk_backends_inherit_deterministic_streams(self):
        from repro.api import ShotSamplingBackend

        def collect():
            backend = ParallelBackend(
                ShotSamplingBackend(precision=0.4, rng=np.random.default_rng(7)),
                max_workers=2,
            )
            clones = backend._chunk_backends(2)
            return [clone.rng.integers(0, 2**31) for clone in clones]

        # Distinct streams per chunk, reproducible from the parent seed.
        first, second = collect(), collect()
        assert first[0] != first[1]
        assert first == second
