"""Denotation-cache behaviour: each compiled program runs once per point."""

import numpy as np
import pytest

from repro.lang.builder import case_on_qubit, rx, rxx, ry, rz, seq
from repro.lang.parameters import Parameter, ParameterBinding
from repro.linalg.observables import pauli_observable
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.semantics import denotational
from repro.api import DenotationCache, Estimator, ShotSamplingBackend

THETA = Parameter("theta")
PHI = Parameter("phi")
LAYOUT = RegisterLayout(["q1", "q2"])
ZZ = pauli_observable("ZZ")
BINDING = ParameterBinding({THETA: 0.52, PHI: -0.8})


def _state(q1=0, q2=0):
    return DensityState.basis_state(LAYOUT, {"q1": q1, "q2": q2})


def _control_program():
    return seq(
        [
            rx(THETA, "q1"),
            rxx(PHI, "q1", "q2"),
            case_on_qubit("q1", {0: ry(THETA, "q2"), 1: rz(THETA, "q2")}),
        ]
    )


@pytest.fixture
def denote_counter(monkeypatch):
    """Count top-level ``denote`` calls issued by the estimator."""
    counts = {"n": 0}
    real = denotational.denote

    def counting(program, state, binding=None):
        counts["n"] += 1
        return real(program, state, binding)

    monkeypatch.setattr(denotational, "denote", counting)
    return counts


class TestOncePerPoint:
    def test_each_compiled_program_denoted_once_per_binding_state(self, denote_counter):
        estimator = Estimator(_control_program(), ZZ, LAYOUT)
        state = _state()
        expected = 1 + sum(
            estimator.program_set(p).nonaborting_count for p in estimator.parameters
        )
        estimator.value_and_grad(state, BINDING)
        assert denote_counter["n"] == expected
        # Asking again — value, gradient, value_and_grad — re-simulates nothing.
        estimator.value(state, BINDING)
        estimator.gradient(state, BINDING)
        estimator.value_and_grad(state, BINDING)
        assert denote_counter["n"] == expected
        assert estimator.cache_stats.misses == expected
        # value (1) + gradient (expected−1) + value_and_grad (expected) hits
        assert estimator.cache_stats.hits == 2 * expected

    def test_value_keyed_caching_survives_rebuilt_states_and_bindings(self, denote_counter):
        estimator = Estimator(_control_program(), ZZ, LAYOUT)
        estimator.value(_state(1, 0), BINDING)
        first = denote_counter["n"]
        # A fresh-but-equal state and a fresh-but-equal binding must hit.
        estimator.value(_state(1, 0), ParameterBinding({THETA: 0.52, PHI: -0.8}))
        assert denote_counter["n"] == first

    def test_new_point_simulates_again(self, denote_counter):
        estimator = Estimator(_control_program(), ZZ, LAYOUT)
        estimator.value(_state(), BINDING)
        baseline = denote_counter["n"]
        estimator.value(_state(0, 1), BINDING)  # different state
        estimator.value(_state(), BINDING.with_value(THETA, 0.9))  # different binding
        assert denote_counter["n"] == baseline + 2

    def test_sampled_backend_shares_simulations_with_exact(self, denote_counter):
        estimator = Estimator(_control_program(), ZZ, LAYOUT)
        estimator.gradient(_state(), BINDING)
        baseline = denote_counter["n"]
        sampled = estimator.with_backend(
            ShotSamplingBackend(precision=0.2, rng=np.random.default_rng(0))
        )
        sampled.gradient(_state(), BINDING)
        assert denote_counter["n"] == baseline

    def test_cache_disabled_with_zero_size(self, denote_counter):
        estimator = Estimator(_control_program(), ZZ, LAYOUT, cache_size=0)
        estimator.value(_state(), BINDING)
        estimator.value(_state(), BINDING)
        assert denote_counter["n"] == 2

    def test_clear_cache_forces_resimulation(self, denote_counter):
        estimator = Estimator(_control_program(), ZZ, LAYOUT)
        estimator.value(_state(), BINDING)
        estimator.clear_cache()
        estimator.value(_state(), BINDING)
        assert denote_counter["n"] == 2


class TestLRU:
    def test_eviction_respects_the_entry_bound(self):
        cache = DenotationCache(max_entries=4)
        estimator = Estimator(_control_program(), ZZ, LAYOUT, cache=cache)
        for q1 in (0, 1):
            for q2 in (0, 1):
                estimator.value(_state(q1, q2), BINDING)
        assert len(cache) == 4
        estimator.value(_state(0, 0), BINDING)  # still cached (LRU keeps recents)
        assert estimator.cache_stats.hits == 1
        estimator.value(_state(1, 1), ParameterBinding({THETA: 1.0, PHI: 0.0}))
        assert len(cache) == 4
        assert estimator.cache_stats.evictions >= 1

    def test_oversized_states_bypass_the_cache(self, denote_counter):
        cache = DenotationCache(max_entries=64, max_state_elements=8)
        estimator = Estimator(_control_program(), ZZ, LAYOUT, cache=cache)
        # A 2-qubit density matrix has 16 elements > the 8-element bound:
        # nothing is stored and repeated calls re-simulate.
        estimator.value(_state(), BINDING)
        estimator.value(_state(), BINDING)
        assert denote_counter["n"] == 2
        assert len(cache) == 0

    def test_stats_reset(self):
        estimator = Estimator(_control_program(), ZZ, LAYOUT)
        estimator.value(_state(), BINDING)
        estimator.cache_stats.reset()
        assert estimator.cache_stats.lookups == 0
        assert estimator.cache_stats.hit_rate == 0.0
