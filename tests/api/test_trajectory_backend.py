"""Cross-checks of the branch-splitting trajectory tier on the Estimator seam.

The trajectory tier of :class:`repro.api.StatevectorBackend` must be
observationally indistinguishable from the exact density path on every
branching program — values and gradients agree to 1e-10 — and its ``while``
truncation may only engage when the certified error bound (discarded
probability mass × observable spectral norm) is below the tolerance;
everything else demotes to the density fallback per program.  The
hypothesis suites sweep random ``case``/``while``/``Sum`` programs; the
directed tests pin the routing, the certification and the fallback.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.additive.compile import compile_additive
from repro.lang.builder import bounded_while_on_qubit, case_on_qubit, rx, ry, seq, sum_programs
from repro.lang.parameters import Parameter, ParameterBinding
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.sim.trajectories import TrajectoryOptions
from repro.api import (
    DenotationCache,
    Estimator,
    ExactDensityBackend,
    StatevectorBackend,
)

from tests.conftest import binding_strategy, input_state_strategy, program_strategy

THETA = Parameter("theta")
PHI = Parameter("phi")
BINDING = ParameterBinding({THETA: 0.52, PHI: -0.8})

ZZ = np.diag([1.0, -1.0, -1.0, 1.0]).astype(complex)
LAYOUT = RegisterLayout(("q1", "q2"))


class _ExplodingBackend(ExactDensityBackend):
    """A fallback that fails loudly — proves the trajectory path was taken."""

    def value(self, *args, **kwargs):  # pragma: no cover - must not be hit
        raise AssertionError("fallback used on a trajectory-simulable program")

    value_batch = None  # any batch use would raise TypeError immediately

    def derivative(self, *args, **kwargs):  # pragma: no cover - must not be hit
        raise AssertionError("fallback used on a trajectory-simulable program")


class _CountingBackend(ExactDensityBackend):
    """Counts how often the density fallback serves a whole-input request."""

    def __init__(self):
        self.value_calls = 0
        self.derivative_calls = 0

    def value(self, *args, **kwargs):
        self.value_calls += 1
        return super().value(*args, **kwargs)

    def derivative(self, *args, **kwargs):
        self.derivative_calls += 1
        return super().derivative(*args, **kwargs)


class TestHypothesisCrossCheck:
    """Satellite suite: trajectory tier vs exact density on random programs."""

    @settings(max_examples=25, deadline=None)
    @given(
        program=program_strategy(max_depth=2),
        binding=binding_strategy(),
        state=input_state_strategy(),
    )
    def test_values_agree_on_branching_programs(self, program, binding, state):
        exact = Estimator(program, ZZ)
        fast = exact.with_backend(StatevectorBackend())
        assert fast.value(state, binding) == pytest.approx(
            exact.value(state, binding), abs=1e-10
        )

    @settings(max_examples=15, deadline=None)
    @given(
        program=program_strategy(max_depth=2, allow_abort=False),
        binding=binding_strategy(),
        state=input_state_strategy(),
    )
    def test_gradients_agree_on_branching_programs(self, program, binding, state):
        exact = Estimator(program, ZZ)
        fast = exact.with_backend(StatevectorBackend())
        reference = exact.gradient(state, binding)
        assert np.allclose(fast.gradient(state, binding), reference, atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(
        program=program_strategy(max_depth=2, allow_sum=True),
        binding=binding_strategy(),
        state=input_state_strategy(),
    )
    def test_sum_values_match_the_compiled_multiset(self, program, binding, state):
        # Reference for additive programs: Σ over Compile(P) of the exact
        # density value — exactly Definition 4.1/5.2.
        reference = sum(
            Estimator(member, ZZ).value(state, binding)
            for member in compile_additive(program)
        )
        fast = Estimator(program, ZZ, backend=StatevectorBackend())
        assert fast.value(state, binding) == pytest.approx(reference, abs=1e-10)
        # The density backend agrees through its own additive summation.
        exact = Estimator(program, ZZ)
        assert exact.value(state, binding) == pytest.approx(reference, abs=1e-10)

    @settings(max_examples=10, deadline=None)
    @given(binding=binding_strategy(), state=input_state_strategy())
    def test_truncated_while_stays_within_the_certified_bound(self, binding, state):
        # Continuing mass halves per iteration; epsilon=1e-4 certifies an
        # early exit long before the exact bound of 30 iterations.
        program = seq(
            [rx(THETA, "q1"), bounded_while_on_qubit("q1", rx(np.pi / 2, "q1"), 30)]
        )
        epsilon = 1e-4
        exact = Estimator(program, ZZ).value(state, binding)
        truncated = Estimator(
            program, ZZ, backend=StatevectorBackend(epsilon=epsilon)
        ).value(state, binding)
        assert abs(truncated - exact) <= epsilon


class TestRoutingAndFallback:
    def test_trajectory_path_used_without_touching_the_fallback(self):
        program = seq(
            [rx(THETA, "q1"), case_on_qubit("q1", {0: ry(PHI, "q2"), 1: rx(PHI, "q2")})]
        )
        backend = StatevectorBackend(fallback=_ExplodingBackend())
        estimator = Estimator(program, ZZ, backend=backend)
        reference = Estimator(program, ZZ)
        state = DensityState.basis_state(LAYOUT, {})
        assert estimator.value(state, BINDING) == pytest.approx(
            reference.value(state, BINDING), abs=1e-10
        )
        assert np.allclose(
            estimator.gradient(state, BINDING), reference.gradient(state, BINDING), atol=1e-10
        )
        assert backend.tier_counts["trajectory"] >= 1
        assert backend.tier_counts["density"] == 0

    def test_mixed_input_on_branching_program_falls_back_per_input(self):
        program = case_on_qubit("q1", {0: rx(THETA, "q2"), 1: ry(PHI, "q2")})
        counting = _CountingBackend()
        backend = StatevectorBackend(fallback=counting)
        mixed = DensityState(LAYOUT, np.eye(4, dtype=complex) / 4.0)
        pure = DensityState.basis_state(LAYOUT, {"q1": 1})
        estimator = Estimator(program, ZZ, backend=backend)
        reference = Estimator(program, ZZ)
        values = estimator.values([(pure, BINDING), (mixed, BINDING)])
        assert np.allclose(
            values, reference.values([(pure, BINDING), (mixed, BINDING)]), atol=1e-10
        )
        assert counting.value_calls == 1  # only the mixed input demoted

    def test_branch_cap_overflow_falls_back_to_density(self):
        # Doubling branch growth per iteration blows a cap of 4 quickly; the
        # trajectory attempt aborts and the density fallback serves it.
        body = seq(
            [case_on_qubit("q2", {0: rx(0.3, "q2"), 1: ry(0.4, "q2")}), rx(0.7, "q1")]
        )
        program = bounded_while_on_qubit("q1", body, 6)
        counting = _CountingBackend()
        backend = StatevectorBackend(
            fallback=counting, trajectory=TrajectoryOptions(max_branches=4)
        )
        state = DensityState.from_pure(
            LAYOUT, np.array([0.6, 0.0, 0.0, 0.8], dtype=complex)
        )
        estimator = Estimator(program, ZZ, backend=backend)
        reference = Estimator(program, ZZ)
        assert estimator.value(state, None) == pytest.approx(
            reference.value(state, None), abs=1e-12
        )
        assert counting.value_calls == 1
        # With the default cap the same program stays on the trajectory tier.
        roomy = StatevectorBackend(fallback=_ExplodingBackend())
        assert Estimator(program, ZZ, backend=roomy).value(state, None) == pytest.approx(
            reference.value(state, None), abs=1e-10
        )

    def test_truncation_never_engages_below_the_certified_bound(self):
        # Acceptance pin: with a cap too small for the exact unrolling and a
        # budget too small to certify truncation, the program must demote to
        # density rather than return an uncertified value.
        program = bounded_while_on_qubit("q1", rx(np.pi / 2, "q1"), 40)
        state = DensityState.basis_state(LAYOUT, {"q1": 1})
        reference = Estimator(program, ZZ).value(state, None)

        counting = _CountingBackend()
        starved = StatevectorBackend(
            fallback=counting,
            epsilon=1e-15,  # certifiable only after ~50 halvings: unreachable
            trajectory=TrajectoryOptions(max_branches=8, coalesce=False),
        )
        value = Estimator(program, ZZ, backend=starved).value(state, None)
        assert value == pytest.approx(reference, abs=1e-12)
        assert counting.value_calls == 1  # density served it

        funded = StatevectorBackend(
            fallback=_ExplodingBackend(),
            epsilon=1e-1,  # certified truncation engages within the cap
            trajectory=TrajectoryOptions(max_branches=8, coalesce=False),
        )
        approximate = Estimator(program, ZZ, backend=funded).value(state, None)
        assert abs(approximate - reference) <= 1e-1

    def test_explicit_mass_budget_truncates_without_falling_back(self):
        # The advanced knob: a caller-configured TrajectoryOptions.mass_budget
        # must be honored by certification (not demoted to density for doing
        # exactly what it was asked to).
        program = bounded_while_on_qubit("q1", rx(np.pi / 2, "q1"), 30)
        state = DensityState.basis_state(LAYOUT, {"q1": 1})
        reference = Estimator(program, ZZ).value(state, None)
        backend = StatevectorBackend(
            fallback=_ExplodingBackend(),
            trajectory=TrajectoryOptions(mass_budget=1e-3),
        )
        value = Estimator(program, ZZ, backend=backend).value(state, None)
        assert abs(value - reference) <= 1e-3
        assert abs(value - reference) > 0.0  # truncation engaged

    def test_derivative_epsilon_budget_is_split_across_branching_members(self):
        # A derivative column summing m truncated members must stay within
        # epsilon overall, not m·epsilon.
        program = seq(
            [
                rx(THETA, "q1"),
                bounded_while_on_qubit("q1", seq([rx(np.pi / 2, "q1"), ry(0.3, "q2")]), 30),
            ]
        )
        state = DensityState.basis_state(LAYOUT, {"q1": 1})
        epsilon = 1e-3
        exact = Estimator(program, ZZ).gradient(state, BINDING)
        loose = Estimator(
            program, ZZ, backend=StatevectorBackend(epsilon=epsilon)
        ).gradient(state, BINDING)
        assert np.all(np.abs(loose - exact) <= epsilon)

    def test_derivative_members_are_routed_individually(self):
        # P2-shaped program: the derivative multiset of theta mixes
        # measurement-free members with case gadgets; none may need density.
        program = seq(
            [rx(THETA, "q1"), case_on_qubit("q1", {0: ry(PHI, "q2"), 1: rx(PHI, "q2")})]
        )
        counting = _CountingBackend()
        backend = StatevectorBackend(fallback=counting)
        estimator = Estimator(program, ZZ, backend=backend)
        reference = Estimator(program, ZZ)
        state = DensityState.basis_state(LAYOUT, {"q1": 1})
        assert np.allclose(
            estimator.gradient(state, BINDING),
            reference.gradient(state, BINDING),
            atol=1e-10,
        )
        assert counting.derivative_calls == 0
        assert backend.tier_counts["trajectory"] >= 1


class TestCacheAndAttribution:
    def test_trajectory_results_are_cached_per_input_stack(self):
        program = case_on_qubit("q1", {0: rx(THETA, "q2"), 1: ry(PHI, "q2")})
        backend = StatevectorBackend()
        estimator = Estimator(program, ZZ, backend=backend)
        state = DensityState.basis_state(LAYOUT, {"q1": 1})
        estimator.value(state, BINDING)
        misses = backend.cache.stats.misses
        estimator.value(state, BINDING)
        assert backend.cache.stats.misses == misses
        assert backend.cache.stats.hits >= 1

    def test_different_error_budgets_do_not_share_cache_entries(self):
        program = bounded_while_on_qubit("q1", rx(np.pi / 2, "q1"), 30)
        state = DensityState.basis_state(LAYOUT, {"q1": 1})
        cache = DenotationCache()
        exact_backend = StatevectorBackend(cache=cache)
        loose_backend = StatevectorBackend(cache=cache, epsilon=1e-2)
        exact = Estimator(program, ZZ, backend=exact_backend).value(state, None)
        loose = Estimator(program, ZZ, backend=loose_backend).value(state, None)
        assert abs(loose - exact) <= 1e-2
        assert exact != loose  # the truncated entry is distinct, not reused

    def test_tier_for_matches_the_simulation_classes(self):
        backend = StatevectorBackend()
        assert backend.tier_for(seq([rx(THETA, "q1"), ry(PHI, "q2")])) == "pure"
        assert (
            backend.tier_for(case_on_qubit("q1", {0: rx(THETA, "q2"), 1: ry(PHI, "q2")}))
            == "trajectory"
        )
        assert (
            backend.tier_for(sum_programs([rx(THETA, "q1"), ry(PHI, "q1")]))
            == "trajectory"
        )

    def test_pickling_preserves_the_trajectory_configuration(self):
        import pickle

        options = TrajectoryOptions(max_branches=17)
        backend = StatevectorBackend(epsilon=0.25, trajectory=options)
        clone = pickle.loads(pickle.dumps(backend))
        assert clone.epsilon == 0.25
        assert clone.trajectory.max_branches == 17
        assert clone.tier_counts == {"pure": 0, "trajectory": 0, "density": 0}
