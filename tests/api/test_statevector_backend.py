"""Cross-checks of the purity-aware statevector tier against the density path.

The :class:`repro.api.StatevectorBackend` must be *observationally
indistinguishable* from :class:`repro.api.ExactDensityBackend` — values and
gradients agree to 1e-10 — on every program: measurement-free ones take the
batched pure-state path, everything else must transparently fall back.  The
hypothesis suites sweep random programs of both kinds; the directed tests
pin the routing itself (pure path actually used, fallback actually taken).
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.analysis.purity import is_statevector_simulable
from repro.errors import SemanticsError
from repro.lang.ast import Init, Skip
from repro.lang.builder import bounded_while_on_qubit, case_on_qubit, rx, rxx, ry, seq
from repro.lang.parameters import Parameter, ParameterBinding
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.api import (
    DenotationCache,
    Estimator,
    ExactDensityBackend,
    StatevectorBackend,
    resolve_backend,
)
from repro.autodiff.execution import differentiate_and_compile

from tests.conftest import binding_strategy, input_state_strategy, program_strategy

THETA = Parameter("theta")
PHI = Parameter("phi")
BINDING = ParameterBinding({THETA: 0.52, PHI: -0.8})

ZZ = np.diag([1.0, -1.0, -1.0, 1.0]).astype(complex)
Z1 = np.diag([1.0, -1.0]).astype(complex)


class _ExplodingBackend(ExactDensityBackend):
    """A fallback that fails loudly — proves the pure path was taken."""

    def value(self, *args, **kwargs):  # pragma: no cover - must not be hit
        raise AssertionError("fallback used on a measurement-free program")

    value_batch = None  # any batch use would raise TypeError immediately

    def derivative(self, *args, **kwargs):  # pragma: no cover - must not be hit
        raise AssertionError("fallback used on a measurement-free program")


class _CountingBackend(ExactDensityBackend):
    """Counts how often the density fallback serves a whole-input request."""

    def __init__(self):
        self.value_calls = 0
        self.derivative_calls = 0

    def value(self, *args, **kwargs):
        self.value_calls += 1
        return super().value(*args, **kwargs)

    def derivative(self, *args, **kwargs):
        self.derivative_calls += 1
        return super().derivative(*args, **kwargs)


def _estimators(program, observable, *, targets=None):
    exact = Estimator(program, observable, targets=targets)
    fast = exact.with_backend(StatevectorBackend())
    return exact, fast


class TestHypothesisCrossCheck:
    @settings(max_examples=25, deadline=None)
    @given(
        program=program_strategy(allow_controls=False, max_depth=2),
        binding=binding_strategy(),
        state=input_state_strategy(),
    )
    def test_values_agree_on_measurement_free_programs(self, program, binding, state):
        exact, fast = _estimators(program, ZZ)
        assert fast.value(state, binding) == pytest.approx(
            exact.value(state, binding), abs=1e-10
        )

    @settings(max_examples=15, deadline=None)
    @given(
        program=program_strategy(allow_controls=False, allow_abort=False, max_depth=2),
        binding=binding_strategy(),
        state=input_state_strategy(),
    )
    def test_gradients_agree_on_measurement_free_programs(self, program, binding, state):
        exact, fast = _estimators(program, ZZ)
        reference = exact.gradient(state, binding)
        assert np.allclose(fast.gradient(state, binding), reference, atol=1e-10)

    @settings(max_examples=15, deadline=None)
    @given(
        program=program_strategy(max_depth=2),
        binding=binding_strategy(),
        state=input_state_strategy(),
    )
    def test_values_and_gradients_agree_on_arbitrary_programs(
        self, program, binding, state
    ):
        # Control flow included: the backend must agree through its fallback.
        exact, fast = _estimators(program, ZZ)
        assert fast.value(state, binding) == pytest.approx(
            exact.value(state, binding), abs=1e-10
        )
        reference = exact.gradient(state, binding)
        assert np.allclose(fast.gradient(state, binding), reference, atol=1e-10)


class TestDerivativeProgramSetReadouts:
    def test_program_set_readout_matches_density_evaluate(self):
        program = seq([rx(THETA, "q1"), rxx(PHI, "q1", "q2"), ry(THETA, "q2")])
        program_set = differentiate_and_compile(program, THETA)
        layout = RegisterLayout(("q1", "q2"))
        state = DensityState.basis_state(layout, {"q2": 1})
        reference = program_set.evaluate(ZZ, state, BINDING)
        backend = StatevectorBackend()
        from repro.api.backends import ObservableSpec

        estimate = backend.derivative(program_set, ObservableSpec(ZZ), state, BINDING)
        assert estimate == pytest.approx(reference, abs=1e-10)

    def test_local_observable_readout_matches(self):
        program = seq([rx(THETA, "q1"), rxx(PHI, "q1", "q2")])
        program_set = differentiate_and_compile(program, PHI)
        layout = RegisterLayout(("q1", "q2"))
        state = DensityState.basis_state(layout, {})
        reference = program_set.evaluate(Z1, state, BINDING, targets=("q2",))
        from repro.api.backends import ObservableSpec

        backend = StatevectorBackend()
        estimate = backend.derivative(
            program_set, ObservableSpec(Z1, targets=("q2",)), state, BINDING
        )
        assert estimate == pytest.approx(reference, abs=1e-10)


class TestRouting:
    def test_pure_path_used_for_measurement_free_programs(self):
        program = seq([rx(THETA, "q1"), rxx(PHI, "q1", "q2")])
        assert is_statevector_simulable(program)
        layout = RegisterLayout(("q1", "q2"))
        state = DensityState.basis_state(layout, {})
        backend = StatevectorBackend(fallback=_ExplodingBackend())
        estimator = Estimator(program, ZZ, backend=backend)
        value = estimator.value(state, BINDING)
        gradient = estimator.gradient(state, BINDING)
        reference = Estimator(program, ZZ)
        assert value == pytest.approx(reference.value(state, BINDING), abs=1e-10)
        assert np.allclose(gradient, reference.gradient(state, BINDING), atol=1e-10)

    def test_case_program_runs_on_the_trajectory_tier(self):
        # Since the branch-splitting tier landed, a case program no longer
        # demotes to density: it splits the trajectory per outcome and the
        # fallback stays cold.
        program = seq(
            [rx(THETA, "q1"), case_on_qubit("q1", {0: Skip(("q1",)), 1: ry(PHI, "q2")})]
        )
        counting = _CountingBackend()
        backend = StatevectorBackend(fallback=counting)
        layout = RegisterLayout(("q1", "q2"))
        state = DensityState.basis_state(layout, {})
        estimator = Estimator(program, ZZ, backend=backend)
        reference = Estimator(program, ZZ)
        assert estimator.value(state, BINDING) == pytest.approx(
            reference.value(state, BINDING), abs=1e-10
        )
        assert counting.value_calls == 0
        assert backend.tier_for(program) == "trajectory"
        assert backend.tier_counts["trajectory"] >= 1
        # The branching members of the derivative multiset take their own
        # branch ensembles; the readout still matches the density reference.
        grad = estimator.gradient(state, BINDING)
        assert np.allclose(grad, reference.gradient(state, BINDING), atol=1e-10)
        assert counting.derivative_calls == 0

    def test_while_program_runs_on_the_trajectory_tier(self):
        program = bounded_while_on_qubit("q1", ry(THETA, "q2"), 2)
        counting = _CountingBackend()
        backend = StatevectorBackend(fallback=counting)
        layout = RegisterLayout(("q1", "q2"))
        state = DensityState.basis_state(layout, {"q1": 1})
        estimator = Estimator(program, ZZ, backend=backend)
        reference = Estimator(program, ZZ)
        assert estimator.value(state, BINDING) == pytest.approx(
            reference.value(state, BINDING), abs=1e-10
        )
        assert counting.value_calls == 0
        assert backend.tier_for(program) == "trajectory"

    def test_mixed_input_state_falls_back(self):
        program = seq([rx(THETA, "q1"), ry(PHI, "q2")])
        counting = _CountingBackend()
        backend = StatevectorBackend(fallback=counting)
        layout = RegisterLayout(("q1", "q2"))
        mixed = DensityState(layout, np.eye(4, dtype=complex) / 4.0)
        estimator = Estimator(program, ZZ, backend=backend)
        reference = Estimator(program, ZZ)
        assert estimator.value(mixed, BINDING) == pytest.approx(
            reference.value(mixed, BINDING), abs=1e-12
        )
        assert counting.value_calls == 1

    def test_entangled_leading_reset_falls_back_at_runtime(self):
        # Statically fine (leading init) but the input entangles q1 with q2,
        # so the pure reset kernel raises and the batch demotes to density.
        program = Init("q1")
        layout = RegisterLayout(("q1", "q2"))
        bell = np.zeros(4, dtype=complex)
        bell[0] = bell[3] = 2**-0.5
        state = DensityState.from_pure(layout, bell)
        counting = _CountingBackend()
        estimator = Estimator(program, ZZ, backend=StatevectorBackend(fallback=counting))
        reference = Estimator(program, ZZ)
        assert estimator.value(state, None) == pytest.approx(
            reference.value(state, None), abs=1e-12
        )
        assert counting.value_calls == 1

    def test_batches_mix_pure_and_mixed_inputs(self):
        program = seq([rx(THETA, "q1"), rxx(PHI, "q1", "q2")])
        layout = RegisterLayout(("q1", "q2"))
        pure = DensityState.basis_state(layout, {"q1": 1})
        mixed = DensityState(layout, np.eye(4, dtype=complex) / 4.0)
        other = ParameterBinding({THETA: -1.3, PHI: 0.4})
        inputs = [(pure, BINDING), (mixed, BINDING), (pure, other)]
        exact = Estimator(program, ZZ)
        fast = exact.with_backend(StatevectorBackend())
        assert np.allclose(fast.values(inputs), exact.values(inputs), atol=1e-10)
        assert np.allclose(fast.gradients(inputs), exact.gradients(inputs), atol=1e-10)


class TestStateVectorInputs:
    """Backends accept pure StateVector inputs — no O(4^n) density lift on
    the pure path, an automatic lift on the density paths."""

    def _setup(self):
        program = seq([rx(THETA, "q1"), rxx(PHI, "q1", "q2")])
        layout = RegisterLayout(("q1", "q2"))
        from repro.sim.statevector import StateVector

        vector = StateVector.basis_state(layout, {"q2": 1})
        density = DensityState.from_pure(layout, vector.amplitudes)
        return program, vector, density

    def test_statevector_input_on_pure_tier(self):
        program, vector, density = self._setup()
        estimator = Estimator(program, ZZ, backend=StatevectorBackend(fallback=_ExplodingBackend()))
        reference = Estimator(program, ZZ)
        assert estimator.value(vector, BINDING) == pytest.approx(
            reference.value(density, BINDING), abs=1e-10
        )
        assert np.allclose(
            estimator.gradient(vector, BINDING),
            reference.gradient(density, BINDING),
            atol=1e-10,
        )

    def test_statevector_input_on_density_backend(self):
        program, vector, density = self._setup()
        estimator = Estimator(program, ZZ, backend=ExactDensityBackend())
        assert estimator.value(vector, BINDING) == pytest.approx(
            estimator.value(density, BINDING), abs=1e-12
        )
        assert np.allclose(
            estimator.gradient(vector, BINDING),
            estimator.gradient(density, BINDING),
            atol=1e-12,
        )

    def test_statevector_input_on_branching_program_matches_density(self):
        from repro.sim.statevector import StateVector

        program = seq(
            [rx(THETA, "q1"), case_on_qubit("q1", {0: Skip(("q1",)), 1: ry(PHI, "q2")})]
        )
        layout = RegisterLayout(("q1", "q2"))
        vector = StateVector.basis_state(layout, {})
        density = DensityState.from_pure(layout, vector.amplitudes)
        fast = Estimator(program, ZZ, backend=StatevectorBackend())
        reference = Estimator(program, ZZ)
        assert fast.value(vector, BINDING) == pytest.approx(
            reference.value(density, BINDING), abs=1e-12
        )

    def test_bare_statevector_accepted_in_batches(self):
        from repro.sim.statevector import StateVector

        program = seq([rx(THETA, "q1"), ry(PHI, "q2")])
        layout = RegisterLayout(("q1", "q2"))
        states = [StateVector.basis_state(layout, {"q1": b}) for b in (0, 1)]
        values = Estimator(program, ZZ, backend=StatevectorBackend()).values(
            [(state, BINDING) for state in states]
        )
        reference = Estimator(program, ZZ).values(
            [(DensityState.from_pure(layout, s.amplitudes), BINDING) for s in states]
        )
        assert np.allclose(values, reference, atol=1e-10)


class TestCacheAndResolution:
    def test_amplitude_cache_hits_on_repeated_batches(self):
        program = seq([rx(THETA, "q1"), ry(PHI, "q2")])
        backend = StatevectorBackend()
        layout = RegisterLayout(("q1", "q2"))
        state = DensityState.basis_state(layout, {})
        estimator = Estimator(program, ZZ, backend=backend)
        estimator.value(state, BINDING)
        misses = backend.cache.stats.misses
        estimator.value(state, BINDING)
        assert backend.cache.stats.misses == misses
        assert backend.cache.stats.hits >= 1

    def test_cache_disabled_when_asked(self):
        backend = StatevectorBackend(cache=DenotationCache(max_entries=0))
        program = rx(THETA, "q1")
        layout = RegisterLayout(("q1",))
        state = DensityState.basis_state(layout, {})
        estimator = Estimator(program, Z1, backend=backend)
        estimator.value(state, BINDING)
        estimator.value(state, BINDING)
        assert backend.cache.stats.hits == 0

    def test_resolve_backend_spellings(self):
        assert isinstance(resolve_backend("auto"), StatevectorBackend)
        assert isinstance(resolve_backend("statevector"), StatevectorBackend)
        assert isinstance(resolve_backend("exact"), ExactDensityBackend)
        assert resolve_backend(None).name == "exact-density"
        backend = StatevectorBackend()
        assert resolve_backend(backend) is backend
        with pytest.raises(SemanticsError):
            resolve_backend("quantum-hardware")

    def test_pickling_drops_the_cache(self):
        import pickle

        backend = StatevectorBackend()
        program = rx(THETA, "q1")
        layout = RegisterLayout(("q1",))
        state = DensityState.basis_state(layout, {})
        Estimator(program, Z1, backend=backend).value(state, BINDING)
        assert len(backend.cache) > 0
        clone = pickle.loads(pickle.dumps(backend))
        assert len(clone.cache) == 0
        assert clone.atol == backend.atol
