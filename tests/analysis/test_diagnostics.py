"""The diagnostics vocabulary: severities, findings, and the bag."""

import pytest

from repro.analysis.diagnostics import Diagnostic, DiagnosticBag, Severity
from repro.lang.builder import rx


class TestSeverity:
    def test_ordering_matches_badness(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_labels(self):
        assert Severity.INFO.label == "info"
        assert Severity.WARNING.label == "warning"
        assert Severity.ERROR.label == "error"


class TestDiagnostic:
    def test_format_minimal(self):
        d = Diagnostic(Severity.WARNING, "RPR001", "dead wire")
        assert d.format() == "warning RPR001: dead wire"

    def test_format_with_source_and_path(self):
        d = Diagnostic(
            Severity.ERROR,
            "RPR005",
            "saturating bound",
            path=("first", "branch[1]"),
            source="prog.qw",
        )
        assert d.format() == (
            "prog.qw: error RPR005: saturating bound (at first/branch[1])"
        )

    def test_node_does_not_participate_in_equality(self):
        a = Diagnostic(Severity.INFO, "RPR000", "x", node=rx(0.1, "q1"))
        b = Diagnostic(Severity.INFO, "RPR000", "x", node=rx(0.2, "q2"))
        assert a == b

    def test_frozen(self):
        d = Diagnostic(Severity.INFO, "RPR000", "x")
        with pytest.raises(AttributeError):
            d.message = "y"


class TestDiagnosticBag:
    def test_empty_bag(self):
        bag = DiagnosticBag()
        assert not bag
        assert len(bag) == 0
        assert not bag.has_errors
        assert bag.max_severity is None
        assert bag.format() == ""

    def test_report_appends_and_returns(self):
        bag = DiagnosticBag()
        d = bag.report(Severity.WARNING, "RPR001", "dead wire")
        assert list(bag) == [d]
        assert bag[0] is d
        assert bag.max_severity is Severity.WARNING
        assert not bag.has_errors

    def test_error_queries(self):
        bag = DiagnosticBag()
        bag.report(Severity.INFO, "RPR000", "note")
        bag.report(Severity.WARNING, "RPR001", "warn")
        bag.report(Severity.ERROR, "RPR005", "boom")
        assert bag.has_errors
        assert bag.max_severity is Severity.ERROR
        assert [d.code for d in bag.errors] == ["RPR005"]
        assert [d.code for d in bag.warnings] == ["RPR001"]

    def test_by_code_and_extend(self):
        bag = DiagnosticBag()
        bag.report(Severity.WARNING, "RPR001", "one")
        other = DiagnosticBag()
        other.report(Severity.WARNING, "RPR001", "two")
        other.report(Severity.WARNING, "RPR003", "three")
        bag.extend(other)
        assert len(bag) == 3
        assert [d.message for d in bag.by_code("RPR001")] == ["one", "two"]

    def test_format_one_line_per_finding(self):
        bag = DiagnosticBag()
        bag.report(Severity.WARNING, "RPR001", "a")
        bag.report(Severity.ERROR, "RPR005", "b")
        assert bag.format().splitlines() == [
            "warning RPR001: a",
            "error RPR005: b",
        ]
