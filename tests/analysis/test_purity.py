"""Unit and property tests for the purity analysis (repro.analysis.purity)."""

import numpy as np
from hypothesis import given, settings

from repro.analysis.purity import (
    BRANCH_BOUND_CAP,
    PurityReport,
    SimulationClass,
    is_statevector_simulable,
    purity_report,
    simulation_report,
)
from repro.lang.ast import Abort, Init, Program, Skip, Sum
from repro.lang.builder import bounded_while_on_qubit, case_on_qubit, rx, rxx, ry, seq
from repro.lang.parameters import Parameter, ParameterBinding
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.sim.pure import denote_amplitude_batch
from repro.semantics import denotational

from tests.conftest import binding_strategy, program_strategy

THETA = Parameter("theta")


class TestVerdicts:
    def test_plain_circuit_is_simulable(self):
        program = seq([rx(THETA, "q1"), rxx(0.4, "q1", "q2"), ry(0.2, "q2")])
        report = purity_report(program)
        assert report.statevector_simulable
        assert report.reason is None
        assert bool(report)

    def test_skip_and_abort_are_simulable(self):
        assert is_statevector_simulable(Skip(("q1",)))
        assert is_statevector_simulable(Abort(("q1", "q2")))

    def test_leading_init_is_simulable(self):
        program = seq([Init("q1"), Init("q2"), rx(THETA, "q1")])
        assert is_statevector_simulable(program)

    def test_leading_init_after_other_variable_gate_is_simulable(self):
        # q2 was never touched before its reset.
        program = seq([rx(THETA, "q1"), Init("q2")])
        assert is_statevector_simulable(program)

    def test_mid_circuit_init_is_rejected(self):
        program = seq([rx(THETA, "q1"), Init("q1")])
        report = purity_report(program)
        assert not report.statevector_simulable
        assert "mid-circuit initialize" in report.reason
        assert "q1" in report.reason

    def test_double_init_counts_as_mid_circuit(self):
        assert not is_statevector_simulable(seq([Init("q1"), Init("q1")]))

    def test_case_is_rejected(self):
        program = case_on_qubit("q1", {0: Skip(("q1",)), 1: rx(0.3, "q2")})
        report = purity_report(program)
        assert not report.statevector_simulable
        assert "case" in report.reason

    def test_while_is_rejected(self):
        program = bounded_while_on_qubit("q1", rx(0.3, "q2"), 2)
        report = purity_report(program)
        assert not report.statevector_simulable
        assert "while" in report.reason

    def test_sum_is_rejected(self):
        program = Sum(rx(THETA, "q1"), ry(THETA, "q1"))
        assert "additive" in purity_report(program).reason

    def test_nested_blocker_is_found_inside_sequences(self):
        program = seq(
            [rx(0.1, "q1"), seq([ry(0.2, "q2"), case_on_qubit("q1", {0: Skip(("q1",)), 1: Skip(("q1",))})])]
        )
        assert not is_statevector_simulable(program)

    def test_memoized_by_identity(self):
        program = seq([rx(THETA, "q1"), ry(THETA, "q2")])
        assert purity_report(program) is purity_report(program)


class TestSimulationClasses:
    def test_circuits_are_pure_with_branch_bound_one(self):
        program = seq([rx(THETA, "q1"), rxx(0.4, "q1", "q2")])
        report = simulation_report(program)
        assert report.simulation_class is SimulationClass.PURE
        assert report.branch_bound == 1
        assert not report.additive

    def test_case_is_branching_with_summed_arities(self):
        program = case_on_qubit("q1", {0: Skip(("q1",)), 1: rx(0.3, "q2")})
        report = simulation_report(program)
        assert report.simulation_class is SimulationClass.BRANCHING
        assert report.branch_bound == 2

    def test_nested_case_bounds_multiply_through_sequencing(self):
        inner = case_on_qubit("q2", {0: Skip(("q2",)), 1: Skip(("q2",))})
        outer = case_on_qubit("q1", {0: inner, 1: inner})
        assert simulation_report(outer).branch_bound == 4
        assert simulation_report(seq([inner, inner])).branch_bound == 4

    def test_while_bound_is_the_bounded_unrolling(self):
        # A branch-free body: one terminated branch per unrolled prefix.
        program = bounded_while_on_qubit("q1", rx(0.3, "q2"), 3)
        assert simulation_report(program).branch_bound == 3
        # A case body: Σ_{t<T} 2^t = 1 + 2 + 4.
        body = case_on_qubit("q2", {0: Skip(("q2",)), 1: rx(0.3, "q2")})
        nested = bounded_while_on_qubit("q1", body, 3)
        assert simulation_report(nested).branch_bound == 7

    def test_sum_is_branching_and_flagged_additive(self):
        program = Sum(rx(THETA, "q1"), ry(THETA, "q1"))
        report = simulation_report(program)
        assert report.simulation_class is SimulationClass.BRANCHING
        assert report.branch_bound == 2
        assert report.additive

    def test_mid_circuit_init_is_branching_not_density_only(self):
        # The trajectory tier handles resets (runtime entanglement check or
        # Kraus split); only unknown nodes are density-only.
        report = simulation_report(seq([rx(THETA, "q1"), Init("q1")]))
        assert report.simulation_class is SimulationClass.BRANCHING
        assert report.branch_bound == 1  # resets are covered by the runtime cap

    def test_unknown_nodes_are_density_only(self):
        class Mystery(Program):
            def qvars(self):
                return frozenset({"q1"})

        report = simulation_report(Mystery())
        assert report.simulation_class is SimulationClass.DENSITY_ONLY

    def test_branch_bound_saturates(self):
        body = case_on_qubit("q2", {0: Skip(("q2",)), 1: Skip(("q2",))})
        program = bounded_while_on_qubit("q1", body, 100)  # 2^100 prefixes
        assert simulation_report(program).branch_bound == BRANCH_BOUND_CAP

    def test_simulation_report_memoized_by_identity(self):
        program = case_on_qubit("q1", {0: Skip(("q1",)), 1: Skip(("q1",))})
        assert simulation_report(program) is simulation_report(program)


class TestSoundness:
    """A certified program's pure output must reproduce the density semantics."""

    @settings(max_examples=30, deadline=None)
    @given(
        program=program_strategy(allow_controls=False, max_depth=2),
        binding=binding_strategy(),
    )
    def test_certified_programs_keep_pure_states_pure(self, program, binding):
        if not is_statevector_simulable(program):
            return  # mid-circuit init draws are covered by the verdict tests
        layout = RegisterLayout(("q1", "q2"))
        state = DensityState.basis_state(layout, {"q1": 1})
        reference = denotational.denote(program, state, binding)
        output = denote_amplitude_batch(
            program, layout, state.pure_amplitudes()[np.newaxis, :], binding
        )[0]
        assert np.allclose(np.outer(output, np.conj(output)), reference.matrix, atol=1e-10)

    def test_report_is_a_frozen_dataclass(self):
        report = PurityReport(statevector_simulable=False, reason="x")
        assert not bool(report)
