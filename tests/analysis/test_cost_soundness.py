"""Soundness of the cost model: instrumented actuals never exceed predictions.

The cost model (:func:`repro.analysis.cost.cost_report`) and the kernel
instrumentation (:func:`repro.sim.kernels.count_kernel_ops`) charge in the
same model units, so soundness is directly testable: run a program through
a backend with the counters on and assert the observed flops and peak
working-set bytes stay within the predicted upper bound for the tier that
actually served the evaluation — the routed tier normally, the
demotion-absorbing ``worst_case`` when the backend fell back mid-run.

Hypothesis sweeps random programs through the statevector tiers (pure and
trajectory routing, runtime demotions included) and the exact density
backend; directed cases pin qutrit ride-along registers, additive sums,
and local-observable readouts.
"""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.analysis.cost import cost_report
from repro.api import ExactDensityBackend, ObservableSpec, StatevectorBackend
from repro.lang.ast import Sum
from repro.lang.builder import bounded_while_on_qubit, case_on_qubit, rx, ry, seq
from repro.lang.parameters import Parameter, ParameterBinding
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.sim.kernels import count_kernel_ops

from tests.conftest import (
    binding_strategy,
    input_state_strategy,
    program_strategy,
)

THETA = Parameter("theta")
PHI = Parameter("phi")
LAYOUT = RegisterLayout(("q1", "q2"))
ZZ = np.diag([1.0, -1.0, -1.0, 1.0]).astype(complex)
SPEC = ObservableSpec(ZZ)

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: Floating-point slack on the bound comparison (the model and the counters
#: accumulate the same products in different orders).
_REL = 1.0 + 1e-9


def _assert_within(counters, bound) -> None:
    assert counters.flops <= bound.flops.hi * _REL, (
        f"counted {counters.flops} model flops, predicted at most "
        f"{bound.flops.hi}"
    )
    assert counters.peak_bytes <= bound.peak_bytes.hi * _REL, (
        f"observed peak {counters.peak_bytes} bytes, predicted at most "
        f"{bound.peak_bytes.hi}"
    )


def _check_statevector_value(program, state, binding) -> None:
    backend = StatevectorBackend()
    before = dict(backend.tier_counts)
    with count_kernel_ops() as counters:
        backend.value(program, SPEC, state, binding)
    demoted = (
        backend.tier_for(program) != "density"
        and backend.tier_counts["density"] > before["density"]
    )
    report = backend.explain_tier(program, layout=state.layout)
    _assert_within(counters, report.worst_case if demoted else report.routed)


@given(
    program=program_strategy(allow_sum=False, allow_controls=False),
    state=input_state_strategy(),
    binding=binding_strategy(),
)
@settings(**_SETTINGS)
def test_pure_tier_never_exceeds_prediction(program, state, binding):
    _check_statevector_value(program, state, binding)


@given(
    program=program_strategy(allow_sum=False),
    state=input_state_strategy(),
    binding=binding_strategy(),
)
@settings(**_SETTINGS)
def test_branching_tier_never_exceeds_prediction(program, state, binding):
    _check_statevector_value(program, state, binding)


@given(
    program=program_strategy(allow_sum=False),
    state=input_state_strategy(),
    binding=binding_strategy(),
)
@settings(**_SETTINGS)
def test_density_tier_never_exceeds_prediction(program, state, binding):
    backend = ExactDensityBackend()
    with count_kernel_ops() as counters:
        backend.value(program, SPEC, state, binding)
    report = cost_report(program, layout=state.layout)
    _assert_within(counters, report.density)


@given(
    program=program_strategy(allow_sum=True),
    state=input_state_strategy(),
    binding=binding_strategy(),
)
@settings(**_SETTINGS)
def test_additive_density_evaluation_never_exceeds_prediction(
    program, state, binding
):
    backend = ExactDensityBackend()
    with count_kernel_ops() as counters:
        backend.value(program, SPEC, state, binding)
    report = cost_report(program, layout=state.layout)
    _assert_within(counters, report.density)


class TestDirectedShapes:
    def test_qutrit_ride_along_register(self):
        layout = RegisterLayout(("q1", "q2", "aux"), {"aux": 3})
        state = DensityState.basis_state(layout, {"q1": 0, "q2": 1, "aux": 0})
        program = seq(
            [
                rx(THETA, "q1"),
                case_on_qubit("q1", {0: ry(PHI, "q2"), 1: rx(0.4, "q2")}),
            ]
        )
        binding = ParameterBinding({THETA: 0.3, PHI: -0.8})
        backend = StatevectorBackend()
        spec = ObservableSpec(ZZ, targets=("q1", "q2"))
        with count_kernel_ops() as counters:
            backend.value(program, spec, state, binding)
        report = backend.explain_tier(program, layout=layout)
        assert report.total_dim == 12.0
        _assert_within(counters, report.worst_case)

    def test_qutrit_density_register(self):
        layout = RegisterLayout(("q1", "aux"), {"aux": 3})
        state = DensityState.basis_state(layout, {"q1": 1, "aux": 2})
        program = seq([rx(THETA, "q1"), ry(0.2, "q1")])
        binding = ParameterBinding({THETA: 0.9})
        backend = ExactDensityBackend()
        spec = ObservableSpec(np.diag([1.0, -1.0]).astype(complex), targets=("q1",))
        with count_kernel_ops() as counters:
            backend.value(program, spec, state, binding)
        report = cost_report(program, layout=layout)
        _assert_within(counters, report.density)

    def test_bounded_while_on_the_trajectory_tier(self):
        program = bounded_while_on_qubit("q1", rx(THETA, "q1"), 5)
        state = DensityState.basis_state(LAYOUT, {"q1": 1, "q2": 0})
        binding = ParameterBinding({THETA: 1.1})
        _check_statevector_value(program, state, binding)

    def test_additive_sum_on_the_statevector_tiers(self):
        program = Sum(
            seq([rx(THETA, "q1"), ry(0.3, "q2")]),
            seq([ry(PHI, "q1"), rx(-0.2, "q2")]),
        )
        state = DensityState.basis_state(LAYOUT, {"q1": 0, "q2": 0})
        binding = ParameterBinding({THETA: 0.5, PHI: -0.4})
        _check_statevector_value(program, state, binding)

    def test_counters_observe_something(self):
        # Guard against a silently disabled instrumentation layer: a real
        # gate on a real register must charge a nonzero cost.
        backend = ExactDensityBackend()
        state = DensityState.basis_state(LAYOUT, {"q1": 0, "q2": 0})
        with count_kernel_ops() as counters:
            backend.value(rx(0.5, "q1"), SPEC, state, None)
        assert counters.flops > 0
        assert counters.peak_bytes > 0
        assert counters.calls > 0

    def test_prediction_is_finite_for_modest_programs(self):
        program = seq([rx(THETA, "q1"), case_on_qubit("q1", {0: ry(0.1, "q2"), 1: rx(0.2, "q2")})])
        report = cost_report(program, layout=LAYOUT)
        assert math.isfinite(report.routed.flops.hi)
        assert math.isfinite(report.worst_case.flops.hi)
