"""The abstract-interpretation cost model and its identity memo.

Directed structural checks: interval arithmetic, the tier transfer
functions' shapes (closed-form ``while`` series, additive scaling, unknown
nodes going to ``inf``), report memoization — including the id-reuse
regression the weakref-validated memo exists for — and the wiring surface
(``StatevectorBackend.explain_tier``, ``request_cost``).  Soundness of the
upper bounds against instrumented kernels lives in
``test_cost_soundness.py``.
"""

import gc
import math

import numpy as np
import pytest

from repro.analysis._memo import IdentityMemo
from repro.analysis.cost import CostInterval, CostReport, TierCost, cost_report
from repro.lang.ast import Abort, Init, Skip, Sum
from repro.lang.builder import (
    bounded_while_on_qubit,
    case_on_qubit,
    rx,
    rxx,
    ry,
    seq,
)
from repro.lang.parameters import Parameter, ParameterBinding
from repro.sim.hilbert import RegisterLayout
from repro.api import Estimator, StatevectorBackend

THETA = Parameter("theta")
PHI = Parameter("phi")
LAYOUT = RegisterLayout(("q1", "q2"))
ZZ = np.diag([1.0, -1.0, -1.0, 1.0]).astype(complex)


class TestCostInterval:
    def test_validation(self):
        with pytest.raises(ValueError):
            CostInterval(2.0, 1.0)
        with pytest.raises(ValueError):
            CostInterval(-1.0, 1.0)

    def test_arithmetic(self):
        a = CostInterval(1.0, 2.0)
        b = CostInterval(3.0, 5.0)
        assert (a + b) == CostInterval(4.0, 7.0)
        assert a.times(b) == CostInterval(3.0, 10.0)
        assert a.scaled(4.0) == CostInterval(4.0, 8.0)
        assert a.hull(b) == CostInterval(1.0, 5.0)

    def test_zero_times_infinity_is_zero(self):
        assert CostInterval.zero().times(
            CostInterval(0.0, math.inf)
        ) == CostInterval.zero()

    def test_contains_with_relative_slack(self):
        interval = CostInterval(10.0, 20.0)
        assert interval.contains(20.0)
        assert interval.contains(20.0 + 1e-9)
        assert not interval.contains(21.0)
        assert not interval.contains(9.0)


class TestIdentityMemo:
    def test_round_trip_and_contains(self):
        memo: IdentityMemo[str] = IdentityMemo()
        program = rx(0.5, "q1")
        assert memo.get(program) is None
        assert memo.put(program, "verdict") == "verdict"
        assert memo.get(program) == "verdict"
        assert program in memo
        assert len(memo) == 1

    def test_entry_dropped_when_key_is_collected(self):
        memo: IdentityMemo[str] = IdentityMemo()
        program = rx(0.5, "q1")
        memo.put(program, "verdict")
        del program
        gc.collect()
        assert len(memo) == 0

    def test_id_reuse_never_serves_a_stale_verdict(self):
        # The regression the weakref validation exists for: allocate a
        # program, memoize, drop it, and keep allocating until some new
        # program lands on a recycled address.  However the addresses fall,
        # the memo must never return the dead program's verdict.
        memo: IdentityMemo[str] = IdentityMemo()
        dead_ids = set()
        for round_index in range(512):
            program = rx(float(round_index), "q1")
            if memo.get(program) is not None:
                pytest.fail("memo served a verdict for a never-stored program")
            memo.put(program, f"verdict-{round_index}")
            dead_ids.add(id(program))
            del program
        gc.collect()
        reused = [
            rx(-float(index), "q2") for index in range(512)
        ]
        hits = [p for p in reused if id(p) in dead_ids]
        for program in reused:
            assert memo.get(program) is None
        # The loop is only meaningful if some address was actually recycled;
        # CPython reuses freed object slots eagerly, so this never flakes.
        assert hits, "no id reuse provoked — the regression test lost its teeth"

    def test_fifo_bound(self):
        memo: IdentityMemo[int] = IdentityMemo(limit=4)
        keep = [rx(float(i), "q1") for i in range(8)]
        for index, program in enumerate(keep):
            memo.put(program, index)
        assert len(memo) == 4
        assert memo.get(keep[0]) is None
        assert memo.get(keep[-1]) == 7

    def test_non_weakrefable_objects_bypass(self):
        memo: IdentityMemo[str] = IdentityMemo()
        assert memo.put(42, "verdict") == "verdict"
        assert memo.get(42) is None
        assert len(memo) == 0

    def test_limit_validated(self):
        with pytest.raises(ValueError):
            IdentityMemo(limit=0)


class TestCostReport:
    def test_pure_program_routes_pure(self):
        program = seq([rx(THETA, "q1"), rxx(PHI, "q1", "q2")])
        report = cost_report(program, layout=LAYOUT)
        assert report.tier == "pure"
        assert report.total_dim == 4.0
        # One 2-dim gate + one 4-dim gate on a dim-4 register, plus readout.
        assert report.pure.flops.lo >= 2 * 4 + 4 * 4
        assert report.routed is report.pure
        assert report.predicted_cost == report.pure.flops.hi

    def test_branching_program_routes_trajectory(self):
        program = case_on_qubit("q1", {0: rx(0.1, "q2"), 1: ry(0.2, "q2")})
        report = cost_report(program, layout=LAYOUT)
        assert report.tier == "trajectory"
        assert report.routed is report.trajectory
        # Both branches may survive: width interval spans pruning to fan-out.
        assert report.trajectory.stack_width.hi >= 2.0

    def test_density_flops_dominate_vector_flops(self):
        program = seq([rx(THETA, "q1"), ry(PHI, "q2"), rxx(0.3, "q1", "q2")])
        report = cost_report(program, layout=LAYOUT)
        assert report.density.flops.hi > report.pure.flops.hi

    def test_while_series_is_closed_form_even_for_huge_bounds(self):
        body = case_on_qubit("q1", {0: Skip(("q1",)), 1: rx(0.5, "q2")})
        program = bounded_while_on_qubit("q2", body, 10_000_000)
        report = cost_report(program, layout=LAYOUT)  # must return instantly
        assert math.isinf(report.trajectory.flops.hi)
        assert report.trajectory.flops.lo > 0.0

    def test_additive_density_bound_scales_with_members(self):
        member = rx(THETA, "q1")
        additive = Sum(member, ry(PHI, "q1"))
        single = cost_report(member, layout=LAYOUT)
        summed = cost_report(additive, layout=LAYOUT)
        assert summed.additive
        assert summed.density.flops.hi >= 2.0 * single.density.flops.hi

    def test_worst_case_absorbs_a_density_demotion(self):
        program = seq([rx(THETA, "q1"), ry(PHI, "q2")])
        report = cost_report(program, layout=LAYOUT)
        assert report.tier == "pure"
        worst = report.worst_case
        assert worst.flops.hi >= report.pure.flops.hi + report.density.flops.hi
        assert worst.peak_bytes.hi >= report.density.peak_bytes.hi

    def test_peak_bytes_formula(self):
        program = rx(THETA, "q1")
        report = cost_report(program, dims={"q1": 2})
        # 2 copies · width 1 · dim 2 · 16 bytes/amplitude.
        assert report.pure.peak_bytes.hi == 2 * 1 * 2 * 16

    def test_qutrit_dims_raise_the_totals(self):
        program = rx(THETA, "q1")
        qubit = cost_report(program, dims={"q1": 2})
        with_qutrit = cost_report(program, dims={"q1": 2, "ride": 3})
        assert with_qutrit.total_dim == 6.0
        assert with_qutrit.pure.flops.hi > qubit.pure.flops.hi

    def test_abort_and_skip_cost_nothing_to_run(self):
        for program in (Abort(("q1",)), Skip(("q1",))):
            report = cost_report(program, dims={"q1": 2})
            assert report.routed.flops.lo >= 0.0
            assert report.density.flops.lo <= report.density.flops.hi

    def test_describe_mentions_the_routed_tier(self):
        report = cost_report(rx(THETA, "q1"), dims={"q1": 2})
        text = report.describe()
        assert "tier: pure" in text
        assert "<- routed" in text
        assert "predicted cost" in text


class TestMemoization:
    def test_same_program_same_shape_is_cached(self):
        program = seq([rx(THETA, "q1"), ry(PHI, "q2")])
        first = cost_report(program, layout=LAYOUT)
        second = cost_report(program, layout=LAYOUT)
        assert first is second

    def test_different_shapes_get_distinct_reports(self):
        program = rx(THETA, "q1")
        small = cost_report(program, dims={"q1": 2})
        large = cost_report(program, dims={"q1": 2, "ride": 2})
        assert small is not large
        assert small.total_dim != large.total_dim

    def test_tier_override_does_not_corrupt_the_cache(self):
        program = seq([rx(THETA, "q1"), ry(PHI, "q2")])
        cached = cost_report(program, layout=LAYOUT)
        overridden = cost_report(program, layout=LAYOUT, tier="density")
        assert overridden.tier == "density"
        assert overridden.predicted_cost == cached.density.flops.hi
        assert cost_report(program, layout=LAYOUT) is cached

    def test_structurally_equal_programs_do_not_alias(self):
        a = rx(0.5, "q1")
        b = rx(0.5, "q1")
        report_a = cost_report(a, dims={"q1": 2})
        report_b = cost_report(b, dims={"q1": 2})
        # Identity keying: equal structure, distinct cache entries.
        assert report_a == report_b
        assert report_a is not report_b


class TestWiring:
    def test_explain_tier_matches_routing(self):
        backend = StatevectorBackend()
        pure = seq([rx(THETA, "q1"), ry(PHI, "q2")])
        branching = case_on_qubit("q1", {0: rx(0.1, "q2"), 1: ry(0.2, "q2")})
        for program in (pure, branching):
            report = backend.explain_tier(program, layout=LAYOUT)
            assert isinstance(report, CostReport)
            assert report.tier == backend.tier_for(program)

    def test_request_cost_value_uses_the_request_layout(self):
        from repro.service.planner import request_cost
        from repro.sim.density import DensityState

        program = seq([rx(THETA, "q1"), ry(PHI, "q2")])
        estimator = Estimator(program, ZZ)
        state = DensityState.basis_state(LAYOUT, {"q1": 0, "q2": 0})
        binding = ParameterBinding({THETA: 0.3, PHI: 0.7})
        request = estimator.request_value(state, binding)
        expected = cost_report(program, layout=LAYOUT).predicted_cost
        assert request_cost(request) == expected

    def test_request_cost_derivative_sums_members_on_extended_register(self):
        from repro.service.planner import request_cost
        from repro.sim.density import DensityState

        program = seq([rx(THETA, "q1"), ry(PHI, "q2")])
        estimator = Estimator(program, ZZ)
        state = DensityState.basis_state(LAYOUT, {"q1": 0, "q2": 0})
        binding = ParameterBinding({THETA: 0.3, PHI: 0.7})
        value_cost = request_cost(estimator.request_value(state, binding))
        gradient_cost = request_cost(estimator.request_gradient(state, binding))
        # Two multisets, each with members on the ancilla-extended register.
        assert gradient_cost > value_cost
