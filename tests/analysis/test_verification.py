"""Unit tests for the proposition-checking helpers."""

from repro.lang.builder import bounded_while_on_qubit, case_on_qubit, rx, ry, seq
from repro.lang.parameters import Parameter, ParameterBinding
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.analysis.verification import (
    check_operational_denotational_agreement,
    check_resource_bound,
)

THETA = Parameter("theta")
LAYOUT = RegisterLayout(["q1", "q2"])


class TestResourceBound:
    def test_holds_for_nested_control_flow(self):
        program = seq(
            [
                rx(THETA, "q1"),
                case_on_qubit("q1", {0: ry(THETA, "q2"), 1: rx(THETA, "q2")}),
                bounded_while_on_qubit("q2", seq([rx(THETA, "q1"), ry(THETA, "q2")]), 2),
            ]
        )
        assert check_resource_bound(program, THETA)

    def test_holds_for_parameter_free_program(self):
        program = seq([rx(0.1, "q1"), ry(0.2, "q2")])
        assert check_resource_bound(program, THETA)

    def test_unpacks_as_the_occurrence_derivative_slack_triple(self):
        program = seq([rx(THETA, "q1"), ry(THETA, "q2"), rx(0.3, "q1")])
        check = check_resource_bound(program, THETA)
        oc, derivatives, slack = check
        assert (oc, derivatives, slack) == (
            check.occurrence_count,
            check.derivative_programs,
            check.slack,
        )
        assert oc == 2
        assert slack == oc - derivatives >= 0
        assert bool(check) is check.holds is True


class TestOperationalDenotationalAgreement:
    def test_agreement_on_branching_program(self):
        program = seq(
            [
                rx(THETA, "q1"),
                case_on_qubit("q1", {0: ry(0.4, "q2"), 1: rx(0.9, "q2")}),
                bounded_while_on_qubit("q2", ry(0.3, "q1"), 2),
            ]
        )
        state = DensityState.basis_state(LAYOUT, {"q1": 0, "q2": 1})
        binding = ParameterBinding({THETA: 1.3})
        assert check_operational_denotational_agreement(program, state, binding)

    def test_agreement_for_unparameterized_program(self):
        program = seq([rx(0.5, "q1"), ry(0.25, "q2")])
        state = DensityState.zero_state(LAYOUT)
        assert check_operational_denotational_agreement(program, state)
