"""Unit tests for the resource analysis (Definition 7.1, Definition 4.3, Prop. 7.2)."""

import pytest

from repro.lang.ast import Abort, Init, Skip, Sum
from repro.lang.builder import bounded_while_on_qubit, case_on_qubit, rx, rxx, ry, rz, seq
from repro.lang.parameters import Parameter
from repro.analysis.resources import (
    ResourceReport,
    analyze_program,
    circuit_depth,
    derivative_program_count,
    gate_count,
    occurrence_count,
    qubit_count,
)

THETA = Parameter("theta")
PHI = Parameter("phi")


class TestOccurrenceCount:
    def test_atomic_statements_are_zero(self):
        for program in (Skip(["q1"]), Abort(["q1"]), Init("q1")):
            assert occurrence_count(program, THETA) == 0

    def test_unitary_counts_only_nontrivial_use(self):
        assert occurrence_count(rx(THETA, "q1"), THETA) == 1
        assert occurrence_count(rx(PHI, "q1"), THETA) == 0
        assert occurrence_count(rx(0.4, "q1"), THETA) == 0

    def test_sequence_sums(self):
        program = seq([rx(THETA, "q1"), ry(THETA, "q2"), rz(PHI, "q1")])
        assert occurrence_count(program, THETA) == 2
        assert occurrence_count(program, PHI) == 1

    def test_case_takes_maximum_over_branches(self):
        program = case_on_qubit(
            "q1",
            {0: seq([rx(THETA, "q2"), ry(THETA, "q2")]), 1: rz(THETA, "q2")},
        )
        assert occurrence_count(program, THETA) == 2

    def test_while_multiplies_by_bound(self):
        program = bounded_while_on_qubit("q1", seq([rx(THETA, "q1"), ry(THETA, "q2")]), 3)
        assert occurrence_count(program, THETA) == 6

    def test_sum_counts_both_sides(self):
        program = Sum(rx(THETA, "q1"), seq([ry(THETA, "q1"), rz(THETA, "q1")]))
        assert occurrence_count(program, THETA) == 3


class TestDerivativeProgramCount:
    def test_circuit_count_equals_occurrences(self):
        program = seq([rx(THETA, "q1"), ry(THETA, "q2"), rxx(THETA, "q1", "q2"), rz(PHI, "q1")])
        assert derivative_program_count(program, THETA) == 3

    def test_case_count_is_max_over_branches(self):
        program = case_on_qubit(
            "q1", {0: seq([rx(THETA, "q2"), ry(THETA, "q2")]), 1: rz(THETA, "q2")}
        )
        assert derivative_program_count(program, THETA) == 2

    def test_while_count_drops_aborting_unrollings(self):
        """For a 2-bounded loop |#∂| = OC(body), strictly below OC = 2·OC(body)."""
        body = seq([rx(THETA, "q1"), ry(THETA, "q2")])
        program = bounded_while_on_qubit("q1", body, 2)
        assert occurrence_count(program, THETA) == 4
        assert derivative_program_count(program, THETA) == 2

    def test_zero_when_parameter_absent(self):
        assert derivative_program_count(rx(PHI, "q1"), THETA) == 0


class TestProposition72:
    @pytest.mark.parametrize(
        "program_builder",
        [
            lambda: seq([rx(THETA, "q1"), ry(THETA, "q2"), rz(THETA, "q1")]),
            lambda: case_on_qubit("q1", {0: rx(THETA, "q2"), 1: seq([ry(THETA, "q2"), rz(THETA, "q2")])}),
            lambda: bounded_while_on_qubit("q1", seq([rx(THETA, "q1"), rxx(THETA, "q1", "q2")]), 2),
            lambda: seq(
                [
                    rx(THETA, "q1"),
                    bounded_while_on_qubit(
                        "q1", case_on_qubit("q2", {0: ry(THETA, "q2"), 1: Abort(["q2"])}), 2
                    ),
                ]
            ),
        ],
    )
    def test_bound_holds(self, program_builder):
        program = program_builder()
        assert derivative_program_count(program, THETA) <= occurrence_count(program, THETA)


class TestSizeMetrics:
    def test_gate_count(self):
        program = seq(
            [
                rx(THETA, "q1"),
                case_on_qubit("q1", {0: ry(0.1, "q2"), 1: seq([rz(0.2, "q2"), rx(0.3, "q2")])}),
                bounded_while_on_qubit("q2", rxx(0.4, "q1", "q2"), 3),
            ]
        )
        # 1 + (1 + 2) + 3·1 = 7
        assert gate_count(program) == 7

    def test_gate_count_ignores_non_unitaries(self):
        assert gate_count(seq([Skip(["q1"]), Init("q1"), Abort(["q1"])])) == 0

    def test_qubit_count(self):
        assert qubit_count(seq([rx(THETA, "q1"), rxx(0.1, "q2", "q3")])) == 3

    def test_circuit_depth_sequential_vs_parallel(self):
        sequential = seq([rx(THETA, "q1"), ry(0.1, "q1"), rz(0.2, "q1")])
        parallel = seq([rx(THETA, "q1"), ry(0.1, "q2")])
        assert circuit_depth(sequential) == 3
        assert circuit_depth(parallel) == 1

    def test_circuit_depth_of_loop_multiplies(self):
        loop = bounded_while_on_qubit("q1", seq([rx(THETA, "q2"), ry(0.2, "q2")]), 2)
        assert circuit_depth(loop) >= 4


class TestReport:
    def test_analyze_program_produces_consistent_report(self):
        program = seq([rx(THETA, "q1"), bounded_while_on_qubit("q1", ry(THETA, "q2"), 2)])
        report = analyze_program(program, THETA, name="demo", layer_count=3)
        assert isinstance(report, ResourceReport)
        assert report.name == "demo"
        assert report.occurrence_count == 3
        assert report.derivative_program_count == 2
        assert report.gate_count == 3
        assert report.layer_count == 3
        assert report.qubit_count == 2
        assert report.satisfies_bound()
        assert report.as_row()[0] == "demo"

    def test_report_without_declared_layers_uses_depth(self):
        program = seq([rx(THETA, "q1"), ry(0.1, "q1")])
        report = analyze_program(program, THETA)
        assert report.layer_count == circuit_depth(program)
