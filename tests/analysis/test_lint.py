"""The lint rules: every rule fires exactly once on its fixture, never on
clean programs, and the CLI exits nonzero exactly when it should.

The file-based fixtures live in ``tests/analysis/corpus``: one defective
``rprNNN_*.qw`` per file-expressible rule (the file name encodes the code
expected to fire), plus a ``clean`` corpus that must stay diagnostic-free.
``RPR002`` (unused parameter) and ``RPR008`` (zero-occurrence derivative)
depend on caller intent — the declared parameter vector / differentiation
targets — so they are exercised through the :func:`lint_program` API.
"""

import math
import re
from pathlib import Path

import pytest

from repro.analysis.__main__ import main as lint_main
from repro.analysis.diagnostics import Severity
from repro.analysis.lint import all_rules, lint_program, rule
from repro.lang.ast import Init, Skip, Sum
from repro.lang.builder import case_on_qubit, rx, ry, seq
from repro.lang.parameters import Parameter
from repro.lang.parser import parse_program

CORPUS = Path(__file__).parent / "corpus"
CLEAN_FILES = sorted((CORPUS / "clean").glob("*.qw"))
DEFECTIVE_FILES = sorted(
    path
    for path in (CORPUS / "defective").glob("*.qw")
    if not path.name.startswith("rpr000")
)

THETA = Parameter("theta")
PHI = Parameter("phi")


def _expected_code(path: Path) -> str:
    match = re.match(r"rpr(\d{3})_", path.name)
    assert match, f"defective fixture {path.name} must be named rprNNN_*.qw"
    return f"RPR{match.group(1)}"


class TestRegistry:
    def test_all_rules_sorted_by_code(self):
        codes = [registered.code for registered in all_rules()]
        assert codes == sorted(codes)
        assert {"RPR001", "RPR004", "RPR005", "RPR006", "RPR007"} <= set(codes)

    def test_duplicate_registration_rejected(self):
        existing = all_rules()[0]
        with pytest.raises(ValueError, match="duplicate"):
            rule(existing.code, "imposter", Severity.INFO)(lambda ctx: None)

    def test_unknown_rule_code_rejected(self):
        with pytest.raises(ValueError, match="unknown lint rule"):
            lint_program(Skip(("q1",)), rules=["RPR999"])

    def test_rule_subset_runs_only_those(self):
        program = parse_program(
            (CORPUS / "defective" / "rpr006_adjacent_inverse.qw").read_text()
        )
        bag = lint_program(program, rules=["RPR001"])
        assert not bag


class TestCorpus:
    @pytest.mark.parametrize("path", CLEAN_FILES, ids=lambda p: p.name)
    def test_clean_corpus_is_diagnostic_free(self, path):
        program = parse_program(path.read_text())
        bag = lint_program(program, source=path.name)
        assert not bag, bag.format()

    @pytest.mark.parametrize("path", DEFECTIVE_FILES, ids=lambda p: p.name)
    def test_each_defective_fixture_fires_its_rule_exactly_once(self, path):
        code = _expected_code(path)
        program = parse_program(path.read_text())
        bag = lint_program(program, source=path.name)
        assert len(bag) == 1, bag.format()
        assert bag[0].code == code
        registered = {r.code: r for r in all_rules()}[code]
        assert bag[0].severity == registered.severity


class TestApiOnlyRules:
    def test_rpr002_unused_parameter_fires_exactly_once(self):
        program = rx(THETA, "q1")
        bag = lint_program(program, parameters=[THETA, PHI])
        assert [d.code for d in bag] == ["RPR002"]
        assert "'phi'" in bag[0].message

    def test_rpr002_silent_without_declared_parameters(self):
        assert not lint_program(rx(THETA, "q1"))

    def test_rpr008_zero_occurrence_derivative_fires_exactly_once(self):
        program = rx(THETA, "q1")
        bag = lint_program(program, differentiating=[PHI])
        assert [d.code for d in bag] == ["RPR008"]

    def test_rpr008_silent_when_the_parameter_occurs(self):
        assert not lint_program(rx(THETA, "q1"), differentiating=[THETA])


class TestRuleEdges:
    def test_rpr004_respects_gates_between_init_and_case(self):
        # A gate on the measured wire forgets the |0> fact: no finding.
        program = seq(
            [
                Init("q1"),
                rx(0.3, "q1"),
                case_on_qubit("q1", {0: Skip(("q1",)), 1: ry(0.2, "q1")}),
            ]
        )
        assert not lint_program(program, rules=["RPR004"])

    def test_rpr006_requires_matching_wires(self):
        program = seq([rx(0.5, "q1"), rx(-0.5, "q2")])
        assert not lint_program(program, rules=["RPR006"])

    def test_rpr006_modular_arithmetic_wraps_at_4pi(self):
        program = seq([rx(3.0 * math.pi, "q1"), rx(math.pi, "q1")])
        assert [d.code for d in lint_program(program, rules=["RPR006"])] == ["RPR006"]

    def test_rpr007_not_confused_with_rpr006(self):
        # 2π total is −I (RPR007), not the identity (RPR006).
        program = seq([rx(math.pi, "q1"), rx(math.pi, "q1")])
        assert not lint_program(program, rules=["RPR006"])
        assert [d.code for d in lint_program(program, rules=["RPR007"])] == ["RPR007"]

    def test_symbolic_angles_never_fire_cancellation_rules(self):
        program = seq([rx(THETA, "q1"), rx(THETA, "q1")])
        assert not lint_program(program, rules=["RPR006", "RPR007"])

    def test_additive_summands_lint_independently(self):
        cancelling = seq([rx(0.5, "q1"), rx(-0.5, "q1")])
        program = Sum(cancelling, ry(0.3, "q1"))
        bag = lint_program(program, rules=["RPR006"])
        assert [d.code for d in bag] == ["RPR006"]
        assert bag[0].path[0] == "left"


class TestCli:
    def test_clean_corpus_exits_zero(self, capsys):
        assert lint_main([str(CORPUS / "clean")]) == 0
        summary = capsys.readouterr().err
        assert "0 error(s), 0 warning(s)" in summary

    def test_defective_corpus_exits_nonzero(self, capsys):
        assert lint_main([str(CORPUS / "defective")]) == 1
        out = capsys.readouterr().out
        # Every fixture (parse failure included) reported one finding.
        assert len(out.strip().splitlines()) == len(DEFECTIVE_FILES) + 1

    def test_parse_failure_reports_rpr000_not_a_traceback(self, capsys):
        code = lint_main([str(CORPUS / "defective" / "rpr000_parse_error.qw")])
        assert code == 1
        out = capsys.readouterr().out
        assert "RPR000" in out and "parse error" in out

    def test_strict_escalates_warnings(self, capsys):
        warning_only = str(CORPUS / "defective" / "rpr001_dead_wire.qw")
        assert lint_main([warning_only]) == 0
        capsys.readouterr()
        assert lint_main(["--strict", warning_only]) == 1

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for registered in all_rules():
            assert registered.code in out

    def test_missing_file_is_an_error_finding(self, capsys, tmp_path):
        assert lint_main([str(tmp_path / "nope.qw")]) == 1
        assert "RPR000" in capsys.readouterr().out

    def test_empty_directory_fails(self, capsys, tmp_path):
        assert lint_main([str(tmp_path)]) == 1
