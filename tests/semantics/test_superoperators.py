"""Unit tests for programs as explicit superoperators and their duals (Lemma D.2)."""

import numpy as np
import pytest

from repro.errors import SemanticsError
from repro.lang.ast import Abort, Skip
from repro.lang.builder import case_on_qubit, rx, ry, seq
from repro.lang.gates import hadamard
from repro.lang.ast import UnitaryApp
from repro.lang.parameters import Parameter, ParameterBinding
from repro.linalg.gates import HADAMARD, PAULI_Z
from repro.linalg.states import random_density_operator
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.semantics.denotational import denote
from repro.semantics.superoperators import (
    apply_program_dual,
    program_superoperator,
    program_transfer_matrix,
)

THETA = Parameter("theta")
LAYOUT = RegisterLayout(["q1"])
TWO_LAYOUT = RegisterLayout(["q1", "q2"])
BINDING = ParameterBinding({THETA: 0.83})


class TestTransferMatrix:
    def test_identity_program(self):
        transfer = program_transfer_matrix(Skip(["q1"]), LAYOUT)
        assert np.allclose(transfer, np.eye(4))

    def test_abort_program(self):
        transfer = program_transfer_matrix(Abort(["q1"]), LAYOUT)
        assert np.allclose(transfer, np.zeros((4, 4)))

    def test_unitary_program_matches_conjugation(self):
        transfer = program_transfer_matrix(UnitaryApp(hadamard(), ("q1",)), LAYOUT)
        expected = np.kron(np.conj(HADAMARD), HADAMARD)
        assert np.allclose(transfer, expected)

    def test_transfer_reproduces_action_on_random_states(self):
        program = seq([rx(THETA, "q1"), case_on_qubit("q1", {0: Skip(["q1"]), 1: ry(0.4, "q2")})])
        transfer = program_transfer_matrix(program, TWO_LAYOUT, BINDING)
        rng = np.random.default_rng(0)
        for _ in range(3):
            rho = random_density_operator(2, rng=rng)
            direct = denote(program, DensityState(TWO_LAYOUT, rho), BINDING).matrix
            via_matrix = (transfer @ rho.reshape(-1, order="F")).reshape(4, 4, order="F")
            assert np.allclose(direct, via_matrix)

    def test_missing_variable_rejected(self):
        with pytest.raises(SemanticsError):
            program_transfer_matrix(Skip(["q9"]), LAYOUT)

    def test_alias(self):
        assert np.allclose(
            program_superoperator(Skip(["q1"]), LAYOUT),
            program_transfer_matrix(Skip(["q1"]), LAYOUT),
        )


class TestDual:
    def test_dual_trace_identity(self):
        """tr(O · [[P]](ρ)) = tr([[P]]*(O) · ρ) for random states."""
        program = seq([rx(THETA, "q1"), case_on_qubit("q1", {0: ry(0.9, "q2"), 1: Abort(["q1"])})])
        observable = np.kron(PAULI_Z, PAULI_Z)
        dual_observable = apply_program_dual(program, TWO_LAYOUT, observable, BINDING)
        rng = np.random.default_rng(1)
        for _ in range(4):
            rho = random_density_operator(2, rng=rng)
            lhs = np.trace(observable @ denote(program, DensityState(TWO_LAYOUT, rho), BINDING).matrix)
            rhs = np.trace(dual_observable @ rho)
            assert np.isclose(lhs, rhs)

    def test_dual_of_unitary_is_heisenberg_conjugation(self):
        program = UnitaryApp(hadamard(), ("q1",))
        dual = apply_program_dual(program, LAYOUT, PAULI_Z)
        assert np.allclose(dual, HADAMARD.conj().T @ PAULI_Z @ HADAMARD)

    def test_dual_preserves_hermiticity(self):
        program = seq([rx(THETA, "q1"), ry(0.4, "q1")])
        dual = apply_program_dual(program, LAYOUT, PAULI_Z, BINDING)
        assert np.allclose(dual, dual.conj().T)

    def test_dual_dimension_check(self):
        with pytest.raises(SemanticsError):
            apply_program_dual(Skip(["q1"]), LAYOUT, np.eye(4))
