"""Unit tests for the observable and differential semantics (Section 5)."""

import numpy as np
import pytest

from repro.errors import SemanticsError
from repro.lang.ast import Abort, Skip, Sum
from repro.lang.builder import case_on_qubit, rx, ry, rxx, seq
from repro.lang.parameters import Parameter, ParameterBinding
from repro.linalg.gates import PAULI_Z
from repro.linalg.observables import pauli_observable
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.semantics.observable import (
    additive_observable_semantics,
    additive_observable_semantics_with_ancilla,
    differential_semantics,
    observable_semantics,
    observable_semantics_with_ancilla,
)

THETA = Parameter("theta")
PHI = Parameter("phi")
LAYOUT = RegisterLayout(["q1", "q2"])
BINDING = ParameterBinding({THETA: 0.41, PHI: -0.9})
ZZ = pauli_observable("ZZ")


def _state(q1=0, q2=0):
    return DensityState.basis_state(LAYOUT, {"q1": q1, "q2": q2})


class TestObservableSemantics:
    def test_identity_program(self):
        assert observable_semantics(Skip(["q1"]), ZZ, _state(0, 0)) == pytest.approx(1.0)
        assert observable_semantics(Skip(["q1"]), ZZ, _state(0, 1)) == pytest.approx(-1.0)

    def test_abort_gives_zero(self):
        assert observable_semantics(Abort(["q1"]), ZZ, _state()) == pytest.approx(0.0)

    def test_rotation_dependence_on_parameter(self):
        program = rx(THETA, "q1")
        value = observable_semantics(program, ZZ, _state(), BINDING)
        assert value == pytest.approx(np.cos(0.41))

    def test_accepts_raw_matrices(self):
        value = observable_semantics(Skip(["q1"]), np.kron(PAULI_Z, PAULI_Z), _state())
        assert value == pytest.approx(1.0)

    def test_is_a_function_of_theta(self):
        program = seq([rx(THETA, "q1"), rxx(PHI, "q1", "q2")])
        values = [
            observable_semantics(program, ZZ, _state(), BINDING.with_value(THETA, t))
            for t in (0.0, 0.5, 1.0)
        ]
        assert values[0] != values[1] != values[2]


class TestAncillaSemantics:
    def test_fresh_ancilla_required(self):
        with pytest.raises(SemanticsError):
            observable_semantics_with_ancilla(Skip(["q1"]), ZZ, _state(), ancilla="q1")

    def test_observable_must_live_on_original_register(self):
        too_big = np.kron(np.kron(PAULI_Z, PAULI_Z), PAULI_Z)
        with pytest.raises(SemanticsError):
            observable_semantics_with_ancilla(Skip(["q1"]), too_big, _state(), ancilla="a")

    def test_identity_program_with_untouched_ancilla(self):
        """With the ancilla left in |0⟩, Z_A reads +1 and the value reduces to tr(Oρ)."""
        value = observable_semantics_with_ancilla(Skip(["q1"]), ZZ, _state(0, 1), ancilla="a")
        assert value == pytest.approx(-1.0)

    def test_flipping_the_ancilla_negates_the_readout(self):
        from repro.lang.gates import pauli_x
        from repro.lang.ast import UnitaryApp

        program = UnitaryApp(pauli_x(), ("a",))
        value = observable_semantics_with_ancilla(program, ZZ, _state(0, 0), ancilla="a")
        assert value == pytest.approx(-1.0)

    def test_custom_ancilla_observable(self):
        value = observable_semantics_with_ancilla(
            Skip(["q1"]), ZZ, _state(), ancilla="a", ancilla_observable=np.eye(2)
        )
        assert value == pytest.approx(1.0)


class TestAdditiveSemantics:
    def test_sum_adds_observable_semantics(self):
        """Eq. (5.4): the additive observable semantics sums over the compilation."""
        program = Sum(Skip(["q1"]), Skip(["q1"]))
        assert additive_observable_semantics(program, ZZ, _state()) == pytest.approx(2.0)

    def test_aborting_summand_contributes_nothing(self):
        program = Sum(Skip(["q1"]), Abort(["q1"]))
        assert additive_observable_semantics(program, ZZ, _state()) == pytest.approx(1.0)

    def test_additive_with_ancilla(self):
        program = Sum(Skip(["q1"]), Skip(["q1"]))
        value = additive_observable_semantics_with_ancilla(program, ZZ, _state(), ancilla="a")
        assert value == pytest.approx(2.0)

    def test_normal_program_reduces_to_plain_semantics(self):
        program = seq([rx(THETA, "q1")])
        assert additive_observable_semantics(program, ZZ, _state(), BINDING) == pytest.approx(
            observable_semantics(program, ZZ, _state(), BINDING)
        )


class TestDifferentialSemantics:
    def test_single_rotation_has_analytic_derivative(self):
        """∂/∂θ ⟨Z⟩ after RX(θ) on |0⟩ is −sin θ."""
        program = rx(THETA, "q1")
        derivative = differential_semantics(program, THETA, ZZ, _state(), BINDING)
        assert derivative == pytest.approx(-np.sin(0.41), abs=1e-6)

    def test_independent_parameter_has_zero_derivative(self):
        program = rx(THETA, "q1")
        derivative = differential_semantics(program, PHI, ZZ, _state(), BINDING)
        assert derivative == pytest.approx(0.0, abs=1e-8)

    def test_branching_program_derivative_is_smooth(self):
        program = seq(
            [rx(THETA, "q1"), case_on_qubit("q1", {0: ry(THETA, "q2"), 1: Skip(["q1"])})]
        )
        value = differential_semantics(program, THETA, ZZ, _state(), BINDING)
        assert np.isfinite(value)

    def test_additive_program_differential(self):
        program = Sum(rx(THETA, "q1"), rx(THETA, "q1"))
        derivative = differential_semantics(program, THETA, ZZ, _state(), BINDING)
        assert derivative == pytest.approx(-2 * np.sin(0.41), abs=1e-6)
