"""Unit tests for the operational semantics and Proposition 3.1."""

import numpy as np
import pytest

from repro.lang.ast import Abort, Init, Skip, Sum
from repro.lang.builder import bounded_while_on_qubit, case_on_qubit, rx, ry, seq
from repro.lang.gates import hadamard, pauli_x
from repro.lang.ast import UnitaryApp
from repro.lang.parameters import Parameter, ParameterBinding
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.semantics.denotational import denote
from repro.semantics.operational import (
    Configuration,
    operational_denotation,
    run_to_terminals,
    step,
    terminal_states,
)
from repro.errors import SemanticsError

THETA = Parameter("theta")
LAYOUT = RegisterLayout(["q1", "q2"])


def _zero():
    return DensityState.zero_state(LAYOUT)


class TestSingleSteps:
    def test_terminal_configuration_has_no_successors(self):
        assert step(Configuration(None, _zero())) == []

    def test_abort_step(self):
        (successor,) = step(Configuration(Abort(["q1"]), _zero()))
        assert successor.is_terminal
        assert successor.state.is_null()

    def test_skip_step(self):
        (successor,) = step(Configuration(Skip(["q1"]), _zero()))
        assert successor.is_terminal
        assert successor.state == _zero()

    def test_init_step(self):
        plus = _zero().apply_unitary(hadamard().matrix(), ["q1"])
        (successor,) = step(Configuration(Init("q1"), plus))
        assert successor.is_terminal
        assert np.isclose(successor.state.matrix[0, 0], 1.0)

    def test_unitary_step(self):
        (successor,) = step(Configuration(UnitaryApp(pauli_x(), ("q1",)), _zero()))
        assert np.isclose(successor.state.matrix[0b10, 0b10], 1.0)

    def test_sequence_step_keeps_continuation(self):
        program = seq([UnitaryApp(pauli_x(), ("q1",)), Skip(["q2"])])
        (successor,) = step(Configuration(program, _zero()))
        assert not successor.is_terminal
        assert successor.program == Skip(["q2"])

    def test_case_steps_once_per_outcome(self):
        program = case_on_qubit("q1", {0: Skip(["q1"]), 1: Abort(["q1"])})
        successors = step(Configuration(program, _zero()))
        assert len(successors) == 2
        # Outcome probabilities are encoded in the (sub-normalized) traces.
        assert np.isclose(sum(s.state.trace() for s in successors), 1.0)

    def test_while_steps_to_termination_and_continuation(self):
        loop = bounded_while_on_qubit("q1", Skip(["q1"]), 2)
        successors = step(Configuration(loop, _zero()))
        assert len(successors) == 2
        terminal = [s for s in successors if s.is_terminal]
        assert len(terminal) == 1
        assert np.isclose(terminal[0].state.trace(), 1.0)

    def test_while_bound_one_continuation_aborts(self):
        loop = bounded_while_on_qubit("q1", Skip(["q1"]), 1)
        start = DensityState.basis_state(LAYOUT, {"q1": 1})
        successors = step(Configuration(loop, start))
        continuing = [s for s in successors if not s.is_terminal][0]
        # The continuation is body; abort.
        assert isinstance(continuing.program.second, Abort)

    def test_sum_steps_to_both_components(self):
        program = Sum(Skip(["q1"]), Abort(["q1"]))
        successors = step(Configuration(program, _zero()))
        assert [s.program for s in successors] == [Skip(["q1"]), Abort(["q1"])]

    def test_unknown_node_rejected(self):
        class Strange:  # not a Program
            pass

        with pytest.raises(SemanticsError):
            step(Configuration(Strange(), _zero()))


class TestTerminalMultisets:
    def test_deterministic_program_single_terminal(self):
        program = seq([UnitaryApp(pauli_x(), ("q1",)), UnitaryApp(pauli_x(), ("q2",))])
        terminals = run_to_terminals(program, _zero())
        assert len(terminals) == 1

    def test_case_produces_one_terminal_per_branch(self):
        program = seq(
            [
                UnitaryApp(hadamard(), ("q1",)),
                case_on_qubit("q1", {0: Skip(["q1"]), 1: UnitaryApp(pauli_x(), ("q2",))}),
            ]
        )
        states = terminal_states(program, _zero())
        assert len(states) == 2

    def test_drop_null_removes_zero_probability_branches(self):
        program = case_on_qubit("q1", {0: Skip(["q1"]), 1: UnitaryApp(pauli_x(), ("q2",))})
        # Guard is |0⟩ with certainty, so the 1-branch has probability zero.
        states = terminal_states(program, _zero(), drop_null=True)
        assert len(states) == 1

    def test_max_steps_guard(self):
        program = seq([Skip(["q1"])] * 10)
        with pytest.raises(SemanticsError):
            run_to_terminals(program, _zero(), max_steps=3)


class TestProposition31:
    """Prop. 3.1: [[P]]ρ equals the sum of the terminal multiset."""

    @pytest.mark.parametrize("theta_value", [0.0, 0.37, 1.9, -2.4])
    def test_agreement_on_branching_program(self, theta_value):
        binding = ParameterBinding({THETA: theta_value})
        program = seq(
            [
                rx(THETA, "q1"),
                case_on_qubit("q1", {0: ry(0.7, "q2"), 1: Abort(["q1"])}),
                bounded_while_on_qubit("q2", rx(0.3, "q1"), 2),
            ]
        )
        state = _zero()
        assert np.allclose(
            operational_denotation(program, state, binding).matrix,
            denote(program, state, binding).matrix,
        )

    def test_agreement_with_initialization(self):
        program = seq(
            [UnitaryApp(hadamard(), ("q1",)), Init("q1"), UnitaryApp(pauli_x(), ("q2",))]
        )
        state = _zero()
        assert np.allclose(
            operational_denotation(program, state).matrix,
            denote(program, state).matrix,
        )
