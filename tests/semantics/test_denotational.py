"""Unit tests for the denotational semantics (Figure 1b)."""

import numpy as np
import pytest

from repro.errors import SemanticsError
from repro.lang.ast import Abort, Init, Skip, Sum
from repro.lang.builder import bounded_while_on_qubit, case_on_qubit, rx, ry, seq
from repro.lang.gates import hadamard, pauli_x
from repro.lang.ast import UnitaryApp
from repro.lang.parameters import Parameter, ParameterBinding
from repro.linalg.gates import PAULI_Z
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.semantics.denotational import denote, denote_matrix

THETA = Parameter("theta")
LAYOUT = RegisterLayout(["q1", "q2"])


def _zero():
    return DensityState.zero_state(LAYOUT)


class TestAtomic:
    def test_abort_maps_to_zero(self):
        assert denote(Abort(["q1"]), _zero()).is_null()

    def test_skip_is_identity(self):
        state = _zero()
        assert denote(Skip(["q1"]), state) == state

    def test_init_resets(self):
        plus = _zero().apply_unitary(hadamard().matrix(), ["q1"])
        reset = denote(Init("q1"), plus)
        assert np.isclose(reset.expectation(PAULI_Z, ["q1"]), 1.0)

    def test_unitary_application(self):
        out = denote(UnitaryApp(pauli_x(), ("q2",)), _zero())
        assert np.isclose(out.matrix[0b01, 0b01], 1.0)

    def test_parameterized_unitary_needs_binding_value(self):
        binding = ParameterBinding({THETA: np.pi})
        out = denote(rx(THETA, "q1"), _zero(), binding)
        # RX(π)|0⟩ = −i|1⟩, so q1 is flipped.
        assert np.isclose(out.matrix[0b10, 0b10], 1.0)

    def test_missing_variable_is_an_error(self):
        with pytest.raises(SemanticsError):
            denote(Skip(["q7"]), _zero())

    def test_sum_is_rejected(self):
        with pytest.raises(SemanticsError):
            denote(Sum(Skip(["q1"]), Skip(["q1"])), _zero())


class TestComposite:
    def test_sequence_composes(self):
        program = seq([UnitaryApp(pauli_x(), ("q1",)), UnitaryApp(pauli_x(), ("q2",))])
        out = denote(program, _zero())
        assert np.isclose(out.matrix[0b11, 0b11], 1.0)

    def test_case_splits_on_measurement(self):
        # Prepare |+⟩ on q1 and flip q2 only in the 1-branch.
        program = seq(
            [
                UnitaryApp(hadamard(), ("q1",)),
                case_on_qubit("q1", {0: Skip(["q1"]), 1: UnitaryApp(pauli_x(), ("q2",))}),
            ]
        )
        out = denote(program, _zero())
        assert np.isclose(out.trace(), 1.0)
        assert np.isclose(out.matrix[0b00, 0b00], 0.5)
        assert np.isclose(out.matrix[0b11, 0b11], 0.5)
        # The measurement destroys the off-diagonal coherence.
        assert np.isclose(out.matrix[0b00, 0b11], 0.0)

    def test_case_with_abort_branch_loses_mass(self):
        program = seq(
            [
                UnitaryApp(hadamard(), ("q1",)),
                case_on_qubit("q1", {0: Skip(["q1"]), 1: Abort(["q1"])}),
            ]
        )
        out = denote(program, _zero())
        assert np.isclose(out.trace(), 0.5)

    def test_while_terminates_immediately_on_zero_guard(self):
        loop = bounded_while_on_qubit("q1", UnitaryApp(pauli_x(), ("q2",)), 3)
        out = denote(loop, _zero())
        assert out == _zero()

    def test_while_runs_body_until_guard_flips(self):
        # Guard starts at 1; the body flips the guard to 0, so exactly one iteration runs.
        start = DensityState.basis_state(LAYOUT, {"q1": 1})
        body = seq([UnitaryApp(pauli_x(), ("q1",)), UnitaryApp(pauli_x(), ("q2",))])
        loop = bounded_while_on_qubit("q1", body, 5)
        out = denote(loop, start)
        assert np.isclose(out.trace(), 1.0)
        assert np.isclose(out.matrix[0b01, 0b01], 1.0)

    def test_while_aborts_when_bound_exhausted(self):
        # Guard stays 1 forever: after T iterations the remaining mass is dropped.
        start = DensityState.basis_state(LAYOUT, {"q1": 1})
        loop = bounded_while_on_qubit("q1", Skip(["q1"]), 4)
        out = denote(loop, start)
        assert out.is_null()

    def test_bound_one_while_equals_paper_macro(self):
        start = DensityState.basis_state(LAYOUT, {"q1": 1})
        body = UnitaryApp(pauli_x(), ("q2",))
        loop = bounded_while_on_qubit("q1", body, 1)
        # while(1) ≡ case M = 0 → skip, 1 → body; abort — the guard is 1, so
        # the body runs and then everything aborts.
        assert denote(loop, start).is_null()

    def test_denote_matrix_wrapper(self):
        assert np.allclose(denote_matrix(Skip(["q1"]), _zero()), _zero().matrix)


class TestLinearity:
    def test_denotation_is_linear_in_the_state(self):
        binding = ParameterBinding({THETA: 0.7})
        program = seq([rx(THETA, "q1"), case_on_qubit("q1", {0: ry(0.2, "q2"), 1: Abort(["q1"])})])
        a = DensityState.basis_state(LAYOUT, {"q1": 0})
        b = DensityState.basis_state(LAYOUT, {"q1": 1})
        mixed = a.scaled(0.3).add(b.scaled(0.7))
        direct = denote(program, mixed, binding)
        split = denote(program, a, binding).scaled(0.3).add(denote(program, b, binding).scaled(0.7))
        assert np.allclose(direct.matrix, split.matrix)

    def test_denotation_is_trace_nonincreasing(self):
        binding = ParameterBinding({THETA: 1.1})
        program = seq(
            [
                rx(THETA, "q1"),
                bounded_while_on_qubit("q1", ry(0.4, "q2"), 2),
            ]
        )
        out = denote(program, _zero(), binding)
        assert out.trace() <= 1.0 + 1e-9
