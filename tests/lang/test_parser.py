"""Unit tests for the surface-syntax tokenizer and parser."""

import numpy as np
import pytest

from repro.errors import ParseError
from repro.lang.ast import Abort, Case, Init, Seq, Skip, Sum, UnitaryApp, While
from repro.lang.builder import bounded_while_on_qubit, case_on_qubit, rx, rxx, ry, rz, seq
from repro.lang.gates import ControlledRotation
from repro.lang.parameters import Parameter
from repro.lang.parser import parse_program, tokenize
from repro.lang.pretty import pretty_print
from repro.linalg.measurement import Measurement

THETA = Parameter("theta")


class TestTokenizer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("q1 := RX(theta)[q1]")]
        assert kinds == ["NAME", "ASSIGN", "NAME", "LPAREN", "NAME", "RPAREN",
                         "LBRACKET", "NAME", "RBRACKET", "EOF"]

    def test_keywords_are_recognized(self):
        kinds = {t.kind for t in tokenize("case while do done end abort skip")}
        assert {"CASE", "WHILE", "DO", "DONE", "END", "ABORT", "SKIP"} <= kinds

    def test_ket_zero_token(self):
        assert tokenize("|0>")[0].kind == "KET0"

    def test_comments_are_skipped(self):
        tokens = tokenize("skip[q1] // comment here\n")
        assert [t.kind for t in tokens] == ["SKIP", "LBRACKET", "NAME", "RBRACKET", "EOF"]

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("skip[q1] $")

    def test_positions(self):
        tokens = tokenize("skip[q1];\nabort[q1]")
        abort_token = [t for t in tokens if t.kind == "ABORT"][0]
        assert abort_token.line == 2
        assert abort_token.column == 1


class TestStatements:
    def test_parse_abort_skip(self):
        assert parse_program("abort[q1, q2]") == Abort(["q1", "q2"])
        assert parse_program("skip[q1]") == Skip(["q1"])

    def test_parse_init(self):
        assert parse_program("q3 := |0>") == Init("q3")

    def test_parse_rotation(self):
        assert parse_program("q1 := RX(theta)[q1]") == rx(THETA, "q1")

    def test_parse_numeric_angle(self):
        assert parse_program("q1 := RZ(0.25)[q1]") == rz(0.25, "q1")

    def test_parse_coupling(self):
        assert parse_program("q1, q2 := RXX(theta)[q1, q2]") == rxx(THETA, "q1", "q2")

    def test_parse_fixed_gate(self):
        program = parse_program("q1 := H[q1]")
        assert isinstance(program, UnitaryApp)
        assert program.gate.name == "H"

    def test_parse_controlled_rotation(self):
        program = parse_program("a, q1 := CRX(theta)[a, q1]")
        assert isinstance(program.gate, ControlledRotation)

    def test_parse_sequence(self):
        program = parse_program("q1 := RX(theta)[q1];\nq2 := RY(0.5)[q2]")
        assert program == Seq(rx(THETA, "q1"), ry(0.5, "q2"))

    def test_trailing_semicolon_allowed(self):
        assert parse_program("skip[q1];") == Skip(["q1"])

    def test_parse_case(self):
        text = """
        case M[q1] =
          0 -> { skip[q1] }
          1 -> { q2 := RX(theta)[q2] }
        end
        """
        assert parse_program(text) == case_on_qubit("q1", {0: Skip(["q1"]), 1: rx(THETA, "q2")})

    def test_parse_while(self):
        text = "while(2) M[q1] = 1 do q1 := RX(theta)[q1] done"
        assert parse_program(text) == bounded_while_on_qubit("q1", rx(THETA, "q1"), 2)

    def test_parse_sum(self):
        text = "{ skip[q1] } + { abort[q1] }"
        assert parse_program(text) == Sum(Skip(["q1"]), Abort(["q1"]))

    def test_parse_named_measurement(self):
        plus_minus = Measurement(
            {0: np.array([[0.5, 0.5], [0.5, 0.5]]), 1: np.array([[0.5, -0.5], [-0.5, 0.5]])},
            name="Mpm",
        )
        text = "case Mpm[q1] =\n 0 -> { skip[q1] }\n 1 -> { skip[q1] }\nend"
        program = parse_program(text, measurements={"Mpm": plus_minus})
        assert isinstance(program, Case)
        assert program.measurement.name == "Mpm"


class TestErrors:
    def test_unknown_gate(self):
        with pytest.raises(ParseError):
            parse_program("q1 := FOO(theta)[q1]")

    def test_unknown_measurement(self):
        with pytest.raises(ParseError):
            parse_program("case Mystery[q1] =\n 0 -> { skip[q1] }\n 1 -> { skip[q1] }\nend")

    def test_fixed_gate_with_angle(self):
        with pytest.raises(ParseError):
            parse_program("q1 := H(0.5)[q1]")

    def test_rotation_without_angle(self):
        with pytest.raises(ParseError):
            parse_program("q1 := RX[q1]")

    def test_mismatched_targets(self):
        with pytest.raises(ParseError):
            parse_program("q1 := RX(theta)[q2]")

    def test_init_multiple_targets(self):
        with pytest.raises(ParseError):
            parse_program("q1, q2 := |0>")

    def test_while_guard_must_be_one(self):
        with pytest.raises(ParseError):
            parse_program("while(2) M[q1] = 0 do skip[q1] done")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("skip[q1] skip[q2]")

    def test_sum_with_single_block(self):
        with pytest.raises(ParseError):
            parse_program("{ skip[q1] }")

    def test_empty_case(self):
        with pytest.raises(ParseError):
            parse_program("case M[q1] = end")


class TestRoundTrip:
    def test_roundtrip_composite_program(self):
        program = seq(
            [
                Init("q1"),
                rx(THETA, "q1"),
                case_on_qubit("q1", {0: ry(0.3, "q2"), 1: Skip(["q1"])}),
                bounded_while_on_qubit("q2", seq([rz(THETA, "q2"), rxx(0.7, "q1", "q2")]), 2),
                Abort(["q1", "q2"]),
            ]
        )
        assert parse_program(pretty_print(program)) == program

    def test_roundtrip_additive_program(self):
        program = Sum(Seq(rx(THETA, "q1"), ry(0.2, "q2")), rz(0.1, "q1"))
        assert parse_program(pretty_print(program)) == program
