"""Unit tests for parameters and bindings."""

import pytest

from repro.errors import ParameterError
from repro.lang.parameters import Parameter, ParameterBinding, ParameterVector


class TestParameter:
    def test_valid_names(self):
        assert Parameter("theta").name == "theta"
        assert Parameter("gamma_12").name == "gamma_12"

    def test_invalid_names(self):
        with pytest.raises(ParameterError):
            Parameter("")
        with pytest.raises(ParameterError):
            Parameter("1theta")
        with pytest.raises(ParameterError):
            Parameter("theta[0]")

    def test_equality_and_hash(self):
        assert Parameter("a") == Parameter("a")
        assert Parameter("a") != Parameter("b")
        assert len({Parameter("a"), Parameter("a"), Parameter("b")}) == 2

    def test_ordering(self):
        assert sorted([Parameter("b"), Parameter("a")]) == [Parameter("a"), Parameter("b")]

    def test_str(self):
        assert str(Parameter("phi")) == "phi"


class TestParameterVector:
    def test_generates_named_entries(self):
        vector = ParameterVector("theta", 3)
        assert [p.name for p in vector] == ["theta_0", "theta_1", "theta_2"]
        assert len(vector) == 3
        assert vector[1] == Parameter("theta_1")
        assert Parameter("theta_2") in vector

    def test_rejects_bad_length(self):
        with pytest.raises(ParameterError):
            ParameterVector("theta", 0)

    def test_rejects_bad_prefix(self):
        with pytest.raises(ParameterError):
            ParameterVector("0theta", 2)

    def test_as_tuple(self):
        assert ParameterVector("p", 2).as_tuple() == (Parameter("p_0"), Parameter("p_1"))


class TestParameterBinding:
    def test_lookup_by_parameter_or_name(self):
        binding = ParameterBinding({Parameter("a"): 1.0, "b": 2.0})
        assert binding[Parameter("a")] == 1.0
        assert binding["b"] == 2.0
        assert binding.value("a") == 1.0

    def test_missing_parameter(self):
        binding = ParameterBinding({"a": 1.0})
        with pytest.raises(ParameterError):
            binding["z"]

    def test_duplicate_binding_rejected(self):
        with pytest.raises(ParameterError):
            ParameterBinding({Parameter("a"): 1.0, "a": 2.0})

    def test_mapping_protocol(self):
        binding = ParameterBinding({"a": 1.0, "b": 2.0})
        assert len(binding) == 2
        assert Parameter("a") in binding
        assert "b" in binding
        assert set(binding) == {Parameter("a"), Parameter("b")}

    def test_zeros_and_from_values(self):
        params = ParameterVector("t", 3).as_tuple()
        zeros = ParameterBinding.zeros(params)
        assert all(zeros[p] == 0.0 for p in params)
        values = ParameterBinding.from_values(params, [1.0, 2.0, 3.0])
        assert values[params[2]] == 3.0
        with pytest.raises(ParameterError):
            ParameterBinding.from_values(params, [1.0])

    def test_with_value_and_shifted_are_functional(self):
        binding = ParameterBinding({"a": 1.0})
        shifted = binding.shifted("a", 0.5)
        assert shifted["a"] == 1.5
        assert binding["a"] == 1.0
        rebound = binding.with_value("b", 7.0)
        assert rebound["b"] == 7.0
        assert "b" not in binding

    def test_merged(self):
        first = ParameterBinding({"a": 1.0, "b": 2.0})
        second = ParameterBinding({"b": 5.0, "c": 3.0})
        merged = first.merged(second)
        assert merged["a"] == 1.0
        assert merged["b"] == 5.0
        assert merged["c"] == 3.0

    def test_to_dict(self):
        assert ParameterBinding({"a": 1.0}).to_dict() == {"a": 1.0}
