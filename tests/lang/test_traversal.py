"""Unit tests for AST traversal utilities and while-loop unfolding."""

import numpy as np
import pytest

from repro.lang.ast import Abort, Case, Seq, Skip, Sum, While
from repro.lang.builder import bounded_while_on_qubit, case_on_qubit, rx, ry, seq
from repro.lang.parameters import Parameter, ParameterBinding
from repro.lang.traversal import (
    children,
    contains_case,
    contains_while,
    fully_unfold_whiles,
    is_circuit,
    iter_gate_applications,
    iter_subprograms,
    map_program,
    program_size,
    unfold_while,
)
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.semantics.denotational import denote

THETA = Parameter("theta")


def _sample_program():
    return seq(
        [
            rx(THETA, "q1"),
            case_on_qubit("q1", {0: ry(0.5, "q2"), 1: Skip(["q1"])}),
            bounded_while_on_qubit("q2", rx(0.3, "q1"), 2),
        ]
    )


class TestIteration:
    def test_children(self):
        program = Seq(Skip(["q1"]), Abort(["q1"]))
        assert children(program) == (Skip(["q1"]), Abort(["q1"]))

    def test_iter_subprograms_preorder(self):
        program = _sample_program()
        nodes = list(iter_subprograms(program))
        assert nodes[0] is program
        assert program_size(program) == len(nodes)

    def test_iter_gate_applications(self):
        gates = list(iter_gate_applications(_sample_program()))
        assert len(gates) == 3  # loop bodies yielded once

    def test_program_size_counts_nodes(self):
        assert program_size(Skip(["q1"])) == 1
        assert program_size(Seq(Skip(["q1"]), Skip(["q1"]))) == 3


class TestMapProgram:
    def test_identity_map_preserves_structure(self):
        program = _sample_program()
        assert map_program(program, lambda node: node) == program

    def test_replace_leaves(self):
        program = Seq(rx(THETA, "q1"), ry(0.5, "q2"))

        def replace(node):
            if node == rx(THETA, "q1"):
                return Skip(["q1"])
            return node

        assert map_program(program, replace) == Seq(Skip(["q1"]), ry(0.5, "q2"))


class TestWhileUnfolding:
    def test_unfold_bound_one(self):
        loop = bounded_while_on_qubit("q1", rx(THETA, "q1"), 1)
        unfolded = unfold_while(loop)
        assert isinstance(unfolded, Case)
        assert unfolded.branch(0) == Skip(("q1",))
        body_then_abort = unfolded.branch(1)
        assert isinstance(body_then_abort, Seq)
        assert isinstance(body_then_abort.second, Abort)

    def test_unfold_bound_two_keeps_smaller_loop(self):
        loop = bounded_while_on_qubit("q1", rx(THETA, "q1"), 2)
        unfolded = unfold_while(loop)
        continuation = unfolded.branch(1)
        assert isinstance(continuation.second, While)
        assert continuation.second.bound == 1

    def test_fully_unfold_removes_all_whiles(self):
        program = _sample_program()
        assert contains_while(program)
        unfolded = fully_unfold_whiles(program)
        assert not contains_while(unfolded)

    def test_unfolding_preserves_semantics(self):
        layout = RegisterLayout(["q1", "q2"])
        state = DensityState.basis_state(layout, {"q1": 1, "q2": 0})
        binding = ParameterBinding({THETA: 0.9})
        program = seq(
            [rx(THETA, "q1"), bounded_while_on_qubit("q1", ry(0.4, "q2"), 3)]
        )
        direct = denote(program, state, binding)
        unfolded = denote(fully_unfold_whiles(program), state, binding)
        assert np.allclose(direct.matrix, unfolded.matrix)


class TestPredicates:
    def test_contains_case(self):
        assert contains_case(_sample_program())
        assert not contains_case(seq([rx(THETA, "q1"), ry(0.2, "q2")]))

    def test_is_circuit(self):
        assert is_circuit(seq([rx(THETA, "q1"), ry(0.2, "q2"), Skip(["q1"])]))
        assert not is_circuit(_sample_program())
        assert not is_circuit(Sum(rx(THETA, "q1"), ry(0.2, "q1")))
        assert not is_circuit(seq([rx(THETA, "q1"), Abort(["q1"])]))
