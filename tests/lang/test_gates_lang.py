"""Unit tests for the AST-level gate language (repro.lang.gates)."""

import numpy as np
import pytest

from repro.errors import LinalgError, ParameterError
from repro.lang.gates import (
    ControlledCoupling,
    ControlledRotation,
    Coupling,
    FixedGate,
    Rotation,
    cnot,
    hadamard,
    pauli_x,
)
from repro.lang.parameters import Parameter, ParameterBinding
from repro.linalg.gates import (
    HADAMARD,
    controlled_coupling_matrix,
    controlled_rotation_matrix,
    coupling_matrix,
    rotation_matrix,
)

THETA = Parameter("theta")
BINDING = ParameterBinding({THETA: 0.8})


class TestFixedGate:
    def test_arity_from_matrix(self):
        assert hadamard().arity == 1
        assert cnot().arity == 2

    def test_matrix_ignores_binding(self):
        assert np.allclose(hadamard().matrix(), HADAMARD)
        assert np.allclose(hadamard().matrix(BINDING), HADAMARD)

    def test_no_parameters(self):
        assert hadamard().parameters() == ()
        assert not hadamard().uses(THETA)

    def test_rejects_non_unitary(self):
        with pytest.raises(LinalgError):
            FixedGate("bad", np.array([[1, 0], [0, 2]]))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(LinalgError):
            FixedGate("bad", np.eye(3))

    def test_display(self):
        assert pauli_x().display() == "X"

    def test_equality(self):
        assert hadamard() == hadamard()
        assert hadamard() != pauli_x()


class TestRotation:
    def test_matrix_with_symbolic_angle(self):
        gate = Rotation("X", THETA)
        assert np.allclose(gate.matrix(BINDING), rotation_matrix("X", 0.8))

    def test_matrix_with_fixed_angle(self):
        gate = Rotation("Y", 0.3)
        assert np.allclose(gate.matrix(), rotation_matrix("Y", 0.3))

    def test_symbolic_angle_requires_binding(self):
        with pytest.raises(ParameterError):
            Rotation("Z", THETA).matrix()

    def test_uses(self):
        assert Rotation("X", THETA).uses(THETA)
        assert not Rotation("X", THETA).uses(Parameter("other"))
        assert not Rotation("X", 0.5).uses(THETA)

    def test_rejects_coupling_axis(self):
        with pytest.raises(LinalgError):
            Rotation("XX", THETA)

    def test_display(self):
        assert Rotation("X", THETA).display() == "RX(theta)"
        assert Rotation("Z", 0.5).display() == "RZ(0.5)"

    def test_generator(self):
        gen = Rotation("Z", THETA).generator()
        assert np.allclose(gen, np.diag([1, -1]))


class TestCoupling:
    def test_matrix(self):
        gate = Coupling("XX", THETA)
        assert gate.arity == 2
        assert np.allclose(gate.matrix(BINDING), coupling_matrix("XX", 0.8))

    def test_rejects_single_axis(self):
        with pytest.raises(LinalgError):
            Coupling("X", THETA)

    def test_display(self):
        assert Coupling("ZZ", THETA).display() == "RZZ(theta)"

    def test_generator_squares_to_identity(self):
        gen = Coupling("YY", THETA).generator()
        assert np.allclose(gen @ gen, np.eye(4))


class TestControlledGates:
    def test_controlled_rotation_matrix(self):
        gate = ControlledRotation("X", THETA)
        assert gate.arity == 2
        assert np.allclose(gate.matrix(BINDING), controlled_rotation_matrix("X", 0.8))

    def test_controlled_coupling_matrix(self):
        gate = ControlledCoupling("ZZ", THETA)
        assert gate.arity == 3
        assert np.allclose(gate.matrix(BINDING), controlled_coupling_matrix("ZZ", 0.8))

    def test_axis_validation(self):
        with pytest.raises(LinalgError):
            ControlledRotation("XX", THETA)
        with pytest.raises(LinalgError):
            ControlledCoupling("X", THETA)

    def test_display(self):
        assert ControlledRotation("Y", THETA).display() == "CRY(theta)"
        assert ControlledCoupling("XX", 1.0).display() == "CRXX(1.0)"

    def test_parameters(self):
        assert ControlledRotation("X", THETA).parameters() == (THETA,)
        assert ControlledCoupling("XX", 0.5).parameters() == ()
