"""Unit tests for the program AST (construction, qVar, parameters, equality)."""

import pytest

from repro.errors import WellFormednessError
from repro.lang.ast import Abort, Case, Init, Seq, Skip, Sum, UnitaryApp, While
from repro.lang.builder import rx, ry, rz, rxx, seq
from repro.lang.gates import Rotation, hadamard
from repro.lang.parameters import Parameter
from repro.linalg.measurement import computational_measurement

THETA = Parameter("theta")
PHI = Parameter("phi")


class TestAtomicStatements:
    def test_abort_skip_qvars(self):
        assert Abort(["q1", "q2"]).qvars() == {"q1", "q2"}
        assert Skip(["q1"]).qvars() == {"q1"}

    def test_single_name_coercion(self):
        assert Skip("q1").qubits == ("q1",)

    def test_init_qvar(self):
        assert Init("q3").qvars() == {"q3"}

    def test_init_requires_name(self):
        with pytest.raises(WellFormednessError):
            Init("")

    def test_statement_requires_some_qubits(self):
        with pytest.raises(WellFormednessError):
            Abort([])

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(WellFormednessError):
            Skip(["q1", "q1"])

    def test_no_parameters(self):
        assert Abort(["q1"]).parameters() == frozenset()
        assert Init("q1").parameters() == frozenset()

    def test_not_additive(self):
        assert not Skip(["q1"]).is_additive()


class TestUnitaryApp:
    def test_arity_check(self):
        with pytest.raises(WellFormednessError):
            UnitaryApp(hadamard(), ("q1", "q2"))
        with pytest.raises(WellFormednessError):
            UnitaryApp(Rotation("X", THETA), ("q1", "q2"))

    def test_parameters(self):
        assert rx(THETA, "q1").parameters() == {THETA}
        assert rx(0.5, "q1").parameters() == frozenset()

    def test_qvars(self):
        assert rxx(THETA, "q1", "q2").qvars() == {"q1", "q2"}

    def test_equality(self):
        assert rx(THETA, "q1") == rx(THETA, "q1")
        assert rx(THETA, "q1") != rx(PHI, "q1")
        assert rx(THETA, "q1") != ry(THETA, "q1")


class TestComposite:
    def test_seq_collects_qvars_and_parameters(self):
        program = Seq(rx(THETA, "q1"), ry(PHI, "q2"))
        assert program.qvars() == {"q1", "q2"}
        assert program.parameters() == {THETA, PHI}
        assert program.children() == (rx(THETA, "q1"), ry(PHI, "q2"))

    def test_case_requires_branch_per_outcome(self):
        measurement = computational_measurement(1)
        with pytest.raises(WellFormednessError):
            Case(measurement, ("q1",), {0: Skip(["q1"])})

    def test_case_rejects_duplicate_branches(self):
        measurement = computational_measurement(1)
        with pytest.raises(WellFormednessError):
            Case(measurement, ("q1",), [(0, Skip(["q1"])), (0, Skip(["q1"])), (1, Skip(["q1"]))])

    def test_case_branch_lookup(self):
        measurement = computational_measurement(1)
        case = Case(measurement, ("q1",), {0: rx(THETA, "q2"), 1: Skip(["q1"])})
        assert case.branch(0) == rx(THETA, "q2")
        with pytest.raises(WellFormednessError):
            case.branch(3)

    def test_case_qvars_include_guard_and_branches(self):
        case = Case(computational_measurement(1), ("q1",), {0: rx(THETA, "q2"), 1: Skip(["q3"])})
        assert case.qvars() == {"q1", "q2", "q3"}
        assert case.parameters() == {THETA}

    def test_while_validation(self):
        measurement = computational_measurement(1)
        with pytest.raises(WellFormednessError):
            While(measurement, ("q1",), Skip(["q1"]), 0)
        three_outcome = computational_measurement(2)
        with pytest.raises(WellFormednessError):
            While(three_outcome, ("q1", "q2"), Skip(["q1"]), 2)

    def test_while_qvars(self):
        loop = While(computational_measurement(1), ("q1",), rz(THETA, "q2"), 2)
        assert loop.qvars() == {"q1", "q2"}
        assert loop.parameters() == {THETA}
        assert loop.children() == (rz(THETA, "q2"),)

    def test_sum_is_additive(self):
        program = Sum(Skip(["q1"]), Abort(["q1"]))
        assert program.is_additive()
        assert Seq(program, Skip(["q1"])).is_additive()
        assert not Seq(Skip(["q1"]), Skip(["q1"])).is_additive()

    def test_nested_equality(self):
        a = seq([rx(THETA, "q1"), ry(PHI, "q2"), rxx(THETA, "q1", "q2")])
        b = seq([rx(THETA, "q1"), ry(PHI, "q2"), rxx(THETA, "q1", "q2")])
        assert a == b

    def test_str_is_pretty_printed(self):
        text = str(rx(THETA, "q1"))
        assert "RX(theta)" in text
