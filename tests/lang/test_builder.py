"""Unit tests for the program-construction helpers."""

import pytest

from repro.errors import WellFormednessError
from repro.lang.ast import Case, Seq, Sum, UnitaryApp, While
from repro.lang.builder import (
    apply_gate,
    bounded_while_on_qubit,
    case_on_qubit,
    rx,
    rxx,
    ry,
    ryy,
    rz,
    rzz,
    seq,
    sum_programs,
)
from repro.lang.gates import Coupling, Rotation, hadamard
from repro.lang.parameters import Parameter
from repro.linalg.measurement import Measurement, computational_measurement
import numpy as np

THETA = Parameter("theta")


class TestSequencing:
    def test_seq_left_association(self):
        a, b, c = rx(THETA, "q1"), ry(0.1, "q1"), rz(0.2, "q1")
        program = seq([a, b, c])
        assert program == Seq(Seq(a, b), c)

    def test_seq_single_program(self):
        assert seq([rx(THETA, "q1")]) == rx(THETA, "q1")

    def test_seq_empty_rejected(self):
        with pytest.raises(WellFormednessError):
            seq([])

    def test_sum_programs(self):
        a, b, c = rx(THETA, "q1"), ry(0.1, "q1"), rz(0.2, "q1")
        assert sum_programs([a, b, c]) == Sum(Sum(a, b), c)
        with pytest.raises(WellFormednessError):
            sum_programs([])


class TestGateShortcuts:
    def test_rotation_builders(self):
        assert isinstance(rx(THETA, "q1").gate, Rotation)
        assert rx(THETA, "q1").gate.axis == "X"
        assert ry(THETA, "q1").gate.axis == "Y"
        assert rz(THETA, "q1").gate.axis == "Z"

    def test_coupling_builders(self):
        assert isinstance(rxx(THETA, "a", "b").gate, Coupling)
        assert ryy(THETA, "a", "b").gate.axis == "YY"
        assert rzz(THETA, "a", "b").qubits == ("a", "b")

    def test_apply_gate(self):
        statement = apply_gate(hadamard(), "q1")
        assert isinstance(statement, UnitaryApp)
        assert statement.qubits == ("q1",)


class TestControlFlowBuilders:
    def test_case_on_qubit_defaults_to_computational(self):
        case = case_on_qubit("q1", {0: rx(THETA, "q2"), 1: ry(0.2, "q2")})
        assert isinstance(case, Case)
        assert case.measurement == computational_measurement(1)
        assert case.qubits == ("q1",)

    def test_case_on_qubit_custom_measurement(self):
        plus_minus = Measurement(
            {
                0: np.array([[0.5, 0.5], [0.5, 0.5]]),
                1: np.array([[0.5, -0.5], [-0.5, 0.5]]),
            },
            name="M_pm",
        )
        case = case_on_qubit("q1", {0: rx(THETA, "q1"), 1: ry(0.2, "q1")}, plus_minus)
        assert case.measurement.name == "M_pm"

    def test_bounded_while_on_qubit(self):
        loop = bounded_while_on_qubit("q1", rx(THETA, "q1"), 2)
        assert isinstance(loop, While)
        assert loop.bound == 2
        assert loop.measurement == computational_measurement(1)
