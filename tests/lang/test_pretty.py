"""Unit tests for the pretty-printer."""

from repro.lang.ast import Abort, Init, Skip, Sum
from repro.lang.builder import bounded_while_on_qubit, case_on_qubit, rx, rxx, ry, seq
from repro.lang.parameters import Parameter
from repro.lang.pretty import line_count, pretty_print

THETA = Parameter("theta")


class TestStatements:
    def test_abort(self):
        assert pretty_print(Abort(["q1", "q2"])) == "abort[q1, q2]"

    def test_skip(self):
        assert pretty_print(Skip(["q1"])) == "skip[q1]"

    def test_init(self):
        assert pretty_print(Init("q2")) == "q2 := |0>"

    def test_unitary_single(self):
        assert pretty_print(rx(THETA, "q1")) == "q1 := RX(theta)[q1]"

    def test_unitary_two_qubit(self):
        assert pretty_print(rxx(0.5, "q1", "q2")) == "q1, q2 := RXX(0.5)[q1, q2]"

    def test_sequence_uses_semicolons(self):
        text = pretty_print(seq([rx(THETA, "q1"), ry(0.2, "q2")]))
        lines = text.splitlines()
        assert lines[0].endswith(";")
        assert not lines[1].endswith(";")

    def test_case_layout(self):
        program = case_on_qubit("q1", {0: Skip(["q1"]), 1: rx(THETA, "q1")})
        text = pretty_print(program)
        assert text.splitlines()[0].startswith("case ")
        assert "0 -> {" in text
        assert "1 -> {" in text
        assert text.splitlines()[-1] == "end"

    def test_while_layout(self):
        program = bounded_while_on_qubit("q1", rx(THETA, "q1"), 2)
        text = pretty_print(program)
        assert text.splitlines()[0].startswith("while(2)")
        assert text.splitlines()[-1] == "done"

    def test_sum_layout(self):
        program = Sum(rx(THETA, "q1"), ry(0.1, "q1"))
        text = pretty_print(program)
        assert text.splitlines()[0] == "{"
        assert "} + {" in text
        assert text.splitlines()[-1] == "}"

    def test_nested_indentation(self):
        inner = case_on_qubit("q1", {0: Skip(["q1"]), 1: rx(THETA, "q2")})
        program = bounded_while_on_qubit("q2", inner, 2)
        text = pretty_print(program)
        assert "  case" in text  # the case guard is indented inside the loop


class TestLineCount:
    def test_single_statement(self):
        assert line_count(rx(THETA, "q1")) == 1

    def test_sequence_counts_each_statement(self):
        assert line_count(seq([rx(THETA, "q1"), ry(0.1, "q2"), Skip(["q1"])])) == 3

    def test_case_counts_scaffolding(self):
        program = case_on_qubit("q1", {0: Skip(["q1"]), 1: rx(THETA, "q1")})
        # case-header, two branch headers, two branch bodies, two closers, end
        assert line_count(program) == 8

    def test_while_counts_scaffolding(self):
        program = bounded_while_on_qubit("q1", rx(THETA, "q1"), 2)
        assert line_count(program) == 3

    def test_line_count_matches_pretty_lines(self):
        program = seq(
            [
                rx(THETA, "q1"),
                case_on_qubit("q1", {0: Skip(["q1"]), 1: ry(0.5, "q2")}),
                bounded_while_on_qubit("q2", rx(0.1, "q1"), 2),
            ]
        )
        rendered = [line for line in pretty_print(program).splitlines() if line.strip()]
        assert line_count(program) == len(rendered)
