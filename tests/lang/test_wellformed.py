"""Unit tests for well-formedness checking and qVar."""

import numpy as np
import pytest

from repro.errors import WellFormednessError
from repro.lang.ast import Case, Skip, Sum
from repro.lang.builder import case_on_qubit, rx, ry, seq
from repro.lang.parameters import Parameter
from repro.lang.qvar import combined_variables, qvar, shared_variables
from repro.lang.wellformed import (
    assert_normal_program,
    check_well_formed,
    declared_parameters,
    is_additive_program,
)
from repro.linalg.measurement import Measurement

THETA = Parameter("theta")
PHI = Parameter("phi")


class TestNormality:
    def test_is_additive(self):
        assert is_additive_program(Sum(Skip(["q1"]), Skip(["q1"])))
        assert not is_additive_program(Skip(["q1"]))

    def test_assert_normal(self):
        program = seq([rx(THETA, "q1"), ry(PHI, "q2")])
        assert assert_normal_program(program) is program
        with pytest.raises(WellFormednessError):
            assert_normal_program(Sum(Skip(["q1"]), Skip(["q1"])))


class TestCheckWellFormed:
    def test_accepts_good_program(self):
        program = seq([rx(THETA, "q1"), case_on_qubit("q1", {0: Skip(["q1"]), 1: ry(PHI, "q2")})])
        assert check_well_formed(program) is program

    def test_variable_universe(self):
        program = rx(THETA, "q9")
        with pytest.raises(WellFormednessError):
            check_well_formed(program, variables=["q1", "q2"])
        assert check_well_formed(program, variables=["q9"]) is program

    def test_reject_additive_when_disallowed(self):
        with pytest.raises(WellFormednessError):
            check_well_formed(Sum(Skip(["q1"]), Skip(["q1"])), allow_additive=False)

    def test_guard_qubit_count_mismatch(self):
        two_qubit_measurement = Measurement(
            {m: np.diag([1.0 if i == m else 0.0 for i in range(4)]) for m in range(4)}
        )
        bad = Case(two_qubit_measurement, ("q1",), {m: Skip(["q1"]) for m in range(4)})
        with pytest.raises(WellFormednessError):
            check_well_formed(bad)

    def test_incomplete_measurement_rejected(self):
        incomplete = Measurement({0: np.diag([1.0, 0.0]), 1: np.diag([0.0, 0.5])})
        bad = case_on_qubit("q1", {0: Skip(["q1"]), 1: Skip(["q1"])}, incomplete)
        with pytest.raises(WellFormednessError):
            check_well_formed(bad)
        # The same program passes when completeness checking is turned off.
        assert check_well_formed(bad, require_complete_measurements=False) is bad

    def test_declared_parameters_sorted(self):
        program = seq([ry(PHI, "q1"), rx(THETA, "q2")])
        assert declared_parameters(program) == (PHI, THETA)


class TestQvarHelpers:
    def test_qvar_matches_method(self):
        program = seq([rx(THETA, "q1"), ry(PHI, "q2")])
        assert qvar(program) == program.qvars() == {"q1", "q2"}

    def test_shared_variables(self):
        assert shared_variables(rx(THETA, "q1"), ry(PHI, "q1")) == {"q1"}
        assert shared_variables(rx(THETA, "q1"), ry(PHI, "q2")) == frozenset()

    def test_combined_variables(self):
        assert combined_variables(rx(THETA, "q1"), ry(PHI, "q2"), Skip(["q3"])) == {
            "q1",
            "q2",
            "q3",
        }
