"""Property-style cross-checks: contraction kernels vs the embedding reference.

Every kernel of :mod:`repro.sim.kernels` must agree (up to numerical noise)
with the full-space path through
:meth:`repro.sim.hilbert.RegisterLayout.embed_operator` on random states,
random target subsets in random order, and mixed qubit/qudit layouts.
"""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError, LinalgError
from repro.linalg.measurement import Measurement, computational_measurement
from repro.linalg.superop import initialization_channel
from repro.sim import kernels
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.sim.statevector import StateVector

#: (dims per variable) layouts exercised by every property test: pure qubit
#: registers plus mixed qubit/qudit registers.
LAYOUT_DIMS = [
    (2, 2),
    (2, 2, 2),
    (2, 2, 2, 2),
    (3, 2),
    (2, 3, 2),
    (4, 2, 3),
]


def _layout(dims):
    names = [f"q{i}" for i in range(len(dims))]
    return RegisterLayout(names, dims)


def _random_matrix(rng, dim):
    return rng.standard_normal((dim, dim)) + 1j * rng.standard_normal((dim, dim))


def _random_density(rng, dim):
    raw = _random_matrix(rng, dim)
    rho = raw @ raw.conj().T
    return rho / np.trace(rho)


def _random_vector(rng, dim):
    vec = rng.standard_normal(dim) + 1j * rng.standard_normal(dim)
    return vec / np.linalg.norm(vec)


def _random_targets(rng, layout):
    count = int(rng.integers(1, layout.num_variables + 1))
    picked = rng.permutation(layout.num_variables)[:count]
    return [layout.names[i] for i in picked]


def _target_dim(layout, targets):
    return int(np.prod([layout.dim_of(name) for name in targets]))


@pytest.mark.parametrize("dims", LAYOUT_DIMS)
@pytest.mark.parametrize("trial", range(3))
class TestAgainstEmbedReference:
    def test_unitary_conjugation(self, dims, trial):
        rng = np.random.default_rng(hash((dims, trial, 1)) % 2**32)
        layout = _layout(dims)
        targets = _random_targets(rng, layout)
        operator = _random_matrix(rng, _target_dim(layout, targets))
        rho = _random_density(rng, layout.total_dim)

        kernel = DensityState(layout, rho).apply_unitary(operator, targets).matrix
        full = layout.embed_operator(operator, targets)
        reference = full @ rho @ full.conj().T
        assert np.allclose(kernel, reference)

    def test_kraus_channel(self, dims, trial):
        rng = np.random.default_rng(hash((dims, trial, 2)) % 2**32)
        layout = _layout(dims)
        targets = _random_targets(rng, layout)
        dim = _target_dim(layout, targets)
        kraus = [_random_matrix(rng, dim) for _ in range(3)]
        rho = _random_density(rng, layout.total_dim)

        kernel = DensityState(layout, rho).apply_kraus(kraus, targets).matrix
        reference = np.zeros_like(rho)
        for op in kraus:
            full = layout.embed_operator(op, targets)
            reference += full @ rho @ full.conj().T
        assert np.allclose(kernel, reference)

    def test_measurement_branches_and_probabilities(self, dims, trial):
        rng = np.random.default_rng(hash((dims, trial, 3)) % 2**32)
        layout = _layout(dims)
        targets = _random_targets(rng, layout)
        dim = _target_dim(layout, targets)
        # A random (not necessarily complete) two-outcome measurement.
        measurement = Measurement(
            (_random_matrix(rng, dim), _random_matrix(rng, dim)), (0, 1)
        )
        rho = _random_density(rng, layout.total_dim)
        state = DensityState(layout, rho)

        probabilities = state.measurement_probabilities(measurement, targets)
        for outcome in measurement.outcomes:
            full = layout.embed_operator(measurement.operator(outcome), targets)
            reference_branch = full @ rho @ full.conj().T
            branch = state.measurement_branch(measurement, targets, outcome)
            assert np.allclose(branch.matrix, reference_branch)
            assert probabilities[outcome] == pytest.approx(
                float(np.real(np.trace(reference_branch)))
            )

    def test_density_expectation(self, dims, trial):
        rng = np.random.default_rng(hash((dims, trial, 4)) % 2**32)
        layout = _layout(dims)
        targets = _random_targets(rng, layout)
        dim = _target_dim(layout, targets)
        hermitian = _random_matrix(rng, dim)
        hermitian = hermitian + hermitian.conj().T
        rho = _random_density(rng, layout.total_dim)

        kernel = DensityState(layout, rho).expectation(hermitian, targets)
        full = layout.embed_operator(hermitian, targets)
        assert kernel == pytest.approx(float(np.real(np.trace(full @ rho))))

    def test_statevector_apply_and_expectation(self, dims, trial):
        rng = np.random.default_rng(hash((dims, trial, 5)) % 2**32)
        layout = _layout(dims)
        targets = _random_targets(rng, layout)
        dim = _target_dim(layout, targets)
        operator = _random_matrix(rng, dim)
        psi = _random_vector(rng, layout.total_dim)

        applied = StateVector(layout, psi.copy()).apply_unitary(operator, targets)
        full = layout.embed_operator(operator, targets)
        assert np.allclose(applied.amplitudes, full @ psi)

        hermitian = operator + operator.conj().T
        expectation = StateVector(layout, psi.copy()).expectation(hermitian, targets)
        embedded = layout.embed_operator(hermitian, targets)
        assert expectation == pytest.approx(float(np.real(np.vdot(psi, embedded @ psi))))

    def test_reduced_density_against_definition(self, dims, trial):
        rng = np.random.default_rng(hash((dims, trial, 6)) % 2**32)
        layout = _layout(dims)
        targets = _random_targets(rng, layout)
        rho = _random_density(rng, layout.total_dim)
        axes = layout.axes_of(targets)

        reduced = kernels.reduced_density(rho, layout.dims, axes)
        # Definition check: tr(O ρ_red) = tr(embed(O) ρ) for a random local O.
        dim = _target_dim(layout, targets)
        probe = _random_matrix(rng, dim)
        lhs = np.trace(probe @ reduced)
        rhs = np.trace(layout.embed_operator(probe, targets) @ rho)
        assert np.allclose(lhs, rhs)
        assert np.trace(reduced) == pytest.approx(np.trace(rho))


class TestTwoFactorExpectation:
    @pytest.mark.parametrize("trial", range(5))
    def test_matches_kronecker_reference(self, trial):
        rng = np.random.default_rng(100 + trial)
        lead_dim, rest_dim = 2, 8
        lead = _random_matrix(rng, lead_dim)
        lead = lead + lead.conj().T
        rest = _random_matrix(rng, rest_dim)
        rest = rest + rest.conj().T
        rho = _random_density(rng, lead_dim * rest_dim)
        kernel = kernels.two_factor_expectation_density(rho, lead_dim, lead, rest)
        reference = float(np.real(np.trace(np.kron(lead, rest) @ rho)))
        assert kernel == pytest.approx(reference)

    def test_dimension_validation(self):
        with pytest.raises(DimensionMismatchError):
            kernels.two_factor_expectation_density(np.eye(4), 2, np.eye(3), np.eye(2))
        with pytest.raises(DimensionMismatchError):
            kernels.two_factor_expectation_density(np.eye(5), 2, np.eye(2), np.eye(2))


class TestInitializationChannel:
    @pytest.mark.parametrize("dims", LAYOUT_DIMS)
    def test_reset_matches_embed_path(self, dims):
        rng = np.random.default_rng(hash((dims, 7)) % 2**32)
        layout = _layout(dims)
        rho = _random_density(rng, layout.total_dim)
        variable = layout.names[int(rng.integers(layout.num_variables))]
        channel = initialization_channel(layout.dim_of(variable))

        kernel = DensityState(layout, rho).initialize(variable).matrix
        reference = np.zeros_like(rho)
        for op in channel.kraus_operators:
            full = layout.embed_operator(op, [variable])
            reference += full @ rho @ full.conj().T
        assert np.allclose(kernel, reference)


class TestValidation:
    def test_duplicate_targets_rejected(self):
        layout = _layout((2, 2))
        state = DensityState.zero_state(layout)
        with pytest.raises(LinalgError):
            state.apply_unitary(np.eye(4), ["q0", "q0"])

    def test_unknown_target_rejected(self):
        layout = _layout((2, 2))
        state = DensityState.zero_state(layout)
        with pytest.raises(LinalgError):
            state.apply_unitary(np.eye(2), ["nope"])

    def test_operator_shape_rejected(self):
        layout = _layout((2, 2))
        state = DensityState.zero_state(layout)
        with pytest.raises(DimensionMismatchError):
            state.apply_unitary(np.eye(4), ["q0"])

    def test_empty_kraus_rejected(self):
        with pytest.raises(LinalgError):
            kernels.apply_kraus_density(np.eye(4), (2, 2), (0,), [])

    def test_computational_measurement_probabilities_normalized(self):
        layout = _layout((2, 2, 2))
        state = DensityState.zero_state(layout).apply_unitary(
            np.array([[1, 1], [1, -1]]) / np.sqrt(2), ["q1"]
        )
        probabilities = state.measurement_probabilities(computational_measurement(1), ["q1"])
        assert sum(probabilities.values()) == pytest.approx(1.0)


class TestEmptyTargets:
    def test_scalar_operator_on_empty_targets_matches_embed_semantics(self):
        layout = _layout((2, 2))
        rng = np.random.default_rng(11)
        rho = _random_density(rng, 4)
        state = DensityState(layout, rho)
        # A 1x1 operator acts as a scalar: c ρ c* for conjugation, c·tr(ρ) for readout.
        scaled = state.apply_unitary(np.array([[2.0 + 1.0j]]), [])
        assert np.allclose(scaled.matrix, 5.0 * rho)
        assert state.expectation(np.array([[2.0]]), []) == pytest.approx(2.0)
