"""The branch-splitting trajectory evaluator vs the exact density semantics.

For every program the simulation analysis classes as PURE or BRANCHING, the
ensemble ``Σ_b |ψ_b⟩⟨ψ_b|`` produced by ``denote_trajectory_batch`` must
equal ``[[P(θ*)]]ρ`` of the reference density evaluator (for additive
programs: the sum over the compiled multiset, Definition 4.1/5.2).  The
hypothesis sweep covers random ``case``/``while``/``Sum`` programs; the
directed tests pin pruning, coalescing, the Kraus-split reset, the branch
cap and the certified ``while`` truncation.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.additive.compile import compile_additive
from repro.errors import TrajectoryError
from repro.lang.ast import Abort, Init, Skip, Sum
from repro.lang.builder import bounded_while_on_qubit, case_on_qubit, rx, ry, seq
from repro.lang.parameters import Parameter, ParameterBinding
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.sim.trajectories import (
    TrajectoryOptions,
    coalesce_branches,
    denote_trajectory_batch,
)
from repro.semantics import denotational

from tests.conftest import binding_strategy, program_strategy

THETA = Parameter("theta")
PHI = Parameter("phi")
BINDING = ParameterBinding({THETA: 0.47, PHI: -1.2})

LAYOUT = RegisterLayout(("q1", "q2"))


def _reference_matrix(program, state, binding):
    """``[[P]]ρ`` — summed over the compiled multiset for additive programs."""
    members = compile_additive(program) if program.is_additive() else [program]
    total = DensityState.null_state(state.layout)
    for member in members:
        total = total.add(denotational.denote(member, state, binding))
    return total.matrix


def _ensemble_matrix(result, dim, row=0):
    """The density operator represented by one input row's branches."""
    rows = result.amplitudes[result.owners == row]
    total = np.zeros((dim, dim), dtype=complex)
    for branch in rows:
        total += np.outer(branch, np.conj(branch))
    return total


class TestAgainstDensitySemantics:
    @settings(max_examples=40, deadline=None)
    @given(
        program=program_strategy(max_depth=2, allow_sum=True),
        binding=binding_strategy(),
    )
    def test_random_programs_reproduce_the_density_state(self, program, binding):
        state = DensityState.basis_state(LAYOUT, {"q1": 1})
        result = denote_trajectory_batch(
            program, LAYOUT, state.pure_amplitudes()[np.newaxis, :], binding
        )
        reference = _reference_matrix(program, state, binding)
        assert np.allclose(_ensemble_matrix(result, LAYOUT.total_dim), reference, atol=1e-10)
        # Nothing beyond numerically-zero branches may be discarded by default.
        assert np.all(result.dropped <= 1e-10)

    def test_case_splits_per_outcome(self):
        program = seq(
            [rx(THETA, "q1"), case_on_qubit("q1", {0: ry(PHI, "q2"), 1: rx(PHI, "q2")})]
        )
        state = DensityState.basis_state(LAYOUT, {})
        result = denote_trajectory_batch(
            program, LAYOUT, state.pure_amplitudes()[np.newaxis, :], BINDING
        )
        assert result.amplitudes.shape[0] == 2  # one branch per outcome
        reference = _reference_matrix(program, state, BINDING)
        assert np.allclose(_ensemble_matrix(result, 4), reference, atol=1e-12)

    def test_while_unrolls_and_aborts_the_still_running_branch(self):
        program = bounded_while_on_qubit("q1", rx(1.1, "q1"), 3)
        state = DensityState.basis_state(LAYOUT, {"q1": 1})
        result = denote_trajectory_batch(
            program, LAYOUT, state.pure_amplitudes()[np.newaxis, :], BINDING
        )
        reference = _reference_matrix(program, state, BINDING)
        assert np.allclose(_ensemble_matrix(result, 4), reference, atol=1e-12)
        # The still-running branch aborts: total mass strictly below one.
        assert float(np.real(np.trace(reference))) < 1.0
        assert np.all(result.dropped == 0.0)

    def test_batched_inputs_keep_their_owners(self):
        program = seq([rx(THETA, "q1"), case_on_qubit("q1", {0: Skip(("q1",)), 1: ry(PHI, "q2")})])
        states = [
            DensityState.basis_state(LAYOUT, {"q1": b1, "q2": b2})
            for b1, b2 in ((0, 0), (1, 0), (1, 1))
        ]
        stack = np.array([s.pure_amplitudes() for s in states])
        result = denote_trajectory_batch(program, LAYOUT, stack, BINDING)
        for row, state in enumerate(states):
            reference = _reference_matrix(program, state, BINDING)
            assert np.allclose(_ensemble_matrix(result, 4, row), reference, atol=1e-12)

    def test_abort_yields_the_empty_ensemble(self):
        result = denote_trajectory_batch(
            Abort(("q1", "q2")), LAYOUT, np.eye(4, dtype=complex)[:1], None
        )
        assert result.amplitudes.shape == (0, 4)


class TestPruningAndCoalescing:
    def test_zero_probability_branches_are_pruned(self):
        # Measuring a basis state: one outcome carries all the mass.
        program = case_on_qubit("q1", {0: Skip(("q1",)), 1: Skip(("q1",))})
        state = DensityState.basis_state(LAYOUT, {"q1": 1})
        result = denote_trajectory_batch(
            program, LAYOUT, state.pure_amplitudes()[np.newaxis, :], None
        )
        assert result.amplitudes.shape[0] == 1
        assert np.all(result.dropped == 0.0)

    def test_identical_sum_branches_coalesce(self):
        program = Sum(rx(THETA, "q1"), rx(THETA, "q1"))
        state = DensityState.basis_state(LAYOUT, {})
        result = denote_trajectory_batch(
            program, LAYOUT, state.pure_amplitudes()[np.newaxis, :], BINDING
        )
        # Two identical summand trajectories merge into one double-mass branch.
        assert result.amplitudes.shape[0] == 1
        assert np.allclose(
            _ensemble_matrix(result, 4), _reference_matrix(program, state, BINDING), atol=1e-12
        )

    def test_coalescing_can_be_disabled(self):
        program = Sum(rx(THETA, "q1"), rx(THETA, "q1"))
        state = DensityState.basis_state(LAYOUT, {})
        result = denote_trajectory_batch(
            program,
            LAYOUT,
            state.pure_amplitudes()[np.newaxis, :],
            BINDING,
            options=TrajectoryOptions(coalesce=False),
        )
        assert result.amplitudes.shape[0] == 2

    def test_coalesce_branches_respects_owners(self):
        row = np.array([1.0, 0.0, 0.0, 0.0], dtype=complex)
        stack = np.array([row, row, row])
        owners = np.array([0, 0, 1], dtype=np.intp)
        merged, merged_owners = coalesce_branches(stack, owners)
        assert merged.shape[0] == 2  # same-owner duplicates merge, owners never mix
        assert sorted(merged_owners.tolist()) == [0, 1]
        masses = np.real(np.einsum("bi,bi->b", np.conj(merged), merged))
        assert masses[merged_owners.tolist().index(0)] == pytest.approx(2.0)


class TestResets:
    def test_product_form_reset_keeps_one_branch(self):
        program = seq([rx(THETA, "q1"), Init("q1")])  # mid-circuit but unentangled
        state = DensityState.basis_state(LAYOUT, {})
        result = denote_trajectory_batch(
            program, LAYOUT, state.pure_amplitudes()[np.newaxis, :], BINDING
        )
        assert result.amplitudes.shape[0] == 1
        assert np.allclose(
            _ensemble_matrix(result, 4), _reference_matrix(program, state, BINDING), atol=1e-12
        )

    def test_entangled_reset_kraus_splits_exactly(self):
        # A Bell state's marginal is mixed: the pure tier must refuse it,
        # the trajectory tier splits the reset channel into Kraus branches.
        bell = np.zeros(4, dtype=complex)
        bell[0] = bell[3] = 2**-0.5
        state = DensityState.from_pure(LAYOUT, bell)
        result = denote_trajectory_batch(
            Init("q1"), LAYOUT, bell[np.newaxis, :], None
        )
        assert result.amplitudes.shape[0] == 2
        reference = denotational.denote(Init("q1"), state, None).matrix
        assert np.allclose(_ensemble_matrix(result, 4), reference, atol=1e-12)


class TestBudgets:
    def test_branch_cap_raises_trajectory_error(self):
        body = case_on_qubit("q2", {0: rx(0.3, "q2"), 1: ry(0.4, "q2")})
        program = bounded_while_on_qubit("q1", seq([body, rx(0.7, "q1")]), 6)
        state = DensityState.from_pure(
            LAYOUT, np.array([0.6, 0.0, 0.0, 0.8], dtype=complex)
        )
        with pytest.raises(TrajectoryError):
            denote_trajectory_batch(
                program,
                LAYOUT,
                state.pure_amplitudes()[np.newaxis, :],
                None,
                options=TrajectoryOptions(max_branches=4),
            )

    def test_while_truncation_respects_the_certified_mass_budget(self):
        # Guard stays 1 with probability one half per iteration: continuing
        # mass decays as 2^-t, so a budget of 1e-3 truncates around t=10,
        # well before the exact bound of 40.
        program = bounded_while_on_qubit("q1", rx(np.pi / 2, "q1"), 40)
        state = DensityState.basis_state(LAYOUT, {"q1": 1})
        exact = denote_trajectory_batch(
            program, LAYOUT, state.pure_amplitudes()[np.newaxis, :], None
        )
        truncated = denote_trajectory_batch(
            program,
            LAYOUT,
            state.pure_amplitudes()[np.newaxis, :],
            None,
            options=TrajectoryOptions(mass_budget=1e-3),
        )
        assert np.all(exact.dropped == 0.0)
        # Truncation engaged (mass was charged) and stayed within budget.
        assert 0.0 < truncated.dropped[0] <= 1e-3
        # The represented states differ by no more than the certified mass.
        difference = _ensemble_matrix(exact, 4) - _ensemble_matrix(truncated, 4)
        assert float(np.linalg.norm(difference, 2)) <= truncated.dropped[0] + 1e-12

    def test_zero_budget_never_truncates(self):
        program = bounded_while_on_qubit("q1", rx(np.pi / 2, "q1"), 12)
        state = DensityState.basis_state(LAYOUT, {"q1": 1})
        result = denote_trajectory_batch(
            program, LAYOUT, state.pure_amplitudes()[np.newaxis, :], None
        )
        assert np.all(result.dropped == 0.0)
        assert np.allclose(
            _ensemble_matrix(result, 4), _reference_matrix(program, state, None), atol=1e-12
        )


class TestKernel:
    def test_measure_branch_vector_batch_matches_density_branches(self):
        from repro.linalg.measurement import computational_measurement
        from repro.sim import kernels

        rng = np.random.default_rng(5)
        stack = rng.normal(size=(3, 4)) + 1j * rng.normal(size=(3, 4))
        measurement = computational_measurement(1)
        splits = kernels.measure_branch_vector_batch(
            stack, LAYOUT.dims, (0,), measurement.operators
        )
        assert len(splits) == 2
        for row in range(3):
            state = DensityState.from_pure(LAYOUT, stack[row])
            total_mass = 0.0
            for outcome, split in enumerate(splits):
                branch = state.measurement_branch(measurement, ("q1",), outcome)
                outer = np.outer(split[row], np.conj(split[row]))
                assert np.allclose(outer, branch.matrix, atol=1e-12)
                total_mass += float(np.real(np.vdot(split[row], split[row])))
            assert total_mass == pytest.approx(
                float(np.real(np.vdot(stack[row], stack[row])))
            )
