"""Batch-axis kernels and the batched pure-state denotation.

Every batched kernel is cross-checked row-by-row against its single-state
counterpart (which is itself cross-checked against the embedding reference
in ``test_kernels.py``), on qubit and mixed qubit/qutrit registers; the
batched denotation is cross-checked against the density semantics.
"""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError, PurityError, SemanticsError
from repro.lang.ast import Abort, Init, Skip
from repro.lang.builder import case_on_qubit, rx, rxx, ry, seq
from repro.lang.parameters import Parameter, ParameterBinding
from repro.sim import kernels
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.sim.pure import denote_amplitude_batch, denote_pure
from repro.sim.statevector import StateVector
from repro.semantics import denotational

THETA = Parameter("theta")
BINDING = ParameterBinding({THETA: 0.83})


def _random_stack(rng, batch, dims, normalize=True):
    total = int(np.prod(dims))
    stack = rng.normal(size=(batch, total)) + 1j * rng.normal(size=(batch, total))
    if normalize:
        stack /= np.linalg.norm(stack, axis=1, keepdims=True)
    return stack


def _random_unitary(rng, dim):
    matrix = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, _ = np.linalg.qr(matrix)
    return q


class TestBatchKernels:
    @pytest.mark.parametrize("dims,axes", [
        ((2, 2, 2), (1,)),
        ((2, 2, 2), (0, 2)),
        ((2, 3, 2), (1,)),
        ((3, 2, 2), (2, 0)),
        ((2, 2, 2, 2), (1, 2)),
    ])
    def test_apply_operator_matches_per_row_application(self, dims, axes):
        rng = np.random.default_rng(11)
        stack = _random_stack(rng, 5, dims)
        op_dim = int(np.prod([dims[a] for a in axes]))
        operator = _random_unitary(rng, op_dim)
        batched = kernels.apply_operator_vector_batch(stack, dims, axes, operator)
        for row in range(stack.shape[0]):
            single = kernels.apply_operator_vector(stack[row], dims, axes, operator)
            assert np.allclose(batched[row], single, atol=1e-12)

    def test_expectation_matches_per_row(self):
        rng = np.random.default_rng(5)
        dims, axes = (2, 3, 2), (1,)
        stack = _random_stack(rng, 4, dims)
        hermitian = rng.normal(size=(3, 3))
        hermitian = hermitian + hermitian.T
        batched = kernels.expectation_vector_batch(stack, dims, axes, hermitian)
        for row in range(4):
            single = kernels.expectation_vector(stack[row], dims, axes, hermitian)
            assert batched[row] == pytest.approx(single, abs=1e-12)

    def test_two_factor_expectation_matches_density_kernel(self):
        rng = np.random.default_rng(9)
        lead_dim, rest_dim = 2, 6
        stack = _random_stack(rng, 3, (lead_dim * rest_dim,))
        lead = np.diag([1.0, -1.0]).astype(complex)
        rest = rng.normal(size=(rest_dim, rest_dim))
        rest = (rest + rest.T).astype(complex)
        batched = kernels.two_factor_expectation_vector_batch(stack, lead_dim, lead, rest)
        for row in range(3):
            rho = np.outer(stack[row], np.conj(stack[row]))
            reference = kernels.two_factor_expectation_density(rho, lead_dim, lead, rest)
            assert batched[row] == pytest.approx(reference, abs=1e-12)

    def test_shape_validation(self):
        with pytest.raises(DimensionMismatchError):
            kernels.apply_operator_vector_batch(
                np.zeros(4, dtype=complex), (2, 2), (0,), np.eye(2)
            )
        with pytest.raises(DimensionMismatchError):
            kernels.apply_operator_vector_batch(
                np.zeros((2, 5), dtype=complex), (2, 2), (0,), np.eye(2)
            )


class TestResetKernel:
    def test_product_state_reset_matches_density_channel(self):
        layout = RegisterLayout(("a", "b"), (3, 2))
        psi = np.kron(np.array([0.0, 0.6, 0.8]), np.array([1.0, 0.0])).astype(complex)
        out = kernels.reset_vector_batch(psi[None], layout.dims, 0)[0]
        reference = denotational.denote(
            Init("a"), DensityState.from_pure(layout, psi), None
        )
        assert np.allclose(np.outer(out, np.conj(out)), reference.matrix, atol=1e-12)

    def test_entangled_reset_raises_purity_error(self):
        bell = np.zeros(4, dtype=complex)
        bell[0] = bell[3] = 2**-0.5
        with pytest.raises(PurityError):
            kernels.reset_vector_batch(bell[None], (2, 2), 1)

    def test_zero_rows_pass_through(self):
        out = kernels.reset_vector_batch(np.zeros((2, 4), dtype=complex), (2, 2), 0)
        assert np.allclose(out, 0.0)

    def test_subnormalized_rows_keep_their_mass(self):
        psi = 0.5 * np.kron(np.array([0.0, 1.0]), np.array([0.6, 0.8])).astype(complex)
        out = kernels.reset_vector_batch(psi[None], (2, 2), 0)[0]
        assert np.linalg.norm(out) == pytest.approx(0.5, abs=1e-12)
        assert np.allclose(out[2:], 0.0)  # the reset variable sits in |0⟩


class TestBatchedDenotation:
    def test_matches_density_semantics_per_row(self):
        rng = np.random.default_rng(21)
        layout = RegisterLayout(("q1", "q2", "q3"))
        program = seq(
            [rx(THETA, "q1"), rxx(0.4, "q1", "q2"), ry(0.9, "q3"), Skip(("q2",))]
        )
        stack = _random_stack(rng, 4, layout.dims)
        outputs = denote_amplitude_batch(program, layout, stack, BINDING)
        for row in range(4):
            reference = denotational.denote(
                program, DensityState.from_pure(layout, stack[row]), BINDING
            )
            assert np.allclose(
                np.outer(outputs[row], np.conj(outputs[row])),
                reference.matrix,
                atol=1e-12,
            )

    def test_abort_denotes_the_zero_vector(self):
        layout = RegisterLayout(("q1", "q2"))
        stack = _random_stack(np.random.default_rng(2), 3, layout.dims)
        outputs = denote_amplitude_batch(
            seq([rx(0.3, "q1"), Abort(("q1", "q2"))]), layout, stack, None
        )
        assert np.allclose(outputs, 0.0)

    def test_qutrit_register_supported(self):
        # A qutrit rides along in the register (gates are qubit-only in the
        # language); its leading reset and the axis bookkeeping must use the
        # 3-dimensional factor from the layout throughout.
        layout = RegisterLayout(("t1", "q1", "q2"), (3, 2, 2))
        program = seq([Init("t1"), rx(THETA, "q1"), rxx(0.7, "q1", "q2")])
        state = DensityState.basis_state(layout, {"t1": 2, "q2": 1})
        out = denote_amplitude_batch(
            program, layout, state.pure_amplitudes()[None], BINDING
        )[0]
        reference = denotational.denote(program, state, BINDING)
        assert np.allclose(np.outer(out, np.conj(out)), reference.matrix, atol=1e-12)

    def test_case_raises_semantics_error(self):
        layout = RegisterLayout(("q1", "q2"))
        program = case_on_qubit("q1", {0: Skip(("q1",)), 1: Skip(("q1",))})
        with pytest.raises(SemanticsError):
            denote_amplitude_batch(program, layout, np.zeros((1, 4), dtype=complex), None)

    def test_missing_variable_raises(self):
        layout = RegisterLayout(("q1",))
        with pytest.raises(SemanticsError):
            denote_amplitude_batch(
                rx(0.3, "q9"), layout, np.zeros((1, 2), dtype=complex), None
            )

    def test_denote_pure_wrapper(self):
        layout = RegisterLayout(("q1", "q2"))
        program = seq([rx(THETA, "q1"), rxx(0.2, "q1", "q2")])
        state = StateVector.basis_state(layout, {"q2": 1})
        output = denote_pure(program, state, BINDING)
        reference = denotational.denote(
            program, DensityState.from_pure(layout, state.amplitudes), BINDING
        )
        assert np.allclose(
            np.outer(output.amplitudes, np.conj(output.amplitudes)),
            reference.matrix,
            atol=1e-12,
        )
