"""Unit tests for the density-matrix simulator."""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError, LinalgError
from repro.linalg.gates import CNOT, HADAMARD, PAULI_X, PAULI_Z
from repro.linalg.measurement import computational_measurement
from repro.linalg.superop import initialization_channel
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout


@pytest.fixture
def layout():
    return RegisterLayout(["q1", "q2"])


class TestConstruction:
    def test_zero_state(self, layout):
        state = DensityState.zero_state(layout)
        assert np.isclose(state.trace(), 1.0)
        assert np.isclose(state.matrix[0, 0], 1.0)

    def test_basis_state(self, layout):
        state = DensityState.basis_state(layout, {"q1": 1})
        assert np.isclose(state.matrix[0b10, 0b10], 1.0)

    def test_from_pure(self, layout):
        vec = np.zeros(4)
        vec[3] = 1.0
        state = DensityState.from_pure(layout, vec)
        assert np.isclose(state.matrix[3, 3], 1.0)

    def test_from_pure_dimension_check(self, layout):
        with pytest.raises(DimensionMismatchError):
            DensityState.from_pure(layout, np.ones(3))

    def test_null_state(self, layout):
        state = DensityState.null_state(layout)
        assert state.is_null()
        assert state.trace() == 0.0

    def test_shape_validation(self, layout):
        with pytest.raises(DimensionMismatchError):
            DensityState(layout, np.eye(3))


class TestEvolution:
    def test_apply_unitary_single_qubit(self, layout):
        state = DensityState.zero_state(layout).apply_unitary(PAULI_X, ["q2"])
        assert np.isclose(state.matrix[0b01, 0b01], 1.0)

    def test_apply_unitary_entangles(self, layout):
        state = (
            DensityState.zero_state(layout)
            .apply_unitary(HADAMARD, ["q1"])
            .apply_unitary(CNOT, ["q1", "q2"])
        )
        # Bell state: ρ[00,00] = ρ[11,11] = ρ[00,11] = 1/2.
        assert np.isclose(state.matrix[0, 0], 0.5)
        assert np.isclose(state.matrix[3, 3], 0.5)
        assert np.isclose(state.matrix[0, 3], 0.5)

    def test_apply_kraus(self, layout):
        state = DensityState.zero_state(layout).apply_unitary(HADAMARD, ["q1"])
        reset = state.apply_kraus(initialization_channel(2).kraus_operators, ["q1"])
        assert np.isclose(reset.matrix[0, 0], 1.0)

    def test_initialize_resets_and_decorrelates(self, layout):
        bell = (
            DensityState.zero_state(layout)
            .apply_unitary(HADAMARD, ["q1"])
            .apply_unitary(CNOT, ["q1", "q2"])
        )
        reset = bell.initialize("q1")
        # q1 back to |0⟩, q2 left maximally mixed.
        expected = np.kron(np.diag([1.0, 0.0]), np.eye(2) / 2)
        assert np.allclose(reset.matrix, expected)

    def test_scaled_and_add(self, layout):
        a = DensityState.basis_state(layout, {"q1": 0})
        b = DensityState.basis_state(layout, {"q1": 1})
        mixture = a.scaled(0.25).add(b.scaled(0.75))
        assert np.isclose(mixture.trace(), 1.0)
        assert np.isclose(mixture.matrix[0b10, 0b10], 0.75)

    def test_scaled_rejects_negative(self, layout):
        with pytest.raises(LinalgError):
            DensityState.zero_state(layout).scaled(-0.5)

    def test_add_layout_mismatch(self, layout):
        other = DensityState.zero_state(RegisterLayout(["a"]))
        with pytest.raises(DimensionMismatchError):
            DensityState.zero_state(layout).add(other)


class TestMeasurement:
    def test_branch_states_sum_to_identity_action(self, layout):
        state = DensityState.zero_state(layout).apply_unitary(HADAMARD, ["q1"])
        measurement = computational_measurement(1)
        branch0 = state.measurement_branch(measurement, ["q1"], 0)
        branch1 = state.measurement_branch(measurement, ["q1"], 1)
        assert np.isclose(branch0.trace(), 0.5)
        assert np.isclose(branch1.trace(), 0.5)
        assert np.allclose(branch0.matrix + branch1.matrix, np.diag([0.5, 0, 0.5, 0]))

    def test_measurement_probabilities(self, layout):
        state = DensityState.zero_state(layout).apply_unitary(HADAMARD, ["q2"])
        probabilities = state.measurement_probabilities(computational_measurement(1), ["q2"])
        assert np.isclose(probabilities[0], 0.5)
        assert np.isclose(probabilities[1], 0.5)


class TestObservables:
    def test_expectation_full_register(self, layout):
        state = DensityState.basis_state(layout, {"q1": 1, "q2": 0})
        observable = np.kron(PAULI_Z, PAULI_Z)
        assert np.isclose(state.expectation(observable), -1.0)

    def test_expectation_on_targets(self, layout):
        state = DensityState.basis_state(layout, {"q1": 1})
        assert np.isclose(state.expectation(PAULI_Z, ["q1"]), -1.0)
        assert np.isclose(state.expectation(PAULI_Z, ["q2"]), 1.0)

    def test_expectation_dimension_check(self, layout):
        with pytest.raises(DimensionMismatchError):
            DensityState.zero_state(layout).expectation(PAULI_Z)

    def test_extended_adds_ancilla_in_front(self, layout):
        state = DensityState.basis_state(layout, {"q1": 1}).extended("anc", front=True)
        assert state.layout.names == ("anc", "q1", "q2")
        assert np.isclose(state.trace(), 1.0)
        # The ancilla is |0⟩: expectation of Z on it is +1.
        assert np.isclose(state.expectation(PAULI_Z, ["anc"]), 1.0)
        # q1 is still |1⟩.
        assert np.isclose(state.expectation(PAULI_Z, ["q1"]), -1.0)

    def test_copy_is_independent(self, layout):
        state = DensityState.zero_state(layout)
        copy = state.copy()
        assert copy == state
        assert copy.matrix is not state.matrix


class TestHashability:
    def test_density_states_are_unhashable(self, layout):
        state = DensityState.zero_state(layout)
        with pytest.raises(TypeError):
            hash(state)
        with pytest.raises(TypeError):
            {state}

    def test_equality_is_still_numerical(self, layout):
        a = DensityState.zero_state(layout)
        b = DensityState.zero_state(layout)
        assert a == b
        assert a != DensityState.basis_state(layout, {"q1": 1})
