"""Unit tests for the statevector (trajectory) simulator."""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError, LinalgError
from repro.linalg.gates import CNOT, HADAMARD, PAULI_X, PAULI_Z
from repro.linalg.measurement import computational_measurement
from repro.sim.hilbert import RegisterLayout
from repro.sim.statevector import StateVector


@pytest.fixture
def layout():
    return RegisterLayout(["q1", "q2"])


class TestBasics:
    def test_default_is_all_zero(self, layout):
        state = StateVector(layout)
        assert np.isclose(state.probability_of({"q1": 0, "q2": 0}), 1.0)

    def test_basis_state(self, layout):
        state = StateVector.basis_state(layout, {"q1": 1})
        assert np.isclose(state.probability_of({"q1": 1, "q2": 0}), 1.0)

    def test_dimension_check(self, layout):
        with pytest.raises(DimensionMismatchError):
            StateVector(layout, np.ones(3))

    def test_density_matrix(self, layout):
        state = StateVector(layout)
        rho = state.density_matrix()
        assert np.isclose(np.trace(rho), 1.0)
        assert np.isclose(rho[0, 0], 1.0)

    def test_copy_is_independent(self, layout):
        state = StateVector(layout)
        copy = state.copy()
        copy.apply_unitary(PAULI_X, ["q1"])
        assert np.isclose(state.probability_of({"q1": 0, "q2": 0}), 1.0)


class TestEvolution:
    def test_apply_unitary(self, layout):
        state = StateVector(layout).apply_unitary(PAULI_X, ["q2"])
        assert np.isclose(state.probability_of({"q2": 1}), 1.0)

    def test_expectation(self, layout):
        state = StateVector(layout).apply_unitary(HADAMARD, ["q1"])
        assert np.isclose(state.expectation(PAULI_Z, ["q1"]), 0.0)
        assert np.isclose(state.expectation(PAULI_X, ["q1"]), 1.0)

    def test_expectation_dimension_check(self, layout):
        with pytest.raises(DimensionMismatchError):
            StateVector(layout).expectation(PAULI_Z)

    def test_bell_state_norm(self, layout):
        state = StateVector(layout).apply_unitary(HADAMARD, ["q1"]).apply_unitary(CNOT, ["q1", "q2"])
        assert np.isclose(state.norm(), 1.0)
        assert np.isclose(state.probability_of({"q1": 0, "q2": 0}), 0.5)
        assert np.isclose(state.probability_of({"q1": 1, "q2": 1}), 0.5)


class TestMeasurement:
    def test_measurement_collapses(self, layout):
        rng = np.random.default_rng(0)
        state = StateVector(layout).apply_unitary(HADAMARD, ["q1"])
        outcome = state.measure(computational_measurement(1), ["q1"], rng=rng)
        assert outcome in (0, 1)
        assert np.isclose(state.probability_of({"q1": outcome}), 1.0)

    def test_measurement_statistics(self, layout):
        rng = np.random.default_rng(5)
        outcomes = []
        for _ in range(300):
            state = StateVector(layout).apply_unitary(HADAMARD, ["q1"])
            outcomes.append(state.measure(computational_measurement(1), ["q1"], rng=rng))
        assert 0.4 < np.mean(outcomes) < 0.6

    def test_measure_zero_state_fails(self, layout):
        state = StateVector(layout, np.zeros(4))
        with pytest.raises(LinalgError):
            state.measure(computational_measurement(1), ["q1"])

    def test_initialize_resets_variable(self, layout):
        rng = np.random.default_rng(2)
        for _ in range(10):
            state = StateVector(layout).apply_unitary(HADAMARD, ["q1"])
            state.initialize("q1", rng=rng)
            assert np.isclose(state.probability_of({"q1": 0}), 1.0, atol=1e-9)

    def test_initialize_matches_density_semantics_in_expectation(self, layout):
        """Averaged over trajectories, the reset matches the reset channel."""
        rng = np.random.default_rng(9)
        samples = []
        for _ in range(200):
            state = StateVector(layout).apply_unitary(HADAMARD, ["q2"])
            state.initialize("q2", rng=rng)
            samples.append(state.expectation(PAULI_Z, ["q2"]))
        assert np.isclose(np.mean(samples), 1.0)


class TestDefaultGenerator:
    def test_seeded_default_rng_makes_unseeded_calls_deterministic(self, layout):
        from repro.sim import rng as sim_rng

        def trajectory():
            outcomes = []
            for _ in range(20):
                state = StateVector(layout).apply_unitary(HADAMARD, ["q1"])
                outcomes.append(state.measure(computational_measurement(1), ["q1"]))
            return outcomes

        try:
            sim_rng.seed(1234)
            first = trajectory()
            sim_rng.seed(1234)
            second = trajectory()
        finally:
            sim_rng.seed(None)
        assert first == second

    def test_resolve_prefers_explicit_generator(self):
        from repro.sim import rng as sim_rng

        explicit = np.random.default_rng(0)
        assert sim_rng.resolve(explicit) is explicit
        assert sim_rng.resolve(None) is sim_rng.default_generator()
