"""Unit tests for the statevector (trajectory) simulator."""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError, LayoutError, LinalgError, PurityError
from repro.linalg.gates import CNOT, HADAMARD, PAULI_X, PAULI_Z
from repro.linalg.measurement import computational_measurement
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.sim.statevector import StateVector


@pytest.fixture
def layout():
    return RegisterLayout(["q1", "q2"])


class TestBasics:
    def test_default_is_all_zero(self, layout):
        state = StateVector(layout)
        assert np.isclose(state.probability_of({"q1": 0, "q2": 0}), 1.0)

    def test_basis_state(self, layout):
        state = StateVector.basis_state(layout, {"q1": 1})
        assert np.isclose(state.probability_of({"q1": 1, "q2": 0}), 1.0)

    def test_dimension_check(self, layout):
        with pytest.raises(DimensionMismatchError):
            StateVector(layout, np.ones(3))

    def test_density_matrix(self, layout):
        state = StateVector(layout)
        rho = state.density_matrix()
        assert np.isclose(np.trace(rho), 1.0)
        assert np.isclose(rho[0, 0], 1.0)

    def test_copy_is_independent(self, layout):
        state = StateVector(layout)
        copy = state.copy()
        copy.apply_unitary(PAULI_X, ["q1"])
        assert np.isclose(state.probability_of({"q1": 0, "q2": 0}), 1.0)


class TestEvolution:
    def test_apply_unitary(self, layout):
        state = StateVector(layout).apply_unitary(PAULI_X, ["q2"])
        assert np.isclose(state.probability_of({"q2": 1}), 1.0)

    def test_expectation(self, layout):
        state = StateVector(layout).apply_unitary(HADAMARD, ["q1"])
        assert np.isclose(state.expectation(PAULI_Z, ["q1"]), 0.0)
        assert np.isclose(state.expectation(PAULI_X, ["q1"]), 1.0)

    def test_expectation_dimension_check(self, layout):
        with pytest.raises(DimensionMismatchError):
            StateVector(layout).expectation(PAULI_Z)

    def test_bell_state_norm(self, layout):
        state = StateVector(layout).apply_unitary(HADAMARD, ["q1"]).apply_unitary(CNOT, ["q1", "q2"])
        assert np.isclose(state.norm(), 1.0)
        assert np.isclose(state.probability_of({"q1": 0, "q2": 0}), 0.5)
        assert np.isclose(state.probability_of({"q1": 1, "q2": 1}), 0.5)


class TestLayoutAwareness:
    """Per-register dimensions come from the layout — qutrits included."""

    def test_mismatched_amplitudes_raise_layout_error(self, layout):
        with pytest.raises(LayoutError) as excinfo:
            StateVector(layout, np.ones(5))
        # The message names the register so the garbage reshape is debuggable.
        assert "q1" in str(excinfo.value) and "4" in str(excinfo.value)

    def test_layout_error_is_a_dimension_mismatch(self):
        assert issubclass(LayoutError, DimensionMismatchError)

    def test_tensor_view_uses_layout_dims(self):
        mixed = RegisterLayout(("t1", "q1"), (3, 2))
        state = StateVector.basis_state(mixed, {"t1": 2, "q1": 1})
        tensor = state.tensor()
        assert tensor.shape == (3, 2)
        assert tensor[2, 1] == pytest.approx(1.0)

    def test_qutrit_evolution_and_expectation(self):
        mixed = RegisterLayout(("t1", "q1"), (3, 2))
        state = StateVector.basis_state(mixed, {"t1": 1}).apply_unitary(HADAMARD, ["q1"])
        assert state.probability_of({"t1": 1, "q1": 0}) == pytest.approx(0.5)
        observable = np.diag([0.0, 1.0, 2.0]).astype(complex)
        assert state.expectation(observable, ["t1"]) == pytest.approx(1.0)

    def test_qutrit_initialize(self):
        mixed = RegisterLayout(("t1", "q1"), (3, 2))
        rng = np.random.default_rng(4)
        state = StateVector.basis_state(mixed, {"t1": 2}).initialize("t1", rng=rng)
        assert state.probability_of({"t1": 0}) == pytest.approx(1.0)

    def test_extended_prepends_ancilla(self, layout):
        state = StateVector.basis_state(layout, {"q2": 1}).extended("A")
        assert state.layout.names == ("A", "q1", "q2")
        assert state.probability_of({"A": 0, "q2": 1}) == pytest.approx(1.0)

    def test_extended_qutrit_ancilla_appended(self, layout):
        state = StateVector(layout).extended("T", dim=3, front=False)
        assert state.layout.dims == (2, 2, 3)
        assert state.amplitudes.shape == (12,)
        assert state.probability_of({"T": 0}) == pytest.approx(1.0)

    def test_from_density_roundtrip(self, layout):
        pure = StateVector(layout).apply_unitary(HADAMARD, ["q1"]).apply_unitary(
            CNOT, ["q1", "q2"]
        )
        recovered = StateVector.from_density(
            DensityState(layout, pure.density_matrix())
        )
        # Equal up to a global phase: the projectors must coincide.
        assert np.allclose(recovered.density_matrix(), pure.density_matrix(), atol=1e-12)

    def test_from_density_rejects_mixed_states(self, layout):
        mixed = DensityState(layout, np.eye(4, dtype=complex) / 4.0)
        with pytest.raises(PurityError):
            StateVector.from_density(mixed)


class TestMeasurement:
    def test_measurement_collapses(self, layout):
        rng = np.random.default_rng(0)
        state = StateVector(layout).apply_unitary(HADAMARD, ["q1"])
        outcome = state.measure(computational_measurement(1), ["q1"], rng=rng)
        assert outcome in (0, 1)
        assert np.isclose(state.probability_of({"q1": outcome}), 1.0)

    def test_measurement_statistics(self, layout):
        rng = np.random.default_rng(5)
        outcomes = []
        for _ in range(300):
            state = StateVector(layout).apply_unitary(HADAMARD, ["q1"])
            outcomes.append(state.measure(computational_measurement(1), ["q1"], rng=rng))
        assert 0.4 < np.mean(outcomes) < 0.6

    def test_measure_zero_state_fails(self, layout):
        state = StateVector(layout, np.zeros(4))
        with pytest.raises(LinalgError):
            state.measure(computational_measurement(1), ["q1"])

    def test_initialize_resets_variable(self, layout):
        rng = np.random.default_rng(2)
        for _ in range(10):
            state = StateVector(layout).apply_unitary(HADAMARD, ["q1"])
            state.initialize("q1", rng=rng)
            assert np.isclose(state.probability_of({"q1": 0}), 1.0, atol=1e-9)

    def test_initialize_matches_density_semantics_in_expectation(self, layout):
        """Averaged over trajectories, the reset matches the reset channel."""
        rng = np.random.default_rng(9)
        samples = []
        for _ in range(200):
            state = StateVector(layout).apply_unitary(HADAMARD, ["q2"])
            state.initialize("q2", rng=rng)
            samples.append(state.expectation(PAULI_Z, ["q2"]))
        assert np.isclose(np.mean(samples), 1.0)


class TestDefaultGenerator:
    def test_seeded_default_rng_makes_unseeded_calls_deterministic(self, layout):
        from repro.sim import rng as sim_rng

        def trajectory():
            outcomes = []
            for _ in range(20):
                state = StateVector(layout).apply_unitary(HADAMARD, ["q1"])
                outcomes.append(state.measure(computational_measurement(1), ["q1"]))
            return outcomes

        try:
            sim_rng.seed(1234)
            first = trajectory()
            sim_rng.seed(1234)
            second = trajectory()
        finally:
            sim_rng.seed(None)
        assert first == second

    def test_resolve_prefers_explicit_generator(self):
        from repro.sim import rng as sim_rng

        explicit = np.random.default_rng(0)
        assert sim_rng.resolve(explicit) is explicit
        assert sim_rng.resolve(None) is sim_rng.default_generator()
