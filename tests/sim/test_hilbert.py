"""Unit tests for repro.sim.hilbert (register layouts and operator embedding)."""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError, LinalgError
from repro.linalg.gates import CNOT, HADAMARD, PAULI_X, PAULI_Z
from repro.sim.hilbert import RegisterLayout


class TestConstruction:
    def test_default_dims_are_qubits(self):
        layout = RegisterLayout(["a", "b", "c"])
        assert layout.dims == (2, 2, 2)
        assert layout.total_dim == 8

    def test_explicit_dims(self):
        layout = RegisterLayout(["q", "n"], [2, 5])
        assert layout.dim_of("n") == 5
        assert layout.total_dim == 10

    def test_dims_from_mapping(self):
        layout = RegisterLayout(["q", "n"], {"n": 3})
        assert layout.dims == (2, 3)

    def test_rejects_duplicates(self):
        with pytest.raises(LinalgError):
            RegisterLayout(["q", "q"])

    def test_rejects_empty(self):
        with pytest.raises(LinalgError):
            RegisterLayout([])

    def test_rejects_tiny_dims(self):
        with pytest.raises(LinalgError):
            RegisterLayout(["q"], [1])

    def test_rejects_dims_length_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            RegisterLayout(["q", "r"], [2])

    def test_index_and_contains(self):
        layout = RegisterLayout(["a", "b"])
        assert layout.index("b") == 1
        assert layout.contains(["a"])
        assert not layout.contains(["z"])
        with pytest.raises(LinalgError):
            layout.index("z")


class TestExtensionRestriction:
    def test_extended_front(self):
        layout = RegisterLayout(["q1"]).extended("anc", front=True)
        assert layout.names == ("anc", "q1")

    def test_extended_back(self):
        layout = RegisterLayout(["q1"]).extended("anc", front=False)
        assert layout.names == ("q1", "anc")

    def test_extended_rejects_existing_name(self):
        with pytest.raises(LinalgError):
            RegisterLayout(["q1"]).extended("q1")

    def test_restricted_keeps_order(self):
        layout = RegisterLayout(["a", "b", "c"])
        assert layout.restricted(["c", "a"]).names == ("a", "c")

    def test_restricted_missing_variable(self):
        with pytest.raises(LinalgError):
            RegisterLayout(["a"]).restricted(["z"])


class TestEmbedding:
    def test_embed_on_full_register_is_identity_mapping(self):
        layout = RegisterLayout(["a", "b"])
        matrix = np.kron(PAULI_X, PAULI_Z)
        assert np.allclose(layout.embed_operator(matrix, ["a", "b"]), matrix)

    def test_embed_single_qubit_in_two(self):
        layout = RegisterLayout(["a", "b"])
        assert np.allclose(layout.embed_operator(PAULI_X, ["a"]), np.kron(PAULI_X, np.eye(2)))
        assert np.allclose(layout.embed_operator(PAULI_X, ["b"]), np.kron(np.eye(2), PAULI_X))

    def test_embed_reversed_targets_permutes(self):
        layout = RegisterLayout(["a", "b"])
        embedded = layout.embed_operator(CNOT, ["b", "a"])
        # control is 'b' (second factor), target is 'a' (first factor)
        state = np.zeros(4)
        state[0b01] = 1.0  # a=0, b=1
        out = embedded @ state
        assert np.isclose(abs(out[0b11]), 1.0)

    def test_embed_middle_qubit(self):
        layout = RegisterLayout(["a", "b", "c"])
        embedded = layout.embed_operator(HADAMARD, ["b"])
        expected = np.kron(np.eye(2), np.kron(HADAMARD, np.eye(2)))
        assert np.allclose(embedded, expected)

    def test_embed_nonadjacent_pair(self):
        layout = RegisterLayout(["a", "b", "c"])
        embedded = layout.embed_operator(CNOT, ["a", "c"])
        # |a b c⟩ = |1 0 0⟩ should map to |1 0 1⟩.
        state = np.zeros(8)
        state[0b100] = 1.0
        out = embedded @ state
        assert np.isclose(abs(out[0b101]), 1.0)

    def test_embed_rejects_duplicate_targets(self):
        with pytest.raises(LinalgError):
            RegisterLayout(["a", "b"]).embed_operator(CNOT, ["a", "a"])

    def test_embed_rejects_wrong_shape(self):
        with pytest.raises(DimensionMismatchError):
            RegisterLayout(["a", "b"]).embed_operator(PAULI_X, ["a", "b"])

    def test_embedding_is_cached(self):
        layout = RegisterLayout(["a", "b", "c"])
        first = layout.embed_operator(PAULI_X, ["b"])
        second = layout.embed_operator(PAULI_X, ["b"])
        assert first is second


class TestStates:
    def test_basis_product_state(self):
        layout = RegisterLayout(["a", "b"])
        vector = layout.basis_product_state({"a": 1, "b": 0})
        assert np.isclose(abs(vector[0b10]), 1.0)

    def test_basis_product_state_defaults_to_zero(self):
        layout = RegisterLayout(["a", "b"])
        vector = layout.basis_product_state({})
        assert np.isclose(abs(vector[0]), 1.0)

    def test_basis_product_state_range_check(self):
        with pytest.raises(LinalgError):
            RegisterLayout(["a"]).basis_product_state({"a": 2})

    def test_embed_state_places_rest_in_zero(self):
        layout = RegisterLayout(["a", "b"])
        rho_b = np.array([[0, 0], [0, 1]], dtype=complex)
        full = layout.embed_state(rho_b, ["b"])
        expected = np.kron(np.array([[1, 0], [0, 0]]), rho_b)
        assert np.allclose(full, expected)


class TestEmbedCacheEviction:
    def test_lru_evicts_oldest_entry_not_everything(self):
        from repro.sim import hilbert

        layout = RegisterLayout(["a", "b"])
        original_limit = hilbert._EMBED_CACHE_LIMIT
        hilbert._EMBED_CACHE.clear()
        hilbert._EMBED_CACHE_LIMIT = 3
        try:
            matrices = [np.eye(2, dtype=complex) * (i + 1) for i in range(4)]
            for matrix in matrices[:3]:
                layout.embed_operator(matrix, ["a"])
            assert len(hilbert._EMBED_CACHE) == 3
            # Touch the first entry so it becomes most-recently used.
            layout.embed_operator(matrices[0], ["a"])
            # Inserting a fourth evicts exactly one entry: the oldest (matrices[1]).
            layout.embed_operator(matrices[3], ["a"])
            assert len(hilbert._EMBED_CACHE) == 3
            keys = list(hilbert._EMBED_CACHE)
            assert not any(key[3] == matrices[1].astype(complex).tobytes() for key in keys)
            assert any(key[3] == matrices[0].astype(complex).tobytes() for key in keys)
        finally:
            hilbert._EMBED_CACHE_LIMIT = original_limit
            hilbert._EMBED_CACHE.clear()

    def test_large_operators_bypass_the_cache(self):
        from repro.sim import hilbert

        names = [f"q{i}" for i in range(6)]
        layout = RegisterLayout(names)
        big = np.eye(2 ** 5, dtype=complex)  # 1024 elements > bypass threshold
        assert big.size > hilbert._EMBED_CACHE_MAX_OPERATOR_ELEMENTS
        hilbert._EMBED_CACHE.clear()
        first = layout.embed_operator(big, names[:5])
        second = layout.embed_operator(big, names[:5])
        assert len(hilbert._EMBED_CACHE) == 0
        assert first is not second
        assert np.allclose(first, second)

    def test_axes_of_positions_and_validation(self):
        layout = RegisterLayout(["a", "b", "c"])
        assert layout.axes_of(["c", "a"]) == (2, 0)
        with pytest.raises(LinalgError):
            layout.axes_of(["a", "a"])
        with pytest.raises(LinalgError):
            layout.axes_of(["nope"])
