"""Unit tests for the Chernoff-bounded shot estimation (Section 7 execution model)."""

import math

import numpy as np
import pytest

from repro.errors import LinalgError
from repro.linalg.observables import Observable, pauli_observable
from repro.linalg.states import plus, pure_density, zero
from repro.sim.shots import (
    chernoff_shot_count,
    estimate_expectation,
    estimate_expectation_from_samples,
    estimate_program_sum,
    program_sum_shot_count,
    sample_observable_outcomes,
)


class TestShotCounts:
    def test_scaling_with_precision(self):
        """The count scales as O(1/δ²)."""
        n1 = chernoff_shot_count(0.1)
        n2 = chernoff_shot_count(0.05)
        assert 3.5 <= n2 / n1 <= 4.5

    def test_scaling_with_confidence(self):
        assert chernoff_shot_count(0.1, confidence=0.99) > chernoff_shot_count(0.1, confidence=0.9)

    def test_explicit_value(self):
        expected = math.ceil(4 * math.log(2 / 0.05) / (2 * 0.01))
        assert chernoff_shot_count(0.1, confidence=0.95) == expected

    def test_invalid_arguments(self):
        with pytest.raises(LinalgError):
            chernoff_shot_count(0.0)
        with pytest.raises(LinalgError):
            chernoff_shot_count(0.1, confidence=1.5)

    def test_program_sum_scales_quadratically_in_m(self):
        """Estimating a sum of m programs costs O(m²/δ²) shots (Section 7)."""
        single = program_sum_shot_count(1, 0.1)
        triple = program_sum_shot_count(3, 0.1)
        assert 8.0 <= triple / single <= 10.0
        with pytest.raises(LinalgError):
            program_sum_shot_count(0, 0.1)


class TestSampling:
    def test_sample_outcomes_are_eigenvalues(self):
        rng = np.random.default_rng(0)
        samples = sample_observable_outcomes(
            pauli_observable("Z"), pure_density(plus()), 100, rng=rng
        )
        assert set(np.unique(samples)) <= {-1.0, 1.0}

    def test_sample_requires_positive_shots(self):
        with pytest.raises(LinalgError):
            sample_observable_outcomes(pauli_observable("Z"), pure_density(zero()), 0)

    def test_estimate_expectation_converges(self):
        rng = np.random.default_rng(1)
        estimate = estimate_expectation(
            pauli_observable("Z"), pure_density(plus()), shots=4000, rng=rng
        )
        assert abs(estimate) < 0.08

    def test_estimate_expectation_with_precision(self):
        rng = np.random.default_rng(2)
        estimate = estimate_expectation(
            pauli_observable("Z"), pure_density(zero()), precision=0.1, rng=rng
        )
        assert abs(estimate - 1.0) < 0.1

    def test_partial_state_contributes_zero_mass(self):
        """Aborted runs (missing trace) read out 0, matching the observable semantics."""
        rng = np.random.default_rng(3)
        partial = 0.5 * pure_density(zero())
        estimate = estimate_expectation(pauli_observable("Z"), partial, shots=4000, rng=rng)
        assert abs(estimate - 0.5) < 0.08

    def test_estimate_from_samples(self):
        assert estimate_expectation_from_samples([1.0, -1.0, 1.0, 1.0]) == pytest.approx(0.5)
        with pytest.raises(LinalgError):
            estimate_expectation_from_samples([])


class TestProgramSum:
    def test_empty_sum_is_zero(self):
        assert estimate_program_sum([]) == 0.0

    def test_sum_of_two_expectations(self):
        rng = np.random.default_rng(4)
        z = pauli_observable("Z")
        pairs = [(z, pure_density(zero())), (z, pure_density(zero()))]
        estimate = estimate_program_sum(pairs, precision=0.2, rng=rng)
        assert abs(estimate - 2.0) < 0.2

    def test_sum_with_cancelling_terms(self):
        rng = np.random.default_rng(5)
        z = pauli_observable("Z")
        one_state = np.array([[0, 0], [0, 1]], dtype=complex)
        pairs = [(z, pure_density(zero())), (z, one_state)]
        estimate = estimate_program_sum(pairs, precision=0.2, rng=rng)
        assert abs(estimate) < 0.2
