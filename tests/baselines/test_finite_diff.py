"""Unit tests for the finite-difference baseline."""

import numpy as np
import pytest

from repro.lang.ast import Sum
from repro.lang.builder import case_on_qubit, rx, ry, seq
from repro.lang.parameters import Parameter, ParameterBinding
from repro.linalg.observables import pauli_observable
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.baselines.finite_diff import finite_difference_derivative, finite_difference_gradient

THETA = Parameter("theta")
PHI = Parameter("phi")
LAYOUT = RegisterLayout(["q1", "q2"])
ZZ = pauli_observable("ZZ")
BINDING = ParameterBinding({THETA: 0.33, PHI: 1.2})


def _state():
    return DensityState.zero_state(LAYOUT)


class TestFiniteDifferences:
    def test_analytic_value_for_single_rotation(self):
        value = finite_difference_derivative(rx(THETA, "q1"), THETA, ZZ, _state(), BINDING)
        assert value == pytest.approx(-np.sin(0.33), abs=1e-6)

    def test_step_size_controls_accuracy(self):
        coarse = finite_difference_derivative(
            rx(THETA, "q1"), THETA, ZZ, _state(), BINDING, step=0.5
        )
        fine = finite_difference_derivative(
            rx(THETA, "q1"), THETA, ZZ, _state(), BINDING, step=1e-6
        )
        exact = -np.sin(0.33)
        assert abs(fine - exact) < abs(coarse - exact)

    def test_handles_control_flow(self):
        program = seq([rx(THETA, "q1"), case_on_qubit("q1", {0: ry(THETA, "q2"), 1: rx(0.1, "q2")})])
        value = finite_difference_derivative(program, THETA, ZZ, _state(), BINDING)
        assert np.isfinite(value)

    def test_handles_additive_programs(self):
        program = Sum(rx(THETA, "q1"), rx(THETA, "q1"))
        value = finite_difference_derivative(program, THETA, ZZ, _state(), BINDING)
        assert value == pytest.approx(-2 * np.sin(0.33), abs=1e-6)

    def test_gradient_has_one_entry_per_parameter(self):
        program = seq([rx(THETA, "q1"), ry(PHI, "q2")])
        grad = finite_difference_gradient(program, [THETA, PHI], ZZ, _state(), BINDING)
        assert grad.shape == (2,)
        assert grad[0] == pytest.approx(-np.sin(0.33) * np.cos(1.2), abs=1e-5)
        assert grad[1] == pytest.approx(-np.cos(0.33) * np.sin(1.2), abs=1e-5)
