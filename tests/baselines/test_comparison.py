"""Unit tests for the scheme-cost comparison (Sections 1 and 6 resource argument)."""

from repro.lang.builder import bounded_while_on_qubit, case_on_qubit, rx, ry, seq
from repro.lang.parameters import Parameter
from repro.baselines.comparison import (
    SchemeCost,
    gadget_program_count,
    phase_shift_circuit_count,
    scheme_costs,
)

THETA = Parameter("theta")


def _circuit():
    return seq([rx(THETA, "q1"), ry(THETA, "q2"), rx(0.3, "q1")])


def _controlled_program():
    return seq([rx(THETA, "q1"), case_on_qubit("q1", {0: ry(THETA, "q2"), 1: rx(THETA, "q2")})])


class TestCounts:
    def test_phase_shift_needs_two_circuits_per_occurrence(self):
        assert phase_shift_circuit_count(_circuit(), THETA) == 4

    def test_phase_shift_not_applicable_to_controls(self):
        assert phase_shift_circuit_count(_controlled_program(), THETA) is None

    def test_gadget_count_on_circuit(self):
        assert gadget_program_count(_circuit(), THETA) == 2

    def test_gadget_count_on_controlled_program(self):
        assert gadget_program_count(_controlled_program(), THETA) == 2

    def test_gadget_count_on_while_program_is_below_occurrences(self):
        program = bounded_while_on_qubit("q1", seq([rx(THETA, "q1"), ry(THETA, "q2")]), 2)
        assert gadget_program_count(program, THETA) == 2


class TestSchemeCosts:
    def test_comparison_on_circuit(self):
        costs = scheme_costs(_circuit(), THETA)
        gadget, shift = costs["gadget"], costs["phase_shift"]
        assert isinstance(gadget, SchemeCost) and isinstance(shift, SchemeCost)
        assert gadget.applicable and shift.applicable
        assert gadget.programs_per_parameter < shift.programs_per_parameter
        assert gadget.extra_ancillas == 1 and shift.extra_ancillas == 0

    def test_comparison_on_controlled_program(self):
        costs = scheme_costs(_controlled_program(), THETA)
        assert costs["gadget"].applicable
        assert not costs["phase_shift"].applicable
        assert costs["gadget"].supports_controls
        assert not costs["phase_shift"].supports_controls
