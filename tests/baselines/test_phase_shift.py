"""Unit tests for the two-circuit parameter-shift baseline."""

import numpy as np
import pytest

from repro.errors import TransformError
from repro.lang.ast import Abort, Init, Skip
from repro.lang.builder import bounded_while_on_qubit, case_on_qubit, rx, rxx, ry, rz, seq
from repro.lang.parameters import Parameter, ParameterBinding
from repro.linalg.observables import pauli_observable
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.autodiff.execution import derivative_expectation, gradient
from repro.baselines.finite_diff import finite_difference_derivative
from repro.baselines.phase_shift import phase_shift_derivative, phase_shift_gradient

THETA = Parameter("theta")
PHI = Parameter("phi")
LAYOUT = RegisterLayout(["q1", "q2"])
ZZ = pauli_observable("ZZ")
BINDING = ParameterBinding({THETA: 0.64, PHI: -1.3})


def _state():
    return DensityState.basis_state(LAYOUT, {"q1": 0, "q2": 1})


def _circuit():
    return seq([rx(THETA, "q1"), ry(PHI, "q2"), rxx(THETA, "q1", "q2"), rz(0.3, "q1")])


class TestCorrectness:
    def test_single_rotation_analytic(self):
        value = phase_shift_derivative(rx(THETA, "q1"), THETA, pauli_observable("ZI"), _state(), BINDING)
        assert value == pytest.approx(-np.sin(0.64), abs=1e-9)

    def test_repeated_parameter_sums_occurrences(self):
        value = phase_shift_derivative(_circuit(), THETA, ZZ, _state(), BINDING)
        reference = finite_difference_derivative(_circuit(), THETA, ZZ, _state(), BINDING)
        assert value == pytest.approx(reference, abs=1e-6)

    def test_agrees_with_gadget_pipeline_on_circuits(self):
        ours = derivative_expectation(_circuit(), THETA, ZZ, _state(), BINDING)
        baseline = phase_shift_derivative(_circuit(), THETA, ZZ, _state(), BINDING)
        assert ours == pytest.approx(baseline, abs=1e-9)

    def test_zero_for_absent_parameter(self):
        other = Parameter("other")
        binding = ParameterBinding({THETA: 0.64, PHI: -1.3, other: 0.1})
        assert phase_shift_derivative(_circuit(), other, ZZ, _state(), binding) == pytest.approx(0.0)

    def test_gradient_matches_gadget_gradient(self):
        parameters = [THETA, PHI]
        baseline = phase_shift_gradient(_circuit(), parameters, ZZ, _state(), BINDING)
        ours = gradient(_circuit(), parameters, ZZ, _state(), BINDING)
        assert np.allclose(baseline, ours, atol=1e-9)

    def test_skip_statements_are_tolerated(self):
        circuit = seq([rx(THETA, "q1"), Skip(["q2"]), ry(PHI, "q2")])
        value = phase_shift_derivative(circuit, THETA, ZZ, _state(), BINDING)
        assert value == pytest.approx(
            finite_difference_derivative(circuit, THETA, ZZ, _state(), BINDING), abs=1e-6
        )


class TestDomainRestrictions:
    """The baseline rejects exactly the programs PennyLane-style rules cannot handle."""

    def test_rejects_case_statements(self):
        program = seq([rx(THETA, "q1"), case_on_qubit("q1", {0: Skip(["q1"]), 1: ry(THETA, "q2")})])
        with pytest.raises(TransformError):
            phase_shift_derivative(program, THETA, ZZ, _state(), BINDING)

    def test_rejects_while_loops(self):
        program = bounded_while_on_qubit("q1", rx(THETA, "q1"), 2)
        with pytest.raises(TransformError):
            phase_shift_derivative(program, THETA, ZZ, _state(), BINDING)

    def test_rejects_initialization_and_abort(self):
        with pytest.raises(TransformError):
            phase_shift_derivative(seq([Init("q1"), rx(THETA, "q1")]), THETA, ZZ, _state(), BINDING)
        with pytest.raises(TransformError):
            phase_shift_derivative(seq([rx(THETA, "q1"), Abort(["q1"])]), THETA, ZZ, _state(), BINDING)

    def test_the_gadget_pipeline_handles_what_the_baseline_rejects(self):
        program = seq([rx(THETA, "q1"), case_on_qubit("q1", {0: Skip(["q1"]), 1: ry(THETA, "q2")})])
        value = derivative_expectation(program, THETA, ZZ, _state(), BINDING)
        reference = finite_difference_derivative(program, THETA, ZZ, _state(), BINDING)
        assert value == pytest.approx(reference, abs=1e-6)
