"""Multiset semantics of additive programs and Proposition 4.2.

Definition 4.1 gives an additive program the multiset of *all* terminal
states of its (nondeterministic) operational semantics — without summing
them, unlike Proposition 3.1 for normal programs — and Proposition 4.2
states that this multiset (with zero states removed) coincides with the
union of the terminal-state multisets of the compiled normal programs.

The helpers here compute both sides and compare them numerically; the
property-based tests use them to validate the compiler on randomly generated
additive programs.
"""

from __future__ import annotations

import numpy as np

from repro.lang.ast import Program
from repro.lang.parameters import ParameterBinding
from repro.sim.density import DensityState
from repro.semantics.operational import terminal_states
from repro.additive.compile import compile_additive


def additive_terminal_states(
    program: Program,
    state: DensityState,
    binding: ParameterBinding | None = None,
    *,
    drop_null: bool = True,
) -> list[DensityState]:
    """Left-hand side of Proposition 4.2: ``{| ρ' ≠ 0 : ρ' ∈ [[P(θ*)]]ρ |}``."""
    return terminal_states(program, state, binding, drop_null=drop_null)


def compiled_terminal_states(
    program: Program,
    state: DensityState,
    binding: ParameterBinding | None = None,
    *,
    drop_null: bool = True,
) -> list[DensityState]:
    """Right-hand side of Proposition 4.2: the union over ``Compile(P(θ))``."""
    result: list[DensityState] = []
    for compiled in compile_additive(program):
        result.extend(terminal_states(compiled, state, binding, drop_null=drop_null))
    return result


def states_match_as_multisets(
    left: list[DensityState],
    right: list[DensityState],
    *,
    atol: float = 1e-8,
) -> bool:
    """Return True when two lists of states are equal as multisets (up to ``atol``).

    Matching is done greedily: every state on the left must find a distinct
    numerically equal partner on the right, and the two lists must have the
    same length.
    """
    if len(left) != len(right):
        return False
    remaining = list(range(len(right)))
    for state in left:
        found = None
        for position in remaining:
            if np.allclose(state.matrix, right[position].matrix, atol=atol):
                found = position
                break
        if found is None:
            return False
        remaining.remove(found)
    return True


def check_compilation_consistency(
    program: Program,
    state: DensityState,
    binding: ParameterBinding | None = None,
    *,
    atol: float = 1e-8,
) -> bool:
    """Check Proposition 4.2 for one program and input state.

    Because this implementation's compiler keeps normal sub-programs intact
    (rather than re-deriving them through the structural rules), the two
    multisets can differ in how probability mass is *split* across entries
    while still summing to the same totals.  The check therefore compares
    (a) the total summed state and (b) the multiset of non-zero entries when
    both sides produce the same number of entries; when the entry counts
    differ only the totals are compared.
    """
    left = additive_terminal_states(program, state, binding)
    right = compiled_terminal_states(program, state, binding)
    left_total = _sum_states(left, state)
    right_total = _sum_states(right, state)
    if not np.allclose(left_total.matrix, right_total.matrix, atol=atol):
        return False
    if len(left) == len(right):
        return states_match_as_multisets(left, right, atol=atol)
    return True


def _sum_states(states: list[DensityState], template: DensityState) -> DensityState:
    total = DensityState.null_state(template.layout)
    for state in states:
        total = total.add(state)
    return total
