"""Additive parameterized quantum bounded while-programs (Section 4).

The additive choice ``P₁ + P₂`` is the succinct intermediate representation
the paper introduces for the *collection* of programs produced by
differentiation: because of the no-cloning theorem the sub-programs of a
derivative cannot share one copy of the input state, so the derivative of a
composition is a set of programs rather than a single one.

* :mod:`repro.additive.essential_abort` — Definition 3.2 ("essentially
  aborts"), the predicate compilation uses to prune trivial programs;
* :mod:`repro.additive.compile` — the compilation rules of Figure 3
  (including the fill-and-break procedure for ``case``) turning an additive
  program into a multiset of normal programs;
* :mod:`repro.additive.semantics` — the multiset denotational semantics of
  Definition 4.1 and the consistency statement of Proposition 4.2.
"""

from repro.additive.essential_abort import essentially_aborts
from repro.additive.compile import compile_additive, nonaborting_count, canonical_abort
from repro.additive.semantics import (
    additive_terminal_states,
    compiled_terminal_states,
    check_compilation_consistency,
)

__all__ = [
    "essentially_aborts",
    "compile_additive",
    "nonaborting_count",
    "canonical_abort",
    "additive_terminal_states",
    "compiled_terminal_states",
    "check_compilation_consistency",
]
