"""The "essentially aborts" predicate (Definition 3.2).

A program essentially aborts when it is semantically the zero map even
though it is not syntactically ``abort``:

1. ``abort[q]`` essentially aborts;
2. ``P₁; P₂`` essentially aborts when either part does;
3. ``case M[q] = m → P_m end`` essentially aborts when every branch does.

Everything else — ``skip``, initialization, unitaries, bounded while-loops —
does not essentially abort (a while-loop's 0-branch is ``skip``, so its
macro expansion never satisfies clause 3).  For additive programs we extend
the definition in the natural way: ``P₁ + P₂`` essentially aborts when both
summands do, which is exactly the condition under which Figure 3's Sum rule
collapses the compilation to ``{|abort|}``.
"""

from __future__ import annotations

from repro.errors import SemanticsError
from repro.lang.ast import (
    Abort,
    Case,
    Init,
    Program,
    Seq,
    Skip,
    Sum,
    UnitaryApp,
    While,
)


def essentially_aborts(program: Program) -> bool:
    """Return True when the program essentially aborts (Definition 3.2)."""
    if isinstance(program, Abort):
        return True
    if isinstance(program, (Skip, Init, UnitaryApp)):
        return False
    if isinstance(program, Seq):
        return essentially_aborts(program.first) or essentially_aborts(program.second)
    if isinstance(program, Case):
        return all(essentially_aborts(branch) for _, branch in program.branches)
    if isinstance(program, While):
        # The macro expansion has skip on the 0-branch, so a bounded loop
        # never essentially aborts.
        return False
    if isinstance(program, Sum):
        return essentially_aborts(program.left) and essentially_aborts(program.right)
    raise SemanticsError(f"unknown program node {type(program).__name__}")
