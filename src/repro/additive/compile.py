"""Compilation of additive programs into multisets of normal programs (Figure 3).

``compile_additive`` turns an additive program ``P(θ)`` into the multiset
``Compile(P(θ))`` of normal ``q-while(T)`` programs whose executions,
together, realize the multiset semantics of the additive program
(Proposition 4.2).  The rules follow Figure 3 of the paper:

* **Atomic** statements compile to themselves.
* **Sequence** compiles to the pairwise compositions of the operands'
  compilations, collapsing to ``{|abort|}`` when either side compiles to
  ``{|abort|}``.
* **Case** uses the *fill-and-break* procedure: each branch's non-aborting
  programs are padded with ``abort`` up to the longest branch and the
  ``case`` is broken into that many normal ``case`` programs.
* **While** is compiled through its case/sequence macro expansion.
* **Sum** compiles to the multiset union of the summands' compilations,
  dropping summands that compile to ``{|abort|}``.

The implementation applies the optimization the paper describes around
Definition 3.2: a sub-program that is already a *normal* program compiles to
itself when it does not essentially abort and to the canonical ``abort``
when it does.  This is semantically identical to running the structural
rules all the way down (it also keeps bounded while-loops intact instead of
macro-expanding them), and it is what makes compilation cheap on the large
benchmark instances.
"""

from __future__ import annotations

from repro.errors import CompilationError
from repro.lang.ast import (
    Abort,
    Case,
    Init,
    Program,
    Seq,
    Skip,
    Sum,
    UnitaryApp,
    While,
)
from repro.lang.traversal import unfold_while
from repro.additive.essential_abort import essentially_aborts


def canonical_abort(program: Program) -> Abort:
    """Return the canonical ``abort[v]`` over the program's accessible variables."""
    variables = tuple(sorted(program.qvars()))
    if not variables:
        raise CompilationError("cannot build an abort statement over an empty variable set")
    return Abort(variables)


def compile_additive(program: Program) -> list[Program]:
    """Return ``Compile(P(θ))`` as a list (multiset) of normal programs.

    The result is either the singleton ``[abort[v]]`` or a list of programs
    none of which essentially aborts — the invariant noted in Figure 3's
    caption.
    """
    result = _compile(program)
    _check_invariant(result)
    return result


def nonaborting_count(program: Program) -> int:
    """Return ``|#P(θ)|``, the number of compiled programs that do not essentially abort.

    Definition 4.3; for the additive programs produced by differentiation
    this is the number of distinct quantum programs (and hence of fresh
    copies of the input state) the execution phase needs.
    """
    return sum(1 for compiled in compile_additive(program) if not essentially_aborts(compiled))


# -- internal rules --------------------------------------------------------------


def _compile(program: Program) -> list[Program]:
    if not program.is_additive():
        # Normal-program fast path (see module docstring).
        if essentially_aborts(program):
            return [canonical_abort(program)]
        return [program]
    if isinstance(program, Sum):
        return _compile_sum(program)
    if isinstance(program, Seq):
        return _compile_seq(program)
    if isinstance(program, Case):
        return _compile_case(program)
    if isinstance(program, While):
        return _compile(unfold_while(program))
    if isinstance(program, (Abort, Skip, Init, UnitaryApp)):
        # Atomic statements are never additive; handled above, kept for clarity.
        return [program]
    raise CompilationError(f"unknown program node {type(program).__name__}")


def _is_abort_singleton(compiled: list[Program]) -> bool:
    return len(compiled) == 1 and isinstance(compiled[0], Abort)


def _compile_sum(program: Sum) -> list[Program]:
    left = _compile(program.left)
    right = _compile(program.right)
    left_aborts = _is_abort_singleton(left)
    right_aborts = _is_abort_singleton(right)
    if left_aborts and right_aborts:
        return [canonical_abort(program)]
    if left_aborts:
        return right
    if right_aborts:
        return left
    return left + right


def _compile_seq(program: Seq) -> list[Program]:
    first = _compile(program.first)
    second = _compile(program.second)
    if _is_abort_singleton(first) or _is_abort_singleton(second):
        return [canonical_abort(program)]
    return [Seq(a, b) for a in first for b in second]


def _compile_case(program: Case) -> list[Program]:
    """The fill-and-break procedure of Figure 3b."""
    non_aborting: dict[int, list[Program]] = {}
    for outcome, branch in program.branches:
        compiled = _compile(branch)
        non_aborting[outcome] = [q for q in compiled if not essentially_aborts(q)]
    width = max(len(programs) for programs in non_aborting.values())
    if width == 0:
        return [canonical_abort(program)]
    filler = canonical_abort(program)
    padded = {
        outcome: programs + [filler] * (width - len(programs))
        for outcome, programs in non_aborting.items()
    }
    broken: list[Program] = []
    for index in range(width):
        branches = {outcome: padded[outcome][index] for outcome, _ in program.branches}
        broken.append(Case(program.measurement, program.qubits, branches))
    return broken


def _check_invariant(compiled: list[Program]) -> None:
    if not compiled:
        raise CompilationError("compilation produced an empty multiset")
    if _is_abort_singleton(compiled):
        return
    for program in compiled:
        if program.is_additive():
            raise CompilationError("compilation left an additive '+' in the output")
        if essentially_aborts(program):
            raise CompilationError(
                "compilation produced an essentially aborting program outside the "
                "canonical {|abort|} case"
            )
