"""Baseline gradient methods the paper compares against.

* :mod:`repro.baselines.phase_shift` — the two-circuit parameter-shift
  ("phase-shift") rule of Schuld et al. / PennyLane, which applies to
  *circuit* programs (no controls); it is the prior art the paper's
  single-circuit gadget improves on and the baseline for the no-control arm
  of the Figure 6 case study;
* :mod:`repro.baselines.finite_diff` — central finite differences on the
  observable semantics, used as a method-agnostic numerical reference;
* :mod:`repro.baselines.comparison` — per-parameter circuit/program counts
  of the competing schemes (the resource argument of Sections 1 and 6).
"""

from repro.baselines.phase_shift import phase_shift_derivative, phase_shift_gradient
from repro.baselines.finite_diff import finite_difference_derivative, finite_difference_gradient
from repro.baselines.comparison import (
    SchemeCost,
    scheme_costs,
    estimator_scheme_costs,
    phase_shift_circuit_count,
    gadget_program_count,
)

__all__ = [
    "phase_shift_derivative",
    "phase_shift_gradient",
    "finite_difference_derivative",
    "finite_difference_gradient",
    "SchemeCost",
    "scheme_costs",
    "estimator_scheme_costs",
    "phase_shift_circuit_count",
    "gadget_program_count",
]
