"""The two-circuit parameter-shift ("phase-shift") rule (Schuld et al. 2019).

For a circuit whose parameterized gates are Pauli rotations/couplings
``R_σ(θ)`` with ``σ² = I``, the derivative of the expectation with respect
to one *occurrence* of θ is

    ∂/∂θ f(θ) = ½ ( f(θ + π/2) − f(θ − π/2) ),

evaluated by running two shifted copies of the circuit.  When a parameter
occurs in several gates, the rule is applied per occurrence and the
contributions are summed — ``2 · OC_j(P)`` circuit executions in total,
versus the ``≤ OC_j(P)`` single-ancilla programs of the paper's gadget.

This baseline mirrors what PennyLane implements for quantum nodes and, like
PennyLane, it is restricted to *circuit* programs: measurement-controlled
branching (``case``/``while``) is outside its domain, which is exactly the
limitation the Section 8.1 case study exercises.

Each shifted circuit is evaluated through a per-call
:class:`~repro.api.Estimator` on a configurable backend.  Circuits are by
definition measurement-free, so the default ``backend="auto"`` runs every
shifted copy on the ``O(2^n)`` statevector tier (falling back to the
density simulator only for mixed input states); pass
``backend="exact-density"`` for the historical arithmetic.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import TransformError
from repro.lang.ast import Program, Seq, Skip, UnitaryApp
from repro.lang.gates import Coupling, Rotation
from repro.lang.parameters import Parameter, ParameterBinding
from repro.lang.traversal import is_circuit
from repro.linalg.observables import Observable
from repro.sim.density import DensityState


def _require_circuit(program: Program) -> None:
    if not is_circuit(program):
        raise TransformError(
            "the parameter-shift baseline only applies to circuit programs "
            "(no case/while/init/abort); use repro.autodiff for programs with controls"
        )


def _shift_occurrence(program: Program, occurrence: int, parameter: Parameter, shifted_value: float):
    """Return a copy of the circuit in which only the ``occurrence``-th use of the
    parameter is replaced by the fixed angle ``shifted_value``.

    Returns ``(new_program, remaining_counter)``; the counter is used by the
    recursion to locate the occurrence.
    """
    if isinstance(program, UnitaryApp):
        gate = program.gate
        if isinstance(gate, (Rotation, Coupling)) and gate.uses(parameter):
            if occurrence == 0:
                replacement = (
                    Rotation(gate.axis, shifted_value)
                    if isinstance(gate, Rotation)
                    else Coupling(gate.axis, shifted_value)
                )
                return UnitaryApp(replacement, program.qubits), -1
            return program, occurrence - 1
        if gate.uses(parameter):
            raise TransformError(
                f"gate {gate.display()} uses the parameter but is not a rotation/coupling; "
                "the parameter-shift rule does not apply"
            )
        return program, occurrence
    if isinstance(program, Seq):
        first, occurrence = _shift_occurrence(program.first, occurrence, parameter, shifted_value)
        if occurrence < 0:
            return Seq(first, program.second), -1
        second, occurrence = _shift_occurrence(program.second, occurrence, parameter, shifted_value)
        return Seq(first, second), occurrence
    if isinstance(program, Skip):
        return program, occurrence
    raise TransformError(f"unexpected node {type(program).__name__} in a circuit program")


def _occurrences(program: Program, parameter: Parameter) -> int:
    if isinstance(program, UnitaryApp):
        return 1 if program.gate.uses(parameter) else 0
    if isinstance(program, Seq):
        return _occurrences(program.first, parameter) + _occurrences(program.second, parameter)
    return 0


def _evaluate(program, observable, state, binding, backend) -> float:
    from repro.api import Estimator

    return Estimator(program, observable, backend=backend, cache_size=0).value(
        state, binding
    )


def phase_shift_derivative(
    program: Program,
    parameter: Parameter,
    observable: Observable | np.ndarray,
    state: DensityState,
    binding: ParameterBinding,
    *,
    shift: float = math.pi / 2,
    backend="auto",
) -> float:
    """Compute ``∂/∂θ_j tr(O[[P(θ)]]ρ)`` with the two-circuit parameter-shift rule.

    ``backend`` is any spec :func:`repro.api.resolve_backend` accepts; the
    default ``"auto"`` runs the ``2·OC_j`` shifted circuits on the
    statevector tier (circuits are always measurement-free).
    """
    _require_circuit(program)
    from repro.api import resolve_backend

    backend = resolve_backend(backend)
    total = 0.0
    count = _occurrences(program, parameter)
    theta = binding[parameter]
    for occurrence in range(count):
        plus_program, _ = _shift_occurrence(program, occurrence, parameter, theta + shift)
        minus_program, _ = _shift_occurrence(program, occurrence, parameter, theta - shift)
        plus = _evaluate(plus_program, observable, state, binding, backend)
        minus = _evaluate(minus_program, observable, state, binding, backend)
        total += 0.5 * (plus - minus)
    return total


def phase_shift_gradient(
    program: Program,
    parameters: Sequence[Parameter],
    observable: Observable | np.ndarray,
    state: DensityState,
    binding: ParameterBinding,
    *,
    backend="auto",
) -> np.ndarray:
    """Gradient over several parameters using the parameter-shift rule."""
    from repro.api import resolve_backend

    backend = resolve_backend(backend)
    return np.array(
        [
            phase_shift_derivative(
                program, parameter, observable, state, binding, backend=backend
            )
            for parameter in parameters
        ],
        dtype=float,
    )
