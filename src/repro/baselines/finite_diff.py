"""Central finite differences on the observable semantics.

A method-agnostic numerical reference: it works for every program the
semantics can evaluate (including controls and additive programs) but is
neither exact nor implementable on quantum hardware without error
amplification.  The tests use it as the ground truth against which both the
paper's gadget pipeline and the parameter-shift baseline are compared.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.lang.ast import Program
from repro.lang.parameters import Parameter, ParameterBinding
from repro.linalg.observables import Observable
from repro.sim.density import DensityState
from repro.semantics.observable import (
    additive_observable_semantics,
    observable_semantics,
)


def finite_difference_derivative(
    program: Program,
    parameter: Parameter,
    observable: Observable | np.ndarray,
    state: DensityState,
    binding: ParameterBinding,
    *,
    step: float = 1e-5,
    backend=None,
) -> float:
    """Central-difference estimate of ``∂/∂θ_j tr(O[[P(θ)]]ρ)`` at θ*.

    ``backend`` (any :func:`repro.api.resolve_backend` spec) selects the
    execution scheme for non-additive programs — ``"auto"`` runs the two
    shifted evaluations on the statevector tier when the purity analysis
    allows.  Additive programs always evaluate through the multiset
    semantics, which has no backend seam.
    """
    if program.is_additive():
        upper = additive_observable_semantics(
            program, observable, state, binding.shifted(parameter, +step)
        )
        lower = additive_observable_semantics(
            program, observable, state, binding.shifted(parameter, -step)
        )
        return (upper - lower) / (2.0 * step)
    if backend is None:
        upper = observable_semantics(program, observable, state, binding.shifted(parameter, +step))
        lower = observable_semantics(program, observable, state, binding.shifted(parameter, -step))
        return (upper - lower) / (2.0 * step)
    from repro.api import Estimator

    estimator = Estimator(program, observable, backend=backend, cache_size=0)
    upper = estimator.value(state, binding.shifted(parameter, +step))
    lower = estimator.value(state, binding.shifted(parameter, -step))
    return (upper - lower) / (2.0 * step)


def finite_difference_gradient(
    program: Program,
    parameters: Sequence[Parameter],
    observable: Observable | np.ndarray,
    state: DensityState,
    binding: ParameterBinding,
    *,
    step: float = 1e-5,
    backend=None,
) -> np.ndarray:
    """Central-difference gradient over several parameters."""
    return np.array(
        [
            finite_difference_derivative(
                program, parameter, observable, state, binding, step=step, backend=backend
            )
            for parameter in parameters
        ],
        dtype=float,
    )
