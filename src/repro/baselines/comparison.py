"""Per-parameter resource comparison between differentiation schemes.

Sections 1 and 6 of the paper argue that the single-ancilla gadget needs one
quantum program per parameter occurrence (and, after compilation and abort
pruning, often fewer), whereas the phase-shift rule needs two circuits per
occurrence and cannot handle control flow at all.  The helpers here make
that comparison concrete for any given program.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import Program
from repro.lang.parameters import Parameter
from repro.lang.traversal import is_circuit
from repro.analysis.resources import derivative_program_count, occurrence_count


def phase_shift_circuit_count(program: Program, parameter: Parameter) -> int | None:
    """Circuits per gradient entry for the phase-shift rule: ``2 · OC_j``.

    Returns ``None`` when the program is not a circuit (the rule does not
    apply to programs with controls).
    """
    if not is_circuit(program):
        return None
    return 2 * occurrence_count(program, parameter)


def gadget_program_count(program: Program, parameter: Parameter) -> int:
    """Programs per gradient entry for the paper's scheme: ``|#∂P/∂θ_j|``."""
    return derivative_program_count(program, parameter)


@dataclass(frozen=True)
class SchemeCost:
    """Resource profile of one differentiation scheme on one program/parameter."""

    scheme: str
    programs_per_parameter: int | None
    extra_ancillas: int
    supports_controls: bool

    @property
    def applicable(self) -> bool:
        """Whether the scheme can differentiate the program at all."""
        return self.programs_per_parameter is not None


def scheme_costs(program: Program, parameter: Parameter) -> dict[str, SchemeCost]:
    """Compare the paper's gadget scheme with the phase-shift baseline on one program."""
    gadget = SchemeCost(
        scheme="single-ancilla gadget (this paper)",
        programs_per_parameter=gadget_program_count(program, parameter),
        extra_ancillas=1,
        supports_controls=True,
    )
    shift_count = phase_shift_circuit_count(program, parameter)
    phase_shift = SchemeCost(
        scheme="phase-shift rule (Schuld et al. / PennyLane)",
        programs_per_parameter=shift_count,
        extra_ancillas=0,
        supports_controls=False,
    )
    return {"gadget": gadget, "phase_shift": phase_shift}
