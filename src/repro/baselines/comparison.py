"""Per-parameter resource comparison between differentiation schemes.

Sections 1 and 6 of the paper argue that the single-ancilla gadget needs one
quantum program per parameter occurrence (and, after compilation and abort
pruning, often fewer), whereas the phase-shift rule needs two circuits per
occurrence and cannot handle control flow at all.  The helpers here make
that comparison concrete for any given program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.lang.ast import Program
from repro.lang.parameters import Parameter
from repro.lang.traversal import is_circuit
from repro.analysis.resources import derivative_program_count, occurrence_count

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import Estimator


def phase_shift_circuit_count(program: Program, parameter: Parameter) -> int | None:
    """Circuits per gradient entry for the phase-shift rule: ``2 · OC_j``.

    Returns ``None`` when the program is not a circuit (the rule does not
    apply to programs with controls).
    """
    if not is_circuit(program):
        return None
    return 2 * occurrence_count(program, parameter)


def gadget_program_count(program: Program, parameter: Parameter) -> int:
    """Programs per gradient entry for the paper's scheme: ``|#∂P/∂θ_j|``."""
    return derivative_program_count(program, parameter)


@dataclass(frozen=True)
class SchemeCost:
    """Resource profile of one differentiation scheme on one program/parameter."""

    scheme: str
    programs_per_parameter: int | None
    extra_ancillas: int
    supports_controls: bool

    @property
    def applicable(self) -> bool:
        """Whether the scheme can differentiate the program at all."""
        return self.programs_per_parameter is not None


def _gadget_cost(programs_per_parameter: int) -> SchemeCost:
    """The gadget scheme's cost profile for a known program count."""
    return SchemeCost(
        scheme="single-ancilla gadget (this paper)",
        programs_per_parameter=programs_per_parameter,
        extra_ancillas=1,
        supports_controls=True,
    )


def _phase_shift_cost(program: Program, parameter: Parameter) -> SchemeCost:
    """The phase-shift baseline's cost profile (``None`` count when inapplicable)."""
    return SchemeCost(
        scheme="phase-shift rule (Schuld et al. / PennyLane)",
        programs_per_parameter=phase_shift_circuit_count(program, parameter),
        extra_ancillas=0,
        supports_controls=False,
    )


def scheme_costs(program: Program, parameter: Parameter) -> dict[str, SchemeCost]:
    """Compare the paper's gadget scheme with the phase-shift baseline on one program."""
    return {
        "gadget": _gadget_cost(gadget_program_count(program, parameter)),
        "phase_shift": _phase_shift_cost(program, parameter),
    }


def estimator_scheme_costs(estimator: "Estimator") -> dict[Parameter, dict[str, SchemeCost]]:
    """Per-parameter scheme comparison for a whole :class:`~repro.api.Estimator`.

    Unlike :func:`scheme_costs`, the gadget column reports the *measured*
    count of compiled non-aborting programs taken from the estimator's
    compile cache (``|#∂P/∂θ_j|`` after abort pruning), not the static
    recomputation — so the comparison reflects exactly what the estimator's
    backend will execute, and compiling here warms the estimator for the
    subsequent gradient evaluations.
    """
    comparison: dict[Parameter, dict[str, SchemeCost]] = {}
    for parameter in estimator.parameters:
        comparison[parameter] = {
            "gadget": _gadget_cost(estimator.program_set(parameter).nonaborting_count),
            "phase_shift": _phase_shift_cost(estimator.program, parameter),
        }
    return comparison
