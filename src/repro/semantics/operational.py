"""Small-step operational semantics (Figure 1a and Figure 2).

Configurations are pairs ``⟨P, ρ⟩`` of a remaining program (or the empty
program ``↓``) and a partial density operator; the probabilities of
measurement outcomes are encoded in the (sub-normalized) trace of ρ, so the
transition relation itself is non-probabilistic.  ``case`` statements (and
the guard of ``while``) step once per outcome; the additive choice steps
once per summand (the Sum-Components rule).  The multiset of terminal states
reachable from ``⟨P, ρ⟩`` therefore realizes exactly the right-hand side of
Proposition 3.1 (normal programs) and Definition 4.1 (additive programs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SemanticsError
from repro.lang.ast import (
    Abort,
    Case,
    Init,
    Program,
    Seq,
    Skip,
    Sum,
    UnitaryApp,
    While,
)
from repro.lang.gates import bound_gate_matrix
from repro.lang.parameters import ParameterBinding
from repro.sim.density import DensityState


@dataclass(frozen=True, eq=False)
class Configuration:
    """A configuration ``⟨P, ρ⟩``; ``program is None`` encodes the empty program ``↓``."""

    program: Program | None
    state: DensityState

    @property
    def is_terminal(self) -> bool:
        """True when the configuration is ``⟨↓, ρ⟩``."""
        return self.program is None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self.program == other.program and self.state == other.state


def step(config: Configuration, binding: ParameterBinding | None = None) -> list[Configuration]:
    """Return every configuration reachable from ``config`` in exactly one step.

    Terminal configurations have no successors.  ``case`` produces one
    successor per measurement outcome and ``+`` one per summand; every other
    statement is deterministic.
    """
    if config.is_terminal:
        return []
    program = config.program
    state = config.state
    assert program is not None

    if isinstance(program, Abort):
        return [Configuration(None, DensityState.null_state(state.layout))]
    if isinstance(program, Skip):
        return [Configuration(None, state)]
    if isinstance(program, Init):
        return [Configuration(None, state.initialize(program.qubit))]
    if isinstance(program, UnitaryApp):
        evolved = state.apply_unitary(bound_gate_matrix(program.gate, binding), program.qubits)
        return [Configuration(None, evolved)]
    if isinstance(program, Seq):
        successors = []
        for inner in step(Configuration(program.first, state), binding):
            if inner.is_terminal:
                successors.append(Configuration(program.second, inner.state))
            else:
                successors.append(Configuration(Seq(inner.program, program.second), inner.state))
        return successors
    if isinstance(program, Case):
        successors = []
        for outcome, branch in program.branches:
            branch_state = state.measurement_branch(program.measurement, program.qubits, outcome)
            successors.append(Configuration(branch, branch_state))
        return successors
    if isinstance(program, While):
        terminated = state.measurement_branch(program.measurement, program.qubits, 0)
        continuing = state.measurement_branch(program.measurement, program.qubits, 1)
        successors = [Configuration(None, terminated)]
        if program.bound >= 2:
            rest: Program = While(
                program.measurement, program.qubits, program.body, program.bound - 1
            )
            successors.append(Configuration(Seq(program.body, rest), continuing))
        else:
            # while(1): one more body execution followed by abort (Eq. 3.1).
            successors.append(
                Configuration(Seq(program.body, Abort(tuple(sorted(program.qvars())))), continuing)
            )
        return successors
    if isinstance(program, Sum):
        return [Configuration(program.left, state), Configuration(program.right, state)]
    raise SemanticsError(f"unknown program node {type(program).__name__}")


def run_to_terminals(
    program: Program,
    state: DensityState,
    binding: ParameterBinding | None = None,
    *,
    max_steps: int = 1_000_000,
) -> list[Configuration]:
    """Exhaustively explore the transition system and return all terminal configurations.

    The returned list is a multiset: syntactically different execution paths
    contribute separate entries even when they reach numerically equal
    states, matching the multiset conventions of Proposition 3.1 and
    Definition 4.1.
    """
    pending = [Configuration(program, state)]
    terminals: list[Configuration] = []
    steps_taken = 0
    while pending:
        config = pending.pop()
        if config.is_terminal:
            terminals.append(config)
            continue
        steps_taken += 1
        if steps_taken > max_steps:
            raise SemanticsError(
                f"operational exploration exceeded {max_steps} steps; "
                "the program's branching is too large for exhaustive execution"
            )
        pending.extend(step(config, binding))
    return terminals


def terminal_states(
    program: Program,
    state: DensityState,
    binding: ParameterBinding | None = None,
    *,
    drop_null: bool = False,
) -> list[DensityState]:
    """Return the multiset of terminal states ``{| ρ' : ⟨P, ρ⟩ →* ⟨↓, ρ'⟩ |}``.

    ``drop_null=True`` removes (numerically) zero states, as done on both
    sides of Proposition 4.2.
    """
    states = [config.state for config in run_to_terminals(program, state, binding)]
    if drop_null:
        states = [s for s in states if not s.is_null()]
    return states


def operational_denotation(
    program: Program,
    state: DensityState,
    binding: ParameterBinding | None = None,
) -> DensityState:
    """Sum the terminal multiset into a single state (left side of Prop. 3.1).

    For normal programs this equals the denotational semantics; tests use the
    agreement as a cross-validation of the two evaluators.
    """
    total = DensityState.null_state(state.layout)
    for terminal in terminal_states(program, state, binding):
        total = total.add(terminal)
    return total
