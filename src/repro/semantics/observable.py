"""Observable and differential semantics (Section 5).

* ``[[(O, ρ) → P(θ)]](θ*) = tr(O · [[P(θ*)]]ρ)`` — Definition 5.1;
* the ancilla variant ``[[((O, O_A), ρ) → P'(θ)]](θ*)
  = tr((O_A ⊗ O) · [[P'(θ*)]](|0⟩⟨0|_A ⊗ ρ))`` — Definition 5.2;
* for additive programs the observable semantics is the *sum* over the
  compiled multiset — Eq. (5.4);
* the differential semantics ``∂/∂θ_j [[(O, ρ) → S(θ)]]`` — Definition 5.3 —
  is provided here as a numerically evaluated derivative (central
  differences), which is what the tests compare the code-transformation
  output against.

The layout convention for the ancilla mirrors Definition 5.2: the ancilla is
the *first* tensor factor, so the combined observable is literally the
Kronecker product ``O_A ⊗ O``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SemanticsError
from repro.lang.ast import Program
from repro.lang.parameters import Parameter, ParameterBinding
from repro.linalg.gates import PAULI_Z
from repro.linalg.observables import Observable
from repro.sim.density import DensityState
from repro.semantics.denotational import denote


def observable_semantics(
    program: Program,
    observable: Observable | np.ndarray,
    state: DensityState,
    binding: ParameterBinding | None = None,
) -> float:
    """Evaluate ``[[(O, ρ) → P(θ)]](θ*) = tr(O · [[P(θ*)]]ρ)`` (Definition 5.1).

    ``observable`` must act on the state's full register (in layout order).

    (Shim: delegates to a per-call :class:`repro.api.Estimator` on the exact
    density backend; loops should hold an estimator to share its caches.
    The cache is disabled — a single-call estimator can never hit it.)
    """
    from repro.api import Estimator

    return Estimator(program, observable, parameters=(), cache_size=0).value(state, binding)


def observable_semantics_with_ancilla(
    program: Program,
    observable: Observable | np.ndarray,
    state: DensityState,
    ancilla: str,
    binding: ParameterBinding | None = None,
    ancilla_observable: np.ndarray | None = None,
) -> float:
    """Evaluate Definition 5.2: ``tr((O_A ⊗ O) [[P'(θ*)]](|0⟩⟨0|_A ⊗ ρ))``.

    ``state`` is the input over the original variables ``v``; the ancilla is
    added in state ``|0⟩`` as the leading tensor factor.  ``ancilla_observable``
    defaults to ``Z_A``, the choice used throughout the paper's soundness
    proof (Eq. 6.4).
    """
    if ancilla in state.layout.names:
        raise SemanticsError(
            f"ancilla {ancilla!r} already occurs in the input state; it must be fresh"
        )
    matrix = observable.matrix if isinstance(observable, Observable) else np.asarray(observable)
    if matrix.shape != (state.layout.total_dim, state.layout.total_dim):
        raise SemanticsError(
            "the observable must act on the original register (the ancilla observable "
            "is supplied separately)"
        )
    ancilla_matrix = PAULI_Z if ancilla_observable is None else np.asarray(ancilla_observable)
    extended = state.extended(ancilla, dim=2, front=True)
    output = denote(program, extended, binding)
    return output.expectation(np.kron(ancilla_matrix, matrix))


def additive_observable_semantics(
    program: Program,
    observable: Observable | np.ndarray,
    state: DensityState,
    binding: ParameterBinding | None = None,
) -> float:
    """Observable semantics of an additive program: the sum over its compilation (Eq. 5.4)."""
    from repro.additive.compile import compile_additive

    return sum(
        observable_semantics(compiled, observable, state, binding)
        for compiled in compile_additive(program)
    )


def additive_observable_semantics_with_ancilla(
    program: Program,
    observable: Observable | np.ndarray,
    state: DensityState,
    ancilla: str,
    binding: ParameterBinding | None = None,
    ancilla_observable: np.ndarray | None = None,
) -> float:
    """Ancilla observable semantics of an additive program (sum over its compilation)."""
    from repro.additive.compile import compile_additive

    return sum(
        observable_semantics_with_ancilla(
            compiled, observable, state, ancilla, binding, ancilla_observable
        )
        for compiled in compile_additive(program)
    )


def differential_semantics(
    program: Program,
    parameter: Parameter,
    observable: Observable | np.ndarray,
    state: DensityState,
    binding: ParameterBinding,
    *,
    step: float = 1e-5,
) -> float:
    """Numerically evaluate ``∂/∂θ_j [[(O, ρ) → S(θ)]]`` at θ* (Definition 5.3).

    Central differences on the observable semantics; works for both normal
    and additive programs.  This is the *specification* side of Theorem 6.2
    against which the code-transformation output is validated.
    """
    evaluate = (
        additive_observable_semantics if program.is_additive() else observable_semantics
    )
    upper = evaluate(program, observable, state, binding.shifted(parameter, +step))
    lower = evaluate(program, observable, state, binding.shifted(parameter, -step))
    return (upper - lower) / (2.0 * step)
