"""Semantics of parameterized quantum while-programs.

* :mod:`repro.semantics.operational` — the small-step transition system of
  Figure 1a (plus the Sum-Components rule of Figure 2 for additive
  programs), and the multiset of terminal configurations it induces.
* :mod:`repro.semantics.denotational` — the superoperator semantics of
  Figure 1b, evaluated on density states.
* :mod:`repro.semantics.superoperators` — programs as explicit
  :class:`~repro.linalg.superop.Superoperator` objects (matrix
  representation, Schrödinger–Heisenberg dual application).
* :mod:`repro.semantics.observable` — the observable semantics
  ``[[(O, ρ) → P(θ)]]`` of Definition 5.1, its ancilla variant of
  Definition 5.2, and the (numerically evaluated) differential semantics of
  Definition 5.3.
"""

from repro.semantics.operational import Configuration, step, run_to_terminals, terminal_states
from repro.semantics.denotational import denote, denote_matrix
from repro.semantics.superoperators import program_superoperator, apply_program_dual
from repro.semantics.observable import (
    observable_semantics,
    observable_semantics_with_ancilla,
    additive_observable_semantics,
    additive_observable_semantics_with_ancilla,
    differential_semantics,
)

__all__ = [
    "Configuration",
    "step",
    "run_to_terminals",
    "terminal_states",
    "denote",
    "denote_matrix",
    "program_superoperator",
    "apply_program_dual",
    "observable_semantics",
    "observable_semantics_with_ancilla",
    "additive_observable_semantics",
    "additive_observable_semantics_with_ancilla",
    "differential_semantics",
]
