"""Programs as explicit superoperators.

For small registers it is convenient to materialize ``[[P(θ*)]]`` as a
matrix (the natural/column-stacking representation of the superoperator).
This gives direct access to the Schrödinger–Heisenberg dual
``[[P(θ*)]]*`` — the map on observables satisfying
``tr(O · [[P]](ρ)) = tr([[P]]*(O) · ρ)`` — which Lemma D.2 uses to move a
program across the observable in the Sequence soundness proof.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SemanticsError
from repro.lang.ast import Program
from repro.lang.parameters import ParameterBinding
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.semantics.denotational import denote


def program_transfer_matrix(
    program: Program,
    layout: RegisterLayout,
    binding: ParameterBinding | None = None,
) -> np.ndarray:
    """Return the matrix ``M`` with ``vec([[P]](ρ)) = M · vec(ρ)`` (column stacking).

    The matrix is assembled by evaluating the program on every matrix unit
    ``|i⟩⟨j|``; its size is ``d² × d²`` for a register of dimension ``d``, so
    this is intended for small registers (tests, the dual computation below).
    """
    missing = program.qvars() - set(layout.names)
    if missing:
        raise SemanticsError(f"layout is missing program variables {sorted(missing)}")
    dim = layout.total_dim
    transfer = np.zeros((dim * dim, dim * dim), dtype=complex)
    for i in range(dim):
        for j in range(dim):
            unit = np.zeros((dim, dim), dtype=complex)
            unit[i, j] = 1.0
            output = denote(program, DensityState(layout, unit), binding).matrix
            transfer[:, j * dim + i] = output.reshape(-1, order="F")
    return transfer


def program_superoperator(
    program: Program,
    layout: RegisterLayout,
    binding: ParameterBinding | None = None,
) -> np.ndarray:
    """Alias of :func:`program_transfer_matrix` (kept for discoverability)."""
    return program_transfer_matrix(program, layout, binding)


def apply_program_dual(
    program: Program,
    layout: RegisterLayout,
    observable: np.ndarray,
    binding: ParameterBinding | None = None,
) -> np.ndarray:
    """Return ``[[P(θ*)]]*(O)``, the dual (Heisenberg-picture) action on an observable.

    Satisfies ``tr(O · [[P]](ρ)) = tr([[P]]*(O) · ρ)`` for every state ρ.
    """
    observable = np.asarray(observable, dtype=complex)
    dim = layout.total_dim
    if observable.shape != (dim, dim):
        raise SemanticsError(
            f"observable shape {observable.shape} does not match register dimension {dim}"
        )
    transfer = program_transfer_matrix(program, layout, binding)
    vectorized = observable.reshape(-1, order="F")
    dual_vector = transfer.conj().T @ vectorized
    return dual_vector.reshape(dim, dim, order="F")
