"""Denotational semantics ``[[P]]`` (Figure 1b).

``[[P(θ*)]]`` is a trace-non-increasing superoperator on the partial density
operators over ``H_v``.  The evaluator here applies that superoperator to a
concrete :class:`~repro.sim.density.DensityState` rather than materializing
it as a matrix (the matrix form is available from
:mod:`repro.semantics.superoperators`).

The defining equations::

    [[abort]]ρ               = 0
    [[skip]]ρ                = ρ
    [[q := |0⟩]]ρ            = E_{q→0}(ρ)
    [[q := U(θ*)[q]]]ρ       = U(θ*) ρ U(θ*)†
    [[P1; P2]]ρ              = [[P2]]([[P1]]ρ)
    [[case M = m → P_m]]ρ    = Σ_m [[P_m]](M_m ρ M_m†)
    [[while(T) ...]]ρ        = Σ_{n=0}^{T−1} E_0 ∘ ([[P1]] ∘ E_1)^n (ρ)

The additive choice ``+`` has no single-superoperator denotation (its
denotational semantics is a *multiset*, Definition 4.1); evaluating it here
raises :class:`~repro.errors.SemanticsError`.
"""

from __future__ import annotations

from repro.errors import SemanticsError
from repro.lang.ast import (
    Abort,
    Case,
    Init,
    Program,
    Seq,
    Skip,
    Sum,
    UnitaryApp,
    While,
)
from repro.lang.gates import bound_gate_matrix
from repro.lang.parameters import ParameterBinding
from repro.sim.density import DensityState


def denote(program: Program, state: DensityState, binding: ParameterBinding | None = None) -> DensityState:
    """Apply ``[[P(θ*)]]`` to a density state.

    ``binding`` supplies θ*; it may be omitted for unparameterized programs.
    The state's layout must contain every variable the program accesses.
    """
    missing = program.qvars() - set(state.layout.names)
    if missing:
        raise SemanticsError(
            f"the input state does not carry variables {sorted(missing)} used by the program"
        )
    return _denote(program, state, binding)


def _denote(program: Program, state: DensityState, binding: ParameterBinding | None) -> DensityState:
    if isinstance(program, Abort):
        return DensityState.null_state(state.layout)
    if isinstance(program, Skip):
        return state
    if isinstance(program, Init):
        return state.initialize(program.qubit)
    if isinstance(program, UnitaryApp):
        return state.apply_unitary(bound_gate_matrix(program.gate, binding), program.qubits)
    if isinstance(program, Seq):
        return _denote(program.second, _denote(program.first, state, binding), binding)
    if isinstance(program, Case):
        result = DensityState.null_state(state.layout)
        for outcome, branch in program.branches:
            branch_state = state.measurement_branch(program.measurement, program.qubits, outcome)
            result = result.add(_denote(branch, branch_state, binding))
        return result
    if isinstance(program, While):
        total = DensityState.null_state(state.layout)
        current = state
        for _ in range(program.bound):
            terminated = current.measurement_branch(program.measurement, program.qubits, 0)
            total = total.add(terminated)
            continuing = current.measurement_branch(program.measurement, program.qubits, 1)
            current = _denote(program.body, continuing, binding)
        # After the T-th iteration the still-running branch aborts (contributes 0).
        return total
    if isinstance(program, Sum):
        raise SemanticsError(
            "the additive choice '+' has a multiset semantics; use "
            "repro.additive.semantics or compile the program first"
        )
    raise SemanticsError(f"unknown program node {type(program).__name__}")


def denote_matrix(
    program: Program,
    state: DensityState,
    binding: ParameterBinding | None = None,
):
    """Convenience wrapper returning the raw output density matrix (NumPy array)."""
    return denote(program, state, binding).matrix
