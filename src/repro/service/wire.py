"""The worker wire protocol: length-prefixed frames + content-addressed keys.

A remote worker and its client share no memory, so everything the planner
keys by *identity* (programs, multiset tuples, observable matrices — the
:func:`repro.service.planner.group_key` convention) must cross the wire
keyed by *content*.  This module defines both halves:

* **framing** — every message is ``!IBI`` header (payload length, message
  type, CRC32 of the payload) followed by the payload bytes.  Frames are
  transport-independent byte strings; the worker pool ships them over
  ``multiprocessing`` pipes (``send_bytes``/``recv_bytes``), a future
  socket daemon would ship the identical bytes.  Anything malformed — a
  truncated header, a CRC mismatch, an unknown message type — raises
  :class:`~repro.errors.WireProtocolError`, which is deliberately *not*
  retryable: a channel that corrupts data must be killed, not retried
  into a silently wrong number.
* **content digests** — :func:`content_digest` (sha256 over canonical
  pickle bytes, memoized by object identity with the object pinned — the
  cache-key convention) and :func:`call_digest` (one digest per group's
  compiled work + observable).  A worker installs each artifact once per
  digest; subsequent ``EXECUTE`` messages reference the digest and ship
  only the per-row ``(state, binding)`` payloads.
* **wire keys** — :func:`request_wire_key` mirrors the
  :class:`~repro.api.cache.DenotationCache` key family exactly: the work
  by content digest, the evaluation point by
  :func:`~repro.api.cache.binding_key` and state bytes.  Two requests
  share a wire key iff they share a cache point (same work content, same
  binding values, same state bytes) — the invariant the content-addressed
  result store and the coalescing planner both rely on, proven by the
  hypothesis suite in ``tests/service/test_wire.py``.
* **request round-trips** — :func:`encode_request`/:func:`decode_request`
  serialize a full :class:`~repro.service.ExecutionRequest` (any kind,
  qubit or qutrit states, derivative multisets).  Deadlines are dropped
  on purpose: they are absolute ``time.monotonic`` instants, meaningless
  in another process — the client enforces them at dispatch boundaries.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
import threading
import traceback
import zlib
from typing import Hashable

from repro.errors import RemoteExecutionError, SemanticsError, WireProtocolError

__all__ = [
    "WIRE_VERSION",
    "HELLO",
    "PING",
    "PONG",
    "INSTALL",
    "EXECUTE",
    "RESULT",
    "ERROR",
    "SHUTDOWN",
    "encode_frame",
    "decode_frame",
    "send_frame",
    "recv_frame",
    "dumps",
    "loads",
    "encode_error",
    "decode_error",
    "content_digest",
    "call_digest",
    "request_wire_key",
    "request_cache_key",
    "encode_request",
    "decode_request",
]

#: Protocol version, exchanged in the HELLO handshake.
WIRE_VERSION = 1

#: Message types.  HELLO flows worker→client once per process; PING/PONG
#: are the liveness heartbeat; INSTALL ships one content-addressed work
#: artifact; EXECUTE/RESULT/ERROR carry one batched group call and its
#: outcome; SHUTDOWN asks the worker to exit cleanly.
HELLO = 1
PING = 2
PONG = 3
INSTALL = 4
EXECUTE = 5
RESULT = 6
ERROR = 7
SHUTDOWN = 8

_MESSAGE_TYPES = frozenset(
    (HELLO, PING, PONG, INSTALL, EXECUTE, RESULT, ERROR, SHUTDOWN)
)

#: ``!IBI``: payload length, message type, CRC32 of the payload.
_HEADER = struct.Struct("!IBI")

#: Refuse absurd frames before allocating for them (a corrupted length
#: field must not become a multi-gigabyte read).
MAX_FRAME_BYTES = 1 << 30

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


# -- framing -----------------------------------------------------------------


def encode_frame(message_type: int, payload: bytes = b"") -> bytes:
    """One wire frame: header (length, type, CRC32) + payload bytes."""
    if message_type not in _MESSAGE_TYPES:
        raise SemanticsError(f"unknown wire message type {message_type!r}")
    if len(payload) > MAX_FRAME_BYTES:
        raise SemanticsError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte wire limit"
        )
    return _HEADER.pack(len(payload), message_type, zlib.crc32(payload)) + payload


def decode_frame(data: bytes) -> "tuple[int, bytes]":
    """Validate and split one frame into ``(message_type, payload)``.

    Every malformation — short header, truncated or oversized payload,
    unknown type, CRC mismatch — raises
    :class:`~repro.errors.WireProtocolError`.
    """
    if len(data) < _HEADER.size:
        raise WireProtocolError(
            f"short frame: {len(data)} bytes is smaller than the "
            f"{_HEADER.size}-byte header"
        )
    length, message_type, crc = _HEADER.unpack_from(data)
    payload = data[_HEADER.size :]
    if length > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"frame claims a {length}-byte payload, over the "
            f"{MAX_FRAME_BYTES}-byte wire limit"
        )
    if len(payload) != length:
        raise WireProtocolError(
            f"frame length mismatch: header says {length} payload bytes, "
            f"got {len(payload)}"
        )
    if message_type not in _MESSAGE_TYPES:
        raise WireProtocolError(f"unknown wire message type {message_type}")
    if zlib.crc32(payload) != crc:
        raise WireProtocolError("frame CRC mismatch: the payload is corrupted")
    return message_type, payload


def send_frame(connection, message_type: int, payload: bytes = b"") -> None:
    """Encode and ship one frame over a ``multiprocessing`` connection."""
    connection.send_bytes(encode_frame(message_type, payload))


def recv_frame(connection) -> "tuple[int, bytes]":
    """Receive and validate one frame; blocks until a frame arrives.

    Raises ``EOFError`` when the peer is gone (the caller maps that onto
    :class:`~repro.errors.WorkerCrashError`) and
    :class:`~repro.errors.WireProtocolError` on malformed bytes.
    """
    return decode_frame(connection.recv_bytes())


def dumps(obj) -> bytes:
    """Canonical payload serialization (highest pickle protocol)."""
    return pickle.dumps(obj, protocol=_PICKLE_PROTOCOL)


def loads(data: bytes):
    """Deserialize a payload; undecodable bytes are a protocol violation."""
    try:
        return pickle.loads(data)
    except Exception as error:
        raise WireProtocolError(f"undecodable frame payload: {error}") from error


# -- error transport ---------------------------------------------------------


def encode_error(error: BaseException) -> bytes:
    """Serialize a worker-side failure for the ERROR frame.

    The original exception travels verbatim when it pickles (so the
    client re-raises exactly what the backend raised, retry
    classification included); otherwise a
    :class:`~repro.errors.RemoteExecutionError` summary travels instead,
    mirroring the original's ``retryable`` flag.
    """
    try:
        payload = dumps(("exception", error))
        pickle.loads(payload)  # round-trip check: unpicklable state fails here
        return payload
    except Exception:
        return dumps(
            (
                "summary",
                type(error).__name__,
                str(error),
                bool(getattr(error, "retryable", False)),
                "".join(
                    traceback.format_exception(type(error), error, error.__traceback__)
                ),
            )
        )


def decode_error(data: bytes) -> BaseException:
    """Reconstruct a worker-side failure from an ERROR frame payload."""
    decoded = loads(data)
    if decoded[0] == "exception":
        return decoded[1]
    _, type_name, message, retryable, remote_traceback = decoded
    return RemoteExecutionError(
        f"worker-side {type_name}: {message}",
        retryable=retryable,
        remote_traceback=remote_traceback,
    )


# -- content digests ---------------------------------------------------------

#: id -> (pinned object, digest).  Pinning keeps the id stable for the
#: object's lifetime — the identity-memo convention of the denotation
#: cache and the planner's group keys.
_DIGESTS: "dict[int, tuple[object, str]]" = {}
_DIGEST_LOCK = threading.Lock()


def content_digest(obj) -> str:
    """The sha256 hex digest of an object's canonical pickle bytes.

    Memoized by object identity (with the object pinned), so the planner's
    id-keyed groups pay one serialization per distinct work object, not
    one per drain.
    """
    key = id(obj)
    with _DIGEST_LOCK:
        hit = _DIGESTS.get(key)
        if hit is not None and hit[0] is obj:
            return hit[1]
    digest = hashlib.sha256(dumps(obj)).hexdigest()
    with _DIGEST_LOCK:
        _DIGESTS[key] = (obj, digest)
    return digest


def _observable_fingerprint(observable) -> "tuple":
    """Value identity of an :class:`~repro.api.ObservableSpec`."""
    matrix = observable.matrix
    return (matrix.shape, matrix.tobytes(), observable.targets)


def call_digest(kind: str, program, program_sets, observable) -> str:
    """One digest per group's compiled work + observable — the wire-side
    mirror of :func:`repro.service.planner.group_key`, by content."""
    if kind == "value":
        work = ("value", content_digest(program))
    else:
        work = (
            "derivative",
            tuple(content_digest(program_set) for program_set in program_sets or ()),
        )
    hasher = hashlib.sha256(dumps((work, _observable_fingerprint(observable))))
    return hasher.hexdigest()


# -- wire keys ---------------------------------------------------------------


def _state_bytes_key(state) -> Hashable:
    """Value key of an input state (mirrors the planner's point key)."""
    from repro.service.planner import _state_point_key

    return _state_point_key(state)


def request_wire_key(request) -> Hashable:
    """The content-addressed identity of one request's computation.

    ``(kind family, work digest, binding values, state bytes)`` — exactly
    the :class:`~repro.api.cache.DenotationCache` key family with the
    id-keyed work replaced by its content digest.  DERIVATIVE and
    GRADIENT requests over the same multiset tuple share a key, as they
    share a batch row.
    """
    from repro.api.cache import binding_key

    if request.program is not None:
        family, digest = "value", call_digest(
            "value", request.program, None, request.observable
        )
    else:
        family, digest = "derivative", call_digest(
            "derivative", None, request.program_sets, request.observable
        )
    return (
        family,
        digest,
        binding_key(request.binding),
        _state_bytes_key(request.state),
    )


def request_cache_key(request) -> Hashable:
    """The identity-keyed counterpart: the planner's ``(group, point)``.

    This is what "two requests share a :class:`DenotationCache` key"
    means at the service seam — same group (work by object identity +
    observable) and same coalesce point (binding values + state bytes).
    The wire key must induce the same partition over any request pool
    whose distinct work objects have distinct content.
    """
    from repro.service.planner import coalesce_key, group_key

    return (group_key(request), coalesce_key(request))


# -- request round-trips -----------------------------------------------------


def encode_request(request) -> bytes:
    """Serialize one :class:`~repro.service.ExecutionRequest` for the wire.

    Everything that affects the result travels: kind, program or multiset
    tuple, observable, state, binding, priority.  The ``deadline`` is
    dropped by design — it is an absolute :func:`time.monotonic` instant
    of the *client's* clock; the supervisor enforces deadlines at
    dispatch boundaries, the wire never carries them.
    """
    return dumps(
        (
            "request",
            WIRE_VERSION,
            request.kind.value,
            request.program,
            request.program_sets,
            request.observable,
            request.state,
            request.binding,
            request.priority,
        )
    )


def decode_request(data: bytes):
    """Rebuild an :class:`~repro.service.ExecutionRequest` from the wire."""
    from repro.service.requests import ExecutionRequest, RequestKind

    decoded = loads(data)
    if not isinstance(decoded, tuple) or len(decoded) != 9 or decoded[0] != "request":
        raise WireProtocolError("frame payload is not an encoded request")
    _, version, kind, program, program_sets, observable, state, binding, priority = decoded
    if version != WIRE_VERSION:
        raise WireProtocolError(
            f"wire version mismatch: got {version}, speaking {WIRE_VERSION}"
        )
    return ExecutionRequest(
        RequestKind(kind),
        observable,
        state,
        binding,
        program=program,
        program_sets=program_sets,
        priority=priority,
    )
