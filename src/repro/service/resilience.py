"""Fault-tolerance policy objects for the service layer.

The request pipeline (:mod:`repro.service.service`) stays correct when
nothing fails; this module defines *what the service does when something
does*:

* :class:`RetryPolicy` — a bounded per-group retry budget with
  exponential backoff and seeded jitter.  The planner's groups are the
  retry unit: when a batched backend call fails with a retryable error
  (see :func:`repro.errors.is_retryable`), only *that* group re-runs —
  its coalesced siblings keep their single computation, other groups of
  the same drain are untouched, and a fault-free drain takes exactly the
  PR-5 code path (no sleeps, no extra calls, bit for bit).
* :class:`CircuitBreaker` — consecutive-failure bookkeeping for the
  *executor* seam.  A thread/process pool that dies mid-drain is a
  different failure class from a group's own exception: the service
  degrades the affected drain to the inline executor (handles still
  resolve), and after ``threshold`` consecutive pool failures trips the
  breaker — the service swaps to the inline executor permanently and
  records the transition in :class:`~repro.service.ServiceStats`.
* :func:`deadline_after` — the absolute-monotonic deadline convention of
  :attr:`~repro.service.ExecutionRequest.deadline`.  Deadlines are
  cooperative: they are checked at execution boundaries (before a group
  starts and between retry attempts), never by interrupting a running
  kernel — so a request that expires while queued or while backing off
  fails with :class:`~repro.errors.DeadlineExceededError` instead of
  consuming another attempt.

Jitter draws go through :mod:`repro.sim.rng`, so one ``repro.sim.rng.seed``
call makes an entire run — sampling backends, fault schedules and backoff
alike — reproducible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import SemanticsError, is_retryable
from repro.sim import rng as _rng

__all__ = [
    "RetryPolicy",
    "CircuitBreaker",
    "SupervisorPolicy",
    "deadline_after",
    "resolve_retry",
    "resolve_breaker",
    "resolve_supervisor",
]


def deadline_after(timeout: "float | None") -> "float | None":
    """The absolute monotonic deadline ``timeout`` seconds from now.

    ``None`` means no deadline.  This is the value
    :attr:`~repro.service.ExecutionRequest.deadline` carries; request
    factories accept the relative ``timeout=`` spelling and convert here.
    """
    if timeout is None:
        return None
    return time.monotonic() + float(timeout)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    Parameters
    ----------
    attempts:
        Total executions a group may consume, the first one included —
        ``attempts=1`` never retries, ``attempts=3`` allows two retries.
    base_delay:
        Backoff before the first retry, in seconds.  ``0.0`` retries
        immediately (the mode the deterministic test suites use).
    multiplier / max_delay:
        The backoff before retry ``n`` is
        ``min(max_delay, base_delay * multiplier**(n-1))``.
    jitter:
        Fractional jitter: the slept delay is the backoff scaled by a
        uniform draw from ``[1 - jitter, 1 + jitter]``.  Draws come from
        ``rng`` — or the shared :mod:`repro.sim.rng` default, so a
        ``repro.sim.rng.seed(...)`` call makes backoff reproducible.
    classify:
        Predicate deciding which errors are worth re-running; defaults to
        :func:`repro.errors.is_retryable` (the ``retryable`` attribute of
        the :class:`~repro.errors.ServiceError` branch).
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    rng: "np.random.Generator | None" = None
    classify: "Callable[[BaseException], bool] | None" = None

    def __post_init__(self):
        if self.attempts < 1:
            raise SemanticsError("a retry policy needs at least one attempt")
        if self.base_delay < 0 or self.max_delay < 0:
            raise SemanticsError("retry delays must be non-negative")
        if self.multiplier < 1.0:
            raise SemanticsError("the backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise SemanticsError("jitter is a fraction in [0, 1]")

    def retryable(self, error: BaseException) -> bool:
        """Is this failure worth another attempt under this policy?"""
        classify = self.classify if self.classify is not None else is_retryable
        return bool(classify(error))

    def delay(self, failures: int) -> float:
        """Seconds to back off after ``failures`` consecutive failures (≥ 1)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (failures - 1))
        if raw <= 0.0:
            return 0.0
        if not self.jitter:
            return raw
        scale = 1.0 + self.jitter * _rng.resolve(self.rng).uniform(-1.0, 1.0)
        return max(0.0, raw * scale)


def resolve_retry(retry: "RetryPolicy | int | None") -> "RetryPolicy | None":
    """Turn a retry spec into a policy: ``None`` (no retries), an attempt
    count (default backoff), or a full :class:`RetryPolicy`."""
    if retry is None:
        return None
    if isinstance(retry, RetryPolicy):
        return retry
    if isinstance(retry, bool):  # bool is an int; reject the ambiguity
        raise SemanticsError("retry takes a RetryPolicy, an attempt count, or None")
    if isinstance(retry, int):
        return RetryPolicy(attempts=retry)
    raise SemanticsError(
        f"unknown retry spec {retry!r}; expected a RetryPolicy, an attempt "
        "count, or None"
    )


@dataclass(frozen=True)
class SupervisorPolicy:
    """Every knob of the worker-pool supervisor, in one frozen value.

    The supervisor (:class:`~repro.service.workers.WorkerSupervisor`) is
    the *infrastructure* half of fault tolerance — it keeps worker
    processes alive — while :class:`RetryPolicy` is the *work* half.
    They compose: a crashed worker's in-flight group is re-dispatched to
    a healthy sibling up to ``redispatch_limit`` times (bit-identical,
    since group results are deterministic); only when that budget runs
    out does the group fail with a :class:`~repro.errors.ServiceError`
    that the service-level retry policy may then still absorb.

    Parameters
    ----------
    restart:
        The per-slot respawn budget, reusing :class:`RetryPolicy` for its
        bounded-attempts + exponential-backoff semantics: ``attempts``
        consecutive *failed spawns* (no handshake, immediate death) mark
        the slot dead, and spawn ``n`` backs off ``restart.delay(n)``
        seconds first.  When every slot is dead the pool raises
        :class:`~repro.errors.WorkerPoolError` and the service degrades
        the drain to the inline executor.
    heartbeat_interval / heartbeat_timeout:
        Idle workers older than ``heartbeat_interval`` seconds are PINGed
        before each drain; missing the PONG for ``heartbeat_timeout``
        seconds is a liveness failure — the worker is killed and
        respawned.  Busy workers are covered by ``call_timeout`` instead.
    call_timeout:
        Seconds a dispatched group may stay in flight before the worker
        is declared hung, killed, and the group re-dispatched
        (``None`` disables hang detection).
    spawn_timeout:
        Seconds a fresh worker gets to complete the HELLO handshake.
    redispatch_limit:
        Extra dispatches a group may consume after its first (crash/hang
        recovery); ``0`` fails a group on its first lost worker.
    max_inflight:
        Groups a single worker may hold concurrently — the per-worker
        bound of the dispatch queue, which is what makes the submission
        pipeline *backpressured* rather than fire-and-forget.
    """

    restart: RetryPolicy = RetryPolicy(
        attempts=3, base_delay=0.02, max_delay=0.5, jitter=0.1
    )
    heartbeat_interval: float = 2.0
    heartbeat_timeout: float = 2.0
    call_timeout: "float | None" = 60.0
    spawn_timeout: float = 20.0
    redispatch_limit: int = 2
    max_inflight: int = 2

    def __post_init__(self):
        if not isinstance(self.restart, RetryPolicy):
            raise SemanticsError("restart= takes a RetryPolicy")
        for name in ("heartbeat_interval", "heartbeat_timeout", "spawn_timeout"):
            if getattr(self, name) <= 0:
                raise SemanticsError(f"{name} must be positive")
        if self.call_timeout is not None and self.call_timeout <= 0:
            raise SemanticsError("call_timeout must be positive (or None)")
        if self.redispatch_limit < 0:
            raise SemanticsError("redispatch_limit must be non-negative")
        if self.max_inflight < 1:
            raise SemanticsError("max_inflight must be at least 1")


def resolve_supervisor(policy: "SupervisorPolicy | None") -> SupervisorPolicy:
    """Turn a supervisor spec into a policy (``None`` → defaults)."""
    if policy is None:
        return SupervisorPolicy()
    if isinstance(policy, SupervisorPolicy):
        return policy
    raise SemanticsError(
        f"unknown supervisor spec {policy!r}; expected a SupervisorPolicy or None"
    )


class CircuitBreaker:
    """Consecutive-failure counter guarding the pooled executors.

    The service records one failure per drain whose ``executor.run`` call
    itself raised (a dead pool — not a group's own exception, which is
    contained per group) and one success per drain that ran; reaching
    ``threshold`` consecutive failures trips the breaker, at which point
    the service falls back to the inline executor permanently.
    """

    def __init__(self, threshold: int = 3):
        if threshold < 1:
            raise SemanticsError("a circuit breaker needs a threshold of at least 1")
        self.threshold = int(threshold)
        self.consecutive_failures = 0
        #: Total failures/trips observed (telemetry; never reset by success).
        self.failures = 0
        self.trips = 0

    def record_success(self) -> None:
        """A drain executed on the guarded executor: reset the streak."""
        self.consecutive_failures = 0

    def record_failure(self) -> bool:
        """A pool-level failure; returns ``True`` when this one trips."""
        self.consecutive_failures += 1
        self.failures += 1
        if self.consecutive_failures == self.threshold:
            self.trips += 1
            return True
        return False

    @property
    def tripped(self) -> bool:
        """Has the streak reached the threshold?"""
        return self.consecutive_failures >= self.threshold

    def reset(self) -> None:
        """Clear the streak (telemetry totals are kept)."""
        self.consecutive_failures = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"CircuitBreaker(threshold={self.threshold}, "
            f"consecutive_failures={self.consecutive_failures})"
        )


def resolve_breaker(
    breaker: "CircuitBreaker | int | bool | None",
) -> "CircuitBreaker | None":
    """Turn a breaker spec into one: ``None``/``True`` (default breaker),
    ``False`` (degradation disabled — pool failures fail their handles and
    re-raise, the PR-5 behavior), a threshold, or an instance."""
    if breaker is None or breaker is True:
        return CircuitBreaker()
    if breaker is False:
        return None
    if isinstance(breaker, CircuitBreaker):
        return breaker
    if isinstance(breaker, int):
        return CircuitBreaker(threshold=breaker)
    raise SemanticsError(
        f"unknown breaker spec {breaker!r}; expected a CircuitBreaker, a "
        "threshold, True/None (default), or False (disabled)"
    )
