"""``repro.service`` — the request-based execution protocol.

The blocking :class:`~repro.api.Backend` seam executes one estimator's
call at a time; this subsystem redesigns execution around explicit
*requests* so work can coalesce, reorder and batch **across** callers::

    from repro.api import Estimator
    from repro.service import EstimatorService, ExecutionRequest

    service = EstimatorService(backend="auto")          # one device, many users
    e1 = Estimator(p1, observable_1)                    # request factories
    e2 = Estimator(p2, observable_2)

    with service.session(name="alice") as session:
        handles = session.submit_many(
            [e1.request_value(state, binding) for state in batch_1]
            + [e2.request_gradient(state, binding) for state in batch_2]
        )
    # planning grouped same-program requests into single batched backend
    # calls, coalesced identical points, and drained through the executor
    values = [handle.result() for handle in handles]

    service.stats.coalesce_rate, service.stats.timings  # telemetry

Executors: ``"inline"`` (deterministic default — bit-for-bit the direct
backend calls), ``"threads"`` (groups overlap; numpy releases the GIL and
the shared denotation cache is single-flight), ``"workers"`` (supervised
worker processes behind the :mod:`repro.service.wire` protocol: liveness
heartbeats, crash/hang detection, bounded restarts, re-dispatch of a dead
worker's groups, degradation to inline when the fleet is unhealthy;
``"processes"`` is its deprecated alias).

Every :class:`~repro.api.Estimator` is itself a thin synchronous client of
a per-instance service (``estimator.service`` / ``estimator.session()``),
so the request protocol is the *only* execution path — not a parallel one.

Failure is part of the protocol (:mod:`repro.service.resilience`):
requests carry deadlines (``timeout=`` on the factories,
``handle.cancel()``), a :class:`RetryPolicy` re-runs failed groups within
a bounded, seeded-backoff budget, and a :class:`CircuitBreaker` degrades
pooled executors to the inline one when the pool itself dies.  The
seedable harness in :mod:`repro.service.faults` (:class:`FaultSchedule`,
:class:`FaultyBackend`, :class:`FaultyExecutor`) makes all of it testable:
inject transient faults within the retry budget and every handle resolves
to the fault-free number; inject beyond it and the failure is a typed
:class:`~repro.errors.ServiceError` while unaffected groups complete.
"""

from repro.service.requests import ExecutionRequest, RequestKind, ResultHandle
from repro.service.planner import ExecutionPlan, RequestGroup, plan, request_cost
from repro.service.executors import (
    InlineExecutor,
    ProcessPoolServiceExecutor,
    ServiceExecutor,
    ThreadPoolServiceExecutor,
    resolve_executor,
)
from repro.service.resilience import (
    CircuitBreaker,
    RetryPolicy,
    SupervisorPolicy,
    deadline_after,
    resolve_breaker,
    resolve_retry,
    resolve_supervisor,
)
from repro.service.faults import (
    FaultSchedule,
    FaultyBackend,
    FaultyExecutor,
    InjectedCrash,
    InjectedFatalFault,
    InjectedFault,
    WorkerFaultPlan,
)
from repro.service.wire import (
    decode_request,
    encode_request,
    request_wire_key,
)
from repro.service.workers import WorkerPoolServiceExecutor, WorkerSupervisor
from repro.service.service import EstimatorService, ServiceStats, Session

__all__ = [
    "CircuitBreaker",
    "EstimatorService",
    "ExecutionPlan",
    "ExecutionRequest",
    "FaultSchedule",
    "FaultyBackend",
    "FaultyExecutor",
    "InjectedCrash",
    "InjectedFatalFault",
    "InjectedFault",
    "InlineExecutor",
    "ProcessPoolServiceExecutor",
    "RequestGroup",
    "RequestKind",
    "ResultHandle",
    "RetryPolicy",
    "ServiceExecutor",
    "ServiceStats",
    "Session",
    "SupervisorPolicy",
    "ThreadPoolServiceExecutor",
    "WorkerFaultPlan",
    "WorkerPoolServiceExecutor",
    "WorkerSupervisor",
    "deadline_after",
    "decode_request",
    "encode_request",
    "plan",
    "request_cost",
    "request_wire_key",
    "resolve_breaker",
    "resolve_executor",
    "resolve_retry",
    "resolve_supervisor",
]
