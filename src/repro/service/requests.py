"""Requests, not calls: the value types of the execution protocol.

The :class:`~repro.api.Backend` protocol is a *blocking, one-estimator-at-
a-time* seam: whoever calls ``value_batch`` decides the batch, and two
callers can never share one.  The service layer replaces the call with a
value — an :class:`ExecutionRequest` carries everything the paper's
execution phase (Section 7) needs to run one readout: the program (or the
compiled derivative multiset(s)), the observable, the input state, the
parameter point, and a scheduling priority.  Submitting a request returns a
:class:`ResultHandle` immediately; the service's planner is then free to
coalesce, reorder and batch requests *across* submitters before anything
executes.

This is the submit → handle → result shape every mainstream estimator API
converged on, and the one representation that survives every later scaling
direction (thread pools today, sharding and remote workers tomorrow)
without another breaking change.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.errors import DeadlineExceededError, SemanticsError
from repro.lang.ast import Program
from repro.lang.parameters import ParameterBinding
from repro.sim.density import DensityState
from repro.sim.statevector import StateVector
from repro.api.backends import ObservableSpec
from repro.service.resilience import deadline_after

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.autodiff.execution import DerivativeProgramSet

__all__ = ["RequestKind", "ExecutionRequest", "ResultHandle"]


class RequestKind(enum.Enum):
    """What a request asks the backend to compute."""

    #: ``tr(O[[P(θ*)]]ρ)`` — one forward readout; resolves to a float.
    VALUE = "value"
    #: One multiset's derivative readout; resolves to a float.
    DERIVATIVE = "derivative"
    #: A whole gradient row (one multiset per parameter); resolves to a
    #: float ndarray of shape ``(len(program_sets),)``.
    GRADIENT = "gradient"


@dataclass(frozen=True)
class ExecutionRequest:
    """One unit of executable work, self-contained and immutable.

    ``program`` carries the forward program of a :attr:`RequestKind.VALUE`
    request; ``program_sets`` carries the compiled derivative multiset(s)
    of a :attr:`RequestKind.DERIVATIVE` (exactly one) or
    :attr:`RequestKind.GRADIENT` (one per parameter of the gradient axis)
    request.  ``priority`` orders draining — higher drains earlier; ties
    preserve round-robin fairness across sessions, then submission order.
    ``deadline`` is an absolute :func:`time.monotonic` instant (the request
    factories accept the relative ``timeout=`` spelling); a request whose
    deadline passes before its group starts executing fails with
    :class:`~repro.errors.DeadlineExceededError` — cooperatively, at
    execution boundaries, never by interrupting a running kernel.
    """

    kind: RequestKind
    observable: ObservableSpec
    state: "DensityState | StateVector"
    binding: ParameterBinding | None = None
    program: Program | None = None
    program_sets: "tuple[DerivativeProgramSet, ...] | None" = None
    priority: int = 0
    deadline: float | None = None

    def __post_init__(self):
        if self.kind is RequestKind.VALUE:
            if self.program is None or self.program_sets is not None:
                raise SemanticsError(
                    "a value request carries exactly a forward program "
                    "(program=..., no program_sets)"
                )
        else:
            # An *empty* tuple is legal for GRADIENT: the gradient of an
            # unparameterized program is an empty row.
            if self.program is not None or self.program_sets is None:
                raise SemanticsError(
                    f"a {self.kind.value} request carries derivative program "
                    "sets (program_sets=..., no forward program)"
                )
            if self.kind is RequestKind.DERIVATIVE and len(self.program_sets) != 1:
                raise SemanticsError(
                    "a derivative request carries exactly one program set; "
                    "use a gradient request for a whole row"
                )

    # -- constructors --------------------------------------------------------

    @classmethod
    def value(
        cls,
        program: Program,
        observable: "ObservableSpec | object",
        state: "DensityState | StateVector",
        binding: ParameterBinding | None = None,
        *,
        priority: int = 0,
        timeout: float | None = None,
    ) -> "ExecutionRequest":
        """A forward-value request for ``tr(O[[P(θ*)]]ρ)``."""
        return cls(
            RequestKind.VALUE,
            ObservableSpec.coerce(observable),
            state,
            binding,
            program=program,
            priority=priority,
            deadline=deadline_after(timeout),
        )

    @classmethod
    def derivative(
        cls,
        program_set: "DerivativeProgramSet",
        observable: "ObservableSpec | object",
        state: "DensityState | StateVector",
        binding: ParameterBinding | None = None,
        *,
        priority: int = 0,
        timeout: float | None = None,
    ) -> "ExecutionRequest":
        """A single-multiset derivative-readout request."""
        return cls(
            RequestKind.DERIVATIVE,
            ObservableSpec.coerce(observable),
            state,
            binding,
            program_sets=(program_set,),
            priority=priority,
            deadline=deadline_after(timeout),
        )

    @classmethod
    def gradient(
        cls,
        program_sets: "Sequence[DerivativeProgramSet]",
        observable: "ObservableSpec | object",
        state: "DensityState | StateVector",
        binding: ParameterBinding | None = None,
        *,
        priority: int = 0,
        timeout: float | None = None,
    ) -> "ExecutionRequest":
        """A whole-gradient-row request (one multiset per parameter)."""
        return cls(
            RequestKind.GRADIENT,
            ObservableSpec.coerce(observable),
            state,
            binding,
            program_sets=tuple(program_sets),
            priority=priority,
            deadline=deadline_after(timeout),
        )


class ResultHandle:
    """The future half of ``submit()``: resolves once the request executes.

    Handles are created by the service; callers only read them.
    :meth:`result` triggers a drain of the owning service's queue when the
    request is still pending (the deterministic inline default executes the
    whole plan right there), then blocks until this request's group has
    been executed — by whichever executor the service was built with.
    """

    __slots__ = (
        "request",
        "_service",
        "_event",
        "_value",
        "_error",
        "_cancel_requested",
        "submitted_at",
        "done_at",
    )

    def __init__(self, request: ExecutionRequest, service):
        self.request = request
        self._service = service
        self._event = threading.Event()
        self._value = None
        self._error: BaseException | None = None
        self._cancel_requested = False
        #: Monotonic instants of creation and resolution — ``done_at -
        #: submitted_at`` is the request's queue-to-result latency, the
        #: number the service benchmarks report percentiles of.
        self.submitted_at = time.monotonic()
        self.done_at: float | None = None

    def done(self) -> bool:
        """Has the request executed (successfully or not)?"""
        return self._event.is_set()

    def cancel(self) -> bool:
        """Ask for the request not to run; ``False`` if already done.

        A request still in the service queue is failed with
        :class:`~repro.errors.CancelledError` immediately.  One already
        planned is cancelled best-effort: the flag is honored at the next
        execution boundary if its group has not started — a group mid-run
        completes (its coalesced siblings want the result), and the handle
        then resolves normally.
        """
        return self._service._cancel(self)

    def cancelled(self) -> bool:
        """Did the request fail with a cancellation?"""
        from repro.errors import CancelledError

        return self.done() and isinstance(self._error, CancelledError)

    def result(self, timeout: float | None = None):
        """The request's result — a float, or a gradient row for
        :attr:`RequestKind.GRADIENT` requests.

        Drains the owning service if this request is still queued, waits up
        to ``timeout`` seconds (forever by default), and re-raises the
        executing backend's exception if the request failed.
        """
        if not self._event.is_set():
            self._service.flush()
        if not self._event.wait(timeout):
            raise DeadlineExceededError(
                f"the {self.request.kind.value} request did not resolve "
                f"within {timeout} seconds"
            )
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The exception the request failed with, or ``None`` on success.

        Only the handle's own wait expiring raises; a request that *failed
        with* a ``TimeoutError`` has it returned like any other error.
        """
        if not self._event.is_set():
            self._service.flush()
        if not self._event.wait(timeout):
            raise DeadlineExceededError(
                f"the {self.request.kind.value} request did not resolve "
                f"within {timeout} seconds"
            )
        return self._error

    # -- service-side completion --------------------------------------------

    def _fulfill(self, value) -> None:
        self._value = value
        self.done_at = time.monotonic()
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self.done_at = time.monotonic()
        self._event.set()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        state = "done" if self.done() else "pending"
        return f"ResultHandle({self.request.kind.value}, {state})"
