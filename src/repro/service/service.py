"""`EstimatorService`: the async, cross-estimator execution engine.

The service owns a queue of :class:`~repro.service.ExecutionRequest`\\ s, a
shared :class:`~repro.api.cache.DenotationCache`, one
:class:`~repro.api.Backend`, and a pluggable
:class:`~repro.service.executors.ServiceExecutor`.  ``submit()`` /
``submit_many()`` return :class:`~repro.service.ResultHandle`\\ s
immediately; a drain — triggered by :meth:`EstimatorService.flush`, or
lazily by the first ``result()`` call — plans the *whole* queue
(:func:`repro.service.planner.plan`: group by compiled work + observable,
coalesce by the denotation-cache point key, order by priority and
round-robin session fairness) and executes the resulting batched backend
calls through the executor.

Because planning spans the queue, work coalesces *across* estimators: two
estimators over the same program, a training loop's loss/accuracy/gradient
phases, or two sessions of different users feed one ``value_batch`` /
``derivative_batch`` call and hit one cache.  On the default inline
executor the drained calls are exactly the calls the thin
:class:`~repro.api.Estimator` client used to make directly — bit for bit.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.semantics import denotational
from repro.api.cache import CacheStats, DenotationCache
from repro.api.backends import Backend
from repro.service.requests import ExecutionRequest, RequestKind, ResultHandle
from repro.service.planner import ExecutionPlan, QueueItem, RequestGroup, plan
from repro.service.executors import ServiceExecutor, _draws_samples, resolve_executor

__all__ = ["ServiceStats", "Session", "EstimatorService"]


@dataclass
class ServiceStats:
    """Telemetry of one service: what the queue did and what planning saved."""

    #: Requests submitted / resolved successfully / failed.
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    #: Requests served by another identical request's computation.
    coalesced: int = 0
    #: Requests that shared their backend call with at least one other.
    batched: int = 0
    #: Batched backend calls executed, and drains that produced them.
    groups: int = 0
    drains: int = 0
    #: Execution seconds per tier: ``"value/pure"``, ``"value/trajectory"``,
    #: ``"value/<backend name>"``, ``"derivative/<backend name>"``, …
    timings: dict = field(default_factory=dict)

    @property
    def coalesce_rate(self) -> float:
        """Fraction of submitted requests served without their own compute."""
        return self.coalesced / self.submitted if self.submitted else 0.0

    @property
    def batch_rate(self) -> float:
        """Fraction of submitted requests that rode a shared backend call."""
        return self.batched / self.submitted if self.submitted else 0.0

    def reset(self) -> None:
        """Zero all counters and timings."""
        self.submitted = self.completed = self.failed = 0
        self.coalesced = self.batched = self.groups = self.drains = 0
        self.timings = {}


class Session:
    """One submitter's view of a service: its fairness lane and priority.

    Sessions exist so *competing* callers can share one service without
    starving each other: the planner drains rank ``n`` of every session
    before rank ``n+1`` of any (round-robin), with ``priority`` breaking
    ties upward.  A session adds its own ``priority`` to every request it
    submits.  Usable as a context manager — leaving the block flushes, so
    every handle taken inside is resolved.
    """

    def __init__(self, service: "EstimatorService", *, name: str | None = None, priority: int = 0):
        self.service = service
        self.name = name if name is not None else f"session-{id(self):x}"
        self.priority = int(priority)
        self._rank = 0

    def submit(self, request: ExecutionRequest) -> ResultHandle:
        """Queue one request; returns its handle immediately."""
        return self.submit_many([request])[0]

    def submit_many(self, requests: Iterable[ExecutionRequest]) -> list[ResultHandle]:
        """Queue a batch of requests atomically; handles in request order.

        The batch enters the queue under consecutive fairness ranks, so a
        competing session's concurrent batch interleaves with it instead of
        landing wholly before or after.
        """
        return self.service._enqueue(self, list(requests))

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.service.flush()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"Session({self.name!r}, priority={self.priority})"


class EstimatorService:
    """Request queue + planner + executor over one :class:`~repro.api.Backend`.

    Parameters
    ----------
    backend:
        The execution scheme draining the queue — an instance or any name
        :func:`repro.api.resolve_backend` accepts (``"auto"``,
        ``"exact-density"``, …).  Defaults to the exact density backend.
    executor:
        Where groups execute — an instance or any name
        :func:`repro.service.resolve_executor` accepts: ``"inline"``
        (deterministic, default), ``"threads"``, ``"processes"``.
    cache:
        The shared :class:`~repro.api.cache.DenotationCache`.  An
        :class:`~repro.api.Estimator` hands its own cache to its
        per-instance service, so direct calls and submitted requests hit
        the same entries.
    coalesce:
        Whether identical pending requests share one computation.  Defaults
        to ``True`` for deterministic backends and ``False`` for sampling
        backends (duplicates must draw independent samples).
    """

    def __init__(
        self,
        backend: "Backend | str | None" = None,
        *,
        executor: "ServiceExecutor | str | None" = None,
        cache: DenotationCache | None = None,
        coalesce: bool | None = None,
    ):
        from repro.api.estimator import resolve_backend

        self.backend = resolve_backend(backend)
        self.executor = resolve_executor(executor)
        self._cache = cache if cache is not None else DenotationCache()
        # Sampling backends (wrapped ones included) must not coalesce:
        # duplicates have to draw independent samples.
        self.coalesce = (
            bool(coalesce) if coalesce is not None else not _draws_samples(self.backend)
        )
        self.stats = ServiceStats()
        self._lock = threading.RLock()
        self._queue: list[QueueItem] = []
        self._seq = 0
        self._default_session = Session(self, name="default")

    # -- submission ----------------------------------------------------------

    def session(self, *, name: str | None = None, priority: int = 0) -> Session:
        """A new fairness lane on this service."""
        return Session(self, name=name, priority=priority)

    def submit(self, request: ExecutionRequest) -> ResultHandle:
        """Queue one request on the default session."""
        return self._default_session.submit(request)

    def submit_many(self, requests: Iterable[ExecutionRequest]) -> list[ResultHandle]:
        """Queue many requests on the default session."""
        return self._default_session.submit_many(requests)

    def _enqueue(self, session: Session, requests: Sequence[ExecutionRequest]) -> list[ResultHandle]:
        handles = [ResultHandle(request, self) for request in requests]
        with self._lock:
            for request, handle in zip(requests, handles):
                if session.priority:
                    request = ExecutionRequest(
                        request.kind,
                        request.observable,
                        request.state,
                        request.binding,
                        program=request.program,
                        program_sets=request.program_sets,
                        priority=request.priority + session.priority,
                    )
                    handle.request = request
                self._queue.append(
                    QueueItem(
                        request=request,
                        handle=handle,
                        session_rank=session._rank,
                        seq=self._seq,
                    )
                )
                session._rank += 1
                self._seq += 1
                self.stats.submitted += 1
        return handles

    @property
    def queue_depth(self) -> int:
        """Requests waiting for the next drain."""
        with self._lock:
            return len(self._queue)

    # -- the cache seam ------------------------------------------------------

    @property
    def cache(self) -> DenotationCache:
        """The shared denotation cache (thread-safe, single-flight)."""
        return self._cache

    @property
    def cache_stats(self) -> CacheStats:
        """Shortcut for ``service.cache.stats``."""
        return self._cache.stats

    def _denote(self, program, state, binding):
        return self._cache.get_or_compute(
            program, state, binding, lambda: denotational.denote(program, state, binding)
        )

    # -- draining ------------------------------------------------------------

    def plan_pending(self) -> ExecutionPlan:
        """Plan the current queue *without* executing (introspection only).

        The queue is left untouched; this answers "what would a drain do" —
        how many groups, how much coalescing — for tests and dashboards.
        """
        with self._lock:
            items = list(self._queue)
        return plan(items, coalesce=self.coalesce)

    def flush(self) -> None:
        """Drain the whole queue through the executor; returns when done.

        Called automatically by the first ``result()`` on a pending handle.
        Concurrent flushes are safe: each drains the snapshot it atomically
        took, and a handle queued in another thread's snapshot simply waits
        for that drain.
        """
        with self._lock:
            if not self._queue:
                return
            items, self._queue = self._queue, []
        execution_plan = plan(items, coalesce=self.coalesce)
        groups = execution_plan.groups
        calls = [group.call() for group in groups]
        with self._lock:
            self.stats.drains += 1
            self.stats.groups += len(groups)
            self.stats.coalesced += execution_plan.coalesced
            self.stats.batched += execution_plan.batched
        try:
            outcomes = self.executor.run(calls, self.backend, self._denote)
        except BaseException as error:
            # Catastrophic executor failure (not a group's own exception —
            # those are captured per group): fail every handle so no caller
            # blocks forever, then re-raise.
            for group in groups:
                self._fail_group(group, error)
            raise
        for group, (status, payload, seconds) in zip(groups, outcomes):
            tier = self._tier_key(group)
            with self._lock:
                self.stats.timings[tier] = self.stats.timings.get(tier, 0.0) + seconds
            if status == "ok":
                self._fulfill_group(group, payload)
            else:
                self._fail_group(group, payload)

    def _tier_key(self, group: RequestGroup) -> str:
        """Telemetry key of a group: its executing tier when the backend
        exposes routing (:meth:`~repro.api.StatevectorBackend.tier_for`),
        its backend name otherwise."""
        if group.kind is RequestKind.VALUE:
            program = group.template.program
            if hasattr(self.backend, "tier_for"):
                return f"value/{self.backend.tier_for(program)}"
            return f"value/{self.backend.name}"
        return f"derivative/{self.backend.name}"

    def _fulfill_group(self, group: RequestGroup, results) -> None:
        count = 0
        for row, raw in zip(group.rows, results):
            for handle in row.handles:
                kind = handle.request.kind
                if kind is RequestKind.VALUE:
                    handle._fulfill(float(raw))
                elif kind is RequestKind.DERIVATIVE:
                    handle._fulfill(float(raw[0]))
                else:
                    handle._fulfill(np.array(raw, dtype=float))
                count += 1
        with self._lock:
            self.stats.completed += count

    def _fail_group(self, group: RequestGroup, error: BaseException) -> None:
        count = 0
        for row in group.rows:
            for handle in row.handles:
                handle._fail(error)
                count += 1
        with self._lock:
            self.stats.failed += count

    def close(self) -> None:
        """Flush the queue, then release the executor's workers."""
        self.flush()
        self.executor.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"EstimatorService(backend={self.backend.name!r}, "
            f"executor={self.executor.name!r}, queue_depth={self.queue_depth})"
        )
