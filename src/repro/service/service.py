"""`EstimatorService`: the async, cross-estimator execution engine.

The service owns a queue of :class:`~repro.service.ExecutionRequest`\\ s, a
shared :class:`~repro.api.cache.DenotationCache`, one
:class:`~repro.api.Backend`, and a pluggable
:class:`~repro.service.executors.ServiceExecutor`.  ``submit()`` /
``submit_many()`` return :class:`~repro.service.ResultHandle`\\ s
immediately; a drain — triggered by :meth:`EstimatorService.flush`, or
lazily by the first ``result()`` call — plans the *whole* queue
(:func:`repro.service.planner.plan`: group by compiled work + observable,
coalesce by the denotation-cache point key, order by priority and
round-robin session fairness) and executes the resulting batched backend
calls through the executor.

Because planning spans the queue, work coalesces *across* estimators: two
estimators over the same program, a training loop's loss/accuracy/gradient
phases, or two sessions of different users feed one ``value_batch`` /
``derivative_batch`` call and hit one cache.  On the default inline
executor the drained calls are exactly the calls the thin
:class:`~repro.api.Estimator` client used to make directly — bit for bit.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import (
    CancelledError,
    DeadlineExceededError,
    ResourceLimitError,
    RetryExhaustedError,
)
from repro.semantics import denotational
from repro.api.cache import CacheStats, DenotationCache
from repro.api.backends import Backend
from repro.service.requests import ExecutionRequest, RequestKind, ResultHandle
from repro.service.planner import (
    ExecutionPlan,
    PlannedRequest,
    QueueItem,
    RequestGroup,
    plan,
    request_cost,
)
from repro.service.executors import (
    InlineExecutor,
    ServiceExecutor,
    _draws_samples,
    resolve_executor,
)
from repro.service.resilience import (
    CircuitBreaker,
    RetryPolicy,
    resolve_breaker,
    resolve_retry,
)

__all__ = ["ServiceStats", "Session", "EstimatorService"]


@dataclass
class ServiceStats:
    """Telemetry of one service: what the queue did and what planning saved."""

    #: Requests submitted / resolved successfully / failed.
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    #: Requests served by another identical request's computation.
    coalesced: int = 0
    #: Requests that shared their backend call with at least one other.
    batched: int = 0
    #: Batched backend calls executed, and drains that produced them.
    groups: int = 0
    drains: int = 0
    #: Group re-executions the retry policy spent (one per group per round).
    retries: int = 0
    #: Handles failed by a blown deadline / by cancellation.
    timeouts: int = 0
    cancelled: int = 0
    #: Drains degraded to the inline executor after a pool-level failure,
    #: and circuit-breaker trips (the permanent swap to inline).
    degraded: int = 0
    trips: int = 0
    #: Worker-pool recovery events (harvested from the executor's
    #: telemetry): groups re-dispatched off a crashed/hung worker, and
    #: worker processes respawned by the supervisor.
    redispatches: int = 0
    worker_restarts: int = 0
    #: Drains forced by a full submission queue (``max_queue_depth``).
    backpressure_flushes: int = 0
    #: Requests refused at admission because the cost model's upper bound
    #: exceeded ``max_cost`` (they fail with ``ResourceLimitError`` and
    #: never reach the queue).
    rejected: int = 0
    #: Failure counts per exception type name (handle failures and
    #: drain-level executor errors alike).
    errors: dict = field(default_factory=dict)
    #: Permanent executor swaps as ``(from_name, to_name)`` pairs.
    executor_transitions: list = field(default_factory=list)
    #: Execution seconds per tier: ``"value/pure"``, ``"value/trajectory"``,
    #: ``"value/<backend name>"``, ``"derivative/<backend name>"``, …
    timings: dict = field(default_factory=dict)
    #: Predicted model flops per tier (the cost model's upper bounds summed
    #: over executed groups) — read next to ``timings`` for a
    #: predicted-vs-actual view of where the service spent its budget.
    predicted: dict = field(default_factory=dict)

    @property
    def coalesce_rate(self) -> float:
        """Fraction of submitted requests served without their own compute."""
        return self.coalesced / self.submitted if self.submitted else 0.0

    @property
    def batch_rate(self) -> float:
        """Fraction of submitted requests that rode a shared backend call."""
        return self.batched / self.submitted if self.submitted else 0.0

    def reset(self) -> None:
        """Zero all counters and timings."""
        self.submitted = self.completed = self.failed = 0
        self.coalesced = self.batched = self.groups = self.drains = 0
        self.retries = self.timeouts = self.cancelled = 0
        self.degraded = self.trips = 0
        self.redispatches = self.worker_restarts = 0
        self.backpressure_flushes = 0
        self.rejected = 0
        self.errors = {}
        self.executor_transitions = []
        self.timings = {}
        self.predicted = {}


class Session:
    """One submitter's view of a service: its fairness lane and priority.

    Sessions exist so *competing* callers can share one service without
    starving each other: the planner drains rank ``n`` of every session
    before rank ``n+1`` of any (round-robin), with ``priority`` breaking
    ties upward.  A session adds its own ``priority`` to every request it
    submits.  Usable as a context manager — leaving the block flushes, so
    every handle taken inside is resolved.
    """

    def __init__(self, service: "EstimatorService", *, name: str | None = None, priority: int = 0):
        self.service = service
        self.name = name if name is not None else f"session-{id(self):x}"
        self.priority = int(priority)
        self._rank = 0

    def submit(self, request: ExecutionRequest) -> ResultHandle:
        """Queue one request; returns its handle immediately."""
        return self.submit_many([request])[0]

    def submit_many(self, requests: Iterable[ExecutionRequest]) -> list[ResultHandle]:
        """Queue a batch of requests atomically; handles in request order.

        The batch enters the queue under consecutive fairness ranks, so a
        competing session's concurrent batch interleaves with it instead of
        landing wholly before or after.
        """
        return self.service._enqueue(self, list(requests))

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.service.flush()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"Session({self.name!r}, priority={self.priority})"


class EstimatorService:
    """Request queue + planner + executor over one :class:`~repro.api.Backend`.

    Parameters
    ----------
    backend:
        The execution scheme draining the queue — an instance or any name
        :func:`repro.api.resolve_backend` accepts (``"auto"``,
        ``"exact-density"``, …).  Defaults to the exact density backend.
    executor:
        Where groups execute — an instance or any name
        :func:`repro.service.resolve_executor` accepts: ``"inline"``
        (deterministic, default), ``"threads"``, ``"workers"`` (the
        supervised worker pool; ``"processes"`` is its deprecated
        alias).
    cache:
        The shared :class:`~repro.api.cache.DenotationCache`.  An
        :class:`~repro.api.Estimator` hands its own cache to its
        per-instance service, so direct calls and submitted requests hit
        the same entries.
    coalesce:
        Whether identical pending requests share one computation.  Defaults
        to ``True`` for deterministic backends and ``False`` for sampling
        backends (duplicates must draw independent samples).
    retry:
        What a drain does when a group's backend call fails with a
        retryable error (:func:`repro.errors.is_retryable`) — a
        :class:`~repro.service.RetryPolicy`, an attempt count, or ``None``
        (the default: fail the group's handles immediately, the PR-5
        behavior).  Only the failed groups re-run; a fault-free drain is
        bit-for-bit unaffected.
    breaker:
        Guard on the *executor* seam: when a thread/process pool itself
        dies mid-drain, the drain degrades to the inline executor (handles
        still resolve), and after ``threshold`` consecutive pool failures
        the breaker trips — the service swaps to inline permanently.
        Takes a :class:`~repro.service.CircuitBreaker`, a threshold,
        ``None``/``True`` (default breaker), or ``False`` (disabled: a
        pool failure fails the drain's handles and re-raises).
    max_queue_depth:
        Bound on the submission queue (``None`` — the default — is
        unbounded, the PR-5 behavior).  A submission that fills the queue
        to this depth triggers a drain *from the submitting call*: the
        storming session pays the flush itself while the planner's
        round-robin fairness still interleaves every waiting session —
        backpressure without starvation.
    max_cost:
        Admission budget in model flops (``None`` — the default — admits
        everything).  A request whose predicted cost
        (:func:`repro.service.planner.request_cost`, the abstract
        interpreter's upper bound) exceeds the budget is *rejected before
        it is queued*: its handle fails with
        :class:`~repro.errors.ResourceLimitError` (final, non-retryable)
        and ``stats.rejected`` counts it.  Admission is per request, so an
        over-budget submission never perturbs its siblings' results.
    """

    def __init__(
        self,
        backend: "Backend | str | None" = None,
        *,
        executor: "ServiceExecutor | str | None" = None,
        cache: DenotationCache | None = None,
        coalesce: bool | None = None,
        retry: "RetryPolicy | int | None" = None,
        breaker: "CircuitBreaker | int | bool | None" = None,
        max_queue_depth: "int | None" = None,
        max_cost: "float | None" = None,
    ):
        from repro.api.estimator import resolve_backend

        self.backend = resolve_backend(backend)
        self.executor = resolve_executor(executor)
        self._cache = cache if cache is not None else DenotationCache()
        # Sampling backends (wrapped ones included) must not coalesce:
        # duplicates have to draw independent samples.
        self.coalesce = (
            bool(coalesce) if coalesce is not None else not _draws_samples(self.backend)
        )
        self.retry = resolve_retry(retry)
        self.breaker = resolve_breaker(breaker)
        if max_queue_depth is not None and int(max_queue_depth) < 1:
            from repro.errors import SemanticsError

            raise SemanticsError("max_queue_depth must be positive (or None)")
        self.max_queue_depth = (
            int(max_queue_depth) if max_queue_depth is not None else None
        )
        if max_cost is not None and float(max_cost) <= 0.0:
            from repro.errors import SemanticsError

            raise SemanticsError("max_cost must be positive (or None)")
        self.max_cost = float(max_cost) if max_cost is not None else None
        self.stats = ServiceStats()
        self._lock = threading.RLock()
        self._queue: list[QueueItem] = []
        self._seq = 0
        #: Last-seen executor telemetry counters, for delta harvesting.
        self._telemetry_marks: dict = {}
        self._default_session = Session(self, name="default")

    # -- submission ----------------------------------------------------------

    def session(self, *, name: str | None = None, priority: int = 0) -> Session:
        """A new fairness lane on this service."""
        return Session(self, name=name, priority=priority)

    def submit(self, request: ExecutionRequest) -> ResultHandle:
        """Queue one request on the default session."""
        return self._default_session.submit(request)

    def submit_many(self, requests: Iterable[ExecutionRequest]) -> list[ResultHandle]:
        """Queue many requests on the default session."""
        return self._default_session.submit_many(requests)

    def _enqueue(self, session: Session, requests: Sequence[ExecutionRequest]) -> list[ResultHandle]:
        handles = [ResultHandle(request, self) for request in requests]
        over_depth = False
        with self._lock:
            for request, handle in zip(requests, handles):
                if session.priority:
                    request = ExecutionRequest(
                        request.kind,
                        request.observable,
                        request.state,
                        request.binding,
                        program=request.program,
                        program_sets=request.program_sets,
                        priority=request.priority + session.priority,
                        deadline=request.deadline,
                    )
                    handle.request = request
                if self.max_cost is not None:
                    predicted = request_cost(request)
                    if predicted > self.max_cost:
                        # Admission control: the cost model's upper bound
                        # says this request would blow the budget, so it
                        # never reaches the queue — its siblings' plan (and
                        # therefore their bits) is exactly what it would
                        # have been had this request never been submitted.
                        self.stats.submitted += 1
                        self.stats.rejected += 1
                        self._fail_handle(
                            handle,
                            ResourceLimitError(
                                f"the {request.kind.value} request's predicted "
                                f"cost ({predicted:.3g} model flops) exceeds "
                                f"the service budget max_cost={self.max_cost:.3g}",
                                predicted_cost=predicted,
                                max_cost=self.max_cost,
                            ),
                        )
                        continue
                self._queue.append(
                    QueueItem(
                        request=request,
                        handle=handle,
                        session_rank=session._rank,
                        seq=self._seq,
                    )
                )
                session._rank += 1
                self._seq += 1
                self.stats.submitted += 1
            over_depth = (
                self.max_queue_depth is not None
                and len(self._queue) >= self.max_queue_depth
            )
        if over_depth:
            # Backpressure: the submitter that filled the queue drains it.
            # The plan's round-robin fairness still interleaves every
            # session's requests, so the storming session pays the wait
            # without starving anybody.
            with self._lock:
                self.stats.backpressure_flushes += 1
            self.flush()
        return handles

    @property
    def queue_depth(self) -> int:
        """Requests waiting for the next drain."""
        with self._lock:
            return len(self._queue)

    # -- the cache seam ------------------------------------------------------

    @property
    def cache(self) -> DenotationCache:
        """The shared denotation cache (thread-safe, single-flight)."""
        return self._cache

    @property
    def cache_stats(self) -> CacheStats:
        """Shortcut for ``service.cache.stats``."""
        return self._cache.stats

    def _denote(self, program, state, binding):
        return self._cache.get_or_compute(
            program, state, binding, lambda: denotational.denote(program, state, binding)
        )

    # -- draining ------------------------------------------------------------

    def plan_pending(self) -> ExecutionPlan:
        """Plan the current queue *without* executing (introspection only).

        The queue is left untouched; this answers "what would a drain do" —
        how many groups, how much coalescing — for tests and dashboards.
        """
        with self._lock:
            items = list(self._queue)
        return plan(items, coalesce=self.coalesce)

    def flush(self) -> None:
        """Drain the whole queue through the executor; returns when done.

        Called automatically by the first ``result()`` on a pending handle.
        Concurrent flushes are safe: each drains the snapshot it atomically
        took, and a handle queued in another thread's snapshot simply waits
        for that drain.

        A drain is a prune → execute → retry loop: before each round,
        cancelled and deadline-expired handles are failed with their typed
        error (cooperative — a running group is never interrupted); after
        each round, groups that failed retryably re-run under the service's
        :class:`~repro.service.RetryPolicy` — only those groups, so their
        coalesced siblings keep the single computation and untouched groups
        never re-execute.  With no retry policy and no expiring handles the
        loop runs exactly once over exactly the planned calls: the
        fault-free path is the PR-5 path, bit for bit.
        """
        with self._lock:
            if not self._queue:
                return
            items, self._queue = self._queue, []
        execution_plan = plan(items, coalesce=self.coalesce)
        groups = execution_plan.groups
        with self._lock:
            self.stats.drains += 1
            self.stats.groups += len(groups)
            self.stats.coalesced += execution_plan.coalesced
            self.stats.batched += execution_plan.batched
        pending = groups
        attempt = 1
        while pending:
            runnable = [
                live
                for live in (self._prune_group(group) for group in pending)
                if live is not None
            ]
            if not runnable:
                return
            outcomes = self._run_groups(runnable)
            retry_next = []
            for group, (status, payload, seconds) in zip(runnable, outcomes):
                tier = self._tier_key(group)
                with self._lock:
                    self.stats.timings[tier] = (
                        self.stats.timings.get(tier, 0.0) + seconds
                    )
                    if attempt == 1:
                        # Predicted-vs-actual telemetry: the model's flop
                        # bound, counted once per group (retries re-spend
                        # time, not prediction).
                        self.stats.predicted[tier] = (
                            self.stats.predicted.get(tier, 0.0)
                            + group.predicted_cost
                        )
                if status == "ok":
                    self._fulfill_group(group, payload)
                elif self._should_retry(payload, attempt):
                    retry_next.append(group)
                else:
                    self._fail_group(group, self._final_error(payload, attempt))
            if not retry_next:
                return
            with self._lock:
                self.stats.retries += len(retry_next)
            delay = self.retry.delay(attempt)
            if delay > 0.0:
                time.sleep(delay)
            pending = retry_next
            attempt += 1

    def _harvest_executor_telemetry(self) -> None:
        """Fold the executor's lifecycle counters into the service stats.

        Executors with a ``telemetry`` mapping (the supervised worker
        pool) expose monotone counters; the service records the deltas
        since its last harvest, keyed per executor instance so a breaker
        swap starts a fresh baseline.
        """
        telemetry = getattr(self.executor, "telemetry", None)
        if not isinstance(telemetry, dict):
            return
        with self._lock:
            marks = self._telemetry_marks.setdefault(id(self.executor), {})
            for source, target in (
                ("redispatches", "redispatches"),
                ("restarts", "worker_restarts"),
            ):
                current = int(telemetry.get(source, 0))
                seen = marks.get(source, 0)
                if current > seen:
                    setattr(
                        self.stats, target, getattr(self.stats, target) + current - seen
                    )
                marks[source] = current

    def _run_groups(self, groups: "list[RequestGroup]") -> list:
        """One execution round; per-group outcomes, or degrade on pool death."""
        calls = [group.call() for group in groups]
        try:
            outcomes = self.executor.run(calls, self.backend, self._denote)
        except (KeyboardInterrupt, SystemExit) as error:
            # Never swallow Ctrl-C / interpreter shutdown: fail the
            # in-flight handles so no caller blocks forever, then let the
            # signal propagate.
            for group in groups:
                self._fail_group(group, error)
            raise
        except BaseException as error:
            if self.breaker is None or isinstance(self.executor, InlineExecutor):
                # Degradation disabled, or nothing to degrade *to*:
                # fail every handle and re-raise (the PR-5 contract).
                for group in groups:
                    self._fail_group(group, error)
                raise
            self._harvest_executor_telemetry()
            return self._degrade(groups, calls, error)
        if self.breaker is not None:
            self.breaker.record_success()
        self._harvest_executor_telemetry()
        return outcomes

    def _degrade(self, groups, calls, error: BaseException) -> list:
        """A pooled executor died mid-drain: re-run the round inline.

        Safe to re-run wholesale — group results are deterministic and the
        single-flight cache absorbs any work the dying pool did finish.
        Reaching the breaker's threshold of consecutive pool failures trips
        it: the service swaps to the inline executor permanently.
        """
        with self._lock:
            self.stats.degraded += 1
            name = type(error).__name__
            self.stats.errors[name] = self.stats.errors.get(name, 0) + 1
        if self.breaker.record_failure():
            old = self.executor
            self.executor = InlineExecutor()
            with self._lock:
                self.stats.trips += 1
                self.stats.executor_transitions.append((old.name, self.executor.name))
            try:
                old.shutdown()
            except Exception:  # a broken pool may refuse even shutdown
                pass
        fallback = InlineExecutor()
        try:
            return fallback.run(calls, self.backend, self._denote)
        except BaseException as inline_error:
            for group in groups:
                self._fail_group(group, inline_error)
            raise

    def _prune_group(self, group: RequestGroup) -> "RequestGroup | None":
        """Fail this group's cancelled/expired handles; the rest may run.

        Returns the group unchanged (same object — the fault-free path
        stays identical) when nothing was pruned, a :meth:`subset` when
        some rows survive, ``None`` when the whole group dropped out.
        """
        now = time.monotonic()

        def doomed(handle: ResultHandle) -> bool:
            deadline = handle.request.deadline
            return handle._cancel_requested or (
                deadline is not None and now >= deadline
            )

        if not any(
            doomed(handle) for row in group.rows for handle in row.handles
        ):
            return group
        live_rows = []
        for row in group.rows:
            live_handles = []
            for handle in row.handles:
                if handle._cancel_requested:
                    with self._lock:
                        self.stats.cancelled += 1
                    self._fail_handle(
                        handle,
                        CancelledError(
                            f"the {handle.request.kind.value} request was "
                            "cancelled before its group executed"
                        ),
                    )
                elif (
                    handle.request.deadline is not None
                    and now >= handle.request.deadline
                ):
                    with self._lock:
                        self.stats.timeouts += 1
                    self._fail_handle(
                        handle,
                        DeadlineExceededError(
                            f"the {handle.request.kind.value} request's "
                            "deadline passed before its group executed"
                        ),
                    )
                else:
                    live_handles.append(handle)
            if live_handles:
                live_rows.append(PlannedRequest(row.request, live_handles))
        if not live_rows:
            return None
        return group.subset(live_rows)

    def _should_retry(self, error: BaseException, attempt: int) -> bool:
        return (
            self.retry is not None
            and attempt < self.retry.attempts
            and self.retry.retryable(error)
        )

    def _final_error(self, error: BaseException, attempt: int) -> BaseException:
        """The error a group's handles fail with once retrying is over.

        A retryable failure that consumed the whole budget is wrapped in
        :class:`~repro.errors.RetryExhaustedError` (the caller should know
        retrying happened and ran out); anything else — including every
        failure when no retry policy is set — passes through unchanged.
        """
        if (
            self.retry is not None
            and self.retry.attempts > 1
            and attempt >= self.retry.attempts
            and self.retry.retryable(error)
        ):
            exhausted = RetryExhaustedError(
                f"the group still failed after {attempt} attempts: {error}",
                attempts=attempt,
                last_error=error,
            )
            exhausted.__cause__ = error
            return exhausted
        return error

    def _tier_key(self, group: RequestGroup) -> str:
        """Telemetry key of a group: its executing tier when the backend
        exposes routing (:meth:`~repro.api.StatevectorBackend.tier_for`),
        its backend name otherwise."""
        if group.kind is RequestKind.VALUE:
            program = group.template.program
            if hasattr(self.backend, "tier_for"):
                return f"value/{self.backend.tier_for(program)}"
            return f"value/{self.backend.name}"
        return f"derivative/{self.backend.name}"

    def _fulfill_group(self, group: RequestGroup, results) -> None:
        count = 0
        for row, raw in zip(group.rows, results):
            for handle in row.handles:
                kind = handle.request.kind
                if kind is RequestKind.VALUE:
                    handle._fulfill(float(raw))
                elif kind is RequestKind.DERIVATIVE:
                    handle._fulfill(float(raw[0]))
                else:
                    handle._fulfill(np.array(raw, dtype=float))
                count += 1
        with self._lock:
            self.stats.completed += count

    def _fail_handle(self, handle: ResultHandle, error: BaseException) -> None:
        handle._fail(error)
        with self._lock:
            self.stats.failed += 1
            name = type(error).__name__
            self.stats.errors[name] = self.stats.errors.get(name, 0) + 1

    def _fail_group(self, group: RequestGroup, error: BaseException) -> None:
        for row in group.rows:
            for handle in row.handles:
                self._fail_handle(handle, error)

    # -- cancellation --------------------------------------------------------

    def _cancel(self, handle: ResultHandle) -> bool:
        """Service half of :meth:`~repro.service.ResultHandle.cancel`."""
        with self._lock:
            if handle.done():
                return False
            removed = False
            for index, item in enumerate(self._queue):
                if item.handle is handle:
                    del self._queue[index]
                    removed = True
                    break
            if not removed:
                # Already snapshotted by a drain in flight: best effort —
                # the flag is honored at the next prune boundary if the
                # handle's group has not started executing.
                handle._cancel_requested = True
                return True
            self.stats.cancelled += 1
        self._fail_handle(
            handle,
            CancelledError(
                f"the {handle.request.kind.value} request was cancelled "
                "while queued"
            ),
        )
        return True

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Flush the queue, then release the executor's workers."""
        self.flush()
        self.executor.shutdown()

    def __enter__(self) -> "EstimatorService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"EstimatorService(backend={self.backend.name!r}, "
            f"executor={self.executor.name!r}, queue_depth={self.queue_depth})"
        )
