"""Supervised remote workers: the crash-tolerant distributed executor.

The thread/process pools of :mod:`repro.service.executors` assume their
workers are *reliable*; this module assumes they are not.  Each worker is
a separate process speaking the length-prefixed wire protocol of
:mod:`repro.service.wire` over a ``multiprocessing`` pipe, and a
:class:`WorkerSupervisor` owns the fleet:

* **liveness** — idle workers are heartbeated (PING/PONG) at a
  configurable interval; busy workers are covered by a per-call time
  budget.  A worker that crashes (its process sentinel fires), hangs
  (call timeout) or violates the protocol (bad frame, unknown request)
  is killed and its slot respawned with bounded exponential backoff —
  the :class:`~repro.service.RetryPolicy` machinery, reused.
* **recovery** — a lost worker's in-flight groups re-dispatch to healthy
  siblings.  Group results are deterministic, so a recovered handle is
  *bit-identical* to the fault-free run — the same invariant the
  service-level retry budget upholds.  Protocol violations are the
  exception: they mean data corruption, so the affected group fails with
  a non-retryable :class:`~repro.errors.WireProtocolError` instead of
  being retried into a silently wrong number.
* **backpressure** — each worker holds at most ``policy.max_inflight``
  groups; the rest wait in plan order, so the planner's round-robin
  session fairness survives the dispatch queue and one storming session
  cannot starve the others.
* **degradation** — when every slot exhausts its restart budget the pool
  raises :class:`~repro.errors.WorkerPoolError` from ``run()``; the
  service's existing degradation path re-runs the drain on the inline
  executor and the :class:`~repro.service.CircuitBreaker` counts the
  fleet failure.

Workers execute with a worker-local :class:`~repro.api.cache.DenotationCache`
(the client's cache cannot cross the process boundary); the client side
compensates with a content-addressed **result store** keyed by
:func:`~repro.service.wire.request_wire_key` rows, so repeated points are
answered without a round trip.  Sampling backends skip the pool entirely
(duplicates must draw independent samples, and pickled generator
snapshots would replay correlated streams) — the same rule every pooled
executor follows.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
from collections import OrderedDict, deque
from multiprocessing.connection import wait as _wait_for
from typing import Mapping

from repro.errors import (
    SemanticsError,
    WireProtocolError,
    WorkerCrashError,
    WorkerPoolError,
    WorkerTimeoutError,
)
from repro.semantics import denotational
from repro.api.cache import DenotationCache, binding_key
from repro.service import wire
from repro.service.executors import ServiceExecutor, _draws_samples, _guarded_run
from repro.service.planner import GroupCall, _state_point_key
from repro.service.resilience import SupervisorPolicy, resolve_supervisor

__all__ = ["WorkerSupervisor", "WorkerPoolServiceExecutor"]


# -- the worker process ------------------------------------------------------


def _apply_fault(plan, rng, call_index: int, phase: str, connection) -> bool:
    """Act on the worker-side fault plan; ``True`` means "reply corrupted"."""
    if plan is None:
        return False
    action = plan.action_for(call_index, phase, rng)
    if action is None:
        return False
    if action == "kill":
        os._exit(9)
    if action == "hang":
        time.sleep(plan.hang_s)
        return False
    # "corrupt": ship a frame that cannot decode.  The client must fail
    # the group with a typed WireProtocolError and kill this worker.
    connection.send_bytes(b"\xde\xad\xbe\xef")
    return True


def _worker_main(connection, backend_bytes: bytes, fault_plan=None) -> None:
    """One worker process: HELLO, then serve frames until SHUTDOWN/EOF.

    The worker owns a private backend (unpickled once) and a private
    :class:`~repro.api.cache.DenotationCache`; artifacts (a group's
    compiled work + observable) are installed once per content digest and
    referenced by EXECUTE frames.  Failures of the *work* travel back as
    ERROR frames (the client re-raises them through the service's retry
    classification); failures of the *worker* are exactly what the
    supervisor exists to detect.
    """
    try:
        backend = pickle.loads(backend_bytes)
        cache = DenotationCache()

        def denote(program, state, binding):
            return cache.get_or_compute(
                program,
                state,
                binding,
                lambda: denotational.denote(program, state, binding),
            )

        rng = fault_plan.rng() if fault_plan is not None else None
        artifacts: dict = {}
        executed = 0
        if fault_plan is not None and fault_plan.exit_on_spawn:
            # Die *before* the HELLO: the supervisor must see this as a
            # spawn failure (restart budget, then a dead slot), not as a
            # healthy worker that crashed on its first dispatch.
            os._exit(3)
        wire.send_frame(
            connection,
            wire.HELLO,
            wire.dumps({"version": wire.WIRE_VERSION, "pid": os.getpid()}),
        )
        while True:
            try:
                message_type, payload = wire.recv_frame(connection)
            except EOFError:
                return  # the client is gone; nothing to answer
            if message_type == wire.SHUTDOWN:
                return
            if message_type == wire.PING:
                wire.send_frame(connection, wire.PONG)
                continue
            if message_type == wire.INSTALL:
                digest, kind, program, program_sets, observable = wire.loads(payload)
                artifacts[digest] = (kind, program, program_sets, observable)
                continue
            if message_type != wire.EXECUTE:
                # A frame the worker cannot serve: die loudly rather than
                # answer wrongly; the supervisor respawns the slot.
                os._exit(4)
            call_index = executed
            executed += 1
            if _apply_fault(fault_plan, rng, call_index, "receive", connection):
                continue
            request_id, digest, inputs = wire.loads(payload)
            start = time.perf_counter()
            artifact = artifacts.get(digest)
            if artifact is None:
                error = WireProtocolError(
                    f"EXECUTE references uninstalled artifact {digest[:12]}…"
                )
                wire.send_frame(
                    connection,
                    wire.ERROR,
                    wire.dumps((request_id, wire.encode_error(error), 0.0)),
                )
                continue
            if _apply_fault(fault_plan, rng, call_index, "execute", connection):
                continue
            kind, program, program_sets, observable = artifact
            call = GroupCall(
                kind=kind,
                program=program,
                program_sets=program_sets,
                observable=observable,
                inputs=inputs,
            )
            status, result, _ = _guarded_run(call, backend, denote)
            seconds = time.perf_counter() - start
            if _apply_fault(fault_plan, rng, call_index, "reply", connection):
                continue
            if status == "ok":
                wire.send_frame(
                    connection, wire.RESULT, wire.dumps((request_id, result, seconds))
                )
            else:
                wire.send_frame(
                    connection,
                    wire.ERROR,
                    wire.dumps((request_id, wire.encode_error(result), seconds)),
                )
    except (KeyboardInterrupt, SystemExit):
        os._exit(5)
    except BaseException:
        # A worker that cannot even report must not linger half-alive.
        os._exit(6)


# -- client-side bookkeeping -------------------------------------------------


class _Worker:
    """One live worker process and the client's view of it."""

    __slots__ = ("slot", "generation", "process", "conn", "installed", "inflight", "last_seen")

    def __init__(self, slot: int, generation: int, process, conn):
        self.slot = slot
        self.generation = generation
        self.process = process
        self.conn = conn
        #: Content digests this worker has been sent an INSTALL for.
        self.installed: set[str] = set()
        #: request_id -> _Dispatch, in dispatch order (dict preserves it).
        self.inflight: dict[int, _Dispatch] = {}
        self.last_seen = time.monotonic()


class _Dispatch:
    """One EXECUTE in flight on one worker."""

    __slots__ = ("unit", "sent_at")

    def __init__(self, unit: "_Unit", sent_at: float):
        self.unit = unit
        self.sent_at = sent_at


class _Unit:
    """One group call moving through the dispatch loop."""

    __slots__ = ("index", "call", "digest", "artifact", "attempts", "results", "pending_rows", "row_keys")

    def __init__(self, index: int, call: GroupCall, digest: str, artifact: bytes):
        self.index = index
        self.call = call
        self.digest = digest
        self.artifact = artifact
        #: EXECUTE dispatches consumed so far (1 + redispatches).
        self.attempts = 0
        #: Per-row results; store-served rows are prefilled.
        self.results: list = [None] * len(call.inputs)
        #: Row indices still needing a worker.
        self.pending_rows: list[int] = list(range(len(call.inputs)))
        #: Content-addressed row keys (``None`` when the store is off).
        self.row_keys: "list | None" = None


class WorkerSupervisor:
    """Fleet lifecycle: spawn, handshake, heartbeat, kill, respawn.

    The supervisor never touches group dispatch — that is the executor's
    loop — it owns *processes*: each slot is (re)spawned through the
    policy's restart budget (bounded attempts with exponential backoff;
    a slot whose spawns keep failing is marked dead), idle workers are
    heartbeated, and retired workers are killed hard and reaped.
    ``telemetry`` counts every lifecycle event for the service's stats.
    """

    def __init__(
        self,
        backend_bytes: bytes,
        *,
        slots: int,
        policy: SupervisorPolicy,
        fault_plans: "Mapping[int, object] | None" = None,
        context=None,
    ):
        if slots < 1:
            raise SemanticsError("a worker supervisor needs at least one slot")
        self._ctx = context if context is not None else multiprocessing.get_context()
        self._backend_bytes = backend_bytes
        self._slots = int(slots)
        self.policy = policy
        self._fault_plans = dict(fault_plans or {})
        self._fleet: dict[int, _Worker] = {}
        self._dead: set[int] = set()
        self._generations: dict[int, int] = {}
        self._spawn_failures: dict[int, int] = {}
        self.telemetry = {
            "spawns": 0,
            "restarts": 0,
            "spawn_failures": 0,
            "crashes": 0,
            "hangs": 0,
            "protocol_errors": 0,
            "heartbeats": 0,
            "dead_slots": 0,
        }

    # -- fleet views ---------------------------------------------------------

    def workers(self) -> "list[_Worker]":
        return list(self._fleet.values())

    def least_loaded(self, capacity: int) -> "_Worker | None":
        """The least-burdened worker with spare capacity, lowest slot first.

        Load is the summed predicted cost of a worker's in-flight groups
        (:attr:`~repro.service.planner.GroupCall.cost`, the planner's
        model-flop bound), so one giant group does not look as cheap as
        one tiny group; in-flight count then slot break ties, which also
        preserves the historical round-robin order when the cost model
        abstains (every cost ``0.0``).
        """
        candidates = [
            worker
            for worker in self._fleet.values()
            if len(worker.inflight) < capacity
        ]
        if not candidates:
            return None

        def load(worker: "_Worker"):
            predicted = sum(
                getattr(dispatch.unit.call, "cost", 0.0)
                for dispatch in worker.inflight.values()
            )
            return (predicted, len(worker.inflight), worker.slot)

        return min(candidates, key=load)

    # -- lifecycle -----------------------------------------------------------

    def ensure_fleet(self) -> "dict[int, _Worker]":
        """Respawn empty slots; raise when the whole fleet is unhealthy.

        A worker found dead while *idle* (no in-flight work) is retired
        silently here; one that dies holding work is the dispatch loop's
        business (it must re-dispatch before respawning).
        """
        for worker in list(self._fleet.values()):
            if not worker.process.is_alive() and not worker.inflight:
                self.retire(worker, "crash")
        for slot in range(self._slots):
            if slot in self._dead or slot in self._fleet:
                continue
            self._spawn(slot)
        if not self._fleet:
            raise WorkerPoolError(
                f"the worker fleet is unhealthy: all {self._slots} slots "
                "exhausted their restart budgets"
            )
        return self._fleet

    def check_liveness(self) -> None:
        """PING idle workers past the heartbeat interval; kill the silent."""
        now = time.monotonic()
        for worker in list(self._fleet.values()):
            if worker.inflight:
                continue  # covered by the per-call timeout
            if now - worker.last_seen < self.policy.heartbeat_interval:
                continue
            self.telemetry["heartbeats"] += 1
            alive = False
            try:
                wire.send_frame(worker.conn, wire.PING)
                if worker.conn.poll(self.policy.heartbeat_timeout):
                    message_type, _ = wire.recv_frame(worker.conn)
                    alive = message_type == wire.PONG
            except (EOFError, OSError, WireProtocolError):
                alive = False
            if alive:
                worker.last_seen = time.monotonic()
            else:
                self.retire(worker, "hang")

    def retire(self, worker: _Worker, reason: str) -> None:
        """Remove a worker from the fleet and kill its process."""
        self._fleet.pop(worker.slot, None)
        if reason in ("crash", "hang", "protocol"):
            counter = {"crash": "crashes", "hang": "hangs", "protocol": "protocol_errors"}
            self.telemetry[counter[reason]] += 1
        self._destroy(worker.process, worker.conn)

    def close(self) -> None:
        """SHUTDOWN the fleet cleanly; terminate whatever lingers."""
        for worker in self._fleet.values():
            try:
                wire.send_frame(worker.conn, wire.SHUTDOWN)
            except Exception:
                pass
        deadline = time.monotonic() + 1.0
        for worker in list(self._fleet.values()):
            worker.process.join(max(0.0, deadline - time.monotonic()))
            self._destroy(worker.process, worker.conn)
        self._fleet.clear()

    # -- spawning ------------------------------------------------------------

    def _spawn(self, slot: int) -> "_Worker | None":
        """Spawn one slot under the restart budget; mark it dead on exhaustion."""
        restart = self.policy.restart
        while self._spawn_failures.get(slot, 0) < restart.attempts:
            failures = self._spawn_failures.get(slot, 0)
            if failures:
                time.sleep(restart.delay(failures))
            worker = self._try_launch(slot)
            if worker is not None:
                self._spawn_failures[slot] = 0
                self._fleet[slot] = worker
                return worker
            self._spawn_failures[slot] = failures + 1
        self._dead.add(slot)
        self.telemetry["dead_slots"] += 1
        return None

    def _try_launch(self, slot: int) -> "_Worker | None":
        generation = self._generations.get(slot, 0)
        self._generations[slot] = generation + 1
        plan = self._fault_plans.get(slot)
        if plan is not None and generation > 0 and not plan.every_generation:
            plan = None
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._backend_bytes, plan),
            daemon=True,
            name=f"repro-worker-{slot}",
        )
        self.telemetry["spawns"] += 1
        if generation:
            self.telemetry["restarts"] += 1
        try:
            process.start()
        except Exception:
            self.telemetry["spawn_failures"] += 1
            parent_conn.close()
            child_conn.close()
            return None
        child_conn.close()
        try:
            if not parent_conn.poll(self.policy.spawn_timeout):
                raise WireProtocolError("no HELLO within the spawn timeout")
            message_type, payload = wire.recv_frame(parent_conn)
            hello = wire.loads(payload)
            if message_type != wire.HELLO or hello.get("version") != wire.WIRE_VERSION:
                raise WireProtocolError("malformed HELLO handshake")
        except (EOFError, OSError, WireProtocolError):
            self.telemetry["spawn_failures"] += 1
            self._destroy(process, parent_conn)
            return None
        return _Worker(slot=slot, generation=generation, process=process, conn=parent_conn)

    @staticmethod
    def _destroy(process, conn) -> None:
        try:
            conn.close()
        except Exception:
            pass
        if process.is_alive():
            process.terminate()
            process.join(1.0)
            if process.is_alive():  # pragma: no cover - stuck in a signal shadow
                process.kill()
                process.join(1.0)
        else:
            process.join(0.1)  # reap the zombie


# -- the executor ------------------------------------------------------------


class WorkerPoolServiceExecutor(ServiceExecutor):
    """Group execution across supervised worker processes (``"workers"``).

    The drain's plan-ordered group calls are dispatched round-robin to
    the least-loaded worker, bounded at ``policy.max_inflight`` per
    worker (backpressure); replies multiplex back through
    ``multiprocessing.connection.wait`` alongside each worker's process
    sentinel, so a crash wakes the loop immediately.  Worker failures map
    onto the :class:`~repro.errors.ServiceError` taxonomy —
    :class:`~repro.errors.WorkerCrashError` /
    :class:`~repro.errors.WorkerTimeoutError` (transient, re-dispatched
    up to ``policy.redispatch_limit`` times, recovered results
    bit-identical) and :class:`~repro.errors.WireProtocolError`
    (non-retryable, the worker is killed) — while fleet-wide death raises
    :class:`~repro.errors.WorkerPoolError`, which the service's breaker
    path degrades to inline.

    ``max_workers=None`` keeps the process pool's skip-pool-on-1-core
    heuristic (a single-core host runs groups inline, cached); an
    explicit count always spawns real processes.  Sampling backends are
    executed inline regardless — duplicates must draw independent
    samples, and a pickled generator snapshot per worker would replay
    correlated streams.
    """

    name = "workers"

    def __init__(
        self,
        max_workers: "int | None" = None,
        *,
        policy: "SupervisorPolicy | None" = None,
        fault_plans: "Mapping[int, object] | None" = None,
        result_store_entries: int = 256,
        context=None,
    ):
        cores = os.cpu_count() or 1
        if max_workers is None:
            self.max_workers = max(1, cores)
            #: The skip-pool heuristic: one core means the fork + pickle
            #: round trip only loses (and loses the shared cache too).
            self._inline = cores <= 1
        else:
            self.max_workers = int(max_workers)
            if self.max_workers < 1:
                raise SemanticsError("the worker pool needs at least one worker")
            self._inline = False
        self.policy = resolve_supervisor(policy)
        self._fault_plans = dict(fault_plans or {})
        if result_store_entries < 0:
            raise SemanticsError("result_store_entries must be non-negative")
        self._store_max = int(result_store_entries)
        self._store: "OrderedDict" = OrderedDict()
        self._ctx = context
        self._supervisor: "WorkerSupervisor | None" = None
        self._backend_id: "int | None" = None
        self._artifact_memo: dict = {}
        self._next_request_id = 0
        self._telemetry = {
            "redispatches": 0,
            "store_hits": 0,
            "inline_fallbacks": 0,
        }
        #: Lifecycle counters of supervisors already shut down — kept so
        #: ``telemetry`` survives ``shutdown()`` (zeroed keys before any
        #: fleet ever spawns).
        self._lifecycle_totals = {
            "spawns": 0,
            "restarts": 0,
            "spawn_failures": 0,
            "crashes": 0,
            "hangs": 0,
            "protocol_errors": 0,
            "heartbeats": 0,
            "dead_slots": 0,
        }
        # Concurrent flushes serialize here: the fleet, the in-flight maps
        # and the result store are single-owner state.
        self._run_lock = threading.Lock()

    # -- telemetry -----------------------------------------------------------

    @property
    def telemetry(self) -> dict:
        """Executor + supervisor lifecycle counters, merged.

        Lifecycle keys are present (zeroed) even before the first pooled
        run, so consumers never need to special-case a fleet that was
        never spawned (inline fallback, 1-core heuristic).
        """
        merged = dict(self._telemetry)
        merged.update(self._lifecycle_totals)
        if self._supervisor is not None:
            for key, count in self._supervisor.telemetry.items():
                merged[key] = merged.get(key, 0) + count
        return merged

    @property
    def supervisor(self) -> "WorkerSupervisor | None":
        """The live fleet supervisor (``None`` until the first pooled run)."""
        return self._supervisor

    # -- the ServiceExecutor seam --------------------------------------------

    def run(self, calls, backend, denote):
        if not calls:
            return []
        if self._inline or _draws_samples(backend):
            self._telemetry["inline_fallbacks"] += 1
            return [_guarded_run(call, backend, denote) for call in calls]
        with self._run_lock:
            supervisor = self._ensure_supervisor(backend)
            return self._drain(supervisor, calls, backend)

    def shutdown(self) -> None:
        if self._supervisor is not None:
            for key, count in self._supervisor.telemetry.items():
                self._lifecycle_totals[key] = (
                    self._lifecycle_totals.get(key, 0) + count
                )
            self._supervisor.close()
            self._supervisor = None
            self._backend_id = None

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"WorkerPoolServiceExecutor(max_workers={self.max_workers})"

    # -- supervisor plumbing -------------------------------------------------

    def _ensure_supervisor(self, backend) -> WorkerSupervisor:
        if self._supervisor is None or self._backend_id != id(backend):
            if self._supervisor is not None:
                self.shutdown()  # folds the fleet's counters into totals
            try:
                backend_bytes = wire.dumps(backend)
            except Exception as error:
                # An unshippable backend is a fleet-level failure: the
                # service degrades this drain to inline and the breaker
                # counts it — graceful, not fatal.
                raise WorkerPoolError(
                    f"backend {getattr(backend, 'name', backend)!r} cannot be "
                    f"shipped to workers: {error}"
                ) from error
            self._supervisor = WorkerSupervisor(
                backend_bytes,
                slots=self.max_workers,
                policy=self.policy,
                fault_plans=self._fault_plans,
                context=self._ctx,
            )
            self._backend_id = id(backend)
        return self._supervisor

    # -- artifacts and the result store --------------------------------------

    def _prepare_unit(self, index: int, call: GroupCall, store_on: bool) -> "_Unit":
        digest, artifact = self._artifact(call)
        unit = _Unit(index, call, digest, artifact)
        if store_on and self._store_max:
            unit.row_keys = [
                (call.kind, digest, binding_key(binding), _state_point_key(state))
                for state, binding in call.inputs
            ]
            still_pending = []
            for row in unit.pending_rows:
                hit = self._store.get(unit.row_keys[row], _MISS)
                if hit is _MISS:
                    still_pending.append(row)
                else:
                    self._store.move_to_end(unit.row_keys[row])
                    unit.results[row] = hit
                    self._telemetry["store_hits"] += 1
            unit.pending_rows = still_pending
        return unit

    def _artifact(self, call: GroupCall) -> "tuple[str, bytes]":
        """Digest + INSTALL payload of a group's work, memoized by identity."""
        observable = call.observable
        if call.kind == "value":
            key = ("value", id(call.program), id(observable.matrix), observable.targets)
        else:
            key = (
                "derivative",
                tuple(id(program_set) for program_set in call.program_sets),
                id(observable.matrix),
                observable.targets,
            )
        hit = self._artifact_memo.get(key)
        if hit is not None:
            return hit[1], hit[2]
        digest = wire.call_digest(
            call.kind, call.program, call.program_sets, observable
        )
        artifact = wire.dumps(
            (digest, call.kind, call.program, call.program_sets, observable)
        )
        # Pin the keyed objects so the id-based key stays valid.
        self._artifact_memo[key] = (
            (call.program, call.program_sets, observable),
            digest,
            artifact,
        )
        return digest, artifact

    def _store_put(self, unit: _Unit, rows: "list[int]") -> None:
        if unit.row_keys is None:
            return
        for row in rows:
            self._store[unit.row_keys[row]] = unit.results[row]
            self._store.move_to_end(unit.row_keys[row])
        while len(self._store) > self._store_max:
            self._store.popitem(last=False)

    # -- the dispatch loop ---------------------------------------------------

    def _drain(self, supervisor: WorkerSupervisor, calls, backend) -> list:
        policy = self.policy
        outcomes: list = [None] * len(calls)
        supervisor.check_liveness()
        pending: "deque[_Unit]" = deque()
        for index, call in enumerate(calls):
            unit = self._prepare_unit(index, call, store_on=True)
            if not unit.pending_rows:
                outcomes[index] = ("ok", unit.results, 0.0)
            else:
                pending.append(unit)
        while pending or any(worker.inflight for worker in supervisor.workers()):
            supervisor.ensure_fleet()
            while pending:
                worker = supervisor.least_loaded(policy.max_inflight)
                if worker is None:
                    break
                self._dispatch(supervisor, worker, pending.popleft(), outcomes, pending)
            busy = [worker for worker in supervisor.workers() if worker.inflight]
            if not busy:
                continue
            waitables = []
            for worker in busy:
                waitables.append(worker.conn)
                waitables.append(worker.process.sentinel)
            ready = _wait_for(waitables, self._wait_timeout(busy))
            for worker in busy:
                if worker.slot not in supervisor._fleet:
                    continue  # already retired this round
                if worker.conn in ready:
                    self._pump(supervisor, worker, outcomes, pending)
                elif worker.process.sentinel in ready:
                    self._worker_lost(supervisor, worker, outcomes, pending, "crash")
            self._check_hangs(supervisor, outcomes, pending)
        return outcomes

    def _wait_timeout(self, busy: "list[_Worker]") -> float:
        call_timeout = self.policy.call_timeout
        if call_timeout is None:
            return 0.2
        now = time.monotonic()
        nearest = min(
            dispatch.sent_at + call_timeout
            for worker in busy
            for dispatch in worker.inflight.values()
        )
        return max(0.0, min(0.2, nearest - now))

    def _dispatch(self, supervisor, worker, unit, outcomes, pending) -> None:
        request_id = self._next_request_id
        self._next_request_id += 1
        unit.attempts += 1
        if unit.attempts > 1:
            self._telemetry["redispatches"] += 1
        worker.inflight[request_id] = _Dispatch(unit, time.monotonic())
        inputs = [unit.call.inputs[row] for row in unit.pending_rows]
        try:
            if unit.digest not in worker.installed:
                wire.send_frame(worker.conn, wire.INSTALL, unit.artifact)
                worker.installed.add(unit.digest)
            wire.send_frame(
                worker.conn,
                wire.EXECUTE,
                wire.dumps((request_id, unit.digest, inputs)),
            )
        except (OSError, ValueError, EOFError):
            # Dead pipe at dispatch: the in-flight map already holds the
            # unit, so the crash path re-dispatches or fails it uniformly.
            self._worker_lost(supervisor, worker, outcomes, pending, "crash")
            return
        worker.last_seen = time.monotonic()

    def _pump(self, supervisor, worker, outcomes, pending) -> None:
        """Drain every reply a worker has queued up."""
        try:
            while worker.conn.poll(0):
                message_type, payload = wire.recv_frame(worker.conn)
                now = time.monotonic()
                if message_type == wire.PONG:
                    worker.last_seen = now
                    continue
                if message_type == wire.RESULT:
                    request_id, results, seconds = wire.loads(payload)
                    dispatch = worker.inflight.pop(request_id, None)
                    if dispatch is None:
                        raise WireProtocolError(
                            f"worker answered unknown request {request_id}"
                        )
                    unit = dispatch.unit
                    if len(results) != len(unit.pending_rows):
                        worker.inflight[request_id] = dispatch
                        raise WireProtocolError(
                            f"worker answered {len(results)} rows for a "
                            f"{len(unit.pending_rows)}-row request"
                        )
                    for row, value in zip(unit.pending_rows, results):
                        unit.results[row] = value
                    self._store_put(unit, unit.pending_rows)
                    outcomes[unit.index] = ("ok", unit.results, seconds)
                    worker.last_seen = now
                    continue
                if message_type == wire.ERROR:
                    request_id, error_bytes, seconds = wire.loads(payload)
                    dispatch = worker.inflight.pop(request_id, None)
                    if dispatch is None:
                        raise WireProtocolError(
                            f"worker answered unknown request {request_id}"
                        )
                    error = wire.decode_error(error_bytes)
                    outcomes[dispatch.unit.index] = ("error", error, seconds)
                    worker.last_seen = now
                    continue
                raise WireProtocolError(
                    f"unexpected frame type {message_type} from a worker"
                )
        except (EOFError, OSError):
            self._worker_lost(supervisor, worker, outcomes, pending, "crash")
        except WireProtocolError as error:
            self._protocol_violation(supervisor, worker, error, outcomes, pending)

    def _protocol_violation(self, supervisor, worker, error, outcomes, pending) -> None:
        """A corrupting worker: kill it; its oldest in-flight group fails
        non-retryably (the garbage is most plausibly its reply), the rest
        re-dispatch as crash casualties."""
        dispatches = sorted(worker.inflight.values(), key=lambda d: d.sent_at)
        worker.inflight.clear()
        supervisor.retire(worker, "protocol")
        if dispatches:
            victim = dispatches[0]
            outcomes[victim.unit.index] = (
                "error",
                WireProtocolError(
                    f"worker {worker.slot} violated the wire protocol: {error}"
                ),
                time.monotonic() - victim.sent_at,
            )
            self._recover(supervisor, dispatches[1:], outcomes, pending, "crash")

    def _worker_lost(self, supervisor, worker, outcomes, pending, reason) -> None:
        """A crashed or hung worker: kill, then re-dispatch its work."""
        dispatches = sorted(worker.inflight.values(), key=lambda d: d.sent_at)
        worker.inflight.clear()
        supervisor.retire(worker, reason)
        self._recover(supervisor, dispatches, outcomes, pending, reason)

    def _recover(self, supervisor, dispatches, outcomes, pending, reason) -> None:
        requeue = []
        for dispatch in dispatches:
            unit = dispatch.unit
            if unit.attempts > self.policy.redispatch_limit:
                if reason == "hang":
                    error = WorkerTimeoutError(
                        f"the group exceeded the {self.policy.call_timeout}s "
                        f"call timeout on {unit.attempts} worker(s)"
                    )
                else:
                    error = WorkerCrashError(
                        f"{unit.attempts} worker(s) died executing the group"
                    )
                outcomes[unit.index] = (
                    "error",
                    error,
                    time.monotonic() - dispatch.sent_at,
                )
            else:
                requeue.append(unit)
        pending.extendleft(reversed(requeue))

    def _check_hangs(self, supervisor, outcomes, pending) -> None:
        call_timeout = self.policy.call_timeout
        if call_timeout is None:
            return
        now = time.monotonic()
        for worker in supervisor.workers():
            if any(
                now - dispatch.sent_at > call_timeout
                for dispatch in worker.inflight.values()
            ):
                self._worker_lost(supervisor, worker, outcomes, pending, "hang")


_MISS = object()
