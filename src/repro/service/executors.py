"""Pluggable executors: how an :class:`~repro.service.EstimatorService` drains.

The planner decides *what* runs together (grouped, coalesced backend
calls); the executor decides *where*:

* :class:`InlineExecutor` — groups run sequentially on the draining
  thread, in plan order.  Deterministic, zero overhead, and bit-for-bit
  identical to calling the backend directly: this is the default, and the
  mode every existing ``Estimator`` entry point keeps its arithmetic on.
* :class:`ThreadPoolServiceExecutor` — groups run concurrently on a
  ``ThreadPoolExecutor``.  Safe because the hot path is numpy releasing
  the GIL (the gate contractions, the batched expectation kernels), and
  because both the denotation cache (single-flight, see
  :mod:`repro.api.cache`) and the service's own bookkeeping are
  lock-guarded.  Workers share the service's cached ``denote`` — a
  thread, unlike a process, hits the same cache as everyone else.
* ``"workers"`` (:class:`~repro.service.workers.WorkerPoolServiceExecutor`,
  lazily resolved) — groups cross a wire protocol to *supervised* worker
  processes: heartbeats, crash/hang detection, bounded restarts and
  re-dispatch, degrading to inline when the whole fleet is unhealthy.
  This is the executor that treats workers as unreliable — because remote
  ones are.
* :class:`ProcessPoolServiceExecutor` — the retired plain process pool
  (the ``"processes"`` spelling now resolves to the worker pool with a
  deprecation warning; the class remains for direct construction).

Every executor maps :class:`~repro.service.planner.GroupCall` payloads to
``(status, payload, seconds)`` triples — one group's failure fails only
that group's handles, and the per-group wall time feeds the service's
per-tier telemetry.
"""

from __future__ import annotations

import abc
import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence

from repro.errors import SemanticsError
from repro.api.backends import Backend, _plain_denote
from repro.api.parallel import _chunked_clones
from repro.service.planner import GroupCall

__all__ = [
    "ServiceExecutor",
    "InlineExecutor",
    "ThreadPoolServiceExecutor",
    "ProcessPoolServiceExecutor",
    "resolve_executor",
    "EXECUTOR_SPELLINGS",
]

#: One executed group: ("ok", results, seconds) or ("error", exception, seconds).
GroupOutcome = tuple


def _draws_samples(backend) -> bool:
    """Does this backend — or any backend it wraps — draw random samples?

    Coalescing identical requests is only sound when duplicates would have
    produced the identical number; a sampling backend's duplicates must
    draw *independent* samples instead.  Wrappers (``ParallelBackend``,
    ``ThreadPoolBackend``) expose their wrapped backend as ``inner``, the
    statevector tiers their demotion target as ``fallback`` — both are
    probed recursively.
    """
    if hasattr(backend, "rng"):
        return True
    for attribute in ("inner", "fallback"):
        nested = getattr(backend, attribute, None)
        if isinstance(nested, Backend) and _draws_samples(nested):
            return True
    return False


def _call_backends(backend: Backend, count: int) -> "list[Backend] | None":
    """One backend per group call, with independent RNG streams.

    Concurrent groups over a stochastic backend must not share one
    generator (unsynchronized draws between threads) nor replay identical
    snapshots (pickled processes) — the same correlated-samples hazard
    :func:`repro.api.parallel._chunked_clones` documents.  A backend that
    exposes its generator is cloned per group; one that draws samples only
    through a wrapper the cloner cannot reach returns ``None`` — the caller
    must then drain sequentially.  Deterministic backends are shared as-is.
    """
    if hasattr(backend, "rng"):
        return _chunked_clones(backend, count)
    if _draws_samples(backend):
        return None
    return [backend] * count


def _guarded_run(call: GroupCall, backend: Backend, denote) -> GroupOutcome:
    """Run one group call, capturing its outcome and wall time."""
    start = time.perf_counter()
    try:
        results = call.run(backend, denote)
    except Exception as error:
        return ("error", error, time.perf_counter() - start)
    return ("ok", results, time.perf_counter() - start)


class ServiceExecutor(abc.ABC):
    """Execute a drain's group calls; return outcomes in plan order."""

    #: Human-readable executor identifier (used in stats and reprs).
    name: str = "abstract"

    @abc.abstractmethod
    def run(
        self, calls: Sequence[GroupCall], backend: Backend, denote: Callable
    ) -> list[GroupOutcome]:
        """Execute every call; outcome ``i`` belongs to ``calls[i]``."""

    def shutdown(self) -> None:
        """Release worker resources (re-created lazily on next use)."""

    def __enter__(self) -> "ServiceExecutor":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"{type(self).__name__}()"


class InlineExecutor(ServiceExecutor):
    """Sequential, deterministic draining on the calling thread (default)."""

    name = "inline"

    def run(self, calls, backend, denote):
        return [_guarded_run(call, backend, denote) for call in calls]


class ThreadPoolServiceExecutor(ServiceExecutor):
    """Concurrent group execution on a lazily-built thread pool.

    ``max_workers`` defaults to the host's CPU count: the parallelism is
    real (numpy releases the GIL on the contraction kernels), and threads
    share the service's denotation cache — concurrent groups that meet on
    the same ``(program, binding, state)`` single-flight through it.
    """

    name = "threads"

    def __init__(self, max_workers: int | None = None):
        self.max_workers = (
            int(max_workers) if max_workers is not None else (os.cpu_count() or 1)
        )
        if self.max_workers < 1:
            raise SemanticsError("the thread-pool executor needs at least one worker")
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def run(self, calls, backend, denote):
        if len(calls) == 1:  # nothing to overlap; skip the dispatch hop
            return [_guarded_run(calls[0], backend, denote)]
        backends = _call_backends(backend, len(calls))
        if backends is None:  # wrapped sampler: no safe per-group streams
            return [_guarded_run(call, backend, denote) for call in calls]
        pool = self._ensure_pool()
        futures = [
            pool.submit(_guarded_run, call, clone, denote)
            for call, clone in zip(calls, backends)
        ]
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"ThreadPoolServiceExecutor(max_workers={self.max_workers})"


def _process_run(call: GroupCall, backend: Backend) -> GroupOutcome:
    """Module-level worker (pickled by reference): plain uncached denote."""
    return _guarded_run(call, backend, _plain_denote)


class ProcessPoolServiceExecutor(ServiceExecutor):
    """Group execution across worker processes.

    .. deprecated::
        Superseded by the supervised worker pool
        (:class:`~repro.service.workers.WorkerPoolServiceExecutor`), which
        adds crash detection, restarts, re-dispatch and heartbeats on top
        of the same process isolation; the ``"processes"`` registry
        spelling now resolves there.  This class stays importable and
        functional for direct construction, but a dying
        ``ProcessPoolExecutor`` still takes the whole drain with it — the
        failure mode the worker pool was built to survive.

    The service's cached ``denote`` cannot cross the process boundary, so
    workers simulate uncached (exactly the :class:`~repro.api.ParallelBackend`
    trade-off); results flow back pickled.  Prefer the thread pool unless
    groups are dominated by fresh heavy simulation and cores are plentiful.
    """

    name = "processes"

    def __init__(self, max_workers: int | None = None):
        self.max_workers = (
            int(max_workers) if max_workers is not None else (os.cpu_count() or 1)
        )
        if self.max_workers < 1:
            raise SemanticsError("the process-pool executor needs at least one worker")
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def run(self, calls, backend, denote):
        if len(calls) == 1:
            # A single group gains nothing from the fork + pickle round
            # trip — and inline execution keeps the cached denote.
            return [_guarded_run(calls[0], backend, denote)]
        backends = _call_backends(backend, len(calls))
        if backends is None:  # wrapped sampler: no safe per-group streams
            return [_guarded_run(call, backend, denote) for call in calls]
        pool = self._ensure_pool()
        futures = [
            pool.submit(_process_run, call, clone)
            for call, clone in zip(calls, backends)
        ]
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"ProcessPoolServiceExecutor(max_workers={self.max_workers})"


def _worker_pool_factory() -> ServiceExecutor:
    """Lazy factory for the supervised worker pool (avoids the circular
    import: :mod:`repro.service.workers` imports this module)."""
    from repro.service.workers import WorkerPoolServiceExecutor

    return WorkerPoolServiceExecutor()


def _deprecated_processes_factory() -> ServiceExecutor:
    """The retired ``"processes"`` spelling, redirected to the worker pool.

    The supervised pool subsumes the plain process pool — same process
    isolation, plus crash/hang detection, restarts and re-dispatch — and
    keeps the skip-pool-on-1-core heuristic, so every reason to spell
    ``"processes"`` is served better by ``"workers"``.
    """
    warnings.warn(
        "the 'processes' executor is deprecated: it now resolves to the "
        "supervised worker pool — spell it 'workers'",
        DeprecationWarning,
        stacklevel=3,
    )
    from repro.service.workers import WorkerPoolServiceExecutor

    return WorkerPoolServiceExecutor()


#: Canonical spelling -> (aliases, factory); resolution and the error
#: message both read this, so neither can drift (the `_BACKEND_REGISTRY`
#: convention of :mod:`repro.api.estimator`).
_EXECUTOR_REGISTRY: "dict[str, tuple[tuple[str, ...], Callable[[], ServiceExecutor]]]" = {
    "inline": ((), InlineExecutor),
    "threads": (("thread-pool", "thread"), ThreadPoolServiceExecutor),
    "workers": (("worker-pool", "remote"), _worker_pool_factory),
    "processes": (("process-pool", "process"), _deprecated_processes_factory),
}

#: Canonical spelling -> aliases (the registry's public read-only view).
EXECUTOR_SPELLINGS: dict[str, tuple[str, ...]] = {
    canonical: aliases for canonical, (aliases, _) in _EXECUTOR_REGISTRY.items()
}


def resolve_executor(executor: "ServiceExecutor | str | None") -> ServiceExecutor:
    """Turn an executor spec — an instance, a name, or ``None`` — into one.

    ``None`` defaults to the deterministic :class:`InlineExecutor`.
    """
    if executor is None:
        return InlineExecutor()
    if isinstance(executor, ServiceExecutor):
        return executor
    name = str(executor).lower()
    for canonical, (aliases, factory) in _EXECUTOR_REGISTRY.items():
        if name == canonical or name in aliases:
            return factory()
    spellings = ", ".join(
        repr(canonical) + (f" (aliases {', '.join(map(repr, aliases))})" if aliases else "")
        for canonical, aliases in EXECUTOR_SPELLINGS.items()
    )
    raise SemanticsError(
        f"unknown executor {executor!r}; expected a ServiceExecutor instance "
        f"or one of {spellings}"
    )
