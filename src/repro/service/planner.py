"""The ``plan()`` step: queued requests → coalesced, batched backend calls.

Planning does two things the blocking ``Backend`` protocol structurally
could not:

* **grouping** — requests that share the same compiled work (the same
  forward program, or the same tuple of derivative multisets) and the same
  observable become *one* ``value_batch`` / ``derivative_batch`` call, so
  batch-axis kernels (the statevector tier's broadcasted contractions, the
  trajectory tier's branch stacks) are fed across submitters — across
  estimators, sessions and training phases — not just within one call;
* **coalescing** — two requests whose group *and* evaluation point agree
  (the same ``(binding, input state)`` under the
  :mod:`repro.api.cache` key convention) are computed once; the duplicate
  attaches its handle to the first.  Coalescing is only sound for
  deterministic backends — the service disables it when the backend draws
  samples — and is bit-for-bit invisible there: a duplicate batch row would
  have produced the identical number.

Request order within a group is the fairness policy: higher priority
first, then round-robin across sessions (the first request of every
session outranks the second of any), then submission order.  *Group* order
is the throughput policy: groups are scheduled largest-predicted-cost
first (:func:`repro.analysis.cost.cost_report`), so the expensive batched
calls start before the cheap ones and a pool executor's slots stay busy —
per-group results are deterministic, so reordering groups never changes
any handle's bits.  Everything remains deterministic: the inline executor
replays exactly this order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Hashable, Sequence

from repro.analysis._memo import IdentityMemo
from repro.analysis.cost import cost_report
from repro.sim.density import DensityState
from repro.sim.statevector import StateVector
from repro.api.backends import Backend, ObservableSpec, _plain_denote
from repro.api.cache import binding_key
from repro.service.requests import ExecutionRequest, RequestKind, ResultHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lang.parameters import ParameterBinding

__all__ = [
    "QueueItem",
    "PlannedRequest",
    "RequestGroup",
    "GroupCall",
    "ExecutionPlan",
    "plan",
    "request_cost",
]


#: Per-request cost memo.  ``request_cost`` runs at least twice per request
#: object on a budgeted service — once at admission, once when ``plan``
#: prices the row — and derivative requests walk whole multisets, so the
#: repeat must be a single dict probe.  Keyed on request identity (requests
#: are frozen) and weakref-validated, dropping entries with their requests.
_REQUEST_COST_MEMO: IdentityMemo[float] = IdentityMemo(limit=4096)


def request_cost(request: ExecutionRequest) -> float:
    """The cost model's flop upper bound for serving one request.

    VALUE requests cost one routed-tier pass of their program on the
    request's own register; DERIVATIVE/GRADIENT requests sum the members of
    their multisets on the ancilla-extended register.  Memoized per request
    identity (and per program identity underneath), so the scheduling hot
    path pays a dict probe.  A program the model cannot analyze costs
    ``0.0`` — scheduling must never fail on an exotic request, it just
    stops prioritizing it.
    """
    cached = _REQUEST_COST_MEMO.get(request)
    if cached is not None:
        return cached
    return _REQUEST_COST_MEMO.put(request, _compute_request_cost(request))


def _compute_request_cost(request: ExecutionRequest) -> float:
    try:
        layout = request.state.layout
        if request.kind is RequestKind.VALUE:
            return cost_report(request.program, layout=layout).predicted_cost
        total = 0.0
        for program_set in request.program_sets:
            dims = {name: int(dim) for name, dim in zip(layout.names, layout.dims)}
            dims.setdefault(program_set.ancilla, 2)
            for member in program_set.nonaborting_programs():
                total += cost_report(member, dims=dims).predicted_cost
        return total
    except Exception:  # pragma: no cover - analysis must never break planning
        return 0.0


def _state_point_key(state: "DensityState | StateVector") -> Hashable:
    """Value key of an input state, disjoint between representations.

    A pure ``StateVector`` and its density lift are kept distinct on
    purpose: they take different arithmetic paths through the backends, and
    coalescing must never change a single bit of anybody's result.
    """
    if isinstance(state, StateVector):
        return ("sv", state.layout.names, state.layout.dims, state.amplitudes.tobytes())
    return ("rho", state.layout.names, state.layout.dims, state.matrix.tobytes())


def group_key(request: ExecutionRequest) -> Hashable:
    """Which batched backend call a request belongs to.

    Programs and multisets are keyed by identity (the cache convention —
    the group pins the objects through its requests), the observable by its
    matrix object and targets.  A ``DERIVATIVE`` and a ``GRADIENT`` request
    over the *same* multiset tuple share a group: both are rows of one
    ``derivative_batch`` call.
    """
    if request.kind is RequestKind.VALUE:
        work = ("value", id(request.program))
    else:
        work = ("derivative", tuple(id(s) for s in request.program_sets))
    return (work, id(request.observable.matrix), request.observable.targets)


def coalesce_key(request: ExecutionRequest) -> Hashable:
    """The evaluation point within a group: ``(binding, state)`` by value."""
    return (binding_key(request.binding), _state_point_key(request.state))


@dataclass
class QueueItem:
    """One submitted request waiting in the service queue."""

    request: ExecutionRequest
    handle: ResultHandle
    #: Position of this request within its session (drives round-robin
    #: fairness: rank 0 of every session drains before rank 1 of any).
    session_rank: int
    #: Global submission sequence number (the final tiebreaker).
    seq: int

    @property
    def sort_key(self):
        return (-self.request.priority, self.session_rank, self.seq)


@dataclass
class PlannedRequest:
    """A group row: one evaluation point and every handle awaiting it."""

    request: ExecutionRequest
    handles: list[ResultHandle] = field(default_factory=list)
    #: The cost model's flop upper bound for this row (set by ``plan``).
    cost: float = 0.0


@dataclass
class RequestGroup:
    """One batched backend call and the requests it serves, in batch order."""

    key: Hashable
    kind: RequestKind
    rows: list[PlannedRequest] = field(default_factory=list)

    @property
    def template(self) -> ExecutionRequest:
        return self.rows[0].request

    @property
    def request_count(self) -> int:
        """Requests served, coalesced duplicates included."""
        return sum(len(row.handles) for row in self.rows)

    @property
    def predicted_cost(self) -> float:
        """The summed row costs: what executing this batched call may charge."""
        return sum(row.cost for row in self.rows)

    def subset(self, rows: "list[PlannedRequest]") -> "RequestGroup":
        """This group restricted to ``rows`` (deadline/cancellation pruning
        drops batch rows without disturbing the surviving ones' order)."""
        return RequestGroup(key=self.key, kind=self.kind, rows=rows)

    def call(self) -> "GroupCall":
        """The executable (and picklable) payload of this group."""
        template = self.template
        return GroupCall(
            kind=("value" if self.kind is RequestKind.VALUE else "derivative"),
            program=template.program,
            program_sets=template.program_sets,
            observable=template.observable,
            inputs=[(row.request.state, row.request.binding) for row in self.rows],
            cost=self.predicted_cost,
        )


@dataclass
class GroupCall:
    """The execution payload of one group: backend-call arguments only.

    Deliberately free of handles and service references so a process-pool
    executor can pickle it to a worker; ``run`` is the single place a
    group's backend method is chosen.
    """

    kind: str  # "value" | "derivative"
    program: object
    program_sets: "tuple | None"
    observable: ObservableSpec
    inputs: "list[tuple[DensityState | StateVector, ParameterBinding | None]]"
    #: The group's predicted flop cost (scheduling metadata: worker dispatch
    #: balances by it; not part of the wire artifact's content key).
    cost: float = 0.0

    def run(self, backend: Backend, denote: Callable = _plain_denote):
        """Execute the batched call; returns the raw per-row results."""
        if self.kind == "value":
            return backend.value_batch(
                self.program, self.observable, self.inputs, denote=denote
            )
        return backend.derivative_batch(
            list(self.program_sets), self.observable, self.inputs, denote=denote
        )


@dataclass
class ExecutionPlan:
    """The ordered groups of one drain, plus what planning saved."""

    groups: list[RequestGroup]
    #: Requests served by another identical request's computation.
    coalesced: int = 0
    #: Requests planned in total (coalesced ones included).
    requests: int = 0

    @property
    def batched(self) -> int:
        """Requests that shared their backend call with at least one other."""
        return sum(
            group.request_count
            for group in self.groups
            if group.request_count > 1
        )


def plan(
    items: Sequence[QueueItem], *, coalesce: bool = True, order_by_cost: bool = True
) -> ExecutionPlan:
    """Order, group and coalesce a queue snapshot into an execution plan.

    ``coalesce=False`` (stochastic backends) keeps every request as its own
    batch row — duplicates must draw independent samples — while grouping
    still applies: a sampling backend's ``*_batch`` default runs its rows
    sequentially through the same readout code a per-call loop would.

    ``order_by_cost=True`` schedules groups largest-predicted-cost first
    (ties keep fairness order); per-group results are deterministic, so the
    reordering is invisible in every handle's bits.
    """
    ordered = sorted(items, key=lambda item: item.sort_key)
    groups: dict[Hashable, RequestGroup] = {}
    points: dict[tuple[Hashable, Hashable], PlannedRequest] = {}
    coalesced = 0
    for item in ordered:
        key = group_key(item.request)
        group = groups.get(key)
        if group is None:
            group = groups[key] = RequestGroup(key=key, kind=item.request.kind)
        row = None
        if coalesce:
            point = (key, coalesce_key(item.request))
            row = points.get(point)
            # DERIVATIVE and GRADIENT rows resolve to different shapes from
            # the same batch row, so they may share one; VALUE only matches
            # VALUE (the group key already separates the two families).
            if row is None:
                points[point] = row = PlannedRequest(item.request)
                row.cost = request_cost(item.request)
                group.rows.append(row)
            else:
                coalesced += 1
        else:
            row = PlannedRequest(item.request)
            row.cost = request_cost(item.request)
            group.rows.append(row)
        row.handles.append(item.handle)
    ordered_groups = list(groups.values())
    if order_by_cost:
        # Stable sort: equal-cost groups keep the fairness order above.
        ordered_groups.sort(key=lambda group: -group.predicted_cost)
    return ExecutionPlan(
        groups=ordered_groups, coalesced=coalesced, requests=len(ordered)
    )
