"""Seedable fault injection: *prove* failure behavior instead of hoping.

A verifier has to reason about both the presence and the absence of bugs;
the resilience layer likewise needs evidence for both directions — that
transient faults within the retry budget are invisible (every handle
resolves to the fault-free number), and that faults beyond it fail with
*typed* errors while unaffected groups still complete.  This module makes
failure reproducible enough to assert:

* :class:`FaultSchedule` — a thread-safe decision stream: scripted
  (crash-on-Nth-call), seeded-probabilistic (iid rates per call), or a
  per-group transient *burst* (the first ``n`` calls of each distinct
  work unit fail, then it heals — the shape that encodes "within/beyond
  the retry budget" exactly).  Every injection is recorded in
  ``schedule.injected`` for assertions and telemetry.
* :class:`FaultyBackend` — wraps any :class:`~repro.api.Backend`;
  consults the schedule once per (batched) backend call — i.e. once per
  planned group per attempt — and injects a transient/fatal exception or
  a delay before delegating.  Transparent otherwise: ``tier_for``,
  ``rng`` (sampling detection) and every other attribute pass through to
  the wrapped backend.
* :class:`FaultyExecutor` — wraps a
  :class:`~repro.service.ServiceExecutor`; a ``"crash"`` action raises
  from ``run()`` itself, simulating a dying thread/process pool — the
  failure class the circuit breaker and inline degradation exist for.

The injected exception types live here (not in :mod:`repro.errors`)
because they are harness artifacts, but they subclass the
:class:`~repro.errors.ServiceError` branch so the retry classification
treats them exactly like real infrastructure faults.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.errors import SemanticsError, ServiceError, TransientServiceError
from repro.api.backends import Backend, _plain_denote
from repro.service.executors import InlineExecutor, ServiceExecutor

__all__ = [
    "TRANSIENT",
    "FATAL",
    "DELAY",
    "CRASH",
    "InjectedFault",
    "InjectedFatalFault",
    "InjectedCrash",
    "FaultSchedule",
    "FaultyBackend",
    "FaultyExecutor",
    "WorkerFaultPlan",
]

#: Schedule actions: fail-retryably, fail-finally, stall, kill the executor.
TRANSIENT = "transient"
FATAL = "fatal"
DELAY = "delay"
CRASH = "crash"

_ACTIONS = (TRANSIENT, FATAL, DELAY, CRASH)


class InjectedFault(TransientServiceError):
    """An injected *transient* failure — retryable by classification."""


class InjectedFatalFault(ServiceError):
    """An injected permanent failure — never retried."""


class InjectedCrash(RuntimeError):
    """An injected executor death (the pool-broke failure class).

    Deliberately *not* a :class:`~repro.errors.ServiceError`: a real dying
    pool raises whatever the stdlib raises, and the degradation path must
    not depend on the error being one of ours.
    """


class FaultSchedule:
    """A thread-safe stream of injection decisions, one per intercepted call.

    Build one through the constructors —

    ``FaultSchedule.scripted([None, "transient", None, "crash"])``
        consumed in call order: call 1 clean, call 2 fails transiently,
        call 4 crashes the executor; exhausted scripts inject nothing
        (the schedule "heals").
    ``FaultSchedule.probabilistic(seed, transient=0.1, ...)``
        iid per call from a ``numpy`` generator seeded once — the same
        seed replays the same fault pattern over the same call sequence.
    ``FaultSchedule.transient_burst(failures)``
        the first ``failures`` calls of each distinct work unit raise
        transiently, after which that unit heals; a mapping assigns a
        budget per work unit in *first-seen call order* (unit 0 is the
        first distinct group the drain executes).  ``transient_burst(k)``
        with a retry budget of ``attempts > k`` is exactly "within
        budget"; ``attempts <= k`` is exactly "beyond budget".

    ``next_action(key)`` advances the stream; ``injected`` records every
    ``(call_index, key, action)`` taken, and ``calls`` counts all
    intercepted calls — both for post-hoc assertions.
    """

    def __init__(
        self,
        *,
        script: "Sequence[str | None] | None" = None,
        rng: "np.random.Generator | None" = None,
        transient_rate: float = 0.0,
        fatal_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_s: float = 1e-4,
        burst: "int | Mapping[int, int] | None" = None,
    ):
        modes = sum(spec is not None for spec in (script, rng, burst))
        if modes != 1:
            raise SemanticsError(
                "a FaultSchedule takes exactly one of script=, rng= "
                "(probabilistic rates), or burst=; use the constructors"
            )
        if script is not None:
            for action in script:
                if action is not None and action not in _ACTIONS:
                    raise SemanticsError(
                        f"unknown scripted action {action!r}; expected one of "
                        f"{_ACTIONS} or None"
                    )
        rates = (transient_rate, fatal_rate, delay_rate)
        if any(rate < 0 for rate in rates) or sum(rates) > 1.0:
            raise SemanticsError("fault rates must be non-negative and sum to <= 1")
        self._script = list(script) if script is not None else None
        self._rng = rng
        self._rates = rates
        self.delay_s = float(delay_s)
        self._burst = burst
        #: First-seen order of distinct work keys (burst mode bookkeeping).
        self._key_index: dict[Hashable, int] = {}
        self._key_calls: dict[Hashable, int] = {}
        self._lock = threading.Lock()
        #: Intercepted calls so far (injections and clean passes alike).
        self.calls = 0
        #: Every injection taken: ``(call_index, key, action)``.
        self.injected: list[tuple[int, Hashable, str]] = []

    # -- constructors --------------------------------------------------------

    @classmethod
    def scripted(cls, actions: "Sequence[str | None]") -> "FaultSchedule":
        """Inject exactly ``actions[i]`` on intercepted call ``i``."""
        return cls(script=actions)

    @classmethod
    def probabilistic(
        cls,
        seed: "int | np.random.Generator | None" = None,
        *,
        transient: float = 0.1,
        fatal: float = 0.0,
        delay: float = 0.0,
        delay_s: float = 1e-4,
    ) -> "FaultSchedule":
        """Seeded iid injection at the given per-call rates."""
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        return cls(
            rng=rng,
            transient_rate=transient,
            fatal_rate=fatal,
            delay_rate=delay,
            delay_s=delay_s,
        )

    @classmethod
    def transient_burst(cls, failures: "int | Mapping[int, int]") -> "FaultSchedule":
        """The first ``failures`` calls of each distinct work unit fail.

        An ``int`` applies one budget to every unit; a mapping assigns
        budgets by first-seen unit index (missing indices inject nothing).
        """
        if isinstance(failures, int) and failures < 0:
            raise SemanticsError("a burst budget must be non-negative")
        return cls(burst=failures)

    # -- the decision stream -------------------------------------------------

    def next_action(self, key: Hashable) -> "str | None":
        """The injection decision for one intercepted call on ``key``."""
        with self._lock:
            index = self.calls
            self.calls += 1
            if self._script is not None:
                action = self._script[index] if index < len(self._script) else None
            elif self._burst is not None:
                unit = self._key_index.setdefault(key, len(self._key_index))
                seen = self._key_calls.get(key, 0)
                self._key_calls[key] = seen + 1
                if isinstance(self._burst, int):
                    budget = self._burst
                else:
                    budget = int(self._burst.get(unit, 0))
                action = TRANSIENT if seen < budget else None
            else:
                draw = float(self._rng.random())
                transient, fatal, delay = self._rates
                if draw < transient:
                    action = TRANSIENT
                elif draw < transient + fatal:
                    action = FATAL
                elif draw < transient + fatal + delay:
                    action = DELAY
                else:
                    action = None
            if action is not None:
                self.injected.append((index, key, action))
            return action

    def raise_or_delay(self, key: Hashable) -> None:
        """Consult the schedule and act: raise the injected exception,
        sleep the injected delay, or do nothing."""
        action = self.next_action(key)
        if action is None:
            return
        if action == TRANSIENT:
            raise InjectedFault(f"injected transient fault (call {self.calls - 1})")
        if action == FATAL:
            raise InjectedFatalFault(f"injected fatal fault (call {self.calls - 1})")
        if action == CRASH:
            raise InjectedCrash(f"injected crash (call {self.calls - 1})")
        time.sleep(self.delay_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        mode = (
            "scripted"
            if self._script is not None
            else "burst" if self._burst is not None else "probabilistic"
        )
        return f"FaultSchedule({mode}, calls={self.calls}, injected={len(self.injected)})"

    # -- pickling (worker-side injection) ------------------------------------
    #
    # A schedule shipped inside a pickled FaultyBackend to a worker process
    # keeps its *configuration* but starts a fresh decision stream: each
    # worker counts its own calls and records its own injections (the
    # client-side instance never sees them), and the lock is rebuilt — so a
    # scripted "fail call 2" schedule fails call 2 of *each* worker.

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        state["_key_index"] = {}
        state["_key_calls"] = {}
        state["calls"] = 0
        state["injected"] = []
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()


class FaultyBackend(Backend):
    """Wrap any backend; inject scheduled faults before each delegated call.

    The schedule is consulted once per batched call — exactly once per
    planned group per attempt under the service — keyed by the group's
    work (the forward program, or the derivative multiset tuple), so a
    burst schedule fails *the same group* repeatedly, the shape retries
    must absorb.  Everything else is transparent: results are the wrapped
    backend's bit for bit, and attribute access (``tier_for``, ``rng``,
    ``fallback``…) passes through — a ``FaultyBackend`` around a sampling
    backend still disables coalescing, and around the statevector tiers
    still reports per-tier timings.
    """

    def __init__(self, inner: Backend, schedule: FaultSchedule):
        self.inner = inner
        self.schedule = schedule

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"faulty({self.inner.name})"

    def __getattr__(self, attribute: str):
        if attribute in ("inner", "schedule"):  # guard partially-built instances
            raise AttributeError(attribute)
        return getattr(self.inner, attribute)

    # -- delegated calls with injection -------------------------------------

    def value(self, program, observable, state, binding, *, denote=_plain_denote):
        self.schedule.raise_or_delay(("value", id(program)))
        return self.inner.value(program, observable, state, binding, denote=denote)

    def derivative(self, program_set, observable, state, binding, *, denote=_plain_denote):
        self.schedule.raise_or_delay(("derivative", (id(program_set),)))
        return self.inner.derivative(
            program_set, observable, state, binding, denote=denote
        )

    def value_batch(self, program, observable, inputs, *, denote=_plain_denote):
        self.schedule.raise_or_delay(("value", id(program)))
        return self.inner.value_batch(program, observable, inputs, denote=denote)

    def derivative_batch(self, program_sets, observable, inputs, *, denote=_plain_denote):
        self.schedule.raise_or_delay(
            ("derivative", tuple(id(program_set) for program_set in program_sets))
        )
        return self.inner.derivative_batch(
            program_sets, observable, inputs, denote=denote
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"FaultyBackend({self.inner!r}, {self.schedule!r})"


class FaultyExecutor(ServiceExecutor):
    """Wrap an executor; a scheduled ``"crash"`` raises from ``run()``.

    This is the pool-death simulator: the service sees the same shape a
    broken :class:`~concurrent.futures.ProcessPoolExecutor` produces — the
    whole drain's ``run`` raising — and must degrade the drain to the
    inline executor, then trip the circuit breaker after enough
    consecutive crashes.  ``"delay"`` stalls the drain; transient/fatal
    actions also raise from ``run`` (at this seam every failure is
    drain-level by definition).
    """

    def __init__(self, inner: "ServiceExecutor | None" = None, *, schedule: FaultSchedule):
        self.inner = inner if inner is not None else InlineExecutor()
        self.schedule = schedule

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"faulty({self.inner.name})"

    def run(self, calls, backend, denote):
        action = self.schedule.next_action(("run",))
        if action == DELAY:
            time.sleep(self.schedule.delay_s)
        elif action is not None:
            raise InjectedCrash(f"injected executor crash (call {self.schedule.calls - 1})")
        return self.inner.run(calls, backend, denote)

    def shutdown(self) -> None:
        self.inner.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"FaultyExecutor({self.inner!r}, {self.schedule!r})"


#: Worker protocol phases a :class:`WorkerFaultPlan` can strike at.
#: ``receive`` — right after a frame arrives, before it is decoded (the
#: worker dies holding nothing); ``execute`` — after decoding, before/at
#: the backend call (mid-work); ``reply`` — after the result is computed,
#: before the frame is sent (work done but never delivered — recovery
#: must still re-dispatch).
WORKER_PHASES = ("receive", "execute", "reply")


@dataclass(frozen=True)
class WorkerFaultPlan:
    """A picklable, worker-*side* fault script for the supervised pool.

    :class:`FaultSchedule` injects at the client's seams (backend calls,
    ``executor.run``); this plan rides *into* the worker process (it must
    pickle, hence no locks or live generators) and strikes from inside:

    * ``kill_on_call=n`` — the worker ``os._exit``\\ s on its n-th EXECUTE
      (0-based), at ``phase``; the client sees the process sentinel fire
      and must re-dispatch the in-flight group.
    * ``hang_on_call=n`` — the worker sleeps ``hang_s`` seconds instead of
      answering; the supervisor's ``call_timeout`` must detect and kill it.
    * ``corrupt_on_call=n`` — the worker replies with a garbage frame; the
      client must fail the group with a *non-retryable*
      :class:`~repro.errors.WireProtocolError` and kill the worker.
    * ``exit_on_spawn=True`` — the worker dies before the HELLO handshake;
      enough consecutive spawn failures exhaust the slot's restart budget
      (fleet-death → graceful degradation to inline).
    * ``kill_rate``/``hang_rate``/``corrupt_rate`` with ``seed`` — iid
      per-call injection from a worker-local ``numpy`` generator (the CI
      seed matrix's shape).

    ``every_generation=False`` (default) applies the plan only to the
    slot's first process — the restart heals it; ``True`` re-applies it to
    every respawn (crash-loop shape, bounded by the redispatch budget).
    """

    kill_on_call: "int | None" = None
    hang_on_call: "int | None" = None
    corrupt_on_call: "int | None" = None
    phase: str = "execute"
    hang_s: float = 60.0
    exit_on_spawn: bool = False
    every_generation: bool = False
    seed: "int | None" = None
    kill_rate: float = 0.0
    hang_rate: float = 0.0
    corrupt_rate: float = 0.0

    def __post_init__(self):
        if self.phase not in WORKER_PHASES:
            raise SemanticsError(
                f"unknown worker fault phase {self.phase!r}; expected one of "
                f"{WORKER_PHASES}"
            )
        rates = (self.kill_rate, self.hang_rate, self.corrupt_rate)
        if any(rate < 0 for rate in rates) or sum(rates) > 1.0:
            raise SemanticsError("fault rates must be non-negative and sum to <= 1")
        if self.hang_s <= 0:
            raise SemanticsError("hang_s must be positive")
        for name in ("kill_on_call", "hang_on_call", "corrupt_on_call"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise SemanticsError(f"{name} must be a non-negative call index")

    def rng(self) -> "np.random.Generator | None":
        """The worker-local generator of the probabilistic rates."""
        if self.kill_rate or self.hang_rate or self.corrupt_rate:
            return np.random.default_rng(self.seed)
        return None

    def action_for(
        self, call_index: int, phase: str, rng: "np.random.Generator | None"
    ) -> "str | None":
        """The injected action (``"kill"``/``"hang"``/``"corrupt"``) for
        one EXECUTE at one protocol phase, or ``None``."""
        if phase != self.phase:
            return None
        if self.kill_on_call is not None and call_index == self.kill_on_call:
            return "kill"
        if self.hang_on_call is not None and call_index == self.hang_on_call:
            return "hang"
        if self.corrupt_on_call is not None and call_index == self.corrupt_on_call:
            return "corrupt"
        if rng is not None:
            draw = float(rng.random())
            if draw < self.kill_rate:
                return "kill"
            if draw < self.kill_rate + self.hang_rate:
                return "hang"
            if draw < self.kill_rate + self.hang_rate + self.corrupt_rate:
                return "corrupt"
        return None
