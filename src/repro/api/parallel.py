"""Process-pool fan-out over any inner backend's batch hooks.

The compiled derivative multisets are embarrassingly parallel: every
``(program, input state, binding)`` readout is independent of every other
(Section 7 treats them as separate quantum-device runs).  The
:class:`ParallelBackend` exploits exactly the ``*_batch`` seam of the
:class:`~repro.api.backends.Backend` protocol — single-point ``value`` /
``derivative`` calls delegate inline to the wrapped backend, while batches
are chunked contiguously across a ``ProcessPoolExecutor``.  Three axes are
split, most-work-first: input points (the data-batch shape of training),
parameters (the single-point gradient shape), and — when whole multisets
are fewer than workers — the *branch axis*: the members of each derivative
multiset, whose partial readout sums recombine exactly
(:meth:`~repro.api.backends.Backend.derivative_members`); with a
trajectory-tier inner backend each member chunk carries its own branch
ensembles.

Two costs are inherent to the process boundary and worth knowing about:

* the estimator's ``denote`` callable (and its cache) cannot cross into
  workers; each worker simulates with the plain uncached denotation, so
  the wrapper pays off when the batch is dominated by *fresh* simulation
  work — which is what the derivative fan-out on ≥ 8 density qubits looks
  like.  Small or cache-hot batches are better served inline; batches
  smaller than ``min_batch_size`` skip the pool entirely.
* inputs and results are pickled; states are ``O(4^n)`` (density) or
  ``O(2^n)`` (pure) arrays, negligible against the simulations they seed.

The wrapped backend itself is pickled once per submitted chunk —
:class:`~repro.api.backends.StatevectorBackend` ships its configuration
but not its cache (see its ``__getstate__``).
"""

from __future__ import annotations

import copy
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Sequence

import numpy as np

from repro.lang.ast import Program
from repro.lang.parameters import ParameterBinding
from repro.sim.density import DensityState
from repro.api.backends import (
    Backend,
    DenoteFn,
    ExactDensityBackend,
    ObservableSpec,
    StatevectorBackend,
    _plain_denote,
)

__all__ = ["ParallelBackend", "ThreadPoolBackend"]


def _chunks(items: list, count: int) -> list[list]:
    """Split ``items`` into at most ``count`` contiguous, near-even chunks."""
    count = max(1, min(count, len(items)))
    size, remainder = divmod(len(items), count)
    result, start = [], 0
    for position in range(count):
        stop = start + size + (1 if position < remainder else 0)
        result.append(items[start:stop])
        start = stop
    return result


def _chunked_clones(inner: Backend, count: int) -> list[Backend]:
    """One inner-backend clone per chunk, with independent RNG streams.

    A stochastic backend (``ShotSamplingBackend``) evaluated concurrently —
    whether pickled to processes or shared between threads — would
    otherwise draw correlated "random" samples per chunk (identical
    snapshots across workers, or an unsynchronized shared generator):
    sampling error that never averages out and silently breaks the
    independence the Chernoff bound assumes.  When the inner backend
    exposes an ``rng`` slot, each chunk gets a clone seeded from the parent
    generator (which thereby advances, so repeated calls differ too); an
    unseeded stochastic backend gets fresh OS-entropy streams.
    Deterministic backends are shared as-is.
    """
    if not hasattr(inner, "rng"):
        return [inner] * count
    parent = inner.rng
    if isinstance(parent, np.random.Generator):
        seeds = parent.integers(0, 2**63, size=count)
        streams = [np.random.default_rng(int(seed)) for seed in seeds]
    else:
        streams = [np.random.default_rng() for _ in range(count)]
    clones = []
    for stream in streams:
        clone = copy.copy(inner)
        clone.rng = stream
        clones.append(clone)
    return clones


# Workers must be module-level functions so they pickle by reference.


def _worker_value_batch(backend, program, observable, chunk):
    return backend.value_batch(program, observable, chunk)


def _worker_derivative_batch(backend, program_sets, observable, chunk):
    return backend.derivative_batch(program_sets, observable, chunk)


def _worker_derivative_members(backend, program_set, members, observable, state, binding):
    return backend.derivative_members(program_set, members, observable, state, binding)


class ParallelBackend(Backend):
    """Fan any inner backend's batch evaluations out to worker processes.

    Parameters
    ----------
    inner:
        The backend doing the actual readouts in each worker; defaults to
        :class:`~repro.api.backends.ExactDensityBackend`.
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.  When left defaulted,
        the pool is also skipped entirely on single-core hosts — the fork +
        pickle tax cannot pay for itself there (``BENCH_backends.json``
        measured the pool at ~1.0× on the 1-core CI box); pass an explicit
        worker count to force pooling regardless.
    min_batch_size:
        Batches smaller than this run inline — forking and pickling cost
        more than they save on tiny batches.  A batch of one work item
        always runs inline.
    """

    name = "parallel"

    def __init__(
        self,
        inner: Backend | None = None,
        *,
        max_workers: int | None = None,
        min_batch_size: int = 2,
    ):
        self.inner = inner if inner is not None else ExactDensityBackend()
        self._auto_workers = max_workers is None
        self.max_workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        self.min_batch_size = int(min_batch_size)
        self._executor: ProcessPoolExecutor | None = None

    def _run_inline(self, work_items: int) -> bool:
        """Should this batch skip the pool?  (See ``max_workers`` above.)"""
        if work_items < 2 or work_items < self.min_batch_size:
            return True
        if self.max_workers < 2:
            return True
        return self._auto_workers and (os.cpu_count() or 1) <= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"ParallelBackend(inner={self.inner!r}, max_workers={self.max_workers})"

    # -- pool lifecycle ----------------------------------------------------

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def shutdown(self) -> None:
        """Tear the worker pool down (it is re-created lazily on next use)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __getstate__(self):  # a pool cannot be shipped inside another pool
        state = self.__dict__.copy()
        state["_executor"] = None
        return state

    def _chunk_backends(self, count: int) -> list[Backend]:
        """Per-chunk inner-backend clones (see :func:`_chunked_clones`)."""
        return _chunked_clones(self.inner, count)

    # -- single-point calls delegate inline --------------------------------

    def value(
        self,
        program: Program,
        observable: ObservableSpec,
        state: DensityState,
        binding: ParameterBinding | None,
        *,
        denote: DenoteFn = _plain_denote,
    ) -> float:
        return self.inner.value(program, observable, state, binding, denote=denote)

    def derivative(
        self,
        program_set,
        observable: ObservableSpec,
        state: DensityState,
        binding: ParameterBinding | None,
        *,
        denote: DenoteFn = _plain_denote,
    ) -> float:
        return self.inner.derivative(program_set, observable, state, binding, denote=denote)

    # -- the batch seam fans out -------------------------------------------

    def value_batch(
        self,
        program: Program,
        observable: ObservableSpec,
        inputs: Sequence[tuple[DensityState, ParameterBinding | None]],
        *,
        denote: DenoteFn = _plain_denote,
    ) -> list[float]:
        inputs = list(inputs)
        if self._run_inline(len(inputs)):
            return self.inner.value_batch(program, observable, inputs, denote=denote)
        chunks = _chunks(inputs, self.max_workers)
        futures = [
            self._pool().submit(_worker_value_batch, backend, program, observable, chunk)
            for backend, chunk in zip(self._chunk_backends(len(chunks)), chunks)
        ]
        results: list[float] = []
        for future in futures:
            results.extend(future.result())
        return results

    def derivative_batch(
        self,
        program_sets,
        observable: ObservableSpec,
        inputs: Sequence[tuple[DensityState, ParameterBinding | None]],
        *,
        denote: DenoteFn = _plain_denote,
    ) -> list[list[float]]:
        inputs = list(inputs)
        program_sets = list(program_sets)
        if self._run_inline(len(inputs) * len(program_sets)):
            return self.inner.derivative_batch(
                program_sets, observable, inputs, denote=denote
            )
        if len(inputs) >= len(program_sets):
            # Fan out over input points (the data-batch shape of training).
            chunks = _chunks(inputs, self.max_workers)
            futures = [
                self._pool().submit(
                    _worker_derivative_batch, backend, program_sets, observable, chunk
                )
                for backend, chunk in zip(self._chunk_backends(len(chunks)), chunks)
            ]
            rows: list[list[float]] = []
            for future in futures:
                rows.extend(future.result())
            return rows
        # Fan out over parameters (the single-point gradient shape): each
        # worker computes a column block, concatenated back per row.  When
        # that leaves workers idle (fewer multisets than workers, a single
        # input) the *branch axis* is split instead: every multiset's
        # members — each case gadget with its own trajectory ensemble —
        # are chunked across workers and their partial sums recombined
        # (the derivative readout is additive over members).  Stochastic
        # inner backends are excluded: their sampling budget is calibrated
        # for the whole member sum.
        if (
            len(inputs) == 1
            and len(program_sets) < self.max_workers
            and not hasattr(self.inner, "rng")
        ):
            return self._derivative_member_fanout(program_sets, observable, inputs)
        chunks = _chunks(program_sets, self.max_workers)
        futures = [
            self._pool().submit(
                _worker_derivative_batch, backend, chunk, observable, inputs
            )
            for backend, chunk in zip(self._chunk_backends(len(chunks)), chunks)
        ]
        blocks = [future.result() for future in futures]
        return [
            [value for block in blocks for value in block[row]]
            for row in range(len(inputs))
        ]

    def _derivative_member_fanout(
        self, program_sets, observable: ObservableSpec, inputs
    ) -> list[list[float]]:
        """One-input gradient with member (branch-axis) chunking per multiset."""
        state, binding = inputs[0]
        per_set = max(1, self.max_workers // len(program_sets))
        tasks: list[tuple[int, tuple]] = []
        for index, program_set in enumerate(program_sets):
            members = list(program_set.nonaborting_programs())
            if not members:
                continue
            for chunk in _chunks(members, per_set):
                tasks.append((index, tuple(chunk)))
        futures = [
            self._pool().submit(
                _worker_derivative_members,
                backend,
                program_sets[index],
                members,
                observable,
                state,
                binding,
            )
            for backend, (index, members) in zip(self._chunk_backends(len(tasks)), tasks)
        ]
        totals = [0.0] * len(program_sets)
        for (index, _), future in zip(tasks, futures):
            totals[index] += future.result()
        return [totals]


class ThreadPoolBackend(Backend):
    """Thread-pool fan-out over any inner backend's batch hooks.

    The thread-pool variant of :class:`ParallelBackend` (the roadmap open
    item): the same ``*_batch`` chunking, but across a
    ``ThreadPoolExecutor``.  Threads share the address space, which removes
    both process-pool taxes at once:

    * **no fork + pickle** — chunks carry references, not copies, so the
      wrapper pays for itself on much smaller batches;
    * **the estimator's cached ``denote`` crosses into workers** — every
      chunk hits the shared (thread-safe, single-flight)
      :class:`~repro.api.cache.DenotationCache`, so nothing is ever
      simulated twice, unlike the process pool's uncached workers.

    The parallelism is real because the hot path is numpy releasing the
    GIL: the gate contractions, the batched expectation kernels and the
    dense matmuls all drop it.  Python-level bookkeeping between kernels
    still serializes, so the win is bounded by the numpy fraction — large
    registers benefit, tiny ones break even.

    A stochastic inner backend is cloned per chunk with independent RNG
    streams (:func:`_chunked_clones`) — ``np.random.Generator`` is not
    thread-safe, and correlated streams would break the Chernoff bound.
    """

    name = "thread-pool"

    def __init__(
        self,
        inner: Backend | None = None,
        *,
        max_workers: int | None = None,
        min_batch_size: int = 2,
    ):
        self.inner = inner if inner is not None else StatevectorBackend()
        self.max_workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        self.min_batch_size = int(min_batch_size)
        self._executor: ThreadPoolExecutor | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"ThreadPoolBackend(inner={self.inner!r}, max_workers={self.max_workers})"

    # -- pool lifecycle ----------------------------------------------------

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def shutdown(self) -> None:
        """Tear the worker threads down (re-created lazily on next use)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __getstate__(self):  # a pool cannot be shipped across processes
        state = self.__dict__.copy()
        state["_executor"] = None
        return state

    def _run_inline(self, work_items: int) -> bool:
        return (
            work_items < 2
            or work_items < self.min_batch_size
            or self.max_workers < 2
        )

    # -- single-point calls delegate inline --------------------------------

    def value(
        self,
        program: Program,
        observable: ObservableSpec,
        state: DensityState,
        binding: ParameterBinding | None,
        *,
        denote: DenoteFn = _plain_denote,
    ) -> float:
        return self.inner.value(program, observable, state, binding, denote=denote)

    def derivative(
        self,
        program_set,
        observable: ObservableSpec,
        state: DensityState,
        binding: ParameterBinding | None,
        *,
        denote: DenoteFn = _plain_denote,
    ) -> float:
        return self.inner.derivative(program_set, observable, state, binding, denote=denote)

    # -- the batch seam fans out across threads -----------------------------

    def value_batch(
        self,
        program: Program,
        observable: ObservableSpec,
        inputs: Sequence[tuple[DensityState, ParameterBinding | None]],
        *,
        denote: DenoteFn = _plain_denote,
    ) -> list[float]:
        inputs = list(inputs)
        if self._run_inline(len(inputs)):
            return self.inner.value_batch(program, observable, inputs, denote=denote)
        chunks = _chunks(inputs, self.max_workers)
        futures = [
            self._pool().submit(
                backend.value_batch, program, observable, chunk, denote=denote
            )
            for backend, chunk in zip(_chunked_clones(self.inner, len(chunks)), chunks)
        ]
        results: list[float] = []
        for future in futures:
            results.extend(future.result())
        return results

    def derivative_batch(
        self,
        program_sets,
        observable: ObservableSpec,
        inputs: Sequence[tuple[DensityState, ParameterBinding | None]],
        *,
        denote: DenoteFn = _plain_denote,
    ) -> list[list[float]]:
        inputs = list(inputs)
        program_sets = list(program_sets)
        if self._run_inline(len(inputs) * len(program_sets)):
            return self.inner.derivative_batch(
                program_sets, observable, inputs, denote=denote
            )
        if len(inputs) >= len(program_sets):
            # Input axis: the data-batch shape of training.
            chunks = _chunks(inputs, self.max_workers)
            futures = [
                self._pool().submit(
                    backend.derivative_batch, program_sets, observable, chunk, denote=denote
                )
                for backend, chunk in zip(_chunked_clones(self.inner, len(chunks)), chunks)
            ]
            rows: list[list[float]] = []
            for future in futures:
                rows.extend(future.result())
            return rows
        # Parameter axis: the single-point gradient shape — each worker
        # computes a column block, concatenated back per row.
        chunks = _chunks(program_sets, self.max_workers)
        futures = [
            self._pool().submit(
                backend.derivative_batch, chunk, observable, inputs, denote=denote
            )
            for backend, chunk in zip(_chunked_clones(self.inner, len(chunks)), chunks)
        ]
        blocks = [future.result() for future in futures]
        return [
            [value for block in blocks for value in block[row]]
            for row in range(len(inputs))
        ]
