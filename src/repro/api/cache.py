"""Denotation cache: memoize ``[[P(θ*)]]ρ`` per ``(program, binding, state)``.

The execution pipeline of Section 7 simulates every compiled program of
every derivative multiset against every data point, and the training loop
of Section 8.1 additionally re-evaluates the forward program for the loss,
the accuracy and the gradient weights of the same epoch.  All of those
denotations are pure functions of ``(program, θ*, ρ)`` — this cache makes
each of them happen at most once per point.

Keys are value-based so that callers may freely rebuild equal bindings and
states (the classifier constructs a fresh :class:`DensityState` per data
point): the binding contributes its sorted ``(name, value)`` pairs, the
state its layout and raw matrix bytes.  Programs are keyed by identity —
structural hashing would walk the whole AST per lookup — and every cache
entry pins its program object so an ``id`` can never be recycled while a
key that mentions it is still live.

Besides density states, the cache also keys *pure-state amplitude arrays*
(:meth:`DenotationCache.get_or_compute_amplitudes`): the statevector
execution tier memoizes whole ``(B, d^n)`` batches per
``(program, binding, input stack)``, in the same LRU, under a key tagged so
a density entry and an amplitude entry can never collide.  Branch-ensemble
evaluations of the trajectory tier
(:meth:`DenotationCache.get_or_compute_trajectories`) are keyed the same
way plus the evaluator options, under their own tag.

Eviction is LRU with a bounded entry count; an epoch of the Figure 6
training loop needs one entry per (program, data point), so the default
bound comfortably holds a full epoch's working set while keeping the worst
case memory at ``max_entries`` output matrices.

The cache is **thread-safe with single-flight misses**: the entry map and
the statistics are guarded by one lock, and a miss registers an in-flight
marker before computing *outside* the lock, so concurrent lookups of the
same key — the thread-pool executors of :mod:`repro.service` hammer one
shared cache from every worker — wait for the first computation instead of
duplicating it.  ``stats.misses`` therefore counts *actual* denotations
even under contention, and a waiter counts as a hit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.lang.ast import Program
from repro.lang.parameters import ParameterBinding
from repro.sim.density import DensityState

#: Default LRU bound: one Figure-6 epoch (36 parameters × 16 points plus the
#: forward pass) fits with room to spare.
DEFAULT_MAX_ENTRIES = 1024

#: States with more matrix elements than this bypass the cache entirely: the
#: key would copy-and-hash the full matrix bytes per lookup and each entry
#: would pin an equally large output, so beyond ~8 density qubits the cache
#: costs more memory than the re-simulation it saves (the same reasoning as
#: the large-operator bypass of ``repro.sim.hilbert._EMBED_CACHE``).
DEFAULT_MAX_STATE_ELEMENTS = 65536


@dataclass
class CacheStats:
    """Running counters of cache behaviour.

    ``misses`` equals the number of times the underlying denotation was
    actually computed — the quantity the Figure 6 benchmark counts.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of cache lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        """Zero all counters (the stored entries are untouched)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0


def binding_key(binding: ParameterBinding | None) -> Hashable:
    """Value key of a parameter binding: its sorted ``(name, value)`` pairs."""
    if binding is None:
        return None
    return tuple(sorted((parameter.name, value) for parameter, value in binding.items()))


def state_key(state: DensityState) -> Hashable:
    """Value key of a density state: layout names/dims plus the matrix bytes.

    Only density states reach the denotation cache — backends lift pure
    inputs to the density representation *before* denoting (amplitude
    stacks have their own keying, :func:`amplitude_key`).
    """
    return (state.layout.names, state.layout.dims, state.matrix.tobytes())


def amplitude_key(layout, amplitudes) -> Hashable:
    """Value key of a pure-state amplitude stack over a register layout.

    The ``"sv"`` tag keeps amplitude keys disjoint from density keys even
    when a ``(B, d^n)`` stack and a ``d^n × d^n`` matrix share their bytes.
    """
    return ("sv", layout.names, layout.dims, amplitudes.shape, amplitudes.tobytes())


def trajectory_key(layout, amplitudes, options_key: Hashable) -> Hashable:
    """Value key of a branch-ensemble evaluation over a register layout.

    ``options_key`` is the hashable identity of every evaluator setting
    that affects the output (pruning tolerance, truncation budget, branch
    cap, coalescing — see ``TrajectoryOptions.key``): the same input stack
    under a different error budget is a different cache entry.  The
    ``"traj"`` tag keeps these disjoint from plain amplitude entries.
    """
    return (
        "traj",
        options_key,
        layout.names,
        layout.dims,
        amplitudes.shape,
        amplitudes.tobytes(),
    )


class _InFlight:
    """A miss being computed right now: waiters block on ``event``.

    The computing thread stores either ``value`` or ``error`` before setting
    the event; the distinction matters because a raising denotation (the
    trajectory tier raises :class:`~repro.errors.TrajectoryError` as
    control flow) must re-raise in every waiter too.
    """

    __slots__ = ("event", "value", "error")

    def __init__(self):
        self.event = threading.Event()
        self.value = None
        self.error: BaseException | None = None


@dataclass
class DenotationCache:
    """An LRU map from ``(program, binding, state)`` to the denoted output state."""

    max_entries: int = DEFAULT_MAX_ENTRIES
    max_state_elements: int = DEFAULT_MAX_STATE_ELEMENTS
    stats: CacheStats = field(default_factory=CacheStats)
    #: key -> (pinned program, output state); insertion order tracks recency.
    _entries: OrderedDict = field(default_factory=OrderedDict)
    #: key -> in-flight marker of the thread currently computing that miss.
    _in_flight: dict = field(default_factory=dict, repr=False)
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # Locks cannot be pickled; a cache shipped across a process boundary
    # (nothing does today — StatevectorBackend.__getstate__ drops its cache)
    # would arrive empty but functional.
    def __getstate__(self):
        with self._lock:
            return {
                "max_entries": self.max_entries,
                "max_state_elements": self.max_state_elements,
            }

    def __setstate__(self, state):
        self.max_entries = state["max_entries"]
        self.max_state_elements = state["max_state_elements"]
        self.stats = CacheStats()
        self._entries = OrderedDict()
        self._in_flight = {}
        self._lock = threading.RLock()

    def get_or_compute(
        self,
        program: Program,
        state: DensityState,
        binding: ParameterBinding | None,
        compute: Callable[[], DensityState],
    ) -> DensityState:
        """Return the cached denotation, computing (and storing) it on a miss.

        Oversized states (``> max_state_elements`` matrix elements) bypass
        the cache — no key bytes are copied, nothing is stored.  The returned
        :class:`DensityState` is shared between callers and must be treated
        as immutable — which every state transformer already does.
        """
        return self._lookup(
            program, state.matrix.size, binding, lambda: state_key(state), compute
        )

    def get_or_compute_amplitudes(
        self,
        program: Program,
        layout,
        amplitudes,
        binding: ParameterBinding | None,
        compute: Callable[[], "object"],
    ) -> "object":
        """Amplitude-stack variant of :meth:`get_or_compute`.

        Keys a whole ``(B, d^n)`` pure-state batch by its bytes; the cached
        value is whatever ``compute`` returns (an output amplitude stack).
        The same size bypass applies — an oversized stack is neither hashed
        nor stored.
        """
        return self._lookup(
            program,
            amplitudes.size,
            binding,
            lambda: amplitude_key(layout, amplitudes),
            compute,
        )

    def get_or_compute_trajectories(
        self,
        program: Program,
        layout,
        amplitudes,
        binding: ParameterBinding | None,
        options_key: Hashable,
        compute: Callable[[], "object"],
    ) -> "object":
        """Branch-ensemble variant of :meth:`get_or_compute`.

        Keys the *input* stack (plus the evaluator options) and caches
        whatever ``compute`` returns — a ``TrajectoryResult`` whose output
        ensemble may be wider than the input.  Shared results must be
        treated as immutable, like every other cached value.
        """
        return self._lookup(
            program,
            amplitudes.size,
            binding,
            lambda: trajectory_key(layout, amplitudes, options_key),
            compute,
        )

    def _lookup(
        self,
        program: Program,
        size: int,
        binding: ParameterBinding | None,
        make_key: Callable[[], Hashable],
        compute: Callable[[], "object"],
    ) -> "object":
        # The key is built lazily: a bypassed (oversized, or cache-disabled)
        # lookup must never pay for hashing the state's bytes.
        if size > self.max_state_elements or self.max_entries <= 0:
            with self._lock:
                self.stats.misses += 1
            return compute()
        key = (id(program), binding_key(binding), make_key())
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                return entry[1]
            flight = self._in_flight.get(key)
            owner = flight is None
            if owner:
                # This thread owns the miss: compute outside the lock.
                flight = _InFlight()
                self._in_flight[key] = flight
                self.stats.misses += 1
        if not owner:
            # Another thread is computing this key right now: wait it out
            # (single-flight).  A successful wait counts as a hit; an error
            # re-raises here exactly as it did in the computing thread.
            flight.event.wait()
            with self._lock:
                if flight.error is not None:
                    self.stats.misses += 1
                else:
                    self.stats.hits += 1
            if flight.error is not None:
                raise flight.error
            return flight.value
        try:
            output = compute()
        except BaseException as error:
            with self._lock:
                flight.error = error
                self._in_flight.pop(key, None)
            flight.event.set()
            raise
        with self._lock:
            while len(self._entries) >= self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            self._entries[key] = (program, output)
            self._in_flight.pop(key, None)
            flight.value = output
        flight.event.set()
        return output

    def clear(self) -> None:
        """Drop every entry (the statistics keep accumulating)."""
        with self._lock:
            self._entries.clear()
