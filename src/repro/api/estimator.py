"""The :class:`Estimator` facade: one object, the whole pipeline.

The paper's pipeline — transform (Figure 4), compile (Figure 3), execute
(Section 7) — was historically exposed as loose free functions, so every
caller re-threaded ``(program, observable, state, binding)`` and hard-coded
the execution scheme into which function it called.  The estimator is the
single stable entry point that separates *what to estimate* from *how it is
executed*:

* it is constructed once from ``(program, observable, layout)``;
* it owns the compile-time artifacts — every parameter's
  :class:`~repro.autodiff.execution.DerivativeProgramSet`, built lazily and
  cached, so transformation/compilation happens at most once per parameter;
* it owns a :class:`~repro.api.cache.DenotationCache`, so each compiled
  program is simulated at most once per ``(binding, input state)`` point no
  matter how many times values, gradients and accuracies are requested;
* it delegates every readout to a pluggable
  :class:`~repro.api.backends.Backend` — exact or shot-sampled today, a
  statevector or parallel executor tomorrow — all sharing the same cache.

This is the frontend/device split the paper contrasts with PennyLane in
Section 8, and the seam every scaling direction of the roadmap (sharding,
batching, async, multi-backend) plugs into.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import SemanticsError
from repro.lang.ast import Program, UnitaryApp
from repro.lang.parameters import Parameter, ParameterBinding
from repro.linalg.observables import Observable
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.sim.statevector import StateVector
from repro.semantics import denotational
from repro.api.backends import (
    Backend,
    ExactDensityBackend,
    ObservableSpec,
    ShotSamplingBackend,
    StatevectorBackend,
)
from repro.api.cache import DEFAULT_MAX_ENTRIES, CacheStats, DenotationCache

#: A batched input point: the state ρ (a :class:`DensityState`, or a pure
#: :class:`~repro.sim.statevector.StateVector` — backends accept both and
#: pure inputs skip the ``O(4^n)`` density representation entirely) and the
#: parameter point θ*.
EstimatorInput = tuple["DensityState | StateVector", "ParameterBinding | None"]

#: What the ``backend=`` argument of :class:`Estimator` accepts.
BackendSpec = "Backend | str | None"


def _make_parallel() -> Backend:
    from repro.api.parallel import ParallelBackend

    return ParallelBackend(StatevectorBackend())


def _make_threads() -> Backend:
    from repro.api.parallel import ThreadPoolBackend

    return ThreadPoolBackend(StatevectorBackend())


#: Canonical backend name -> (aliases, factory).  One registry drives both
#: resolution and the unknown-name error message, so the two can never
#: drift apart: every spelling the error lists is accepted, and vice versa.
_BACKEND_REGISTRY: "dict[str, tuple[tuple[str, ...], object]]" = {
    "auto": ((), StatevectorBackend),
    "statevector": ((), StatevectorBackend),
    "exact-density": (("exact", "density"), ExactDensityBackend),
    "shot-sampling": (("shots",), ShotSamplingBackend),
    "parallel": ((), _make_parallel),
    "threads": (("thread-pool",), _make_threads),
}


def backend_spellings() -> tuple[str, ...]:
    """Every name :func:`resolve_backend` accepts (canonical + aliases)."""
    names: list[str] = []
    for canonical, (aliases, _) in _BACKEND_REGISTRY.items():
        names.append(canonical)
        names.extend(aliases)
    return tuple(names)


def resolve_backend(backend: "Backend | str | None") -> Backend:
    """Turn a backend spec — an instance, a name, or ``None`` — into a backend.

    Recognized names:

    * ``"auto"`` — simulability-aware selection: the ``O(2^n)``
      statevector tier for measurement-free programs on pure inputs, the
      ``O(B · 2^n)`` branch-splitting trajectory tier for branching
      (``case``/``while``/``+``) programs, the exact density simulator for
      everything else (per program / per input, see
      :class:`~repro.api.backends.StatevectorBackend`);
    * ``"statevector"`` — same tiers, spelled explicitly;
    * ``"exact-density"`` (aliases ``"exact"``, ``"density"``) — the exact
      density-matrix readout;
    * ``"shot-sampling"`` (alias ``"shots"``) — the Chernoff-bounded
      sampling scheme at default precision/confidence;
    * ``"parallel"`` — a process-pool fan-out over the ``"auto"`` tier;
    * ``"threads"`` (alias ``"thread-pool"``) — the thread-pool fan-out
      over the ``"auto"`` tier (no fork/pickle, shares the denotation
      cache across workers; see :class:`~repro.api.ThreadPoolBackend`).

    ``None`` defaults to the exact density backend (the reference
    semantics, and the only spelling that never changes arithmetic).
    An unknown name raises with the full list of valid spellings.
    """
    if backend is None:
        return ExactDensityBackend()
    if isinstance(backend, Backend):
        return backend
    name = str(backend).lower()
    for canonical, (aliases, factory) in _BACKEND_REGISTRY.items():
        if name == canonical or name in aliases:
            return factory()
    spellings = ", ".join(
        f"'{canonical}'"
        + (f" (aliases {', '.join(repr(a) for a in aliases)})" if aliases else "")
        for canonical, (aliases, _) in _BACKEND_REGISTRY.items()
    )
    raise SemanticsError(
        f"unknown backend {backend!r}; expected a Backend instance or one of "
        f"{spellings}"
    )


def ordered_parameters(program: Program) -> tuple[Parameter, ...]:
    """Every symbolic parameter of the program, in first-occurrence order.

    ``Program.parameters()`` returns an (unordered) frozenset; gradients need
    a stable axis, so the estimator walks the AST in program order instead.
    """
    seen: dict[Parameter, None] = {}

    def walk(node: Program) -> None:
        if isinstance(node, UnitaryApp):
            for parameter in node.gate.parameters():
                seen.setdefault(parameter, None)
        for child in node.children():
            walk(child)

    walk(program)
    return tuple(seen)


class Estimator:
    """Estimate ``tr(O[[P(θ)]]ρ)`` and its gradient through a pluggable backend.

    Parameters
    ----------
    program:
        The parameterized program ``P(θ)``.
    observable:
        The observable ``O`` — an :class:`~repro.linalg.observables.Observable`,
        a raw Hermitian matrix, or an :class:`~repro.api.backends.ObservableSpec`.
        May be omitted for compile-time-only use (``program_set``), in which
        case ``value``/``gradient`` raise until one is supplied.
    layout:
        Optional :class:`~repro.sim.hilbert.RegisterLayout`; when given, the
        program's variables and the observable's dimension are validated
        against it eagerly instead of at the first evaluation.
    targets:
        Restricts the observable to the named register variables (local
        form) — the readout then stays on the contraction kernels.
    parameters:
        The gradient axis.  Defaults to the program's parameters in
        first-occurrence order.
    backend:
        The execution scheme — a :class:`~repro.api.backends.Backend`
        instance or a name accepted by :func:`resolve_backend` (notably
        ``"auto"``, which picks the pure-state statevector tier whenever
        the purity analysis and the input state allow it).  Defaults to
        :class:`~repro.api.backends.ExactDensityBackend`.
    executor:
        Where the per-instance service drains — any spec
        :func:`repro.service.resolve_executor` accepts: ``"inline"``
        (deterministic, the default — every entry point stays bit-for-bit
        the direct backend call), ``"threads"`` or ``"processes"``.
    cache_size:
        LRU bound of the denotation cache (``0`` disables caching).
    retry:
        The per-instance service's retry policy — a
        :class:`~repro.service.RetryPolicy`, an attempt count, or ``None``
        (no retries, the default).  Transient backend failures re-run only
        the affected group; see :mod:`repro.service.resilience`.
    """

    def __init__(
        self,
        program: Program,
        observable: "ObservableSpec | Observable | np.ndarray | None" = None,
        layout: RegisterLayout | None = None,
        *,
        targets: Sequence[str] | None = None,
        parameters: Sequence[Parameter] | None = None,
        backend: "Backend | str | None" = None,
        executor: object = None,
        cache_size: int = DEFAULT_MAX_ENTRIES,
        program_sets: "Mapping[Parameter, object] | None" = None,
        cache: DenotationCache | None = None,
        retry: object = None,
    ):
        self.program = program
        self.observable = (
            ObservableSpec.coerce(observable, targets) if observable is not None else None
        )
        self.layout = layout
        self.backend = resolve_backend(backend)
        self._executor_spec = executor
        self._retry_spec = retry
        self._service = None
        self._parameters = tuple(parameters) if parameters is not None else None
        self._program_sets: dict[Parameter, object] = (
            dict(program_sets) if program_sets is not None else {}
        )
        for parameter, program_set in self._program_sets.items():
            if program_set.parameter != parameter:
                raise SemanticsError(
                    f"the derivative program set supplied for parameter "
                    f"{parameter.name!r} was built for "
                    f"{program_set.parameter.name!r}; a mismatched seeding would "
                    "silently compute the wrong gradient"
                )
        self._cache = cache if cache is not None else DenotationCache(cache_size)
        if layout is not None:
            missing = program.qvars() - set(layout.names)
            if missing:
                raise SemanticsError(
                    f"the layout does not carry variables {sorted(missing)} used by the program"
                )
            if self.observable is not None:
                if self.observable.targets is None:
                    expected = layout.total_dim
                else:
                    expected = int(
                        np.prod([layout.dim_of(n) for n in self.observable.targets])
                    )
                if self.observable.matrix.shape != (expected, expected):
                    raise SemanticsError(
                        "observable dimension does not match the layout register"
                    )

    # -- compile-time artifacts -------------------------------------------

    @property
    def parameters(self) -> tuple[Parameter, ...]:
        """The gradient axis (discovered lazily from the program when not given)."""
        if self._parameters is None:
            self._parameters = ordered_parameters(self.program)
        return self._parameters

    def program_set(self, parameter: Parameter):
        """The compiled derivative multiset for one parameter (built once, cached)."""
        program_set = self._program_sets.get(parameter)
        if program_set is None:
            from repro.autodiff.execution import differentiate_and_compile

            program_set = differentiate_and_compile(self.program, parameter)
            self._program_sets[parameter] = program_set
        return program_set

    def compile_all(self) -> None:
        """Eagerly build every parameter's derivative program set."""
        for parameter in self.parameters:
            self.program_set(parameter)

    # -- the service seam ---------------------------------------------------

    @property
    def service(self):
        """The per-instance :class:`~repro.service.EstimatorService`.

        Built lazily around this estimator's backend and denotation cache;
        every synchronous entry point below is a thin client of it —
        requests are submitted, the queue is drained, handles are resolved.
        On the default inline executor the drained calls are exactly the
        direct backend calls of the pre-service API, bit for bit.  Rebuilt
        automatically if ``estimator.backend`` is swapped out.
        """
        from repro.service import EstimatorService

        if self._service is None or self._service.backend is not self.backend:
            if self._service is not None:
                # The old service's queue was submitted against the old
                # backend: drain it there, then release its workers — a
                # swap must not leak a thread/process pool per assignment.
                self._service.close()
            self._service = EstimatorService(
                self.backend,
                executor=self._executor_spec,
                cache=self._cache,
                retry=self._retry_spec,
            )
        return self._service

    def session(self, *, name: str | None = None, priority: int = 0):
        """A new :class:`~repro.service.Session` on this estimator's service."""
        return self.service.session(name=name, priority=priority)

    # -- request factories ---------------------------------------------------

    def request_value(
        self,
        state: "DensityState | StateVector",
        binding: ParameterBinding | None = None,
        *,
        priority: int = 0,
        timeout: float | None = None,
    ):
        """An :class:`~repro.service.ExecutionRequest` for one forward value.

        Self-contained — it may be submitted to this estimator's own
        service *or* to any shared :class:`~repro.service.EstimatorService`
        where it can batch and coalesce with other estimators' requests.
        ``timeout`` becomes the request's deadline (absolute from now).
        """
        from repro.service import ExecutionRequest

        return ExecutionRequest.value(
            self.program,
            self._spec(),
            state,
            binding,
            priority=priority,
            timeout=timeout,
        )

    def request_derivative(
        self,
        parameter: Parameter,
        state: "DensityState | StateVector",
        binding: ParameterBinding | None = None,
        *,
        priority: int = 0,
        timeout: float | None = None,
    ):
        """A request for one parameter's derivative readout."""
        from repro.service import ExecutionRequest

        return ExecutionRequest.derivative(
            self.program_set(parameter),
            self._spec(),
            state,
            binding,
            priority=priority,
            timeout=timeout,
        )

    def request_gradient(
        self,
        state: "DensityState | StateVector",
        binding: ParameterBinding | None = None,
        parameters: Sequence[Parameter] | None = None,
        *,
        priority: int = 0,
        timeout: float | None = None,
    ):
        """A request for a whole gradient row along ``parameters``."""
        from repro.service import ExecutionRequest

        parameters = self.parameters if parameters is None else tuple(parameters)
        return ExecutionRequest.gradient(
            [self.program_set(parameter) for parameter in parameters],
            self._spec(),
            state,
            binding,
            priority=priority,
            timeout=timeout,
        )

    # -- execution (thin synchronous client) --------------------------------

    def _spec(self) -> ObservableSpec:
        if self.observable is None:
            raise SemanticsError(
                "this estimator was built without an observable; pass one at "
                "construction to evaluate values or gradients"
            )
        return self.observable

    def _denote(
        self, program: Program, state: DensityState, binding: ParameterBinding | None
    ) -> DensityState:
        return self._cache.get_or_compute(
            program, state, binding, lambda: denotational.denote(program, state, binding)
        )

    def value(
        self,
        state: DensityState,
        binding: ParameterBinding | None = None,
        *,
        timeout: float | None = None,
    ) -> float:
        """``tr(O[[P(θ*)]]ρ)`` (Definition 5.1) through the configured backend.

        ``timeout`` (here and on every entry point below) bounds the wait:
        it becomes the request's deadline *and* the result wait, so a
        request that cannot resolve in time fails with
        :class:`~repro.errors.DeadlineExceededError`.
        """
        handle = self.service.submit(self.request_value(state, binding, timeout=timeout))
        return float(handle.result(timeout))

    def derivative(
        self,
        parameter: Parameter,
        state: DensityState,
        binding: ParameterBinding | None = None,
        *,
        timeout: float | None = None,
    ) -> float:
        """One gradient entry: the derivative readout for a single parameter."""
        return float(
            self.service.submit(
                self.request_derivative(parameter, state, binding, timeout=timeout)
            ).result(timeout)
        )

    def gradient(
        self,
        state: DensityState,
        binding: ParameterBinding | None = None,
        parameters: Sequence[Parameter] | None = None,
        *,
        timeout: float | None = None,
    ) -> np.ndarray:
        """The gradient of the observable semantics along ``parameters``.

        ``parameters`` defaults to the estimator's full gradient axis; a
        subset computes (and compiles) only the requested entries.  The
        whole row travels as one :class:`~repro.service.ExecutionRequest`,
        so the backend's ``derivative_batch`` hook sees a single-point
        batch exactly as before: batching backends stack the derivative
        fan-out and parallel backends split the parameter axis across
        workers; the default hook reproduces the historical per-parameter
        loop exactly.
        """
        handle = self.service.submit(
            self.request_gradient(state, binding, parameters, timeout=timeout)
        )
        return handle.result(timeout)

    def value_and_grad(
        self,
        state: DensityState,
        binding: ParameterBinding | None = None,
        parameters: Sequence[Parameter] | None = None,
        *,
        timeout: float | None = None,
    ) -> tuple[float, np.ndarray]:
        """The value and the gradient at one point, sharing every simulation."""
        return (
            self.value(state, binding, timeout=timeout),
            self.gradient(state, binding, parameters, timeout=timeout),
        )

    def values(
        self,
        inputs: Iterable[EstimatorInput],
        *,
        timeout: float | None = None,
    ) -> np.ndarray:
        """Batched :meth:`value` over ``(state, binding)`` points.

        Submitted as one request batch: planning folds the whole batch into
        a single ``value_batch`` backend call (plus whatever else is queued
        on the service), in input order.
        """
        batch = [self._coerce_input(point) for point in inputs]
        handles = self.service.submit_many(
            [
                self.request_value(state, binding, timeout=timeout)
                for state, binding in batch
            ]
        )
        return np.array([handle.result(timeout) for handle in handles], dtype=float)

    def gradients(
        self,
        inputs: Iterable[EstimatorInput],
        parameters: Sequence[Parameter] | None = None,
        *,
        timeout: float | None = None,
    ) -> np.ndarray:
        """Batched :meth:`gradient`: one row per input point."""
        parameters = self.parameters if parameters is None else tuple(parameters)
        batch = [self._coerce_input(point) for point in inputs]
        handles = self.service.submit_many(
            [
                self.request_gradient(state, binding, parameters, timeout=timeout)
                for state, binding in batch
            ]
        )
        rows = [handle.result(timeout) for handle in handles]
        return np.array(rows, dtype=float).reshape(len(batch), len(parameters))

    @staticmethod
    def _coerce_input(point) -> EstimatorInput:
        if isinstance(point, (DensityState, StateVector)):
            return (point, None)
        state, binding = point
        return (state, binding)

    # -- backend / cache management ----------------------------------------

    def with_backend(self, backend: "Backend | str") -> "Estimator":
        """A sibling estimator on another backend, sharing compiles and cache.

        ``backend`` may be an instance or any name :func:`resolve_backend`
        accepts.  Denotations are backend-independent (every shipped backend
        simulates exactly and differs only in representation or readout), so
        the sibling reuses this estimator's derivative program sets *and*
        its density denotation cache.
        """
        sibling = Estimator(
            self.program,
            self.observable,
            self.layout,
            parameters=self._parameters,
            backend=backend,
            cache=self._cache,
            retry=self._retry_spec,
        )
        # Share the lazily-grown compile cache itself, not a snapshot, so
        # multisets compiled through either estimator serve both.
        sibling._program_sets = self._program_sets
        return sibling

    @property
    def cache(self) -> DenotationCache:
        """The denotation cache (inspect ``cache.stats`` for hit counts)."""
        return self._cache

    @property
    def cache_stats(self) -> CacheStats:
        """Shortcut for ``estimator.cache.stats``."""
        return self._cache.stats

    def clear_cache(self) -> None:
        """Drop every cached denotation (compile-time artifacts are kept)."""
        self._cache.clear()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close the lazily-built per-instance service, if any.

        Drains its queue and shuts its executor's worker pools down
        deterministically instead of leaving them to the garbage collector;
        a closed estimator rebuilds the service lazily on next use.
        """
        if self._service is not None:
            self._service.close()
            self._service = None

    def __enter__(self) -> "Estimator":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        observable = self.observable.name if self.observable is not None else "∅"
        return (
            f"Estimator(backend={self.backend.name!r}, observable={observable!r}, "
            f"parameters={len(self.parameters)}, compiled={len(self._program_sets)})"
        )
