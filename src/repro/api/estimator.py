"""The :class:`Estimator` facade: one object, the whole pipeline.

The paper's pipeline — transform (Figure 4), compile (Figure 3), execute
(Section 7) — was historically exposed as loose free functions, so every
caller re-threaded ``(program, observable, state, binding)`` and hard-coded
the execution scheme into which function it called.  The estimator is the
single stable entry point that separates *what to estimate* from *how it is
executed*:

* it is constructed once from ``(program, observable, layout)``;
* it owns the compile-time artifacts — every parameter's
  :class:`~repro.autodiff.execution.DerivativeProgramSet`, built lazily and
  cached, so transformation/compilation happens at most once per parameter;
* it owns a :class:`~repro.api.cache.DenotationCache`, so each compiled
  program is simulated at most once per ``(binding, input state)`` point no
  matter how many times values, gradients and accuracies are requested;
* it delegates every readout to a pluggable
  :class:`~repro.api.backends.Backend` — exact or shot-sampled today, a
  statevector or parallel executor tomorrow — all sharing the same cache.

This is the frontend/device split the paper contrasts with PennyLane in
Section 8, and the seam every scaling direction of the roadmap (sharding,
batching, async, multi-backend) plugs into.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import SemanticsError
from repro.lang.ast import Program, UnitaryApp
from repro.lang.parameters import Parameter, ParameterBinding
from repro.linalg.observables import Observable
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.sim.statevector import StateVector
from repro.semantics import denotational
from repro.api.backends import (
    Backend,
    ExactDensityBackend,
    ObservableSpec,
    ShotSamplingBackend,
    StatevectorBackend,
)
from repro.api.cache import DEFAULT_MAX_ENTRIES, CacheStats, DenotationCache

#: A batched input point: the state ρ (a :class:`DensityState`, or a pure
#: :class:`~repro.sim.statevector.StateVector` — backends accept both and
#: pure inputs skip the ``O(4^n)`` density representation entirely) and the
#: parameter point θ*.
EstimatorInput = tuple["DensityState | StateVector", "ParameterBinding | None"]

#: What the ``backend=`` argument of :class:`Estimator` accepts.
BackendSpec = "Backend | str | None"


def resolve_backend(backend: "Backend | str | None") -> Backend:
    """Turn a backend spec — an instance, a name, or ``None`` — into a backend.

    Recognized names:

    * ``"auto"`` — simulability-aware selection: the ``O(2^n)``
      statevector tier for measurement-free programs on pure inputs, the
      ``O(B · 2^n)`` branch-splitting trajectory tier for branching
      (``case``/``while``/``+``) programs, the exact density simulator for
      everything else (per program / per input, see
      :class:`~repro.api.backends.StatevectorBackend`);
    * ``"statevector"`` — same tiers, spelled explicitly;
    * ``"exact-density"`` (aliases ``"exact"``, ``"density"``) — the exact
      density-matrix readout;
    * ``"shot-sampling"`` (alias ``"shots"``) — the Chernoff-bounded
      sampling scheme at default precision/confidence;
    * ``"parallel"`` — a process-pool fan-out over the ``"auto"`` tier.

    ``None`` defaults to the exact density backend (the reference
    semantics, and the only spelling that never changes arithmetic).
    """
    if backend is None:
        return ExactDensityBackend()
    if isinstance(backend, Backend):
        return backend
    name = str(backend).lower()
    if name in ("auto", "statevector"):
        return StatevectorBackend()
    if name in ("exact-density", "exact", "density"):
        return ExactDensityBackend()
    if name in ("shot-sampling", "shots"):
        return ShotSamplingBackend()
    if name == "parallel":
        from repro.api.parallel import ParallelBackend

        return ParallelBackend(StatevectorBackend())
    raise SemanticsError(
        f"unknown backend {backend!r}; expected a Backend instance or one of "
        "'auto', 'statevector', 'exact-density', 'shot-sampling', 'parallel'"
    )


def ordered_parameters(program: Program) -> tuple[Parameter, ...]:
    """Every symbolic parameter of the program, in first-occurrence order.

    ``Program.parameters()`` returns an (unordered) frozenset; gradients need
    a stable axis, so the estimator walks the AST in program order instead.
    """
    seen: dict[Parameter, None] = {}

    def walk(node: Program) -> None:
        if isinstance(node, UnitaryApp):
            for parameter in node.gate.parameters():
                seen.setdefault(parameter, None)
        for child in node.children():
            walk(child)

    walk(program)
    return tuple(seen)


class Estimator:
    """Estimate ``tr(O[[P(θ)]]ρ)`` and its gradient through a pluggable backend.

    Parameters
    ----------
    program:
        The parameterized program ``P(θ)``.
    observable:
        The observable ``O`` — an :class:`~repro.linalg.observables.Observable`,
        a raw Hermitian matrix, or an :class:`~repro.api.backends.ObservableSpec`.
        May be omitted for compile-time-only use (``program_set``), in which
        case ``value``/``gradient`` raise until one is supplied.
    layout:
        Optional :class:`~repro.sim.hilbert.RegisterLayout`; when given, the
        program's variables and the observable's dimension are validated
        against it eagerly instead of at the first evaluation.
    targets:
        Restricts the observable to the named register variables (local
        form) — the readout then stays on the contraction kernels.
    parameters:
        The gradient axis.  Defaults to the program's parameters in
        first-occurrence order.
    backend:
        The execution scheme — a :class:`~repro.api.backends.Backend`
        instance or a name accepted by :func:`resolve_backend` (notably
        ``"auto"``, which picks the pure-state statevector tier whenever
        the purity analysis and the input state allow it).  Defaults to
        :class:`~repro.api.backends.ExactDensityBackend`.
    cache_size:
        LRU bound of the denotation cache (``0`` disables caching).
    """

    def __init__(
        self,
        program: Program,
        observable: "ObservableSpec | Observable | np.ndarray | None" = None,
        layout: RegisterLayout | None = None,
        *,
        targets: Sequence[str] | None = None,
        parameters: Sequence[Parameter] | None = None,
        backend: "Backend | str | None" = None,
        cache_size: int = DEFAULT_MAX_ENTRIES,
        program_sets: "Mapping[Parameter, object] | None" = None,
        cache: DenotationCache | None = None,
    ):
        self.program = program
        self.observable = (
            ObservableSpec.coerce(observable, targets) if observable is not None else None
        )
        self.layout = layout
        self.backend = resolve_backend(backend)
        self._parameters = tuple(parameters) if parameters is not None else None
        self._program_sets: dict[Parameter, object] = (
            dict(program_sets) if program_sets is not None else {}
        )
        for parameter, program_set in self._program_sets.items():
            if program_set.parameter != parameter:
                raise SemanticsError(
                    f"the derivative program set supplied for parameter "
                    f"{parameter.name!r} was built for "
                    f"{program_set.parameter.name!r}; a mismatched seeding would "
                    "silently compute the wrong gradient"
                )
        self._cache = cache if cache is not None else DenotationCache(cache_size)
        if layout is not None:
            missing = program.qvars() - set(layout.names)
            if missing:
                raise SemanticsError(
                    f"the layout does not carry variables {sorted(missing)} used by the program"
                )
            if self.observable is not None:
                if self.observable.targets is None:
                    expected = layout.total_dim
                else:
                    expected = int(
                        np.prod([layout.dim_of(n) for n in self.observable.targets])
                    )
                if self.observable.matrix.shape != (expected, expected):
                    raise SemanticsError(
                        "observable dimension does not match the layout register"
                    )

    # -- compile-time artifacts -------------------------------------------

    @property
    def parameters(self) -> tuple[Parameter, ...]:
        """The gradient axis (discovered lazily from the program when not given)."""
        if self._parameters is None:
            self._parameters = ordered_parameters(self.program)
        return self._parameters

    def program_set(self, parameter: Parameter):
        """The compiled derivative multiset for one parameter (built once, cached)."""
        program_set = self._program_sets.get(parameter)
        if program_set is None:
            from repro.autodiff.execution import differentiate_and_compile

            program_set = differentiate_and_compile(self.program, parameter)
            self._program_sets[parameter] = program_set
        return program_set

    def compile_all(self) -> None:
        """Eagerly build every parameter's derivative program set."""
        for parameter in self.parameters:
            self.program_set(parameter)

    # -- execution ---------------------------------------------------------

    def _spec(self) -> ObservableSpec:
        if self.observable is None:
            raise SemanticsError(
                "this estimator was built without an observable; pass one at "
                "construction to evaluate values or gradients"
            )
        return self.observable

    def _denote(
        self, program: Program, state: DensityState, binding: ParameterBinding | None
    ) -> DensityState:
        return self._cache.get_or_compute(
            program, state, binding, lambda: denotational.denote(program, state, binding)
        )

    def value(self, state: DensityState, binding: ParameterBinding | None = None) -> float:
        """``tr(O[[P(θ*)]]ρ)`` (Definition 5.1) through the configured backend."""
        return self.backend.value(
            self.program, self._spec(), state, binding, denote=self._denote
        )

    def derivative(
        self,
        parameter: Parameter,
        state: DensityState,
        binding: ParameterBinding | None = None,
    ) -> float:
        """One gradient entry: the derivative readout for a single parameter."""
        return self.backend.derivative(
            self.program_set(parameter), self._spec(), state, binding, denote=self._denote
        )

    def gradient(
        self,
        state: DensityState,
        binding: ParameterBinding | None = None,
        parameters: Sequence[Parameter] | None = None,
    ) -> np.ndarray:
        """The gradient of the observable semantics along ``parameters``.

        ``parameters`` defaults to the estimator's full gradient axis; a
        subset computes (and compiles) only the requested entries.  The
        whole gradient goes through the backend's ``derivative_batch`` hook
        as one single-point batch, so batching backends stack the
        derivative fan-out and parallel backends split the parameter axis
        across workers; the default hook reproduces the historical
        per-parameter loop exactly.
        """
        parameters = self.parameters if parameters is None else tuple(parameters)
        program_sets = [self.program_set(parameter) for parameter in parameters]
        rows = self.backend.derivative_batch(
            program_sets, self._spec(), [(state, binding)], denote=self._denote
        )
        return np.array(rows[0], dtype=float)

    def value_and_grad(
        self,
        state: DensityState,
        binding: ParameterBinding | None = None,
        parameters: Sequence[Parameter] | None = None,
    ) -> tuple[float, np.ndarray]:
        """The value and the gradient at one point, sharing every simulation."""
        return (
            self.value(state, binding),
            self.gradient(state, binding, parameters),
        )

    def values(self, inputs: Iterable[EstimatorInput]) -> np.ndarray:
        """Batched :meth:`value` over ``(state, binding)`` points."""
        batch = [self._coerce_input(point) for point in inputs]
        results = self.backend.value_batch(
            self.program, self._spec(), batch, denote=self._denote
        )
        return np.array(results, dtype=float)

    def gradients(
        self,
        inputs: Iterable[EstimatorInput],
        parameters: Sequence[Parameter] | None = None,
    ) -> np.ndarray:
        """Batched :meth:`gradient`: one row per input point."""
        parameters = self.parameters if parameters is None else tuple(parameters)
        batch = [self._coerce_input(point) for point in inputs]
        program_sets = [self.program_set(parameter) for parameter in parameters]
        rows = self.backend.derivative_batch(
            program_sets, self._spec(), batch, denote=self._denote
        )
        return np.array(rows, dtype=float).reshape(len(batch), len(parameters))

    @staticmethod
    def _coerce_input(point) -> EstimatorInput:
        if isinstance(point, (DensityState, StateVector)):
            return (point, None)
        state, binding = point
        return (state, binding)

    # -- backend / cache management ----------------------------------------

    def with_backend(self, backend: "Backend | str") -> "Estimator":
        """A sibling estimator on another backend, sharing compiles and cache.

        ``backend`` may be an instance or any name :func:`resolve_backend`
        accepts.  Denotations are backend-independent (every shipped backend
        simulates exactly and differs only in representation or readout), so
        the sibling reuses this estimator's derivative program sets *and*
        its density denotation cache.
        """
        sibling = Estimator(
            self.program,
            self.observable,
            self.layout,
            parameters=self._parameters,
            backend=backend,
            cache=self._cache,
        )
        # Share the lazily-grown compile cache itself, not a snapshot, so
        # multisets compiled through either estimator serve both.
        sibling._program_sets = self._program_sets
        return sibling

    @property
    def cache(self) -> DenotationCache:
        """The denotation cache (inspect ``cache.stats`` for hit counts)."""
        return self._cache

    @property
    def cache_stats(self) -> CacheStats:
        """Shortcut for ``estimator.cache.stats``."""
        return self._cache.stats

    def clear_cache(self) -> None:
        """Drop every cached denotation (compile-time artifacts are kept)."""
        self._cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        observable = self.observable.name if self.observable is not None else "∅"
        return (
            f"Estimator(backend={self.backend.name!r}, observable={observable!r}, "
            f"parameters={len(self.parameters)}, compiled={len(self._program_sets)})"
        )
