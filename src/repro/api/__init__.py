"""``repro.api`` — the unified estimation facade with pluggable backends.

One object replaces the loose free functions of the transform → compile →
execute pipeline (Section 7)::

    from repro.api import Estimator, ShotSamplingBackend

    estimator = Estimator(program, observable, layout)
    value = estimator.value(state, binding)            # tr(O [[P(θ*)]] ρ)
    grad = estimator.gradient(state, binding)          # the paper's gadget scheme
    value, grad = estimator.value_and_grad(state, binding)
    all_values = estimator.values([(state_a, binding), (state_b, binding)])

    sampled = estimator.with_backend(ShotSamplingBackend(precision=0.05))
    noisy_grad = sampled.gradient(state, binding)      # O(m²/δ²) shots, same cache

    fast = Estimator(program, observable, backend="auto")
    fast_grad = fast.gradient(state, binding)          # statevector tier when the
                                                       # purity analysis allows it

The estimator owns the compile-time artifacts (derivative program multisets,
built lazily, once per parameter) and a denotation cache keyed on
``(compiled program, binding, input state)``; backends implement only the
readout scheme.  The historical free functions
(:func:`repro.semantics.observable.observable_semantics`,
:meth:`repro.autodiff.execution.DerivativeProgramSet.evaluate`,
:func:`repro.autodiff.execution.gradient`, …) remain available as thin shims
over this facade.
"""

from repro.api.backends import (
    Backend,
    ExactDensityBackend,
    ObservableSpec,
    ShotSamplingBackend,
    StatevectorBackend,
)
from repro.api.cache import CacheStats, DenotationCache
from repro.api.estimator import (
    Estimator,
    backend_spellings,
    ordered_parameters,
    resolve_backend,
)
from repro.api.parallel import ParallelBackend, ThreadPoolBackend

__all__ = [
    "Backend",
    "CacheStats",
    "DenotationCache",
    "Estimator",
    "ExactDensityBackend",
    "ObservableSpec",
    "ParallelBackend",
    "ShotSamplingBackend",
    "StatevectorBackend",
    "ThreadPoolBackend",
    "backend_spellings",
    "ordered_parameters",
    "resolve_backend",
]
