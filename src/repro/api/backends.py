"""Pluggable execution backends for the :class:`~repro.api.Estimator`.

The paper separates *what* is estimated — the observable semantics
``tr(O[[P(θ*)]]ρ)`` and its derivative readouts ``Σ_i tr((Z_A ⊗ O)
[[P'_i(θ*)]](|0⟩⟨0| ⊗ ρ))`` — from *how* the readout is executed
(Section 7): exactly on the density-matrix simulator, or with the
Chernoff-bounded sampling scheme.  A :class:`Backend` implements exactly
that execution half; the :class:`~repro.api.Estimator` owns the
compile-time artifacts and the denotation cache and hands every backend the
same cached ``denote`` callable, so switching backends never re-simulates.

Three backends ship today:

* :class:`ExactDensityBackend` — the exact readout (the historical
  ``DerivativeProgramSet.evaluate`` path);
* :class:`ShotSamplingBackend` — the ``O(m²/δ²)`` sampling scheme (the
  historical ``evaluate_sampled`` path), now also supporting *local*
  observables by spectrally decomposing the small target operator;
* :class:`StatevectorBackend` — the pure-state execution tiers: programs
  the simulation analysis certifies as measurement-free are simulated on
  ``O(2^n)`` amplitudes instead of ``O(4^n)`` density entries with whole
  input batches advancing through each gate in one broadcasted
  contraction; *branching* programs (``case``/``while``/``+``, mid-circuit
  resets) take the branch-splitting trajectory evaluator
  (:mod:`repro.sim.trajectories`) at ``O(B · 2^n)`` for ``B`` branches;
  mixed inputs and branch-cap overflows fall back to the exact density
  path per input / per program.

The protocol is deliberately small and batch-aware: the statevector backend
overrides the ``*_batch`` hooks to stack same-binding inputs, and a parallel
executor (:class:`repro.api.ParallelBackend`) only overrides the same hooks
to fan requests out to worker processes.
"""

from __future__ import annotations

import abc
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.errors import PurityError, SemanticsError, TrajectoryError
from repro.lang.ast import Program
from repro.lang.parameters import ParameterBinding
from repro.linalg.observables import Observable
from repro.sim import kernels
from repro.sim.density import DensityState
from repro.sim.pure import denote_amplitude_batch
from repro.sim.statevector import StateVector
from repro.sim.shots import (
    estimate_distribution_sum,
    normalized_distribution,
)
from repro.sim.trajectories import (
    TrajectoryOptions,
    TrajectoryResult,
    denote_trajectory_batch,
)
from repro.analysis.cost import CostReport, cost_report
from repro.analysis.purity import SimulationClass, simulation_report
from repro.autodiff.gadgets import ANCILLA_OBSERVABLE
from repro.api.cache import DenotationCache, binding_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.autodiff.execution import DerivativeProgramSet

#: The cached denotation callable the estimator hands to every backend.
DenoteFn = Callable[[Program, DensityState, "ParameterBinding | None"], DensityState]


@dataclass(frozen=True, eq=False)
class ObservableSpec:
    """An observable together with the register variables it acts on.

    ``targets=None`` means the matrix covers the state's whole register in
    layout order; otherwise the matrix is a small operator on exactly the
    named variables, which keeps every readout on the local contraction
    kernels.

    (``eq=False``: a generated ``__eq__``/``__hash__`` would choke on the
    ndarray field — compare :class:`~repro.linalg.observables.Observable`.)
    """

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ObservableSpec):
            return NotImplemented
        return (
            self.targets == other.targets
            and self.matrix.shape == other.matrix.shape
            and bool(np.allclose(self.matrix, other.matrix))
        )

    __hash__ = None  # numerically-equal specs cannot hash consistently

    matrix: np.ndarray
    targets: tuple[str, ...] | None = None
    name: str = "O"

    def __init__(
        self,
        matrix: np.ndarray,
        targets: Sequence[str] | None = None,
        name: str = "O",
    ):
        object.__setattr__(self, "matrix", np.asarray(matrix, dtype=complex))
        object.__setattr__(
            self, "targets", tuple(targets) if targets is not None else None
        )
        object.__setattr__(self, "name", name)

    @classmethod
    def coerce(
        cls,
        observable: "ObservableSpec | Observable | np.ndarray",
        targets: Sequence[str] | None = None,
    ) -> "ObservableSpec":
        """Build a spec from any of the observable spellings the API accepts."""
        if isinstance(observable, ObservableSpec):
            if targets is not None:
                return cls(observable.matrix, targets, observable.name)
            return observable
        if isinstance(observable, Observable):
            return cls(observable.matrix, targets, observable.name)
        return cls(np.asarray(observable), targets)

    def validate_against(self, state: DensityState) -> None:
        """Check the matrix dimension against the state's register/targets."""
        if self.targets is None:
            expected = state.layout.total_dim
            if self.matrix.shape != (expected, expected):
                raise SemanticsError(
                    "observable dimension does not match the input state register"
                )
            return
        expected = int(np.prod([state.layout.dim_of(name) for name in self.targets]))
        if self.matrix.shape != (expected, expected):
            raise SemanticsError("observable dimension does not match the target variables")


def _plain_denote(program: Program, state: DensityState, binding: ParameterBinding | None) -> DensityState:
    """Uncached fallback used when a backend is called outside an estimator."""
    from repro.semantics import denotational

    return denotational.denote(program, state, binding)


def _ensure_density(state: "DensityState | StateVector") -> DensityState:
    """Lift a pure input to the density representation (identity on density)."""
    if isinstance(state, DensityState):
        return state
    return DensityState.from_pure(state.layout, state.amplitudes)


#: id(observable matrix) -> (pinned matrix, Z_A ⊗ O).  The estimator passes
#: the same matrix object for every program of every derivative call, so the
#: combined readout operator is built once instead of once per program.
_COMBINED_MEMO: dict[int, tuple[np.ndarray, np.ndarray]] = {}
_COMBINED_MEMO_LIMIT = 64


def _ancilla_combined(matrix: np.ndarray) -> np.ndarray:
    """``Z_A ⊗ O`` for a (small, targets-local) observable matrix, memoized."""
    entry = _COMBINED_MEMO.get(id(matrix))
    if entry is not None and entry[0] is matrix:
        return entry[1]
    combined = np.kron(ANCILLA_OBSERVABLE, matrix)
    if len(_COMBINED_MEMO) >= _COMBINED_MEMO_LIMIT:
        _COMBINED_MEMO.clear()
    _COMBINED_MEMO[id(matrix)] = (matrix, combined)
    return combined


#: id(observable matrix) -> (pinned matrix, spectral norm).  The trajectory
#: tier certifies its truncation error against ``‖O‖``; the estimator passes
#: the same matrix object on every call, so the norm is computed once.
_NORM_MEMO: dict[int, tuple[np.ndarray, float]] = {}
_NORM_MEMO_LIMIT = 64


def _spectral_norm(matrix: np.ndarray) -> float:
    """The spectral (operator 2-) norm of an observable matrix, memoized."""
    entry = _NORM_MEMO.get(id(matrix))
    if entry is not None and entry[0] is matrix:
        return entry[1]
    norm = float(np.linalg.norm(np.asarray(matrix, dtype=complex), 2))
    if len(_NORM_MEMO) >= _NORM_MEMO_LIMIT:
        _NORM_MEMO.clear()
    _NORM_MEMO[id(matrix)] = (matrix, norm)
    return norm


#: id(program) -> (pinned program, Compile(P)).  Additive forward programs
#: are evaluated as the sum over their compiled multiset (Definition 5.2);
#: compilation is parameter-independent, so it happens once per program.
_ADDITIVE_MEMO: dict[int, tuple[Program, tuple[Program, ...]]] = {}
_ADDITIVE_MEMO_LIMIT = 256


def _additive_members(program: Program) -> tuple[Program, ...]:
    entry = _ADDITIVE_MEMO.get(id(program))
    if entry is not None and entry[0] is program:
        return entry[1]
    from repro.additive.compile import compile_additive

    members = tuple(compile_additive(program))
    if len(_ADDITIVE_MEMO) >= _ADDITIVE_MEMO_LIMIT:
        _ADDITIVE_MEMO.clear()
    _ADDITIVE_MEMO[id(program)] = (program, members)
    return members


class _TierCounts(dict):
    """Per-tier routing counters that survive concurrent bumps.

    ``d[k] += 1`` is a read-modify-write and loses updates when the
    thread-pool executors drive one backend from several workers; ``bump``
    takes a lock so the diagnostics stay exact under concurrency.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._lock = threading.Lock()

    def bump(self, key: str) -> None:
        with self._lock:
            self[key] = self.get(key, 0) + 1


@dataclass(frozen=True)
class MemberSlice:
    """A view of a derivative program set restricted to some of its members.

    Quacks like :class:`~repro.autodiff.execution.DerivativeProgramSet` for
    every backend (``ancilla`` + ``nonaborting_programs``), so a partial
    readout over a member subset reuses the unmodified ``derivative``
    implementations.  :class:`~repro.api.ParallelBackend` uses this to fan
    a single multiset's members (the branch axis of the derivative sum)
    out across workers.
    """

    base: object
    members: tuple[Program, ...]

    @property
    def ancilla(self) -> str:
        return self.base.ancilla

    def nonaborting_programs(self) -> tuple[Program, ...]:
        return self.members


class Backend(abc.ABC):
    """The execution half of the pipeline: turn denoted states into numbers.

    Every method receives ``denote``, the estimator's cached denotation
    callable; backends must obtain *all* simulated output states through it
    so that the m-program multisets shared across parameters and data points
    are each simulated at most once per ``(binding, state)`` point.
    """

    #: Human-readable backend identifier (used in reports and reprs).
    name: str = "abstract"

    @abc.abstractmethod
    def value(
        self,
        program: Program,
        observable: ObservableSpec,
        state: DensityState,
        binding: ParameterBinding | None,
        *,
        denote: DenoteFn = _plain_denote,
    ) -> float:
        """Estimate ``tr(O[[P(θ*)]]ρ)`` (Definition 5.1)."""

    @abc.abstractmethod
    def derivative(
        self,
        program_set: "DerivativeProgramSet",
        observable: ObservableSpec,
        state: DensityState,
        binding: ParameterBinding | None,
        *,
        denote: DenoteFn = _plain_denote,
    ) -> float:
        """Estimate the derivative readout of one compiled multiset (Section 7)."""

    # -- batching seam -----------------------------------------------------
    #
    # The default implementations are sequential; a parallel executor
    # overrides these to fan the independent simulations out to workers
    # without touching the Estimator or the exact/sampled readout logic.

    def value_batch(
        self,
        program: Program,
        observable: ObservableSpec,
        inputs: Sequence[tuple[DensityState, ParameterBinding | None]],
        *,
        denote: DenoteFn = _plain_denote,
    ) -> list[float]:
        """Evaluate :meth:`value` for a batch of ``(state, binding)`` points."""
        return [
            self.value(program, observable, state, binding, denote=denote)
            for state, binding in inputs
        ]

    def derivative_batch(
        self,
        program_sets: Sequence["DerivativeProgramSet"],
        observable: ObservableSpec,
        inputs: Sequence[tuple[DensityState, ParameterBinding | None]],
        *,
        denote: DenoteFn = _plain_denote,
    ) -> list[list[float]]:
        """Evaluate every multiset's readout at every point: one gradient row per input."""
        return [
            [
                self.derivative(program_set, observable, state, binding, denote=denote)
                for program_set in program_sets
            ]
            for state, binding in inputs
        ]

    def derivative_members(
        self,
        program_set: "DerivativeProgramSet",
        members: Sequence[Program],
        observable: ObservableSpec,
        state: DensityState,
        binding: ParameterBinding | None,
        *,
        denote: DenoteFn = _plain_denote,
    ) -> float:
        """The partial derivative readout over a subset of multiset members.

        The derivative sum ``Σ_i tr((Z_A ⊗ O)[[P'_i]]·)`` is additive over
        its members, so partial sums over disjoint member subsets compose
        exactly — the seam :class:`~repro.api.ParallelBackend` uses to fan
        one multiset's members (its branch axis) across workers.  Only
        meaningful for deterministic backends: a sampling backend's
        precision budget is calibrated for the whole sum.
        """
        return self.derivative(
            MemberSlice(program_set, tuple(members)),
            observable,
            state,
            binding,
            denote=denote,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"{type(self).__name__}()"


class ExactDensityBackend(Backend):
    """Exact readouts on the density-matrix simulator.

    ``value`` is ``tr(Oρ_out)`` computed by contraction; ``derivative`` is
    the sum ``Σ_i tr((Z_A ⊗ O)[[P'_i]](|0⟩⟨0| ⊗ ρ))`` with the Kronecker
    product never materialized (local-target path or blockwise ancilla
    contraction).
    """

    name = "exact-density"

    def value(
        self,
        program: Program,
        observable: ObservableSpec,
        state: DensityState,
        binding: ParameterBinding | None,
        *,
        denote: DenoteFn = _plain_denote,
    ) -> float:
        state = _ensure_density(state)
        if simulation_report(program).additive:
            # The additive choice has no single-superoperator denotation;
            # its observable semantics is the sum over the compiled multiset
            # (Definition 5.2), each member cached individually.
            return sum(
                self.value(member, observable, state, binding, denote=denote)
                for member in _additive_members(program)
            )
        output = denote(program, state, binding)
        if observable.targets is None:
            return output.expectation(observable.matrix)
        return output.expectation(observable.matrix, observable.targets)

    def derivative(
        self,
        program_set: "DerivativeProgramSet",
        observable: ObservableSpec,
        state: DensityState,
        binding: ParameterBinding | None,
        *,
        denote: DenoteFn = _plain_denote,
    ) -> float:
        state = _ensure_density(state)
        observable.validate_against(state)
        extended = state.extended(program_set.ancilla, dim=2, front=True)
        total = 0.0
        for program in program_set.nonaborting_programs():
            total += self.derivative_term(
                program, program_set, observable, extended, binding, denote=denote
            )
        return total

    @staticmethod
    def derivative_term(
        program: Program,
        program_set: "DerivativeProgramSet",
        observable: ObservableSpec,
        extended: DensityState,
        binding: ParameterBinding | None,
        *,
        denote: DenoteFn = _plain_denote,
    ) -> float:
        """One compiled program's contribution ``tr((Z_A ⊗ O)[[P'_i]](|0⟩⟨0| ⊗ ρ))``.

        ``extended`` is the ancilla-extended input state.  Exposed separately
        so the purity-aware statevector tier can fall back to the exact
        density readout *per program* when a multiset mixes measurement-free
        members with branching ones.
        """
        output = denote(program, extended, binding)
        if observable.targets is not None:
            return output.expectation(
                _ancilla_combined(observable.matrix),
                (program_set.ancilla,) + observable.targets,
            )
        return kernels.two_factor_expectation_density(
            output.matrix, 2, ANCILLA_OBSERVABLE, observable.matrix
        )


#: Spectral decompositions shared across every :class:`ShotSamplingBackend`
#: instance, LRU-keyed on the observable's bytes: rebuilding an estimator
#: (the shims build one per call) must not re-diagonalize the same matrix.
_SPECTRAL_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_SPECTRAL_CACHE_LIMIT = 64


def _spectral_decomposition(matrix: np.ndarray):
    """Value-keyed module-level LRU over ``Observable.spectral_measurement``."""
    key = (matrix.shape, matrix.tobytes())
    entry = _SPECTRAL_CACHE.get(key)
    if entry is not None:
        _SPECTRAL_CACHE.move_to_end(key)
        return entry
    measurement, eigenvalues = Observable(np.asarray(matrix)).spectral_measurement()
    while len(_SPECTRAL_CACHE) >= _SPECTRAL_CACHE_LIMIT:
        _SPECTRAL_CACHE.popitem(last=False)
    _SPECTRAL_CACHE[key] = (measurement, eigenvalues)
    return measurement, eigenvalues


class ShotSamplingBackend(Backend):
    """The Chernoff-bounded sampling scheme of Section 7.

    Every compiled program is still simulated exactly (through the shared
    cached ``denote``), but the readout is *sampled*: the observable is
    spectrally decomposed once, the per-program outcome distributions are
    tabulated, and the sum over the ``m``-program multiset is estimated with
    the uniform-mixture trick at the ``O(m²/δ²)`` repetition count.

    Local observables (``targets``) are supported by decomposing the small
    target operator and reading Born-rule weights off the reduced density
    matrix of the ancilla + target factors — the full-space observable is
    never formed.

    Additive (``+``) forward programs are supported the same way the
    deterministic backends support them: the value is the sum over
    ``Compile(P)``, estimated as one multi-program uniform mixture.
    """

    name = "shot-sampling"

    def __init__(
        self,
        precision: float = 0.1,
        confidence: float = 0.95,
        rng: np.random.Generator | None = None,
    ):
        if precision <= 0:
            raise SemanticsError("the sampling precision must be positive")
        if not 0 < confidence < 1:
            raise SemanticsError("the sampling confidence must lie strictly in (0, 1)")
        self.precision = float(precision)
        self.confidence = float(confidence)
        self.rng = rng
        #: id(matrix) -> (pinned matrix, measurement, eigenvalues)
        self._spectral_memo: dict[int, tuple] = {}

    #: Bound on memoized spectral decompositions (a backend normally serves
    #: one or two observables; the bound is a leak backstop).
    _SPECTRAL_MEMO_LIMIT = 16

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"ShotSamplingBackend(precision={self.precision}, "
            f"confidence={self.confidence})"
        )

    def _spectral(self, matrix: np.ndarray):
        """Spectrally decompose the observable once per matrix *value*.

        Two tiers: a per-instance identity memo (the estimator passes the
        same matrix object for every point and parameter, so the hot lookup
        never hashes the matrix bytes) in front of the module-level
        value-keyed LRU shared across *all* backend instances — rebuilding
        an estimator, as the legacy shims do per call, reuses the same
        ``O(8^n)`` eigendecomposition instead of redoing it.  Identity-memo
        entries pin their matrix so an ``id`` can never be recycled while
        its key is live.
        """
        entry = self._spectral_memo.get(id(matrix))
        if entry is not None and entry[0] is matrix:
            return entry[1], entry[2]
        measurement, eigenvalues = _spectral_decomposition(np.asarray(matrix))
        while len(self._spectral_memo) >= self._SPECTRAL_MEMO_LIMIT:
            # The memo may be shared between threads (per-group backend
            # clones are shallow copies): two concurrent evictions can race
            # to the same oldest key, so a lost race just stops evicting.
            try:
                self._spectral_memo.pop(next(iter(self._spectral_memo)))
            except (KeyError, StopIteration, RuntimeError):
                break
        self._spectral_memo[id(matrix)] = (matrix, measurement, eigenvalues)
        return measurement, eigenvalues

    def value(
        self,
        program: Program,
        observable: ObservableSpec,
        state: DensityState,
        binding: ParameterBinding | None,
        *,
        denote: DenoteFn = _plain_denote,
    ) -> float:
        state = _ensure_density(state)
        observable.validate_against(state)
        if simulation_report(program).additive:
            # The additive choice has no single-superoperator denotation:
            # its forward value is the sum over ``Compile(P)`` (Definition
            # 5.2), which is exactly the m-program shape the sampling
            # scheme was built for — one outcome distribution per member,
            # summed with the uniform-mixture trick at the O(m²/δ²)
            # repetition count (the same path the derivative readout takes).
            members = _additive_members(program)
        else:
            members = (program,)
        measurement, eigenvalues = self._spectral(observable.matrix)
        distributions = []
        for member in members:
            output = denote(member, state, binding)
            if observable.targets is None:
                rho = output.matrix
            else:
                # Reduce once onto the target factors; the local observable
                # is then sampled on the small reduced density matrix.
                axes = output.layout.axes_of(observable.targets)
                rho = kernels.reduced_density(output.matrix, output.layout.dims, axes)
            probabilities = measurement.probabilities(rho)
            distributions.append(
                normalized_distribution(list(eigenvalues), list(probabilities.values()))
            )
        # For a normal program this is a one-element sum: exactly the
        # single-observable Chernoff estimate of
        # repro.sim.shots.estimate_expectation, with the decomposition
        # memoized instead of redone per call.
        return estimate_distribution_sum(
            distributions,
            precision=self.precision,
            confidence=self.confidence,
            rng=self.rng,
        )

    def derivative(
        self,
        program_set: "DerivativeProgramSet",
        observable: ObservableSpec,
        state: DensityState,
        binding: ParameterBinding | None,
        *,
        denote: DenoteFn = _plain_denote,
    ) -> float:
        state = _ensure_density(state)
        observable.validate_against(state)
        measurement, eigenvalues = self._spectral(observable.matrix)
        ancilla_signs = np.real(np.diag(ANCILLA_OBSERVABLE))
        extended = state.extended(program_set.ancilla, dim=2, front=True)
        distributions = []
        for program in program_set.nonaborting_programs():
            output = denote(program, extended, binding)
            if observable.targets is None:
                dim = state.layout.total_dim
                blocks = output.matrix.reshape(2, dim, 2, dim)
            else:
                axes = output.layout.axes_of(
                    (program_set.ancilla,) + observable.targets
                )
                reduced = kernels.reduced_density(
                    output.matrix, output.layout.dims, axes
                )
                dim = reduced.shape[0] // 2
                blocks = reduced.reshape(2, dim, 2, dim)
            values = []
            weights = []
            for sign_index, sign in enumerate(ancilla_signs):
                block = blocks[sign_index, :, sign_index, :]
                for projector, eigenvalue in zip(measurement.operators, eigenvalues):
                    values.append(sign * eigenvalue)
                    weights.append(float(np.real(np.einsum("ij,ji->", projector, block))))
            distributions.append(normalized_distribution(values, weights))
        return estimate_distribution_sum(
            distributions,
            precision=self.precision,
            confidence=self.confidence,
            rng=self.rng,
        )


class StatevectorBackend(Backend):
    """The pure-state execution tiers: ``O(2^n)`` amplitudes where they suffice.

    Two tiers serve pure inputs, selected per program by the simulation
    analysis (:func:`repro.analysis.purity.simulation_report`):

    * **pure** — measurement-free programs keep a single trajectory:
      ``O(2^k · 2^n)`` per gate instead of the density simulator's
      ``O(2^k · 4^n)``, and ``O(2^n)`` memory instead of ``O(4^n)``.
      Batches — the data points of a training epoch, or the same point
      under the derivative fan-out — are *stacked*: all same-binding pure
      inputs advance through each gate with one broadcasted contraction
      (:func:`repro.sim.kernels.apply_operator_vector_batch`);
    * **trajectory** — branching programs (``case``/``while`` guards, the
      additive ``+``, mid-circuit resets) run on the branch-splitting
      evaluator (:mod:`repro.sim.trajectories`): every measurement splits
      the stack per outcome, so the whole computation stays at
      ``O(B · 2^k · 2^n)`` for ``B`` surviving branches.  Readouts sum
      over the branch axis per input.  ``epsilon`` sets a tolerable
      readout error: bounded ``while`` loops may then truncate early once
      the remaining probability mass times the observable's spectral norm
      is certified below it (``epsilon=0``, the default, keeps every
      evaluation exact up to zero-branch pruning).

    Inputs may be :class:`~repro.sim.density.DensityState` (pure ones are
    verified rank-1 and their amplitudes extracted, an ``O(4^n)`` check) or
    :class:`~repro.sim.statevector.StateVector` (amplitudes used directly,
    no ``O(4^n)`` work anywhere on the path) — every backend accepts both,
    so callers with pure inputs should prefer ``StateVector``.

    Fallback to ``fallback`` (default :class:`ExactDensityBackend`,
    sharing the estimator's density denotation cache through the
    ``denote`` argument) is per obstacle:

    * a *mixed* input state (rank > 1) routes to the fallback for that
      input only, as does an unknown (``DENSITY_ONLY``) program node;
    * a trajectory ensemble that outgrows its branch cap — past
      ``B ≈ 2^n`` the density matrix is the cheaper encoding — or whose
      discarded probability mass cannot be certified below the error
      tolerance raises :class:`~repro.errors.TrajectoryError` internally
      and demotes that program (or multiset member) to the fallback;
    * inside a :class:`~repro.autodiff.execution.DerivativeProgramSet`,
      every member is routed on its own merits: measurement-free members
      take the batched pure path, branching members (the case gadgets)
      their own branch ensembles, and only members that defeat both fall
      back to the exact density readout
      (:meth:`ExactDensityBackend.derivative_term`);
    * a leading initialize whose variable turns out to be entangled with
      the rest of the register raises
      :class:`~repro.errors.PurityError` at runtime and demotes that batch
      to the fallback (on the trajectory tier the reset instead *splits*
      into its Kraus branches — no fallback needed).

    Pure-path and trajectory denotations are memoized in a
    :class:`~repro.api.cache.DenotationCache` keyed on the amplitude
    stack's bytes (one entry per ``(program, binding, input stack)``).
    """

    name = "statevector"

    def __init__(
        self,
        fallback: Backend | None = None,
        *,
        cache: DenotationCache | None = None,
        atol: float = 1e-10,
        epsilon: float = 0.0,
        trajectory: TrajectoryOptions | None = None,
    ):
        if epsilon < 0:
            raise SemanticsError("the trajectory error tolerance must be non-negative")
        self.fallback = fallback if fallback is not None else ExactDensityBackend()
        self.atol = float(atol)
        self.epsilon = float(epsilon)
        self.trajectory = trajectory if trajectory is not None else TrajectoryOptions()
        self._cache = cache if cache is not None else DenotationCache()
        #: How many program-level routings each tier served (diagnostics;
        #: the figure-6 benchmark attributes its timings with this).
        self.tier_counts = _TierCounts({"pure": 0, "trajectory": 0, "density": 0})

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"StatevectorBackend(fallback={self.fallback!r})"

    # A backend shipped to a worker process must not drag its cached output
    # stacks along (and cached program ids would be meaningless there).
    def __getstate__(self):
        return {
            "fallback": self.fallback,
            "atol": self.atol,
            "epsilon": self.epsilon,
            "trajectory": self.trajectory,
        }

    def __setstate__(self, state):
        self.fallback = state["fallback"]
        self.atol = state["atol"]
        self.epsilon = state.get("epsilon", 0.0)
        self.trajectory = state.get("trajectory", TrajectoryOptions())
        self._cache = DenotationCache()
        self.tier_counts = _TierCounts({"pure": 0, "trajectory": 0, "density": 0})

    @property
    def cache(self) -> DenotationCache:
        """The amplitude denotation cache (inspect ``cache.stats`` for hits)."""
        return self._cache

    def tier_for(self, program: Program) -> str:
        """Which tier this backend routes a program to: the attribution hook.

        ``"pure"`` (single-trajectory statevector), ``"trajectory"``
        (branch-splitting statevector) or ``"density"`` (the fallback
        backend).  Runtime demotions — mixed inputs, branch-cap overflows —
        can still send individual evaluations of a ``"pure"`` or
        ``"trajectory"`` program to the fallback; ``tier_counts`` records
        what actually ran.
        """
        klass = simulation_report(program).simulation_class
        if klass is SimulationClass.PURE:
            return "pure"
        if klass is SimulationClass.BRANCHING:
            return "trajectory"
        return "density"

    def explain_tier(
        self,
        program: Program,
        *,
        layout=None,
        dims=None,
        observable_dim: float | None = None,
    ) -> "CostReport":
        """The cost analysis justifying :meth:`tier_for`'s routing decision.

        Returns the :class:`~repro.analysis.cost.CostReport` whose ``tier``
        is this backend's routing for ``program`` and whose per-tier flop /
        peak-byte intervals say *why*: the routed tier's upper bound is the
        cost the service's planner orders by and admission control budgets
        against, and ``report.worst_case`` additionally absorbs a runtime
        demotion to the density fallback.  ``layout`` (or ``dims``) pins the
        register the kernels contract over; ``print(report.describe())``
        renders the routing justification.
        """
        return cost_report(
            program,
            layout=layout,
            dims=dims,
            observable_dim=observable_dim,
            tier=self.tier_for(program),
        )

    # -- pure-path helpers -------------------------------------------------

    def _amplitudes_or_none(self, state: "DensityState | StateVector") -> "np.ndarray | None":
        if isinstance(state, StateVector):
            return state.amplitudes
        try:
            return state.pure_amplitudes(atol=self.atol)
        except PurityError:
            return None

    def _run(self, program, layout, stack, binding):
        return self._cache.get_or_compute_amplitudes(
            program,
            layout,
            stack,
            binding,
            lambda: denote_amplitude_batch(program, layout, stack, binding),
        )

    # -- trajectory-path helpers -------------------------------------------

    def _options_for(
        self, observable_matrix: np.ndarray, members: int = 1
    ) -> TrajectoryOptions:
        """The evaluator options with the error budget converted to mass.

        A readout error tolerance of ``epsilon`` permits discarding at most
        ``epsilon / ‖O‖`` of probability mass (each unit of dropped mass
        perturbs ``tr(Oρ)`` by at most ``‖O‖``).  When the readout *sums*
        over ``members`` independently-evaluated multiset members (the
        derivative fan-out), the budget is split evenly among them so the
        summed error still stays within ``epsilon``.  An explicitly
        configured ``TrajectoryOptions.mass_budget`` is taken as-is — it is
        the advanced per-evaluation knob.
        """
        if self.epsilon <= 0.0:
            return self.trajectory
        norm = _spectral_norm(observable_matrix)
        budget = self.epsilon / (max(norm, np.finfo(float).tiny) * max(1, members))
        if budget <= self.trajectory.mass_budget:
            return self.trajectory
        return replace(self.trajectory, mass_budget=budget)

    def _run_trajectories(
        self, program, layout, stack, binding, options: TrajectoryOptions
    ) -> TrajectoryResult:
        return self._cache.get_or_compute_trajectories(
            program,
            layout,
            stack,
            binding,
            options.key(),
            lambda: denote_trajectory_batch(
                program, layout, stack, binding, options=options
            ),
        )

    def _certified(
        self, result: TrajectoryResult, observable_matrix, options: TrajectoryOptions
    ) -> np.ndarray:
        """Per input row: is the discarded mass within the run's own budget?

        The evaluator was handed ``options.mass_budget`` (zero by default:
        only zero-probability pruning happens), so a compliant run dropped
        at most that much mass per row; ``atol/‖O‖`` of slack absorbs the
        sub-tolerance pruning.  Anything beyond is uncertifiable and the
        row demotes to the density fallback.
        """
        norm = max(_spectral_norm(observable_matrix), np.finfo(float).tiny)
        return result.dropped <= options.mass_budget + self.atol / norm

    def _branch_sums(
        self, result: TrajectoryResult, layout, observable: ObservableSpec, rows: int
    ) -> np.ndarray:
        """``Σ_b ⟨ψ_b|O|ψ_b⟩`` per input row: the batched branch-axis readout."""
        sums = np.zeros(rows)
        if result.amplitudes.shape[0]:
            per_branch = self._expectations(result.amplitudes, layout, observable)
            np.add.at(sums, result.owners, per_branch)
        return sums

    @staticmethod
    def _expectations(stack, layout, observable: ObservableSpec) -> np.ndarray:
        if observable.targets is None:
            applied = stack @ observable.matrix.T
            return np.real(np.einsum("bi,bi->b", np.conj(stack), applied))
        axes = layout.axes_of(observable.targets)
        return kernels.expectation_vector_batch(
            stack, layout.dims, axes, observable.matrix
        )

    def _group_inputs(self, observable, inputs):
        """Split inputs into same-``(binding, layout)`` pure groups + fallback rows."""
        groups: dict = {}
        fallback_indices: list[int] = []
        for index, (state, binding) in enumerate(inputs):
            observable.validate_against(state)
            amplitudes = self._amplitudes_or_none(state)
            if amplitudes is None:
                fallback_indices.append(index)
                continue
            key = (binding_key(binding), state.layout.names, state.layout.dims)
            group = groups.setdefault(key, (binding, state.layout, [], []))
            group[2].append(index)
            group[3].append(amplitudes)
        return list(groups.values()), fallback_indices

    # -- Backend protocol --------------------------------------------------

    def value(
        self,
        program: Program,
        observable: ObservableSpec,
        state: DensityState,
        binding: ParameterBinding | None,
        *,
        denote: DenoteFn = _plain_denote,
    ) -> float:
        return self.value_batch(program, observable, [(state, binding)], denote=denote)[0]

    def value_batch(
        self,
        program: Program,
        observable: ObservableSpec,
        inputs: Sequence[tuple[DensityState, ParameterBinding | None]],
        *,
        denote: DenoteFn = _plain_denote,
    ) -> list[float]:
        inputs = list(inputs)
        tier = self.tier_for(program)
        if tier == "density":
            self.tier_counts.bump("density")
            return self.fallback.value_batch(program, observable, inputs, denote=denote)
        results = [0.0] * len(inputs)
        groups, fallback_indices = self._group_inputs(observable, inputs)
        for binding, layout, indices, vectors in groups:
            stack = np.array(vectors)
            if tier == "pure":
                try:
                    output = self._run(program, layout, stack, binding)
                except PurityError:
                    fallback_indices.extend(indices)
                    continue
                values = self._expectations(output, layout, observable)
                for row, index in enumerate(indices):
                    results[index] = float(values[row])
                continue
            options = self._options_for(observable.matrix)
            try:
                result = self._run_trajectories(program, layout, stack, binding, options)
            except TrajectoryError:
                fallback_indices.extend(indices)
                continue
            values = self._branch_sums(result, layout, observable, len(indices))
            certified = self._certified(result, observable.matrix, options)
            for row, index in enumerate(indices):
                if certified[row]:
                    results[index] = float(values[row])
                else:
                    fallback_indices.append(index)
        # Attribution: count the tier that actually served inputs, and the
        # fallback when any input demoted to it.
        if len(fallback_indices) < len(inputs):
            self.tier_counts.bump(tier)
        if fallback_indices:
            self.tier_counts.bump("density")
            fallback_indices.sort()
            demoted = self.fallback.value_batch(
                program,
                observable,
                [inputs[index] for index in fallback_indices],
                denote=denote,
            )
            for index, value in zip(fallback_indices, demoted):
                results[index] = value
        return results

    def derivative(
        self,
        program_set: "DerivativeProgramSet",
        observable: ObservableSpec,
        state: DensityState,
        binding: ParameterBinding | None,
        *,
        denote: DenoteFn = _plain_denote,
    ) -> float:
        rows = self.derivative_batch(
            [program_set], observable, [(state, binding)], denote=denote
        )
        return rows[0][0]

    def derivative_batch(
        self,
        program_sets: Sequence["DerivativeProgramSet"],
        observable: ObservableSpec,
        inputs: Sequence[tuple[DensityState, ParameterBinding | None]],
        *,
        denote: DenoteFn = _plain_denote,
    ) -> list[list[float]]:
        inputs = list(inputs)
        rows = [[0.0] * len(program_sets) for _ in inputs]
        groups, fallback_indices = self._group_inputs(observable, inputs)
        for binding, layout, indices, vectors in groups:
            stack = np.array(vectors)
            # |0⟩_A ⊗ ψ with the ancilla as the leading factor: the original
            # amplitudes fill the ancilla-0 block.  Built once per group —
            # only the ancilla *name* differs between program sets, the
            # extended amplitudes are identical.
            extended = np.zeros((stack.shape[0], 2 * stack.shape[1]), dtype=complex)
            extended[:, : stack.shape[1]] = stack
            # Demotion support: an input's ancilla-extended density lift is
            # column-independent up to the ancilla's *name*, so the O(4^n)
            # lift + Kronecker happen once per input, not once per column.
            extended_matrices: dict[int, np.ndarray] = {}
            for column, program_set in enumerate(program_sets):
                extended_layout = layout.extended(program_set.ancilla, 2, front=True)
                demoted_programs = []
                members = program_set.nonaborting_programs()
                # The column's readout sums over its members, so the epsilon
                # budget is split across the branching ones — the summed
                # truncation error stays within epsilon, not members·epsilon.
                branching_members = sum(
                    1 for member in members if self.tier_for(member) == "trajectory"
                )
                for program in members:
                    tier = self.tier_for(program)
                    if tier == "density":
                        self.tier_counts.bump("density")
                        demoted_programs.append(program)
                        continue
                    if tier == "pure":
                        try:
                            output = self._run(program, extended_layout, extended, binding)
                        except PurityError:
                            self.tier_counts.bump("density")
                            demoted_programs.append(program)
                            continue
                        terms = self._derivative_terms(
                            output, extended_layout, program_set, observable
                        )
                    else:
                        # A branching multiset member (a case gadget): its
                        # own branch ensemble, readout summed per input row.
                        # ‖Z_A ⊗ O‖ = ‖O‖, so certification uses O's norm.
                        options = self._options_for(observable.matrix, branching_members)
                        try:
                            result = self._run_trajectories(
                                program, extended_layout, extended, binding, options
                            )
                        except TrajectoryError:
                            self.tier_counts.bump("density")
                            demoted_programs.append(program)
                            continue
                        if not np.all(self._certified(result, observable.matrix, options)):
                            self.tier_counts.bump("density")
                            demoted_programs.append(program)
                            continue
                        terms = self._derivative_branch_sums(
                            result, extended_layout, program_set, observable, len(indices)
                        )
                    self.tier_counts.bump(tier)
                    for row, index in enumerate(indices):
                        rows[index][column] += float(terms[row])
                if demoted_programs:
                    # Per-program exact-density fallback (still through the
                    # estimator's cached denote) for the branching members.
                    for index in indices:
                        matrix = extended_matrices.get(index)
                        if matrix is None:
                            ancilla_zero = np.zeros((2, 2), dtype=complex)
                            ancilla_zero[0, 0] = 1.0
                            matrix = np.kron(
                                ancilla_zero, _ensure_density(inputs[index][0]).matrix
                            )
                            extended_matrices[index] = matrix
                        extended_density = DensityState(extended_layout, matrix)
                        for program in demoted_programs:
                            rows[index][column] += ExactDensityBackend.derivative_term(
                                program,
                                program_set,
                                observable,
                                extended_density,
                                inputs[index][1],
                                denote=denote,
                            )
        if fallback_indices:
            self.tier_counts.bump("density")
            fallback_indices.sort()
            demoted = self.fallback.derivative_batch(
                program_sets,
                observable,
                [inputs[index] for index in fallback_indices],
                denote=denote,
            )
            for position, index in enumerate(fallback_indices):
                rows[index] = demoted[position]
        return rows

    @classmethod
    def _derivative_branch_sums(
        cls, result: TrajectoryResult, extended_layout, program_set, observable, rows: int
    ) -> np.ndarray:
        """``Σ_b ⟨ψ_b|(Z_A ⊗ O)|ψ_b⟩`` per input row over a branch ensemble."""
        sums = np.zeros(rows)
        if result.amplitudes.shape[0]:
            per_branch = cls._derivative_terms(
                result.amplitudes, extended_layout, program_set, observable
            )
            np.add.at(sums, result.owners, per_branch)
        return sums

    @staticmethod
    def _derivative_terms(output, extended_layout, program_set, observable) -> np.ndarray:
        """Per-row readout ``⟨ψ|(Z_A ⊗ O)|ψ⟩`` on the extended output stack."""
        if observable.targets is not None:
            axes = extended_layout.axes_of((program_set.ancilla,) + observable.targets)
            return kernels.expectation_vector_batch(
                output, extended_layout.dims, axes, _ancilla_combined(observable.matrix)
            )
        return kernels.two_factor_expectation_vector_batch(
            output, 2, ANCILLA_OBSERVABLE, observable.matrix
        )
