"""Pluggable execution backends for the :class:`~repro.api.Estimator`.

The paper separates *what* is estimated — the observable semantics
``tr(O[[P(θ*)]]ρ)`` and its derivative readouts ``Σ_i tr((Z_A ⊗ O)
[[P'_i(θ*)]](|0⟩⟨0| ⊗ ρ))`` — from *how* the readout is executed
(Section 7): exactly on the density-matrix simulator, or with the
Chernoff-bounded sampling scheme.  A :class:`Backend` implements exactly
that execution half; the :class:`~repro.api.Estimator` owns the
compile-time artifacts and the denotation cache and hands every backend the
same cached ``denote`` callable, so switching backends never re-simulates.

Two backends ship today:

* :class:`ExactDensityBackend` — the exact readout (the historical
  ``DerivativeProgramSet.evaluate`` path);
* :class:`ShotSamplingBackend` — the ``O(m²/δ²)`` sampling scheme (the
  historical ``evaluate_sampled`` path), now also supporting *local*
  observables by spectrally decomposing the small target operator.

The protocol is deliberately small and batch-aware: a statevector backend
for measurement-free programs only needs to override :meth:`Backend.value`
with a cheaper simulation, and a parallel executor only needs to override
the ``*_batch`` hooks to fan requests out to workers.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.errors import SemanticsError
from repro.lang.ast import Program
from repro.lang.parameters import ParameterBinding
from repro.linalg.observables import Observable
from repro.sim import kernels
from repro.sim.density import DensityState
from repro.sim.shots import (
    estimate_distribution_sum,
    normalized_distribution,
)
from repro.autodiff.gadgets import ANCILLA_OBSERVABLE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.autodiff.execution import DerivativeProgramSet

#: The cached denotation callable the estimator hands to every backend.
DenoteFn = Callable[[Program, DensityState, "ParameterBinding | None"], DensityState]


@dataclass(frozen=True, eq=False)
class ObservableSpec:
    """An observable together with the register variables it acts on.

    ``targets=None`` means the matrix covers the state's whole register in
    layout order; otherwise the matrix is a small operator on exactly the
    named variables, which keeps every readout on the local contraction
    kernels.

    (``eq=False``: a generated ``__eq__``/``__hash__`` would choke on the
    ndarray field — compare :class:`~repro.linalg.observables.Observable`.)
    """

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ObservableSpec):
            return NotImplemented
        return (
            self.targets == other.targets
            and self.matrix.shape == other.matrix.shape
            and bool(np.allclose(self.matrix, other.matrix))
        )

    __hash__ = None  # numerically-equal specs cannot hash consistently

    matrix: np.ndarray
    targets: tuple[str, ...] | None = None
    name: str = "O"

    def __init__(
        self,
        matrix: np.ndarray,
        targets: Sequence[str] | None = None,
        name: str = "O",
    ):
        object.__setattr__(self, "matrix", np.asarray(matrix, dtype=complex))
        object.__setattr__(
            self, "targets", tuple(targets) if targets is not None else None
        )
        object.__setattr__(self, "name", name)

    @classmethod
    def coerce(
        cls,
        observable: "ObservableSpec | Observable | np.ndarray",
        targets: Sequence[str] | None = None,
    ) -> "ObservableSpec":
        """Build a spec from any of the observable spellings the API accepts."""
        if isinstance(observable, ObservableSpec):
            if targets is not None:
                return cls(observable.matrix, targets, observable.name)
            return observable
        if isinstance(observable, Observable):
            return cls(observable.matrix, targets, observable.name)
        return cls(np.asarray(observable), targets)

    def validate_against(self, state: DensityState) -> None:
        """Check the matrix dimension against the state's register/targets."""
        if self.targets is None:
            expected = state.layout.total_dim
            if self.matrix.shape != (expected, expected):
                raise SemanticsError(
                    "observable dimension does not match the input state register"
                )
            return
        expected = int(np.prod([state.layout.dim_of(name) for name in self.targets]))
        if self.matrix.shape != (expected, expected):
            raise SemanticsError("observable dimension does not match the target variables")


def _plain_denote(program: Program, state: DensityState, binding: ParameterBinding | None) -> DensityState:
    """Uncached fallback used when a backend is called outside an estimator."""
    from repro.semantics import denotational

    return denotational.denote(program, state, binding)


class Backend(abc.ABC):
    """The execution half of the pipeline: turn denoted states into numbers.

    Every method receives ``denote``, the estimator's cached denotation
    callable; backends must obtain *all* simulated output states through it
    so that the m-program multisets shared across parameters and data points
    are each simulated at most once per ``(binding, state)`` point.
    """

    #: Human-readable backend identifier (used in reports and reprs).
    name: str = "abstract"

    @abc.abstractmethod
    def value(
        self,
        program: Program,
        observable: ObservableSpec,
        state: DensityState,
        binding: ParameterBinding | None,
        *,
        denote: DenoteFn = _plain_denote,
    ) -> float:
        """Estimate ``tr(O[[P(θ*)]]ρ)`` (Definition 5.1)."""

    @abc.abstractmethod
    def derivative(
        self,
        program_set: "DerivativeProgramSet",
        observable: ObservableSpec,
        state: DensityState,
        binding: ParameterBinding | None,
        *,
        denote: DenoteFn = _plain_denote,
    ) -> float:
        """Estimate the derivative readout of one compiled multiset (Section 7)."""

    # -- batching seam -----------------------------------------------------
    #
    # The default implementations are sequential; a parallel executor
    # overrides these to fan the independent simulations out to workers
    # without touching the Estimator or the exact/sampled readout logic.

    def value_batch(
        self,
        program: Program,
        observable: ObservableSpec,
        inputs: Sequence[tuple[DensityState, ParameterBinding | None]],
        *,
        denote: DenoteFn = _plain_denote,
    ) -> list[float]:
        """Evaluate :meth:`value` for a batch of ``(state, binding)`` points."""
        return [
            self.value(program, observable, state, binding, denote=denote)
            for state, binding in inputs
        ]

    def derivative_batch(
        self,
        program_sets: Sequence["DerivativeProgramSet"],
        observable: ObservableSpec,
        inputs: Sequence[tuple[DensityState, ParameterBinding | None]],
        *,
        denote: DenoteFn = _plain_denote,
    ) -> list[list[float]]:
        """Evaluate every multiset's readout at every point: one gradient row per input."""
        return [
            [
                self.derivative(program_set, observable, state, binding, denote=denote)
                for program_set in program_sets
            ]
            for state, binding in inputs
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"{type(self).__name__}()"


class ExactDensityBackend(Backend):
    """Exact readouts on the density-matrix simulator.

    ``value`` is ``tr(Oρ_out)`` computed by contraction; ``derivative`` is
    the sum ``Σ_i tr((Z_A ⊗ O)[[P'_i]](|0⟩⟨0| ⊗ ρ))`` with the Kronecker
    product never materialized (local-target path or blockwise ancilla
    contraction).
    """

    name = "exact-density"

    def value(
        self,
        program: Program,
        observable: ObservableSpec,
        state: DensityState,
        binding: ParameterBinding | None,
        *,
        denote: DenoteFn = _plain_denote,
    ) -> float:
        output = denote(program, state, binding)
        if observable.targets is None:
            return output.expectation(observable.matrix)
        return output.expectation(observable.matrix, observable.targets)

    def derivative(
        self,
        program_set: "DerivativeProgramSet",
        observable: ObservableSpec,
        state: DensityState,
        binding: ParameterBinding | None,
        *,
        denote: DenoteFn = _plain_denote,
    ) -> float:
        observable.validate_against(state)
        extended = state.extended(program_set.ancilla, dim=2, front=True)
        total = 0.0
        if observable.targets is not None:
            combined = np.kron(ANCILLA_OBSERVABLE, observable.matrix)
            combined_targets = (program_set.ancilla,) + observable.targets
            for program in program_set.nonaborting_programs():
                output = denote(program, extended, binding)
                total += output.expectation(combined, combined_targets)
            return total
        for program in program_set.nonaborting_programs():
            output = denote(program, extended, binding)
            total += kernels.two_factor_expectation_density(
                output.matrix, 2, ANCILLA_OBSERVABLE, observable.matrix
            )
        return total


class ShotSamplingBackend(Backend):
    """The Chernoff-bounded sampling scheme of Section 7.

    Every compiled program is still simulated exactly (through the shared
    cached ``denote``), but the readout is *sampled*: the observable is
    spectrally decomposed once, the per-program outcome distributions are
    tabulated, and the sum over the ``m``-program multiset is estimated with
    the uniform-mixture trick at the ``O(m²/δ²)`` repetition count.

    Local observables (``targets``) are supported by decomposing the small
    target operator and reading Born-rule weights off the reduced density
    matrix of the ancilla + target factors — the full-space observable is
    never formed.
    """

    name = "shot-sampling"

    def __init__(
        self,
        precision: float = 0.1,
        confidence: float = 0.95,
        rng: np.random.Generator | None = None,
    ):
        if precision <= 0:
            raise SemanticsError("the sampling precision must be positive")
        if not 0 < confidence < 1:
            raise SemanticsError("the sampling confidence must lie strictly in (0, 1)")
        self.precision = float(precision)
        self.confidence = float(confidence)
        self.rng = rng
        #: id(matrix) -> (pinned matrix, measurement, eigenvalues)
        self._spectral_memo: dict[int, tuple] = {}

    #: Bound on memoized spectral decompositions (a backend normally serves
    #: one or two observables; the bound is a leak backstop).
    _SPECTRAL_MEMO_LIMIT = 16

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"ShotSamplingBackend(precision={self.precision}, "
            f"confidence={self.confidence})"
        )

    def _spectral(self, matrix: np.ndarray):
        """Spectrally decompose the observable once per matrix object.

        The estimator passes the same :class:`ObservableSpec` (hence the
        same matrix object) for every point and parameter, so the ``O(8^n)``
        eigendecomposition is memoized by identity — entries pin their
        matrix so an ``id`` can never be recycled while its key is live.
        """
        entry = self._spectral_memo.get(id(matrix))
        if entry is not None and entry[0] is matrix:
            return entry[1], entry[2]
        measurement, eigenvalues = Observable(np.asarray(matrix)).spectral_measurement()
        while len(self._spectral_memo) >= self._SPECTRAL_MEMO_LIMIT:
            self._spectral_memo.pop(next(iter(self._spectral_memo)))
        self._spectral_memo[id(matrix)] = (matrix, measurement, eigenvalues)
        return measurement, eigenvalues

    def value(
        self,
        program: Program,
        observable: ObservableSpec,
        state: DensityState,
        binding: ParameterBinding | None,
        *,
        denote: DenoteFn = _plain_denote,
    ) -> float:
        observable.validate_against(state)
        output = denote(program, state, binding)
        if observable.targets is None:
            rho = output.matrix
        else:
            # Reduce once onto the target factors; the local observable is
            # then sampled on the small reduced density matrix.
            axes = output.layout.axes_of(observable.targets)
            rho = kernels.reduced_density(output.matrix, output.layout.dims, axes)
        measurement, eigenvalues = self._spectral(observable.matrix)
        probabilities = measurement.probabilities(rho)
        distribution = normalized_distribution(
            list(eigenvalues), list(probabilities.values())
        )
        # A one-element sum: exactly the single-observable Chernoff estimate
        # of repro.sim.shots.estimate_expectation, with the decomposition
        # memoized instead of redone per call.
        return estimate_distribution_sum(
            [distribution],
            precision=self.precision,
            confidence=self.confidence,
            rng=self.rng,
        )

    def derivative(
        self,
        program_set: "DerivativeProgramSet",
        observable: ObservableSpec,
        state: DensityState,
        binding: ParameterBinding | None,
        *,
        denote: DenoteFn = _plain_denote,
    ) -> float:
        observable.validate_against(state)
        measurement, eigenvalues = self._spectral(observable.matrix)
        ancilla_signs = np.real(np.diag(ANCILLA_OBSERVABLE))
        extended = state.extended(program_set.ancilla, dim=2, front=True)
        distributions = []
        for program in program_set.nonaborting_programs():
            output = denote(program, extended, binding)
            if observable.targets is None:
                dim = state.layout.total_dim
                blocks = output.matrix.reshape(2, dim, 2, dim)
            else:
                axes = output.layout.axes_of(
                    (program_set.ancilla,) + observable.targets
                )
                reduced = kernels.reduced_density(
                    output.matrix, output.layout.dims, axes
                )
                dim = reduced.shape[0] // 2
                blocks = reduced.reshape(2, dim, 2, dim)
            values = []
            weights = []
            for sign_index, sign in enumerate(ancilla_signs):
                block = blocks[sign_index, :, sign_index, :]
                for projector, eigenvalue in zip(measurement.operators, eigenvalues):
                    values.append(sign * eigenvalue)
                    weights.append(float(np.real(np.einsum("ij,ji->", projector, block))))
            distributions.append(normalized_distribution(values, weights))
        return estimate_distribution_sum(
            distributions,
            precision=self.precision,
            confidence=self.confidence,
            rng=self.rng,
        )
