"""``python -m repro.analysis`` — lint program files from the command line.

Parses each argument (a ``.qw`` program file, or a directory searched
recursively for ``*.qw``) via :mod:`repro.lang.parser`, runs every
registered lint rule, prints the findings one per line, and exits nonzero
when any error-severity finding is present (``--strict`` escalates *any*
finding to a failure).  Parse failures are reported as ``RPR000`` errors
rather than tracebacks, so a corpus sweep reports every broken file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.diagnostics import Diagnostic, DiagnosticBag, Severity
from repro.analysis.lint import all_rules, lint_program
from repro.errors import ReproError
from repro.lang.parser import parse_program

__all__ = ["main"]


def _collect_files(arguments: Iterable[str]) -> list[Path]:
    files: list[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.qw")))
        else:
            files.append(path)
    return files


def _lint_file(path: Path) -> DiagnosticBag:
    source = str(path)
    try:
        text = path.read_text()
    except OSError as error:
        bag = DiagnosticBag()
        bag.report(
            Severity.ERROR, "RPR000", f"cannot read file: {error}", source=source
        )
        return bag
    try:
        program = parse_program(text)
    except ReproError as error:
        bag = DiagnosticBag()
        bag.report(
            Severity.ERROR, "RPR000", f"parse error: {error}", source=source
        )
        return bag
    return lint_program(program, source=source)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Lint quantum while-programs (see repro.analysis.lint for the rules).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="FILE|DIR",
        help="program files (.qw) or directories searched recursively",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on any finding, not only errors",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rule table and exit",
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        for registered in all_rules():
            print(f"{registered.code}  {registered.severity.label:7s}  {registered.name}")
        return 0
    if not options.paths:
        parser.error("no input files (pass program files or directories)")

    files = _collect_files(options.paths)
    if not files:
        print("no .qw program files found", file=sys.stderr)
        return 1

    findings: list[Diagnostic] = []
    for path in files:
        bag = _lint_file(path)
        for diagnostic in bag:
            findings.append(diagnostic)
            print(diagnostic.format())

    errors = sum(1 for d in findings if d.severity >= Severity.ERROR)
    warnings = sum(1 for d in findings if d.severity == Severity.WARNING)
    print(
        f"checked {len(files)} file(s): {errors} error(s), {warnings} warning(s)",
        file=sys.stderr,
    )
    if errors or (options.strict and findings):
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    sys.exit(main())
