"""Purity analysis: which programs are statevector-simulable?

The density-matrix simulator is the reference substrate because it
represents probabilistic branching exactly — but it pays ``O(4^n)`` memory
and ``O(2^k · 4^n)`` per gate.  Most VQC workloads (the Figure 6
classifiers, the Table 2/3 circuit instances and the non-aborting members
of their derivative multisets) never branch: they are straight-line
sequences of unitaries, so a *pure* input stays pure and ``O(2^n)``
amplitudes suffice.

This module decides, statically and per program, whether ``[[P]]`` maps
pure states to pure states:

* ``case`` and ``while`` guards measure the register — the output is a
  probabilistic mixture of branches, hence mixed in general;
* the additive choice ``+`` has a multiset semantics, not a single
  pure-state trajectory;
* a *mid-circuit* ``q := |0⟩`` resets a variable that earlier statements
  may have entangled with the rest of the register — the reset channel
  then produces a mixed marginal.  A *leading* initialize (no earlier
  statement touched the variable) is allowed: on the product-form inputs
  the estimation pipeline feeds in, it keeps the state pure, and the
  pure-state evaluator still verifies the entanglement condition at
  runtime (raising :class:`~repro.errors.PurityError` on violation);
* ``abort``, ``skip`` and unitary applications preserve purity trivially
  (``abort`` yields the zero vector, which represents the zero partial
  density operator exactly).

The verdict is memoized by program identity — ASTs are immutable and the
backends consult the analysis on every call of the execution hot path.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.lang.ast import (
    Abort,
    Case,
    Init,
    Program,
    Seq,
    Skip,
    Sum,
    UnitaryApp,
    While,
)

__all__ = ["PurityReport", "purity_report", "is_statevector_simulable"]


@dataclass(frozen=True)
class PurityReport:
    """The verdict of the purity analysis on one program.

    ``statevector_simulable`` is the headline answer; ``reason`` names the
    first blocking construct when it is ``False`` (for diagnostics and
    error messages) and is ``None`` otherwise.
    """

    statevector_simulable: bool
    reason: str | None = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience only
        return self.statevector_simulable


def _scan(program: Program, touched: set[str]) -> str | None:
    """Walk the program in execution order; return the first purity blocker.

    ``touched`` accumulates the variables earlier statements may have acted
    on, so that a ``q := |0⟩`` is classified as leading (allowed) or
    mid-circuit (blocking).
    """
    if isinstance(program, (Abort, Skip)):
        return None
    if isinstance(program, Init):
        if program.qubit in touched:
            return (
                f"mid-circuit initialize of {program.qubit!r} "
                "(the reset channel on a possibly-entangled variable mixes the state)"
            )
        touched.add(program.qubit)
        return None
    if isinstance(program, UnitaryApp):
        touched.update(program.qubits)
        return None
    if isinstance(program, Seq):
        return _scan(program.first, touched) or _scan(program.second, touched)
    if isinstance(program, Case):
        return f"measurement-controlled case on {list(program.qubits)}"
    if isinstance(program, While):
        return f"bounded while guard on {list(program.qubits)}"
    if isinstance(program, Sum):
        return "additive choice '+' (multiset semantics)"
    return f"unknown program node {type(program).__name__}"


#: FIFO-bounded memo of purity verdicts; entries pin their program object so
#: an ``id`` can never be recycled while its key is live (same convention as
#: the denotation cache).
_REPORT_MEMO: "OrderedDict[int, tuple[Program, PurityReport]]" = OrderedDict()
_REPORT_MEMO_LIMIT = 8192


def purity_report(program: Program) -> PurityReport:
    """Analyze one program; memoized by program identity."""
    entry = _REPORT_MEMO.get(id(program))
    if entry is not None and entry[0] is program:
        return entry[1]
    reason = _scan(program, set())
    report = PurityReport(statevector_simulable=reason is None, reason=reason)
    while len(_REPORT_MEMO) >= _REPORT_MEMO_LIMIT:
        _REPORT_MEMO.popitem(last=False)
    _REPORT_MEMO[id(program)] = (program, report)
    return report


def is_statevector_simulable(program: Program) -> bool:
    """``True`` when ``[[P]]`` maps pure states to pure states (see module docs)."""
    return purity_report(program).statevector_simulable
