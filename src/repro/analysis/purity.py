"""Purity / simulability analysis: which execution tier can run a program?

The density-matrix simulator is the reference substrate because it
represents probabilistic branching exactly — but it pays ``O(4^n)`` memory
and ``O(2^k · 4^n)`` per gate.  Most VQC workloads (the Figure 6
classifiers, the Table 2/3 circuit instances and the non-aborting members
of their derivative multisets) never branch: they are straight-line
sequences of unitaries, so a *pure* input stays pure and ``O(2^n)``
amplitudes suffice.  Programs that *do* branch are still cheap when the
branching is bounded: a measured branch of a pure state is an ensemble of
sub-normalized pure states, so splitting the trajectory per outcome keeps
the computation at ``O(B · 2^n)`` for ``B`` branches
(:mod:`repro.sim.trajectories`) instead of ``O(4^n)``.

This module classifies, statically and per program, which tier applies:

* :attr:`SimulationClass.PURE` — ``[[P]]`` maps pure states to pure states:
  no ``case``/``while`` guards, no additive ``+``, and no *mid-circuit*
  ``q := |0⟩`` (a reset of a variable that earlier statements may have
  entangled mixes the state; a *leading* initialize is allowed and verified
  at runtime, raising :class:`~repro.errors.PurityError` on violation);
* :attr:`SimulationClass.BRANCHING` — the program measures (``case``,
  ``while``), uses the additive choice ``+``, or resets mid-circuit, but a
  branch-splitting trajectory simulation applies: every construct maps a
  pure-state ensemble to a pure-state ensemble.  The report carries a
  static *branch-count bound* so the backend can decide when ``B · 2^n``
  beats ``4^n``;
* :attr:`SimulationClass.DENSITY_ONLY` — an unknown program node; only the
  reference density simulator is trusted to run it.

The static branch bound counts measurement-driven splits — ``case``
contributes the sum of its branches' bounds over all arities, a bounded
``while(T)`` the bounded unrolling ``Σ_{t<T} bound(body)^t`` (the
still-running branch after ``T`` iterations aborts exactly), ``+`` the sum
of its summands, sequencing the product.  Mid-circuit resets split only
when the runtime entanglement check finds a non-product branch (by at most
the variable's dimension) and are covered by the trajectory evaluator's
runtime branch cap rather than the static bound.

Verdicts are memoized by program identity — ASTs are immutable and the
backends consult the analysis on every call of the execution hot path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.analysis._memo import IdentityMemo

from repro.lang.ast import (
    Abort,
    Case,
    Init,
    Program,
    Seq,
    Skip,
    Sum,
    UnitaryApp,
    While,
)

__all__ = [
    "BRANCH_BOUND_CAP",
    "PurityReport",
    "SimulationClass",
    "SimulationReport",
    "is_statevector_simulable",
    "purity_report",
    "simulation_report",
]

#: Saturation value for the static branch bound: bounds are only compared
#: against runtime branch caps orders of magnitude smaller, so anything past
#: this is reported as "effectively unbounded" without big-integer blowups.
BRANCH_BOUND_CAP = 2**62


class SimulationClass(enum.Enum):
    """The cheapest execution tier the static analysis certifies."""

    PURE = "pure"
    BRANCHING = "branching"
    DENSITY_ONLY = "density-only"


@dataclass(frozen=True)
class PurityReport:
    """The verdict of the purity analysis on one program.

    ``statevector_simulable`` is the headline answer; ``reason`` names the
    first blocking construct when it is ``False`` (for diagnostics and
    error messages) and is ``None`` otherwise.
    """

    statevector_simulable: bool
    reason: str | None = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience only
        return self.statevector_simulable


@dataclass(frozen=True)
class SimulationReport:
    """The tiered verdict: simulation class plus the static branch bound.

    ``branch_bound`` bounds the number of sub-normalized pure branches a
    trajectory simulation can produce (saturating at
    :data:`BRANCH_BOUND_CAP`); it is ``1`` exactly for
    :attr:`SimulationClass.PURE` programs and meaningless for
    :attr:`SimulationClass.DENSITY_ONLY`.  ``additive`` flags programs
    containing the ``+`` choice (their observable semantics is the sum over
    the compiled multiset).  ``reason`` names the first construct that
    blocks the pure tier (``None`` when the program is pure).
    """

    simulation_class: SimulationClass
    branch_bound: int
    additive: bool = False
    reason: str | None = None


def _saturating_add(a: int, b: int) -> int:
    return min(a + b, BRANCH_BOUND_CAP)


def _saturating_mul(a: int, b: int) -> int:
    return a if a >= BRANCH_BOUND_CAP or b == 1 else min(a * b, BRANCH_BOUND_CAP)


class _Survey:
    """One execution-order walk collecting every field of the report.

    ``touched`` accumulates the variables earlier statements may have acted
    on, so that a ``q := |0⟩`` is classified as leading (allowed on the pure
    tier) or mid-circuit (branching: the trajectory evaluator resets or
    Kraus-splits it at runtime).
    """

    __slots__ = ("reason", "additive", "unknown")

    def __init__(self) -> None:
        self.reason: str | None = None
        self.additive = False
        self.unknown = False

    def _block(self, reason: str) -> None:
        if self.reason is None:
            self.reason = reason

    def walk(self, program: Program, touched: set[str]) -> int:
        """Return the branch bound of ``program``; records blockers on the way."""
        if isinstance(program, (Abort, Skip)):
            return 1
        if isinstance(program, Init):
            if program.qubit in touched:
                self._block(
                    f"mid-circuit initialize of {program.qubit!r} "
                    "(the reset channel on a possibly-entangled variable mixes the state)"
                )
            touched.add(program.qubit)
            return 1
        if isinstance(program, UnitaryApp):
            touched.update(program.qubits)
            return 1
        if isinstance(program, Seq):
            first = self.walk(program.first, touched)
            return _saturating_mul(first, self.walk(program.second, touched))
        if isinstance(program, Case):
            self._block(f"measurement-controlled case on {list(program.qubits)}")
            touched.update(program.qubits)
            bound = 0
            branch_touched: set[str] = set()
            for _, branch in program.branches:
                local = set(touched)
                bound = _saturating_add(bound, self.walk(branch, local))
                branch_touched |= local
            touched |= branch_touched
            return bound
        if isinstance(program, While):
            self._block(f"bounded while guard on {list(program.qubits)}")
            touched.update(program.qubits)
            local = set(touched)
            body = self.walk(program.body, local)
            touched |= local
            # One terminated branch per unrolled prefix of 0..T-1 body runs;
            # the branch still running after T iterations aborts exactly.
            bound, power = 0, 1
            for _ in range(program.bound):
                bound = _saturating_add(bound, power)
                power = _saturating_mul(power, body)
            return bound
        if isinstance(program, Sum):
            self._block("additive choice '+' (multiset semantics)")
            self.additive = True
            left = self.walk(program.left, touched)
            return _saturating_add(left, self.walk(program.right, touched))
        self.unknown = True
        self._block(f"unknown program node {type(program).__name__}")
        return BRANCH_BOUND_CAP


#: Weakref-validated identity memo of simulation reports: keys are
#: ``id(program)`` but entries never pin the program, and a recycled ``id``
#: can never be served a stale verdict (see :mod:`repro.analysis._memo`).
#: Each value is a mutable pair ``[SimulationReport, PurityReport | None]``
#: whose second slot lazily holds the derived purity verdict, so both
#: report spellings are identity-stable.
_REPORT_MEMO: IdentityMemo[list] = IdentityMemo(8192)


def simulation_report(program: Program) -> SimulationReport:
    """Classify one program into an execution tier; memoized by identity."""
    entry = _REPORT_MEMO.get(program)
    if entry is not None:
        return entry[0]
    survey = _Survey()
    bound = survey.walk(program, set())
    if survey.unknown:
        klass = SimulationClass.DENSITY_ONLY
    elif survey.reason is None:
        klass = SimulationClass.PURE
    else:
        klass = SimulationClass.BRANCHING
    report = SimulationReport(
        simulation_class=klass,
        branch_bound=bound,
        additive=survey.additive,
        reason=survey.reason,
    )
    _REPORT_MEMO.put(program, [report, None])
    return report


def purity_report(program: Program) -> PurityReport:
    """The boolean pure-tier verdict (see :func:`simulation_report` for tiers)."""
    report = simulation_report(program)
    entry = _REPORT_MEMO.get(program)
    if entry is not None and entry[1] is not None:
        return entry[1]
    purity = PurityReport(
        statevector_simulable=report.simulation_class is SimulationClass.PURE,
        reason=report.reason,
    )
    if entry is not None:
        entry[1] = purity
    return purity


def is_statevector_simulable(program: Program) -> bool:
    """``True`` when ``[[P]]`` maps pure states to pure states (see module docs)."""
    return simulation_report(program).simulation_class is SimulationClass.PURE
