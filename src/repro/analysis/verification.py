"""Cross-validation of the paper's propositions on concrete programs.

These helpers are deliberately *semantic*: they execute programs (or their
derivatives) and compare independent evaluation paths against each other.
The unit and property-based tests call them on hand-written and randomly
generated programs; the resource-bound benchmark calls them on every
evaluation instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.lang.ast import Program
from repro.lang.parameters import Parameter, ParameterBinding
from repro.sim.density import DensityState
from repro.semantics.denotational import denote
from repro.semantics.operational import operational_denotation
from repro.analysis.resources import derivative_program_count, occurrence_count


@dataclass(frozen=True)
class ResourceBoundCheck:
    """The Proposition 7.2 instance ``|#∂P/∂θ_j| ≤ OC_j(P(θ))``, with slack.

    Truth-tests as the proposition's verdict (so ``assert
    check_resource_bound(...)`` keeps working) and unpacks as the
    ``(occurrence_count, derivative_programs, slack)`` triple the
    resource-bound benchmark records.
    """

    occurrence_count: int
    derivative_programs: int

    @property
    def slack(self) -> int:
        return self.occurrence_count - self.derivative_programs

    @property
    def holds(self) -> bool:
        return self.derivative_programs <= self.occurrence_count

    def __bool__(self) -> bool:
        return self.holds

    def __iter__(self) -> Iterator[int]:
        yield self.occurrence_count
        yield self.derivative_programs
        yield self.slack


def check_resource_bound(program: Program, parameter: Parameter) -> ResourceBoundCheck:
    """Proposition 7.2: ``|#∂P/∂θ_j| ≤ OC_j(P(θ))``.

    Returns the full :class:`ResourceBoundCheck` instance (truthy exactly
    when the bound holds) so callers and the benchmark share one code path.
    """
    return ResourceBoundCheck(
        occurrence_count=occurrence_count(program, parameter),
        derivative_programs=derivative_program_count(program, parameter),
    )


def check_operational_denotational_agreement(
    program: Program,
    state: DensityState,
    binding: ParameterBinding | None = None,
    *,
    atol: float = 1e-8,
) -> bool:
    """Proposition 3.1: the summed terminal multiset equals the denotational output.

    Applies to normal (non-additive) programs.
    """
    operational = operational_denotation(program, state, binding)
    denotational = denote(program, state, binding)
    return bool(np.allclose(operational.matrix, denotational.matrix, atol=atol))
