"""Cross-validation of the paper's propositions on concrete programs.

These helpers are deliberately *semantic*: they execute programs (or their
derivatives) and compare independent evaluation paths against each other.
The unit and property-based tests call them on hand-written and randomly
generated programs; the resource-bound benchmark calls them on every
evaluation instance.
"""

from __future__ import annotations

import numpy as np

from repro.lang.ast import Program
from repro.lang.parameters import Parameter, ParameterBinding
from repro.sim.density import DensityState
from repro.semantics.denotational import denote
from repro.semantics.operational import operational_denotation
from repro.analysis.resources import derivative_program_count, occurrence_count


def check_resource_bound(program: Program, parameter: Parameter) -> bool:
    """Proposition 7.2: ``|#∂P/∂θ_j| ≤ OC_j(P(θ))``."""
    return derivative_program_count(program, parameter) <= occurrence_count(program, parameter)


def check_operational_denotational_agreement(
    program: Program,
    state: DensityState,
    binding: ParameterBinding | None = None,
    *,
    atol: float = 1e-8,
) -> bool:
    """Proposition 3.1: the summed terminal multiset equals the denotational output.

    Applies to normal (non-additive) programs.
    """
    operational = operational_denotation(program, state, binding)
    denotational = denote(program, state, binding)
    return bool(np.allclose(operational.matrix, denotational.matrix, atol=atol))
