"""Abstract-interpretation cost model for the execution tiers.

For each program the model computes, per tier, an *interval* of model-unit
flop counts and peak working-set bytes — the same units the instrumented
kernels charge (:func:`repro.sim.kernels.count_kernel_ops`), so the upper
bounds are *testably sound*: the hypothesis suite asserts that instrumented
actuals never exceed the predicted interval maxima.

The abstract domain tracks, per unit of input stack width:

* ``F`` — an interval of kernel model-flops (a k-local operator contraction
  on a ``d^n`` vector charges ``e · d^n`` units for operator dimension
  ``e``; density conjugations charge ``2 · e · d^{2n}``; resets, guards and
  readouts follow the kernels' own charging, see :mod:`repro.sim.kernels`);
* ``W`` — an interval of output stack width (trajectory branching: ``case``
  splits per outcome, ``while(T)`` accumulates one terminated branch per
  unrolled prefix, ``+`` evaluates both summands — the static
  *amplitude-stack width* derived from the same saturating recurrences as
  :func:`repro.analysis.purity.simulation_report`);
* ``P`` — the peak width any *single* kernel call observes (the counters
  track per-call working sets, and peak bytes are ``2 · B · d^n · 16`` for
  a width-``B`` stack of complex amplitudes).

Transfer functions mirror the evaluators exactly: the pure tier
(:mod:`repro.sim.pure`) and the trajectory tier
(:mod:`repro.sim.trajectories`) share the vector rules (a pure program's
width degenerates to 1), the density tier mirrors
:mod:`repro.semantics.denotational`.  Additive programs on the *density*
tier are evaluated member-by-member through the compiled multiset, so their
upper bound scales the single-pass cost by the saturating member bound.

Reports are memoized per program identity (weakref-validated, see
:mod:`repro.analysis._memo`) and per ``(dims, observable_dim)`` key:
analysis on the scheduling hot path must cost no more than a dict probe.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Mapping

from repro.analysis._memo import IdentityMemo
from repro.analysis.purity import SimulationClass, simulation_report
from repro.analysis.resources import gate_count, qubit_count
from repro.lang.ast import (
    Abort,
    Case,
    Init,
    Program,
    Seq,
    Skip,
    Sum,
    UnitaryApp,
    While,
)

__all__ = [
    "CostInterval",
    "CostReport",
    "TierCost",
    "cost_report",
]

_BYTES_PER_AMPLITUDE = 16.0  # complex128
_WORKING_FACTOR = 2.0  # input + output copies of the working array


def _mul(a: float, b: float) -> float:
    """Product with the measure-theoretic ``0 · inf = 0`` convention."""
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


def _pow(base: float, exponent: float) -> float:
    if base == 0.0:
        return 0.0 if exponent > 0 else 1.0
    try:
        return base**exponent
    except OverflowError:
        return math.inf


@dataclass(frozen=True)
class CostInterval:
    """A closed interval ``[lo, hi]`` of non-negative model units."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.lo <= self.hi):
            raise ValueError(f"invalid cost interval [{self.lo}, {self.hi}]")

    @staticmethod
    def exact(value: float) -> "CostInterval":
        return CostInterval(float(value), float(value))

    @staticmethod
    def zero() -> "CostInterval":
        return CostInterval(0.0, 0.0)

    def __add__(self, other: "CostInterval") -> "CostInterval":
        return CostInterval(self.lo + other.lo, self.hi + other.hi)

    def times(self, other: "CostInterval") -> "CostInterval":
        """Interval product (both operands non-negative)."""
        return CostInterval(_mul(self.lo, other.lo), _mul(self.hi, other.hi))

    def scaled(self, factor: float) -> "CostInterval":
        return CostInterval(_mul(self.lo, factor), _mul(self.hi, factor))

    def hull(self, other: "CostInterval") -> "CostInterval":
        return CostInterval(min(self.lo, other.lo), max(self.hi, other.hi))

    def contains(self, value: float, *, rel: float = 1e-9) -> bool:
        slack = rel * max(1.0, abs(value))
        return self.lo - slack <= value <= self.hi + slack

    def __str__(self) -> str:
        return f"[{self.lo:.6g}, {self.hi:.6g}]"


@dataclass(frozen=True)
class TierCost:
    """Predicted cost of running one program once on one tier."""

    flops: CostInterval
    stack_width: CostInterval
    peak_bytes: CostInterval


@dataclass(frozen=True)
class _Vec:
    """Vector-tier abstract value per unit of input stack width."""

    flops: CostInterval
    width: CostInterval
    peak: float  # peak per-call stack width (upper bound)


class _CostWalk:
    """One recursive walk computing both tiers' transfer functions."""

    __slots__ = ("dims", "total")

    def __init__(self, dims: Mapping[str, int]) -> None:
        self.dims = dims
        self.total = 1.0
        for dim in dims.values():
            self.total = _mul(self.total, float(dim))

    def _arity_dim(self, qubits: tuple[str, ...]) -> float:
        extent = 1.0
        for qubit in qubits:
            extent *= float(self.dims.get(qubit, 2))
        return extent

    # -- vector tier (pure + trajectory) ------------------------------------------

    def vector(self, program: Program) -> _Vec:
        total = self.total
        if isinstance(program, Abort):
            # The trajectory tier prunes the zero-mass branch (width 0); the
            # pure tier keeps contracting the zeroed row (width 1), so the
            # upper bound must not collapse the downstream cost.
            return _Vec(CostInterval.zero(), CostInterval(0.0, 1.0), 1.0)
        if isinstance(program, Skip):
            return _Vec(CostInterval.zero(), CostInterval.exact(1.0), 1.0)
        if isinstance(program, Init):
            d = float(self.dims.get(program.qubit, 2))
            # Happy path: one reset kernel (d · total).  Entangled input:
            # the evaluator Kraus-splits into d one-axis operators after the
            # failed reset attempt (d · total + d² · total), fanning the
            # stack out by at most d.
            return _Vec(
                CostInterval(_mul(d, total), _mul(d * (1.0 + d), total)),
                CostInterval(1.0, d),
                d,
            )
        if isinstance(program, UnitaryApp):
            extent = self._arity_dim(program.qubits)
            return _Vec(
                CostInterval.exact(_mul(extent, total)),
                CostInterval.exact(1.0),
                1.0,
            )
        if isinstance(program, Seq):
            first = self.vector(program.first)
            second = self.vector(program.second)
            return _Vec(
                first.flops + second.flops.times(first.width),
                first.width.times(second.width),
                max(first.peak, _mul(first.width.hi, second.peak)),
            )
        if isinstance(program, Case):
            outcomes = len(program.branches)
            guard = _mul(float(outcomes) * self._arity_dim(program.qubits), total)
            branches = [self.vector(branch) for _, branch in program.branches]
            flops_hi = guard + sum(vec.flops.hi for vec in branches)
            flops_lo = guard + min(vec.flops.lo for vec in branches)
            width_hi = sum(vec.width.hi for vec in branches)
            # Zero-mass pruning may drop every branch but the lightest.
            width_lo = min(vec.width.lo for vec in branches)
            peak = max([1.0] + [vec.peak for vec in branches])
            return _Vec(
                CostInterval(flops_lo, flops_hi),
                CostInterval(width_lo, width_hi),
                peak,
            )
        if isinstance(program, While):
            guard = _mul(2.0 * self._arity_dim(program.qubits), total)
            body = self.vector(program.body)
            bound = float(program.bound)
            growth = body.width.hi
            # u_t = growth^t is the (upper-bound) stack width entering
            # iteration t; each iteration applies both outcome operators to
            # the full stack, runs the body on the continuing branch, and
            # banks one terminated branch of width u_t.
            if growth == 1.0:
                series, u_last = bound, 1.0
            elif growth == 0.0:
                series, u_last = 1.0, 1.0
            else:
                u_last = _pow(growth, bound - 1.0)
                grown = _pow(growth, bound)
                series = math.inf if math.isinf(grown) else (grown - 1.0) / (growth - 1.0)
            flops_hi = _mul(series, guard + body.flops.hi)
            # Certified truncation and pruning can cut every iteration after
            # the first; the first guard split always runs.
            return _Vec(
                CostInterval(guard, flops_hi),
                CostInterval(0.0, series),
                max(1.0, _mul(u_last, max(1.0, body.peak))),
            )
        if isinstance(program, Sum):
            left = self.vector(program.left)
            right = self.vector(program.right)
            return _Vec(
                left.flops + right.flops,
                left.width + right.width,
                max(1.0, left.peak, right.peak),
            )
        # Unknown node: nothing sound can be said about the vector tier.
        return _Vec(
            CostInterval(0.0, math.inf), CostInterval(0.0, math.inf), math.inf
        )

    # -- density tier --------------------------------------------------------------

    def density(self, program: Program) -> CostInterval:
        total_sq = _mul(self.total, self.total)
        if isinstance(program, (Abort, Skip)):
            return CostInterval.zero()
        if isinstance(program, Init):
            d = float(self.dims.get(program.qubit, 2))
            # The reset channel is d Kraus conjugations of one-axis operators.
            return CostInterval.exact(_mul(2.0 * d * d, total_sq))
        if isinstance(program, UnitaryApp):
            extent = self._arity_dim(program.qubits)
            return CostInterval.exact(_mul(2.0 * extent, total_sq))
        if isinstance(program, Seq):
            return self.density(program.first) + self.density(program.second)
        if isinstance(program, Case):
            outcomes = len(program.branches)
            guard = _mul(2.0 * float(outcomes) * self._arity_dim(program.qubits), total_sq)
            branches = [self.density(branch) for _, branch in program.branches]
            return CostInterval(
                guard + sum(b.lo for b in branches),
                guard + sum(b.hi for b in branches),
            )
        if isinstance(program, While):
            # Each of the `bound` unrolled iterations conjugates both
            # measurement operators and runs the body on the continuing arm.
            guard = _mul(4.0 * self._arity_dim(program.qubits), total_sq)
            body = self.density(program.body)
            bound = float(program.bound)
            return CostInterval(_mul(bound, guard + body.lo), _mul(bound, guard + body.hi))
        if isinstance(program, Sum):
            return self.density(program.left) + self.density(program.right)
        return CostInterval(0.0, math.inf)

    # -- unroll depth --------------------------------------------------------------

    def depth(self, program: Program) -> float:
        if isinstance(program, (Abort, Skip, Init, UnitaryApp)):
            return 1.0
        if isinstance(program, Seq):
            return self.depth(program.first) + self.depth(program.second)
        if isinstance(program, Case):
            return 1.0 + max(self.depth(branch) for _, branch in program.branches)
        if isinstance(program, While):
            return _mul(float(program.bound), 1.0 + self.depth(program.body))
        if isinstance(program, Sum):
            return max(self.depth(program.left), self.depth(program.right))
        return 1.0


@dataclass(frozen=True)
class CostReport:
    """Per-tier cost intervals for one program on one register shape.

    ``tier`` names the tier the routing analysis selects (``"pure"``,
    ``"trajectory"`` or ``"density"``); :attr:`routed` is its
    :class:`TierCost` and :attr:`predicted_cost` its flop upper bound — the
    number the planner orders groups by and ``max_cost`` admission compares
    against.  :attr:`worst_case` additionally absorbs a mid-run demotion to
    the density tier (mixed input, runtime :class:`~repro.errors.PurityError`
    or trajectory overflow), which is the bound that holds unconditionally.
    """

    tier: str
    reason: str | None
    additive: bool
    branch_bound: int
    unroll_depth: float
    gate_count: int
    qubit_count: int
    total_dim: float
    dims: tuple[tuple[str, int], ...]
    observable_dim: float
    pure: TierCost
    trajectory: TierCost
    density: TierCost

    @property
    def routed(self) -> TierCost:
        if self.tier == "pure":
            return self.pure
        if self.tier == "trajectory":
            return self.trajectory
        return self.density

    @property
    def worst_case(self) -> TierCost:
        routed = self.routed
        if self.tier == "density":
            return routed
        density = self.density
        return TierCost(
            flops=CostInterval(routed.flops.lo, routed.flops.hi + density.flops.hi),
            stack_width=routed.stack_width.hull(density.stack_width),
            peak_bytes=CostInterval(
                routed.peak_bytes.lo,
                max(routed.peak_bytes.hi, density.peak_bytes.hi),
            ),
        )

    @property
    def predicted_cost(self) -> float:
        return self.routed.flops.hi

    @property
    def predicted_peak_bytes(self) -> float:
        return self.routed.peak_bytes.hi

    def describe(self) -> str:
        """A human-readable justification of the routing decision."""
        lines = [
            f"tier: {self.tier}"
            + (f" (blocked from pure: {self.reason})" if self.reason else ""),
            f"register: {dict(self.dims)} (total dimension {self.total_dim:.6g})",
            f"gates: {self.gate_count}, unroll depth: {self.unroll_depth:.6g}, "
            f"static branch bound: {self.branch_bound}",
        ]
        for name, tier_cost in (
            ("pure", self.pure),
            ("trajectory", self.trajectory),
            ("density", self.density),
        ):
            marker = " <- routed" if name == self.tier else ""
            lines.append(
                f"  {name}: flops {tier_cost.flops}, width {tier_cost.stack_width}, "
                f"peak bytes {tier_cost.peak_bytes}{marker}"
            )
        lines.append(
            f"predicted cost: {self.predicted_cost:.6g} model flops, "
            f"peak {self.predicted_peak_bytes:.6g} bytes"
        )
        return "\n".join(lines)


#: Per-program cache of cost reports; the inner dict keys on the register
#: shape and observable dimension, so re-analysis on the scheduling hot path
#: is a dict probe (weakref-validated against id reuse, never pins programs).
_COST_MEMO: IdentityMemo[dict] = IdentityMemo(8192)

_TIER_NAMES = {
    SimulationClass.PURE: "pure",
    SimulationClass.BRANCHING: "trajectory",
    SimulationClass.DENSITY_ONLY: "density",
}


def _resolve_dims(
    program: Program,
    layout,
    dims: Mapping[str, int] | None,
) -> dict[str, int]:
    if layout is not None:
        return {name: int(dim) for name, dim in zip(layout.names, layout.dims)}
    table = {name: int(dim) for name, dim in dims.items()} if dims else {}
    for variable in sorted(program.qvars()):
        table.setdefault(variable, 2)
    return table


def cost_report(
    program: Program,
    *,
    layout=None,
    dims: Mapping[str, int] | None = None,
    observable_dim: float | None = None,
    tier: str | None = None,
) -> CostReport:
    """The memoized per-tier cost analysis of ``program``.

    ``layout`` (a :class:`~repro.sim.hilbert.RegisterLayout`) pins the exact
    register the kernels will contract over, including ride-along variables
    the program never touches; without it, ``dims`` maps variables to
    dimensions and unlisted program variables default to qubits.
    ``observable_dim`` is the dimension of the readout observable's operand
    space; it defaults to the full register dimension, which is the sound
    choice for every readout kernel.  ``tier`` overrides the routed tier
    label (backends pass their actual routing decision).
    """
    table = _resolve_dims(program, layout, dims)
    key = (tuple(sorted(table.items())), observable_dim)
    per_program = _COST_MEMO.get(program)
    if per_program is not None:
        cached = per_program.get(key)
        if cached is not None:
            return cached if tier is None or cached.tier == tier else replace(cached, tier=tier)

    report = simulation_report(program)
    walk = _CostWalk(table)
    total = walk.total
    obs_dim = float(observable_dim) if observable_dim is not None else total

    vec = walk.vector(program)
    # Readout: apply the observable to the compacted stack and contract each
    # row (two-factor readouts charge total·(lead+rest) ≤ total² + total,
    # covered by the default obs_dim = total).  Even a fully-aborted program
    # pays one readout row — the zero-amplitude stack is still contracted.
    vector_readout_hi = _mul(
        max(vec.width.hi, 1.0), _mul(obs_dim, total) + total
    )
    vector_flops = CostInterval(vec.flops.lo, vec.flops.hi + vector_readout_hi)
    vector_peak_width = max(vec.peak, vec.width.hi, 1.0)
    vector_cost = TierCost(
        flops=vector_flops,
        stack_width=vec.width.hull(CostInterval.exact(1.0)),
        peak_bytes=CostInterval(
            _WORKING_FACTOR * total * _BYTES_PER_AMPLITUDE,
            _mul(_WORKING_FACTOR * _BYTES_PER_AMPLITUDE, _mul(vector_peak_width, total)),
        ),
    )

    density_program = walk.density(program)
    total_sq = _mul(total, total)
    density_readout = CostInterval(total_sq, total_sq + _mul(obs_dim, obs_dim))
    if report.additive:
        # Additive programs run the density tier member-by-member through
        # the compiled multiset: scale one full pass (an upper bound on any
        # single member) by the saturating member bound.
        members = float(report.branch_bound)
        density_flops = CostInterval(
            density_program.lo + density_readout.lo,
            _mul(members, density_program.hi + density_readout.hi),
        )
    else:
        density_flops = density_program + density_readout
    density_cost = TierCost(
        flops=density_flops,
        stack_width=CostInterval.exact(1.0),
        peak_bytes=CostInterval.exact(_WORKING_FACTOR * total_sq * _BYTES_PER_AMPLITUDE),
    )

    result = CostReport(
        tier=_TIER_NAMES[report.simulation_class],
        reason=report.reason,
        additive=report.additive,
        branch_bound=report.branch_bound,
        unroll_depth=walk.depth(program),
        gate_count=gate_count(program),
        qubit_count=qubit_count(program),
        total_dim=total,
        dims=tuple(sorted(table.items())),
        observable_dim=obs_dim,
        pure=vector_cost,
        trajectory=vector_cost,
        density=density_cost,
    )
    if per_program is None:
        per_program = _COST_MEMO.put(program, {})
    per_program[key] = result
    return result if tier is None or result.tier == tier else replace(result, tier=tier)
