"""Lint rules over program ASTs: a registry of static checks.

Each rule is a function registered under a stable diagnostic code
(``RPR001`` …) that inspects one program via :mod:`repro.lang.traversal`
and reports findings into a shared
:class:`~repro.analysis.diagnostics.DiagnosticBag`.  The rules are
structural companions to the semantic analyses: they catch programs that
are *well-formed but almost certainly wrong* — dead wires, parameters that
can never train, ``case`` arms no input can reach, ``while`` bounds whose
unrolling saturates the branch-bound arithmetic, and adjacent gate pairs
that cancel.

Run them via :func:`lint_program` (programmatic) or ``python -m
repro.analysis`` (files, through :mod:`repro.lang.parser`).

Registered rules
================

========  ========  =====================================================
code      severity  finding
========  ========  =====================================================
RPR001    warning   dead wire: a variable is declared on ``skip``/``abort``
                    but no statement ever acts on it
RPR002    warning   a declared parameter does not occur in the program
RPR003    warning   a parameter name shadows a quantum variable name
RPR004    warning   unreachable ``case`` arm: the measured variables are
                    freshly initialized to ``|0⟩`` and the arm's operator
                    annihilates ``|0…0⟩``
RPR005    error     a ``while`` unrolling saturates the static branch
                    bound (effectively unbounded trajectory fan-out)
RPR006    warning   adjacent gates on the same wires cancel to the
                    identity
RPR007    warning   adjacent rotations on the same wire sum to ``2π``
                    (identity up to a global ``−1`` — observable only in
                    additive sums)
RPR008    warning   differentiating a parameter with zero occurrences
                    (the derivative is identically zero)
========  ========  =====================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.analysis.diagnostics import Diagnostic, DiagnosticBag, Severity
from repro.analysis.purity import BRANCH_BOUND_CAP, simulation_report
from repro.analysis.resources import occurrence_count
from repro.lang.ast import (
    Abort,
    Case,
    Init,
    Program,
    Seq,
    Skip,
    Sum,
    UnitaryApp,
    While,
)
from repro.lang.gates import FixedGate, Rotation
from repro.lang.parameters import Parameter
from repro.lang.traversal import child_labels, iter_with_paths

__all__ = [
    "LintContext",
    "LintRule",
    "all_rules",
    "lint_program",
    "rule",
]

_ATOL = 1e-9
_FULL_PERIOD = 4.0 * math.pi  # R_σ(θ) = exp(−iθσ/2): R(2π) = −I, R(4π) = I


@dataclass(frozen=True)
class LintContext:
    """Everything a rule may inspect; rules report into ``bag``."""

    program: Program
    parameters: tuple[Parameter, ...]
    differentiating: tuple[Parameter, ...]
    bag: DiagnosticBag
    source: str | None = None

    def report(
        self,
        severity: Severity,
        code: str,
        message: str,
        *,
        path: tuple[str, ...] = (),
        node: Program | None = None,
    ) -> Diagnostic:
        return self.bag.report(
            severity, code, message, path=path, node=node, source=self.source
        )


@dataclass(frozen=True)
class LintRule:
    """One registered check: a stable code plus the checking function."""

    code: str
    name: str
    severity: Severity
    check: Callable[[LintContext], None]


_REGISTRY: dict[str, LintRule] = {}


def rule(code: str, name: str, severity: Severity):
    """Register a lint rule under ``code``; used as a decorator."""

    def register(check: Callable[[LintContext], None]) -> Callable[[LintContext], None]:
        if code in _REGISTRY:
            raise ValueError(f"duplicate lint rule code {code}")
        _REGISTRY[code] = LintRule(code=code, name=name, severity=severity, check=check)
        return check

    return register


def all_rules() -> tuple[LintRule, ...]:
    """Every registered rule, ordered by code."""
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def lint_program(
    program: Program,
    *,
    parameters: Iterable[Parameter] | None = None,
    differentiating: Iterable[Parameter] | None = None,
    rules: Iterable[str] | None = None,
    source: str | None = None,
) -> DiagnosticBag:
    """Run the registered rules over one program.

    ``parameters`` declares the parameter vector the caller intends to bind
    (enables the unused-parameter rule); ``differentiating`` names the
    parameters the caller intends to differentiate by (enables the
    zero-occurrence rule); ``rules`` restricts the run to a subset of codes.
    """
    bag = DiagnosticBag()
    context = LintContext(
        program=program,
        parameters=tuple(parameters or ()),
        differentiating=tuple(differentiating or ()),
        bag=bag,
        source=source,
    )
    selected = sorted(_REGISTRY) if rules is None else list(rules)
    for code in selected:
        try:
            registered = _REGISTRY[code]
        except KeyError:
            raise ValueError(f"unknown lint rule code {code!r}") from None
        registered.check(context)
    return bag


# -- RPR001: dead wires ---------------------------------------------------------------


@rule("RPR001", "dead-wire", Severity.WARNING)
def _dead_wires(ctx: LintContext) -> None:
    """A variable listed only on ``skip``/``abort`` is never acted on."""
    active: set[str] = set()
    declared: set[str] = set()
    for _, node in iter_with_paths(ctx.program):
        if isinstance(node, (Skip, Abort)):
            declared.update(node.qubits)
        elif isinstance(node, Init):
            active.add(node.qubit)
        elif isinstance(node, (UnitaryApp, Case, While)):
            active.update(node.qubits)
    for name in sorted(declared - active):
        ctx.report(
            Severity.WARNING,
            "RPR001",
            f"variable {name!r} is declared but no statement acts on it (dead wire)",
            node=ctx.program,
        )


# -- RPR002/RPR003: parameter hygiene -------------------------------------------------


@rule("RPR002", "unused-parameter", Severity.WARNING)
def _unused_parameters(ctx: LintContext) -> None:
    if not ctx.parameters:
        return
    used = ctx.program.parameters()
    for parameter in ctx.parameters:
        if parameter not in used:
            ctx.report(
                Severity.WARNING,
                "RPR002",
                f"parameter {parameter.name!r} is declared but never used",
                node=ctx.program,
            )


@rule("RPR003", "shadowed-parameter", Severity.WARNING)
def _shadowed_parameters(ctx: LintContext) -> None:
    qvars = ctx.program.qvars()
    seen: set[str] = set()
    for parameter in tuple(ctx.program.parameters()) + ctx.parameters:
        if parameter.name in qvars and parameter.name not in seen:
            seen.add(parameter.name)
            ctx.report(
                Severity.WARNING,
                "RPR003",
                f"parameter {parameter.name!r} shadows a quantum variable of the "
                "same name (confusing bindings; rename one of them)",
                node=ctx.program,
            )


# -- RPR004: unreachable case arms ----------------------------------------------------


def _operator_annihilates_zero(operator: np.ndarray) -> bool:
    """True when ``M_m |0…0⟩ ≈ 0`` — the arm's branch has zero mass."""
    column = np.asarray(operator)[:, 0]
    return bool(float(np.linalg.norm(column)) <= _ATOL)


def _walk_known_zero(
    ctx: LintContext,
    node: Program,
    path: tuple[str, ...],
    zeroed: set[str],
) -> set[str]:
    """Forward dataflow: which variables are freshly ``|0⟩`` (and unentangled)?

    ``Init`` proves its variable; any gate, guard, or branch collapse on a
    variable conservatively forgets it.  Returns the state after ``node``.
    """
    if isinstance(node, (Skip, Abort)):
        return zeroed
    if isinstance(node, Init):
        return zeroed | {node.qubit}
    if isinstance(node, UnitaryApp):
        return zeroed - set(node.qubits)
    if isinstance(node, Seq):
        mid = _walk_known_zero(ctx, node.first, path + ("first",), zeroed)
        return _walk_known_zero(ctx, node.second, path + ("second",), mid)
    if isinstance(node, Case):
        if set(node.qubits) <= zeroed:
            operators = dict(zip(node.measurement.outcomes, node.measurement.operators))
            for outcome, _branch in node.branches:
                operator = operators.get(outcome)
                if operator is not None and _operator_annihilates_zero(operator):
                    ctx.report(
                        Severity.WARNING,
                        "RPR004",
                        f"case arm for outcome {outcome} is unreachable: the "
                        f"measured variables {sorted(node.qubits)} are freshly "
                        "|0⟩ and the arm's operator annihilates |0…0⟩",
                        path=path + (f"branch[{outcome}]",),
                        node=node,
                    )
        after = zeroed - set(node.qubits)
        results = []
        for label, (_, branch) in zip(child_labels(node), node.branches):
            results.append(_walk_known_zero(ctx, branch, path + (label,), set(after)))
        return set.intersection(*results) if results else after
    if isinstance(node, While):
        touched = node.qvars()
        inside = zeroed - touched
        _walk_known_zero(ctx, node.body, path + ("body",), set(inside))
        return inside
    if isinstance(node, Sum):
        left = _walk_known_zero(ctx, node.left, path + ("left",), set(zeroed))
        right = _walk_known_zero(ctx, node.right, path + ("right",), set(zeroed))
        return left & right
    return set()


@rule("RPR004", "unreachable-case-arm", Severity.WARNING)
def _unreachable_case_arms(ctx: LintContext) -> None:
    _walk_known_zero(ctx, ctx.program, (), set())


# -- RPR005: saturating branch bounds -------------------------------------------------


@rule("RPR005", "saturating-branch-bound", Severity.ERROR)
def _saturating_bounds(ctx: LintContext) -> None:
    """Flag the innermost ``while`` whose unrolling saturates the bound cap."""
    for path, node in iter_with_paths(ctx.program):
        if not isinstance(node, While):
            continue
        if simulation_report(node).branch_bound < BRANCH_BOUND_CAP:
            continue
        if simulation_report(node.body).branch_bound >= BRANCH_BOUND_CAP:
            continue  # the body is the real cause; it is flagged separately
        ctx.report(
            Severity.ERROR,
            "RPR005",
            f"while(bound={node.bound}) unrolls to a saturated static branch "
            f"bound (≥ 2^62): the trajectory fan-out is effectively unbounded "
            "and no execution tier can unroll it; lower the bound or simplify "
            "the body",
            path=path,
            node=node,
        )


# -- RPR006/RPR007: cancelling adjacent gates -----------------------------------------


def _straight_line_runs(
    program: Program,
) -> Iterable[list[tuple[tuple[str, ...], UnitaryApp]]]:
    """Maximal runs of consecutive gate applications along ``Seq`` spines.

    A run is broken by any non-gate statement; gates inside branches, loop
    bodies and summands form their own runs.
    """
    runs: list[list[tuple[tuple[str, ...], UnitaryApp]]] = []
    current: list[tuple[tuple[str, ...], UnitaryApp]] = []

    def flush() -> None:
        nonlocal current
        if len(current) >= 2:
            runs.append(current)
        current = []

    def spine(node: Program, path: tuple[str, ...]) -> None:
        if isinstance(node, Seq):
            spine(node.first, path + ("first",))
            spine(node.second, path + ("second",))
            return
        if isinstance(node, UnitaryApp):
            current.append((path, node))
            return
        flush()
        for label, child in zip(child_labels(node), node.children()):
            spine(child, path + (label,))
            flush()

    spine(program, ())
    flush()
    return runs


def _numeric_rotation_pair(first: UnitaryApp, second: UnitaryApp) -> float | None:
    """The angle sum of two same-axis same-type numeric rotations, else None."""
    g1, g2 = first.gate, second.gate
    if type(g1) is not type(g2):
        return None
    axis = getattr(g1, "axis", None)
    if axis is None or axis != getattr(g2, "axis", None):
        return None
    a1, a2 = getattr(g1, "angle", None), getattr(g2, "angle", None)
    if isinstance(a1, (int, float)) and isinstance(a2, (int, float)):
        return float(a1) + float(a2)
    return None


def _angle_is(angle_sum: float, target: float) -> bool:
    remainder = math.fmod(angle_sum - target, _FULL_PERIOD)
    if remainder < 0:
        remainder += _FULL_PERIOD
    return min(remainder, _FULL_PERIOD - remainder) <= _ATOL


@rule("RPR006", "adjacent-inverse-gates", Severity.WARNING)
def _adjacent_inverse_gates(ctx: LintContext) -> None:
    for run in _straight_line_runs(ctx.program):
        for (path1, app1), (_path2, app2) in zip(run, run[1:]):
            if app1.qubits != app2.qubits:
                continue
            angle_sum = _numeric_rotation_pair(app1, app2)
            if angle_sum is not None:
                if _angle_is(angle_sum, 0.0):
                    ctx.report(
                        Severity.WARNING,
                        "RPR006",
                        f"adjacent rotations {app1.gate.display()} and "
                        f"{app2.gate.display()} on {list(app1.qubits)} sum to 0 "
                        "mod 4π: the pair is the identity and can be deleted",
                        path=path1,
                        node=app1,
                    )
                continue
            if isinstance(app1.gate, FixedGate) and isinstance(app2.gate, FixedGate):
                product = app2.gate.matrix() @ app1.gate.matrix()
                if np.allclose(product, np.eye(product.shape[0]), atol=_ATOL):
                    ctx.report(
                        Severity.WARNING,
                        "RPR006",
                        f"adjacent gates {app1.gate.display()} and "
                        f"{app2.gate.display()} on {list(app1.qubits)} compose to "
                        "the identity and can be deleted",
                        path=path1,
                        node=app1,
                    )


@rule("RPR007", "rotation-identity", Severity.WARNING)
def _rotation_global_phase(ctx: LintContext) -> None:
    for run in _straight_line_runs(ctx.program):
        for (path1, app1), (_path2, app2) in zip(run, run[1:]):
            if app1.qubits != app2.qubits:
                continue
            if not isinstance(app1.gate, Rotation):
                continue
            angle_sum = _numeric_rotation_pair(app1, app2)
            if angle_sum is not None and _angle_is(angle_sum, 2.0 * math.pi):
                ctx.report(
                    Severity.WARNING,
                    "RPR007",
                    f"adjacent rotations {app1.gate.display()} and "
                    f"{app2.gate.display()} on {list(app1.qubits)} sum to 2π: "
                    "the pair is −I, the identity up to a global phase (the "
                    "sign is observable inside additive '+' sums — only delete "
                    "the pair in non-additive programs)",
                    path=path1,
                    node=app1,
                )


# -- RPR008: zero-occurrence derivatives ----------------------------------------------


@rule("RPR008", "zero-occurrence-derivative", Severity.WARNING)
def _zero_occurrence_derivative(ctx: LintContext) -> None:
    for parameter in ctx.differentiating:
        if occurrence_count(ctx.program, parameter) == 0:
            ctx.report(
                Severity.WARNING,
                "RPR008",
                f"differentiating by {parameter.name!r}, which has zero "
                "occurrences: the derivative program multiset is empty and "
                "the gradient component is identically 0",
                node=ctx.program,
            )
