"""Structured diagnostics shared by every static analysis.

Analyses historically reported findings by raising ad-hoc errors or
returning bare strings.  This module gives them one vocabulary:

* :class:`Diagnostic` — an immutable finding with a :class:`Severity`, a
  stable machine-readable code (``RPR001`` …), a human message, and the
  *program path* of the offending node (a tuple of child labels from the
  root, e.g. ``("first", "branch[1]", "second")``), so tools can point at
  the exact subprogram without source spans;
* :class:`DiagnosticBag` — an ordered collector that analyses append to
  and callers query (``has_errors``, ``max_severity``) or render
  (:meth:`DiagnosticBag.format`).

The ``python -m repro.analysis`` CLI prints these for parsed files and
exits nonzero when any :attr:`Severity.ERROR` finding is present.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.lang.ast import Program

__all__ = [
    "Diagnostic",
    "DiagnosticBag",
    "Severity",
]


class Severity(enum.IntEnum):
    """Diagnostic severity; ordered so ``max()`` picks the worst finding."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One immutable analysis finding.

    ``path`` addresses the offending node from the program root via child
    labels (``"first"``/``"second"`` for ``Seq``, ``"branch[m]"`` for
    ``case`` arms, ``"body"`` for ``while``, ``"left"``/``"right"`` for
    ``+``); an empty path means the root.  ``node`` carries the subprogram
    itself for programmatic consumers but does not participate in equality,
    so structurally identical findings on distinct parses compare equal.
    ``source`` names the file (or other origin) when the program came from
    the parser-based CLI.
    """

    severity: Severity
    code: str
    message: str
    path: tuple[str, ...] = ()
    node: Program | None = field(default=None, compare=False)
    source: str | None = None

    def format(self) -> str:
        """``source: severity CODE: message (at path)`` — one line."""
        origin = f"{self.source}: " if self.source else ""
        where = f" (at {'/'.join(self.path)})" if self.path else ""
        return f"{origin}{self.severity.label} {self.code}: {self.message}{where}"

    def __str__(self) -> str:  # pragma: no cover - convenience alias
        return self.format()


class DiagnosticBag:
    """An ordered, appendable collection of :class:`Diagnostic` findings."""

    __slots__ = ("_diagnostics",)

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self._diagnostics: list[Diagnostic] = list(diagnostics)

    def add(self, diagnostic: Diagnostic) -> None:
        self._diagnostics.append(diagnostic)

    def report(
        self,
        severity: Severity,
        code: str,
        message: str,
        *,
        path: tuple[str, ...] = (),
        node: Program | None = None,
        source: str | None = None,
    ) -> Diagnostic:
        """Construct, append, and return a new finding."""
        diagnostic = Diagnostic(
            severity=severity,
            code=code,
            message=message,
            path=path,
            node=node,
            source=source,
        )
        self._diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: "DiagnosticBag | Iterable[Diagnostic]") -> None:
        self._diagnostics.extend(other)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._diagnostics)

    def __len__(self) -> int:
        return len(self._diagnostics)

    def __bool__(self) -> bool:
        return bool(self._diagnostics)

    def __getitem__(self, index):
        return self._diagnostics[index]

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self._diagnostics if d.severity >= Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self._diagnostics if d.severity == Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity >= Severity.ERROR for d in self._diagnostics)

    @property
    def max_severity(self) -> Severity | None:
        if not self._diagnostics:
            return None
        return max(d.severity for d in self._diagnostics)

    def by_code(self, code: str) -> list[Diagnostic]:
        """All findings carrying ``code`` (test and tooling convenience)."""
        return [d for d in self._diagnostics if d.code == code]

    def format(self) -> str:
        """All findings, one :meth:`Diagnostic.format` line each."""
        return "\n".join(d.format() for d in self._diagnostics)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        worst = self.max_severity
        return (
            f"DiagnosticBag({len(self._diagnostics)} finding(s)"
            f"{', worst=' + worst.label if worst else ''})"
        )
