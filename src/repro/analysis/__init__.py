"""Resource analysis (Section 7) and cross-validation utilities.

* :mod:`repro.analysis.resources` — the occurrence count ``OC_j(P(θ))`` of
  Definition 7.1, the non-aborting program count ``|#∂P/∂θ_j|``, and the
  static size metrics (#gates, #lines, #qubits, circuit depth) reported in
  Tables 2 and 3;
* :mod:`repro.analysis.verification` — checks of the paper's propositions on
  concrete programs (Prop. 3.1 operational/denotational agreement,
  Prop. 4.2 compilation consistency, Prop. 7.2 resource bound), used by the
  test-suite and the resource-bound benchmark;
* :mod:`repro.analysis.purity` — the static simulability analysis: a tiered
  :class:`~repro.analysis.purity.SimulationClass` verdict (pure /
  branching / density-only) with a static branch-count bound, consulted by
  :class:`repro.api.StatevectorBackend` to pick the ``O(2^n)`` pure-state
  tier or the ``O(B · 2^n)`` branch-splitting trajectory tier over the
  ``O(4^n)`` density simulator;
* :mod:`repro.analysis.diagnostics` — the :class:`Diagnostic` /
  :class:`DiagnosticBag` vocabulary every analysis reports findings in;
* :mod:`repro.analysis.lint` — the registered static checks (``RPR001`` …)
  behind :func:`lint_program` and the ``python -m repro.analysis`` CLI;
* :mod:`repro.analysis.cost` — the per-tier abstract-interpretation cost
  model (:func:`cost_report`) whose upper bounds drive
  ``StatevectorBackend.explain_tier``, cost-ordered service planning, and
  ``EstimatorService(max_cost=...)`` admission control.
"""

from repro.analysis.cost import (
    CostInterval,
    CostReport,
    TierCost,
    cost_report,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticBag,
    Severity,
)
from repro.analysis.lint import (
    LintContext,
    LintRule,
    all_rules,
    lint_program,
    rule,
)
from repro.analysis.resources import (
    occurrence_count,
    derivative_program_count,
    gate_count,
    qubit_count,
    circuit_depth,
    ResourceReport,
    analyze_program,
)
from repro.analysis.verification import (
    ResourceBoundCheck,
    check_resource_bound,
    check_operational_denotational_agreement,
)
from repro.analysis.purity import (
    PurityReport,
    SimulationClass,
    SimulationReport,
    is_statevector_simulable,
    purity_report,
    simulation_report,
)

__all__ = [
    "CostInterval",
    "CostReport",
    "Diagnostic",
    "DiagnosticBag",
    "LintContext",
    "LintRule",
    "ResourceBoundCheck",
    "Severity",
    "TierCost",
    "all_rules",
    "cost_report",
    "lint_program",
    "rule",
    "PurityReport",
    "SimulationClass",
    "SimulationReport",
    "is_statevector_simulable",
    "purity_report",
    "simulation_report",
    "occurrence_count",
    "derivative_program_count",
    "gate_count",
    "qubit_count",
    "circuit_depth",
    "ResourceReport",
    "analyze_program",
    "check_resource_bound",
    "check_operational_denotational_agreement",
]
