"""Resource analysis of programs and of their derivatives (Section 7).

The central quantities are

* ``OC_j(P(θ))`` — the *occurrence count* of parameter θ_j (Definition 7.1):
  the number of non-trivial uses of θ_j, with ``case`` counted by the
  maximum over branches and ``while(T)`` by ``T ×`` the body's count;
* ``|#∂P/∂θ_j|`` — the number of non-aborting programs produced by
  transforming and compiling ``P`` (Definition 4.3), i.e. the number of
  fresh copies of the input state the execution phase needs;
* Proposition 7.2: ``|#∂P/∂θ_j| ≤ OC_j(P(θ))``.

The remaining metrics (#gates, #lines, #layers proxy, #qubits) are the
static size columns of Tables 2 and 3; as in the paper, gate and depth
counts of a bounded loop multiply the body by the bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SemanticsError
from repro.lang.ast import (
    Abort,
    Case,
    Init,
    Program,
    Seq,
    Skip,
    Sum,
    UnitaryApp,
    While,
)
from repro.lang.parameters import Parameter
from repro.lang.pretty import line_count
from repro.additive.compile import nonaborting_count
from repro.autodiff.transform import differentiate


def occurrence_count(program: Program, parameter: Parameter) -> int:
    """Return ``OC_j(P(θ))``, the occurrence count of Definition 7.1.

    The additive choice is counted like sequencing (the sum of its
    summands), which is the natural extension used when analyzing
    intermediate additive programs; for normal programs the definition
    coincides with the paper's.
    """
    if isinstance(program, (Abort, Skip, Init)):
        return 0
    if isinstance(program, UnitaryApp):
        return 1 if program.gate.uses(parameter) else 0
    if isinstance(program, Seq):
        return occurrence_count(program.first, parameter) + occurrence_count(
            program.second, parameter
        )
    if isinstance(program, Case):
        return max(occurrence_count(branch, parameter) for _, branch in program.branches)
    if isinstance(program, While):
        return program.bound * occurrence_count(program.body, parameter)
    if isinstance(program, Sum):
        return occurrence_count(program.left, parameter) + occurrence_count(
            program.right, parameter
        )
    raise SemanticsError(f"unknown program node {type(program).__name__}")


def derivative_program_count(program: Program, parameter: Parameter) -> int:
    """Return ``|#∂P/∂θ_j|`` by actually transforming and compiling the program."""
    return nonaborting_count(differentiate(program, parameter))


def gate_count(program: Program) -> int:
    """Count executed unitary statements, multiplying loop bodies by their bound.

    ``case`` branches are summed (every branch's gates are part of the
    program text and of the compiled circuits), matching the counting used
    for the instances of Table 3.
    """
    if isinstance(program, (Abort, Skip, Init)):
        return 0
    if isinstance(program, UnitaryApp):
        return 1
    if isinstance(program, Seq):
        return gate_count(program.first) + gate_count(program.second)
    if isinstance(program, Case):
        return sum(gate_count(branch) for _, branch in program.branches)
    if isinstance(program, While):
        return program.bound * gate_count(program.body)
    if isinstance(program, Sum):
        return gate_count(program.left) + gate_count(program.right)
    raise SemanticsError(f"unknown program node {type(program).__name__}")


def qubit_count(program: Program) -> int:
    """Number of distinct quantum variables the program accesses."""
    return len(program.qvars())


def circuit_depth(program: Program) -> int:
    """A depth proxy: the longest chain of gates on any single variable.

    Gates on disjoint qubits can run in parallel; a loop body contributes
    ``bound`` copies; ``case`` contributes the deepest branch on top of one
    step for the guard measurement.
    """
    depth_by_qubit = _depth_map(program)
    return max(depth_by_qubit.values(), default=0)


def _depth_map(program: Program) -> dict[str, int]:
    if isinstance(program, (Abort, Skip, Init)):
        return {q: 0 for q in program.qvars()}
    if isinstance(program, UnitaryApp):
        return {q: 1 for q in program.qubits}
    if isinstance(program, Seq):
        first = _depth_map(program.first)
        second = _depth_map(program.second)
        merged = dict(first)
        for qubit, depth in second.items():
            merged[qubit] = merged.get(qubit, 0) + depth
        return merged
    if isinstance(program, (Case, While)):
        if isinstance(program, Case):
            branch_maps = [_depth_map(branch) for _, branch in program.branches]
            repetitions = 1
        else:
            branch_maps = [_depth_map(program.body)]
            repetitions = program.bound
        merged: dict[str, int] = {q: 1 for q in program.qubits}  # the guard measurement
        for branch_map in branch_maps:
            for qubit, depth in branch_map.items():
                merged[qubit] = max(merged.get(qubit, 0), depth * repetitions + 1)
        return merged
    if isinstance(program, Sum):
        left = _depth_map(program.left)
        right = _depth_map(program.right)
        merged = dict(left)
        for qubit, depth in right.items():
            merged[qubit] = max(merged.get(qubit, 0), depth)
        return merged
    raise SemanticsError(f"unknown program node {type(program).__name__}")


@dataclass(frozen=True)
class ResourceReport:
    """One row of a Table 2 / Table 3 style resource report."""

    name: str
    occurrence_count: int
    derivative_program_count: int
    gate_count: int
    line_count: int
    layer_count: int
    qubit_count: int

    def satisfies_bound(self) -> bool:
        """Proposition 7.2: the derivative program count never exceeds the occurrence count."""
        return self.derivative_program_count <= self.occurrence_count

    def as_row(self) -> tuple:
        """Return the row as a plain tuple (for table printing)."""
        return (
            self.name,
            self.occurrence_count,
            self.derivative_program_count,
            self.gate_count,
            self.line_count,
            self.layer_count,
            self.qubit_count,
        )


def analyze_program(
    program: Program,
    parameter: Parameter,
    *,
    name: str = "P",
    layer_count: int | None = None,
    measured_derivative_count: int | None = None,
) -> ResourceReport:
    """Compute the full resource report of a program for one parameter.

    ``layer_count`` lets callers (the VQC generators) report their declared
    layer structure; when omitted, the circuit-depth proxy is used.
    ``measured_derivative_count`` lets callers that already hold the compiled
    multiset (e.g. an :class:`repro.api.Estimator`'s program set) supply
    ``|#∂P/∂θ_j|`` instead of paying the transform + compile a second time.
    """
    return ResourceReport(
        name=name,
        occurrence_count=occurrence_count(program, parameter),
        derivative_program_count=(
            measured_derivative_count
            if measured_derivative_count is not None
            else derivative_program_count(program, parameter)
        ),
        gate_count=gate_count(program),
        line_count=line_count(program),
        layer_count=layer_count if layer_count is not None else circuit_depth(program),
        qubit_count=qubit_count(program),
    )
