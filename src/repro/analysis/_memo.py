"""Identity-keyed memoization that survives ``id`` reuse.

Several analyses memoize per-program verdicts keyed by ``id(program)``:
ASTs are immutable, backends consult the analyses on every execution, and
hashing a deep tree on the hot path would cost more than the analysis
itself.  The historical implementation *pinned* the program object inside
the memo entry so a live key could never alias a recycled ``id`` — at the
price of keeping dead programs (and everything they reference) alive until
FIFO eviction.

:class:`IdentityMemo` keeps the O(1) ``id`` key but holds the program via a
weak reference instead of pinning it:

* ``get`` validates that the stored referent is *the same object* as the
  probe, so a recycled ``id`` (a new program allocated at a dead program's
  address) can never be served a stale verdict;
* when a key object is collected, a weakref callback eagerly drops its
  entry, so the memo's footprint tracks the set of *live* programs;
* a FIFO bound still caps the table for workloads that churn through
  many long-lived programs.

Program nodes are frozen dataclasses without ``__slots__``, so they are
weak-referenceable; anything that is not silently bypasses the memo.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import Any, Generic, Iterator, TypeVar

__all__ = ["IdentityMemo"]

_V = TypeVar("_V")


class IdentityMemo(Generic[_V]):
    """A bounded ``id``-keyed memo with weakref-validated entries."""

    __slots__ = ("_entries", "_limit", "__weakref__")

    def __init__(self, limit: int = 8192) -> None:
        if limit < 1:
            raise ValueError(f"memo limit must be positive, got {limit}")
        self._entries: OrderedDict[int, tuple[weakref.ref, _V]] = OrderedDict()
        self._limit = limit

    def get(self, obj: Any) -> _V | None:
        """The memoized value for *this exact object*, else ``None``."""
        entry = self._entries.get(id(obj))
        if entry is None:
            return None
        if entry[0]() is not obj:
            # The id was recycled by a different (or dead) object: the
            # stored verdict belongs to someone else.  Drop it.
            self._entries.pop(id(obj), None)
            return None
        return entry[1]

    def put(self, obj: Any, value: _V) -> _V:
        """Store ``value`` for ``obj``; returns ``value`` for chaining."""
        key = id(obj)
        try:
            ref = weakref.ref(obj, self._make_callback(key))
        except TypeError:
            # Not weak-referenceable — caching would risk serving a stale
            # entry after id reuse, so skip the memo entirely.
            return value
        while len(self._entries) >= self._limit:
            self._entries.popitem(last=False)
        self._entries[key] = (ref, value)
        return value

    def _make_callback(self, key: int):
        selfref = weakref.ref(self)

        def _on_collect(dead: weakref.ref) -> None:
            memo = selfref()
            if memo is None:
                return
            entry = memo._entries.get(key)
            # Only drop the entry if it still belongs to the dying object —
            # the slot may have been overwritten by a newer program that
            # reused the address.
            if entry is not None and entry[0] is dead:
                memo._entries.pop(key, None)

        return _on_collect

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, obj: Any) -> bool:
        return self.get(obj) is not None

    def keys(self) -> Iterator[int]:  # pragma: no cover - debugging aid
        return iter(self._entries.keys())
