"""repro — a Python reproduction of *On the Principles of Differentiable
Quantum Programming Languages* (Zhu, Hung, Chakrabarti, Wu; PLDI 2020).

The package implements the paper end to end:

* :mod:`repro.linalg` and :mod:`repro.sim` — the quantum math and the exact
  simulator the semantics run on;
* :mod:`repro.lang` — the parameterized quantum bounded while-language
  (AST, parameters, gates, parser, pretty-printer);
* :mod:`repro.semantics` — operational, denotational, observable and
  differential semantics;
* :mod:`repro.additive` — additive programs and their compilation into
  multisets of normal programs;
* :mod:`repro.autodiff` — the code-transformation rules, the differentiation
  logic, and the end-to-end gradient execution scheme;
* :mod:`repro.analysis` — occurrence counts and the resource bound;
* :mod:`repro.baselines` — the phase-shift rule and finite differences;
* :mod:`repro.vqc` — the benchmark VQC program families and the
  controlled-classifier training case study.

* :mod:`repro.api` — the unified :class:`~repro.api.Estimator` facade with
  pluggable execution backends (exact density / shot sampling), a denotation
  cache and lazily-cached compile artifacts — the recommended entry point.

Quick start::

    from repro.api import Estimator
    from repro.lang import Parameter, ParameterBinding
    from repro.lang.builder import rx, ry, seq
    from repro.linalg.observables import pauli_observable
    from repro.sim.density import DensityState
    from repro.sim.hilbert import RegisterLayout

    theta = Parameter("theta")
    program = seq([rx(theta, "q1"), ry(0.3, "q1")])
    layout = RegisterLayout(["q1"])
    state = DensityState.zero_state(layout)
    binding = ParameterBinding({theta: 0.7})

    estimator = Estimator(program, pauli_observable("Z"), layout)
    value, grad = estimator.value_and_grad(state, binding)
"""

from repro import (
    additive,
    analysis,
    api,
    autodiff,
    baselines,
    lang,
    linalg,
    semantics,
    sim,
    vqc,
)
from repro.errors import ReproError

__version__ = "1.1.0"

__all__ = [
    "additive",
    "analysis",
    "api",
    "autodiff",
    "baselines",
    "lang",
    "linalg",
    "semantics",
    "sim",
    "vqc",
    "ReproError",
    "__version__",
]
