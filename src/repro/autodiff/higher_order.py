"""Higher-order differentiation (an extension beyond the paper's first-order rules).

Figure 4 gives no rule for the controlled rotations ``C_R_σ(θ)`` that its own
gadget introduces, so the transformation cannot be applied twice as-is.  The
obstacle is purely syntactic: because ``R_σ(θ+π) = R_σ(θ)·R_σ(π)``, the
gadget gate factors as

    C_R_σ(θ) = (I ⊗ R_σ(θ)) · ( |0⟩⟨0| ⊗ I + |1⟩⟨1| ⊗ R_σ(π) ),

i.e. a *fixed* controlled-``R_σ(π)`` followed by an ordinary rotation of the
target.  :func:`eliminate_controlled_rotations` rewrites every gadget gate
into that two-statement form (an exact, semantics-preserving decomposition),
after which the first-order rules apply again.  Iterating transformation +
elimination yields programs computing arbitrary mixed partial derivatives,
with one fresh ancilla per differentiation — exactly the pattern footnote 7
of the paper anticipates.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import TransformError
from repro.lang.ast import Program, Seq, UnitaryApp
from repro.lang.gates import (
    ControlledCoupling,
    ControlledRotation,
    Coupling,
    FixedGate,
    Rotation,
)
from repro.lang.parameters import Parameter, ParameterBinding
from repro.lang.traversal import map_program
from repro.linalg.gates import coupling_matrix, rotation_matrix
from repro.linalg.observables import Observable
from repro.sim.density import DensityState
from repro.additive.compile import compile_additive
from repro.additive.essential_abort import essentially_aborts
from repro.autodiff.gadgets import ANCILLA_OBSERVABLE
from repro.autodiff.transform import ancilla_name_for, differentiate
from repro.semantics.denotational import denote


def _controlled_pi_gate(axis: str, arity: int) -> FixedGate:
    """The fixed unitary ``|0⟩⟨0| ⊗ I + |1⟩⟨1| ⊗ R_σ(π)`` (control first)."""
    if arity == 2:
        block = rotation_matrix(axis, np.pi)
    else:
        block = coupling_matrix(axis, np.pi)
    dim = block.shape[0]
    matrix = np.zeros((2 * dim, 2 * dim), dtype=complex)
    matrix[:dim, :dim] = np.eye(dim)
    matrix[dim:, dim:] = block
    return FixedGate(f"C{axis}PI", matrix)


def eliminate_controlled_rotations(program: Program) -> Program:
    """Rewrite every ``C_R_σ(θ)`` / ``C_R_{σ⊗σ}(θ)`` into fixed-control + rotation.

    The rewriting is exact (the product of the two replacement unitaries is
    the original gate), keeps the parameter dependence inside an ordinary
    rotation/coupling, and therefore re-enables the Figure 4 rules on the
    output.
    """

    def rewrite(node: Program) -> Program:
        if not isinstance(node, UnitaryApp):
            return node
        gate = node.gate
        if isinstance(gate, ControlledRotation):
            control, target = node.qubits
            fixed = UnitaryApp(_controlled_pi_gate(gate.axis, 2), (control, target))
            rotation = UnitaryApp(Rotation(gate.axis, gate.angle), (target,))
            return Seq(fixed, rotation)
        if isinstance(gate, ControlledCoupling):
            control, target1, target2 = node.qubits
            fixed = UnitaryApp(_controlled_pi_gate(gate.axis, 3), (control, target1, target2))
            coupling = UnitaryApp(Coupling(gate.axis, gate.angle), (target1, target2))
            return Seq(fixed, coupling)
        return node

    return map_program(program, rewrite)


def iterated_derivative(
    program: Program,
    parameters: Sequence[Parameter],
) -> tuple[Program, tuple[str, ...]]:
    """Apply ``∂/∂θ`` once per entry of ``parameters`` (left to right).

    Returns the resulting additive program together with the ancilla names
    introduced at each order (first differentiation first).  Between
    successive differentiations the gadget gates of the previous order are
    eliminated so that the transformation rules remain applicable.
    """
    if not parameters:
        raise TransformError("at least one differentiation parameter is required")
    current: Program = program
    ancillae: list[str] = []
    for parameter in parameters:
        ancilla = ancilla_name_for(current, parameter)
        current = differentiate(current, parameter, ancilla=ancilla)
        current = eliminate_controlled_rotations(current)
        ancillae.append(ancilla)
    return current, tuple(ancillae)


def higher_order_derivative_expectation(
    program: Program,
    parameters: Sequence[Parameter],
    observable: Observable | np.ndarray,
    state: DensityState,
    binding: ParameterBinding,
) -> float:
    """Exactly evaluate a mixed partial derivative of the observable semantics.

    ``parameters`` lists the differentiation order, e.g. ``[θ, θ]`` for the
    second derivative or ``[θ, φ]`` for a mixed partial.  The readout
    observable is ``Z_{A_k} ⊗ … ⊗ Z_{A_1} ⊗ O`` with every ancilla prepared
    in ``|0⟩``, generalizing Definition 5.2 to iterated differentiation.
    """
    matrix = observable.matrix if isinstance(observable, Observable) else np.asarray(observable)
    if matrix.shape != (state.layout.total_dim, state.layout.total_dim):
        raise TransformError("the observable must act on the input state's register")
    derivative, ancillae = iterated_derivative(program, parameters)
    extended_state = state
    combined = matrix
    for ancilla in ancillae:
        extended_state = extended_state.extended(ancilla, dim=2, front=True)
        combined = np.kron(ANCILLA_OBSERVABLE, combined)
    total = 0.0
    for compiled in compile_additive(derivative):
        if essentially_aborts(compiled):
            continue
        output = denote(compiled, extended_state, binding)
        total += output.expectation(combined)
    return total
