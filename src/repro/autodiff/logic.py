"""The differentiation logic (Figure 5) and its soundness (Theorem 6.2).

The logic derives judgements ``S′(θ) | S(θ)`` — "``S′`` computes the j-th
differential semantics of ``S``" (Definition 5.3).  This module provides

* :class:`Judgement` and :class:`Derivation` — proof trees whose nodes are
  instances of the rules of Figure 5;
* :func:`derive` — builds the canonical derivation for the program produced
  by the code transformation (the derivation mirrors the program's syntax);
* :func:`check_derivation` — a purely structural proof checker: every node
  is verified against its rule's side conditions and the way its conclusion
  must be assembled from the premises.  It does *not* call the code
  transformation, so it is an independent witness that the transformation's
  output is derivable;
* :func:`validate_soundness` — the semantic (numerical) counterpart of
  Theorem 6.2: it compares the observable semantics of ``S′`` (with the
  ancilla observable ``Z_A``) against a finite-difference evaluation of the
  differential semantics of ``S`` over supplied observables, states, and
  parameter points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import LogicError
from repro.lang.ast import (
    Abort,
    Case,
    Init,
    Program,
    Seq,
    Skip,
    Sum,
    UnitaryApp,
    While,
)
from repro.lang.gates import Coupling, Rotation
from repro.lang.parameters import Parameter, ParameterBinding
from repro.linalg.observables import Observable
from repro.sim.density import DensityState
from repro.semantics.observable import (
    additive_observable_semantics_with_ancilla,
    differential_semantics,
)
from repro.autodiff.gadgets import ANCILLA_OBSERVABLE, differentiation_gadget
from repro.autodiff.transform import (
    DifferentiationContext,
    ancilla_name_for,
    differentiate,
)


@dataclass(frozen=True)
class Judgement:
    """The judgement ``derivative | original`` for one parameter θ_j."""

    derivative: Program
    original: Program
    parameter: Parameter


@dataclass(frozen=True)
class Derivation:
    """A derivation tree: a rule instance with premise sub-derivations."""

    rule: str
    judgement: Judgement
    premises: tuple["Derivation", ...] = ()

    def size(self) -> int:
        """Number of rule instances in the derivation."""
        return 1 + sum(premise.size() for premise in self.premises)

    def rules_used(self) -> set[str]:
        """The set of rule names appearing anywhere in the derivation."""
        result = {self.rule}
        for premise in self.premises:
            result |= premise.rules_used()
        return result


# -- derivation construction ----------------------------------------------------------


def derive(
    program: Program,
    parameter: Parameter,
    *,
    ancilla: str | None = None,
    variables: Iterable[str] | None = None,
) -> Derivation:
    """Build the canonical derivation of ``∂S/∂θ_j | S`` for the transformed program."""
    variable_set = tuple(sorted(set(variables) if variables is not None else program.qvars()))
    ancilla = ancilla if ancilla is not None else ancilla_name_for(program, parameter)
    context = DifferentiationContext(parameter, ancilla, variable_set)
    return _derive(program, context)


def _derive(program: Program, context: DifferentiationContext) -> Derivation:
    parameter = context.parameter

    def conclude(rule: str, derivative: Program, premises: tuple[Derivation, ...] = ()) -> Derivation:
        return Derivation(rule, Judgement(derivative, program, parameter), premises)

    if isinstance(program, Abort):
        return conclude("Abort", context.trivial_abort())
    if isinstance(program, Skip):
        return conclude("Skip", context.trivial_abort())
    if isinstance(program, Init):
        return conclude("Initialization", context.trivial_abort())
    if isinstance(program, UnitaryApp):
        if not program.gate.uses(parameter):
            return conclude("Trivial-Unitary", context.trivial_abort())
        return conclude("Rot-Couple", differentiation_gadget(program, context.ancilla))
    if isinstance(program, Seq):
        left = _derive(program.first, context)
        right = _derive(program.second, context)
        derivative = Sum(
            Seq(program.first, right.judgement.derivative),
            Seq(left.judgement.derivative, program.second),
        )
        return conclude("Sequence", derivative, (left, right))
    if isinstance(program, Case):
        premises = tuple(_derive(branch, context) for _, branch in program.branches)
        derivative = Case(
            program.measurement,
            program.qubits,
            [
                (outcome, premise.judgement.derivative)
                for (outcome, _), premise in zip(program.branches, premises)
            ],
        )
        return conclude("Case", derivative, premises)
    if isinstance(program, While):
        body = _derive(program.body, context)
        derivative = _while_derivative(program, body.judgement.derivative, context)
        return conclude("While", derivative, (body,))
    if isinstance(program, Sum):
        left = _derive(program.left, context)
        right = _derive(program.right, context)
        derivative = Sum(left.judgement.derivative, right.judgement.derivative)
        return conclude("Sum-Component", derivative, (left, right))
    raise LogicError(f"unknown program node {type(program).__name__}")


def _while_derivative(loop: While, body_derivative: Program, context: DifferentiationContext) -> Program:
    """Assemble ``∂(while(T))`` from ``∂(body)`` following the macro expansion.

    ``∂(while(T))`` is the ``Seq_T`` program of Appendix D, obtained by
    unfolding ``while(T)`` into its case/sequence macro and applying the
    Case/Sequence/Trivial rules; here it is assembled directly from the body
    and the already-derived body derivative.
    """
    loop_abort = Abort(tuple(sorted(loop.qvars())))
    if loop.bound == 1:
        continuation: Program = Sum(
            Seq(loop.body, context.trivial_abort()),
            Seq(body_derivative, loop_abort),
        )
    else:
        smaller = While(loop.measurement, loop.qubits, loop.body, loop.bound - 1)
        continuation = Sum(
            Seq(loop.body, _while_derivative(smaller, body_derivative, context)),
            Seq(body_derivative, smaller),
        )
    return Case(
        loop.measurement,
        loop.qubits,
        {0: context.trivial_abort(), 1: continuation},
    )


# -- derivation checking ----------------------------------------------------------------


def check_derivation(
    derivation: Derivation,
    *,
    ancilla: str,
    variables: Sequence[str],
) -> bool:
    """Structurally verify a derivation against the rules of Figure 5.

    Every node is checked locally: the rule must be applicable to the
    original program's top construct, the premises must be derivations for
    the correct sub-programs (with the same parameter), and the conclusion's
    derivative must be assembled from the premises exactly as the rule
    prescribes.  Raises :class:`~repro.errors.LogicError` on the first
    violation and returns True otherwise.
    """
    context = DifferentiationContext(
        derivation.judgement.parameter, ancilla, tuple(sorted(variables))
    )
    _check(derivation, context)
    return True


def _check(derivation: Derivation, context: DifferentiationContext) -> None:
    judgement = derivation.judgement
    original = judgement.original
    derivative = judgement.derivative
    rule = derivation.rule
    parameter = context.parameter

    for premise in derivation.premises:
        if premise.judgement.parameter != parameter:
            raise LogicError("premises must concern the same differentiation parameter")

    if rule in ("Abort", "Skip", "Initialization"):
        expected_types = {"Abort": Abort, "Skip": Skip, "Initialization": Init}
        if not isinstance(original, expected_types[rule]):
            raise LogicError(f"rule {rule} applied to {type(original).__name__}")
        _expect(derivative == context.trivial_abort(), rule, "conclusion must be abort[v ∪ {A}]")
        _expect(not derivation.premises, rule, "axioms take no premises")
    elif rule == "Trivial-Unitary":
        if not isinstance(original, UnitaryApp):
            raise LogicError("Trivial-Unitary applied to a non-unitary statement")
        _expect(
            not original.gate.uses(parameter),
            rule,
            "side condition θ_j ∉ θ(U) violated: the gate uses the parameter",
        )
        _expect(derivative == context.trivial_abort(), rule, "conclusion must be abort[v ∪ {A}]")
        _expect(not derivation.premises, rule, "axioms take no premises")
    elif rule == "Rot-Couple":
        if not isinstance(original, UnitaryApp) or not isinstance(
            original.gate, (Rotation, Coupling)
        ):
            raise LogicError("Rot-Couple applies only to Pauli rotations and couplings")
        _expect(
            original.gate.uses(parameter),
            rule,
            "the rotation must use the differentiation parameter",
        )
        _expect(
            derivative == differentiation_gadget(original, context.ancilla),
            rule,
            "conclusion must be the R' gadget",
        )
        _expect(not derivation.premises, rule, "axioms take no premises")
    elif rule == "Sequence":
        if not isinstance(original, Seq):
            raise LogicError("Sequence rule applied to a non-sequence program")
        _expect(len(derivation.premises) == 2, rule, "exactly two premises required")
        left, right = derivation.premises
        _expect(left.judgement.original == original.first, rule, "first premise mismatch")
        _expect(right.judgement.original == original.second, rule, "second premise mismatch")
        expected = Sum(
            Seq(original.first, right.judgement.derivative),
            Seq(left.judgement.derivative, original.second),
        )
        _expect(derivative == expected, rule, "conclusion must follow the product rule")
    elif rule == "Case":
        if not isinstance(original, Case):
            raise LogicError("Case rule applied to a non-case program")
        _expect(
            len(derivation.premises) == len(original.branches),
            rule,
            "one premise per branch required",
        )
        if not isinstance(derivative, Case):
            raise LogicError("the conclusion of the Case rule must be a case statement")
        _expect(
            derivative.measurement == original.measurement
            and derivative.qubits == original.qubits,
            rule,
            "the guard must be unchanged",
        )
        for (outcome, branch), premise in zip(original.branches, derivation.premises):
            _expect(premise.judgement.original == branch, rule, "branch premise mismatch")
            _expect(
                derivative.branch(outcome) == premise.judgement.derivative,
                rule,
                f"branch {outcome} of the conclusion must be the branch derivative",
            )
    elif rule == "While":
        if not isinstance(original, While):
            raise LogicError("While rule applied to a non-while program")
        _expect(len(derivation.premises) == 1, rule, "exactly one premise (the body) required")
        body = derivation.premises[0]
        _expect(body.judgement.original == original.body, rule, "body premise mismatch")
        expected = _while_derivative(original, body.judgement.derivative, context)
        _expect(derivative == expected, rule, "conclusion must be the unfolded Seq_T program")
    elif rule == "Sum-Component":
        if not isinstance(original, Sum):
            raise LogicError("Sum-Component rule applied to a non-additive program")
        _expect(len(derivation.premises) == 2, rule, "exactly two premises required")
        left, right = derivation.premises
        _expect(left.judgement.original == original.left, rule, "left premise mismatch")
        _expect(right.judgement.original == original.right, rule, "right premise mismatch")
        expected = Sum(left.judgement.derivative, right.judgement.derivative)
        _expect(derivative == expected, rule, "conclusion must be the sum of premise derivatives")
    else:
        raise LogicError(f"unknown rule {rule!r}")

    for premise in derivation.premises:
        _check(premise, context)


def _expect(condition: bool, rule: str, message: str) -> None:
    if not condition:
        raise LogicError(f"rule {rule}: {message}")


# -- semantic soundness (Theorem 6.2) ----------------------------------------------------


def validate_soundness(
    program: Program,
    parameter: Parameter,
    cases: Sequence[tuple[Observable, DensityState]],
    bindings: Sequence[ParameterBinding],
    *,
    finite_difference_step: float = 1e-5,
) -> float:
    """Numerically validate Theorem 6.2 on a family of observables, states and points.

    For every ``(O, ρ)`` pair and every binding θ*, compares

        [[((O, Z_A), ρ) → ∂S/∂θ_j]](θ*)   (the transformed program's readout)

    against a central finite difference of ``[[(O, ρ) → S]]`` at θ*.
    Returns the maximum absolute discrepancy across all cases.
    """
    derivative = differentiate(program, parameter)
    ancilla = ancilla_name_for(program, parameter)
    worst = 0.0
    for observable, state in cases:
        for binding in bindings:
            transformed_value = additive_observable_semantics_with_ancilla(
                derivative,
                observable,
                state,
                ancilla,
                binding,
                ancilla_observable=ANCILLA_OBSERVABLE,
            )
            reference = differential_semantics(
                program,
                parameter,
                observable,
                state,
                binding,
                step=finite_difference_step,
            )
            worst = max(worst, abs(transformed_value - reference))
    return worst
