"""End-to-end execution of the differentiation procedure (Section 7).

The pipeline for one parameter θ_j:

1. **Transform** — apply the code-transformation rules (Figure 4) to obtain
   the additive program ``∂P/∂θ_j`` over ``v ∪ {A_j}``;
2. **Compile** — lower it (Figure 3) to the multiset ``{|P'_i|}`` of normal
   programs; both steps are parameter-value independent and happen once, at
   "compile time";
3. **Execute** — for a concrete observable O, input state ρ and point θ*,
   evaluate ``Σ_i tr((Z_A ⊗ O)[[P'_i(θ*)]](|0⟩⟨0|_A ⊗ ρ))`` — either exactly
   with the density-matrix simulator, or with the Chernoff-bounded sampling
   scheme the paper describes (``O(m²/δ²)`` shots for ``m`` programs).

The execution half now lives in :mod:`repro.api`: an
:class:`~repro.api.Estimator` owns the compile-time artifacts and a
denotation cache and delegates readouts to pluggable backends
(:class:`~repro.api.ExactDensityBackend`,
:class:`~repro.api.ShotSamplingBackend`).  Everything below — the
per-parameter :class:`DerivativeProgramSet` and the historical free
functions — is kept as a thin, stable shim over that facade, so existing
callers and the papers' pseudo-code-shaped entry points keep working.  The
shims build a fresh single-purpose estimator per call and therefore share
no denotation cache between calls; long-running loops should hold an
:class:`~repro.api.Estimator` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import SemanticsError
from repro.lang.ast import Program
from repro.lang.parameters import Parameter, ParameterBinding
from repro.linalg.observables import Observable
from repro.sim.density import DensityState
from repro.additive.compile import compile_additive
from repro.additive.essential_abort import essentially_aborts
from repro.autodiff.transform import ancilla_name_for, differentiate


def _estimator_for(
    program: Program,
    observable: Observable | np.ndarray,
    *,
    targets: Sequence[str] | None = None,
    parameters: Sequence[Parameter] = (),
    program_sets: "Sequence[DerivativeProgramSet] | None" = None,
    backend=None,
):
    """Build the transient single-call estimator backing the legacy shims.

    The denotation cache is disabled: a single-call estimator evaluates each
    ``(program, binding, state)`` triple exactly once, so a cache could never
    hit but would pin every simulated output state until the shim returns.
    """
    from repro.api import Estimator

    seeded = (
        dict(zip(parameters, program_sets)) if program_sets is not None else None
    )
    return Estimator(
        program,
        observable,
        targets=targets,
        parameters=parameters,
        backend=backend,
        program_sets=seeded,
        cache_size=0,
    )


@dataclass(frozen=True)
class DerivativeProgramSet:
    """The compile-time artifact of differentiating one program w.r.t. one parameter.

    Attributes
    ----------
    original:
        The program ``P(θ)`` that was differentiated.
    parameter:
        The parameter θ_j.
    ancilla:
        The fresh ancilla variable ``A_j`` added by the transformation.
    additive:
        The additive program ``∂P/∂θ_j`` (before compilation).
    programs:
        ``Compile(∂P/∂θ_j)`` — the multiset of normal programs to execute.
    """

    original: Program
    parameter: Parameter
    ancilla: str
    additive: Program
    programs: tuple[Program, ...]

    @property
    def nonaborting_count(self) -> int:
        """``|#∂P/∂θ_j|`` — the number of programs that actually need to run."""
        return sum(1 for program in self.programs if not essentially_aborts(program))

    def nonaborting_programs(self) -> tuple[Program, ...]:
        """The compiled programs that do not essentially abort."""
        return tuple(p for p in self.programs if not essentially_aborts(p))

    def evaluate(
        self,
        observable: Observable | np.ndarray,
        state: DensityState,
        binding: ParameterBinding,
        *,
        targets: Sequence[str] | None = None,
    ) -> float:
        """Exactly evaluate the derivative readout ``Σ_i tr((Z_A⊗O)[[P'_i]](|0⟩⟨0|⊗ρ))``.

        With ``targets`` the observable acts only on those variables of the
        input register, so ``Z_A ⊗ O`` stays a small (1+k)-local operator
        that the contraction kernels read out in ``O(4^n)``.  Without
        ``targets`` the observable covers the whole original register and the
        readout contracts ``Z_A`` blockwise against the output state — the
        full-space Kronecker product ``Z_A ⊗ O`` is never materialized
        either way.

        (Shim: delegates to :class:`repro.api.ExactDensityBackend` through a
        per-call estimator.)
        """
        estimator = _estimator_for(
            self.original,
            observable,
            targets=targets,
            parameters=(self.parameter,),
            program_sets=(self,),
        )
        return float(estimator.derivative(self.parameter, state, binding))

    def evaluate_sampled(
        self,
        observable: Observable | np.ndarray,
        state: DensityState,
        binding: ParameterBinding,
        *,
        targets: Sequence[str] | None = None,
        precision: float = 0.1,
        confidence: float = 0.95,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Estimate the derivative readout with the sampling scheme of Section 7.

        Each compiled program is simulated exactly to obtain its output
        state, and the readout of ``Z_A ⊗ O`` is then *sampled* with the
        Chernoff-bounded repetition count for a sum of ``m`` programs.

        The combined observable is never formed: ``Z_A ⊗ O`` is measured by
        jointly reading the ancilla in the computational basis (eigenbasis of
        ``Z_A``) and the original register in the eigenbasis of ``O``.  With
        ``targets`` the observable is a small local operator; its spectral
        decomposition happens on the ``2^k``-dimensional target space and the
        Born-rule weights come off the reduced density matrix of the
        ancilla + target factors, matching :meth:`evaluate`.

        (Shim: delegates to :class:`repro.api.ShotSamplingBackend` through a
        per-call estimator.)
        """
        from repro.api import ShotSamplingBackend

        estimator = _estimator_for(
            self.original,
            observable,
            targets=targets,
            parameters=(self.parameter,),
            program_sets=(self,),
            backend=ShotSamplingBackend(precision=precision, confidence=confidence, rng=rng),
        )
        return float(estimator.derivative(self.parameter, state, binding))


def differentiate_and_compile(program: Program, parameter: Parameter) -> DerivativeProgramSet:
    """Run the compile-time half of the pipeline: transform then compile."""
    ancilla = ancilla_name_for(program, parameter)
    additive = differentiate(program, parameter, ancilla=ancilla)
    compiled = tuple(compile_additive(additive))
    return DerivativeProgramSet(program, parameter, ancilla, additive, compiled)


def expectation(
    program: Program,
    observable: Observable | np.ndarray,
    state: DensityState,
    binding: ParameterBinding,
) -> float:
    """The (undifferentiated) observable semantics ``tr(O[[P(θ*)]]ρ)``."""
    return _estimator_for(program, observable).value(state, binding)


def derivative_expectation(
    program: Program,
    parameter: Parameter,
    observable: Observable | np.ndarray,
    state: DensityState,
    binding: ParameterBinding,
) -> float:
    """Exactly compute ``∂/∂θ_j tr(O[[P(θ)]]ρ)`` at θ* via the full pipeline."""
    estimator = _estimator_for(program, observable, parameters=(parameter,))
    return float(estimator.derivative(parameter, state, binding))


def estimate_derivative_expectation(
    program: Program,
    parameter: Parameter,
    observable: Observable | np.ndarray,
    state: DensityState,
    binding: ParameterBinding,
    *,
    precision: float = 0.1,
    confidence: float = 0.95,
    rng: np.random.Generator | None = None,
) -> float:
    """Shot-based estimate of ``∂/∂θ_j tr(O[[P(θ)]]ρ)`` (Section 7 execution scheme)."""
    from repro.api import ShotSamplingBackend

    estimator = _estimator_for(
        program,
        observable,
        parameters=(parameter,),
        backend=ShotSamplingBackend(precision=precision, confidence=confidence, rng=rng),
    )
    return float(estimator.derivative(parameter, state, binding))


def gradient(
    program: Program,
    parameters: Sequence[Parameter],
    observable: Observable | np.ndarray,
    state: DensityState,
    binding: ParameterBinding,
    *,
    program_sets: Sequence[DerivativeProgramSet] | None = None,
    targets: Sequence[str] | None = None,
) -> np.ndarray:
    """Full gradient of the observable semantics with respect to several parameters.

    ``program_sets`` may carry pre-built :class:`DerivativeProgramSet`
    objects (one per parameter, in order) so that training loops pay the
    transformation/compilation cost only once; each set must have been built
    for the parameter at the same position, otherwise a
    :class:`~repro.errors.SemanticsError` is raised (a silently reordered or
    mismatched list would compute the wrong gradient).  ``targets`` restricts
    the observable to a subset of the register exactly as in
    :meth:`DerivativeProgramSet.evaluate`.
    """
    parameters = tuple(parameters)
    if program_sets is not None:
        program_sets = tuple(program_sets)
        if len(program_sets) != len(parameters):
            raise SemanticsError("one derivative program set per parameter is required")
        for index, (program_set, parameter) in enumerate(zip(program_sets, parameters)):
            if program_set.parameter != parameter:
                raise SemanticsError(
                    f"derivative program set at position {index} was built for parameter "
                    f"{program_set.parameter.name!r}, not {parameter.name!r}; the "
                    "program_sets list must match the parameters list element-wise"
                )
    estimator = _estimator_for(
        program,
        observable,
        targets=targets,
        parameters=parameters,
        program_sets=program_sets,
    )
    return estimator.gradient(state, binding)
