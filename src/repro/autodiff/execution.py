"""End-to-end execution of the differentiation procedure (Section 7).

The pipeline for one parameter θ_j:

1. **Transform** — apply the code-transformation rules (Figure 4) to obtain
   the additive program ``∂P/∂θ_j`` over ``v ∪ {A_j}``;
2. **Compile** — lower it (Figure 3) to the multiset ``{|P'_i|}`` of normal
   programs; both steps are parameter-value independent and happen once, at
   "compile time";
3. **Execute** — for a concrete observable O, input state ρ and point θ*,
   evaluate ``Σ_i tr((Z_A ⊗ O)[[P'_i(θ*)]](|0⟩⟨0|_A ⊗ ρ))`` — either exactly
   with the density-matrix simulator, or with the Chernoff-bounded sampling
   scheme the paper describes (``O(m²/δ²)`` shots for ``m`` programs).

:func:`gradient` repeats the pipeline for every parameter of interest, which
is what the training loop of the Section 8.1 case study consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import SemanticsError
from repro.lang.ast import Program
from repro.lang.parameters import Parameter, ParameterBinding
from repro.linalg.observables import Observable
from repro.sim import kernels
from repro.sim.density import DensityState
from repro.sim.shots import estimate_distribution_sum, normalized_distribution
from repro.semantics.denotational import denote
from repro.semantics.observable import observable_semantics
from repro.additive.compile import compile_additive
from repro.additive.essential_abort import essentially_aborts
from repro.autodiff.gadgets import ANCILLA_OBSERVABLE
from repro.autodiff.transform import ancilla_name_for, differentiate


@dataclass(frozen=True)
class DerivativeProgramSet:
    """The compile-time artifact of differentiating one program w.r.t. one parameter.

    Attributes
    ----------
    original:
        The program ``P(θ)`` that was differentiated.
    parameter:
        The parameter θ_j.
    ancilla:
        The fresh ancilla variable ``A_j`` added by the transformation.
    additive:
        The additive program ``∂P/∂θ_j`` (before compilation).
    programs:
        ``Compile(∂P/∂θ_j)`` — the multiset of normal programs to execute.
    """

    original: Program
    parameter: Parameter
    ancilla: str
    additive: Program
    programs: tuple[Program, ...]

    @property
    def nonaborting_count(self) -> int:
        """``|#∂P/∂θ_j|`` — the number of programs that actually need to run."""
        return sum(1 for program in self.programs if not essentially_aborts(program))

    def nonaborting_programs(self) -> tuple[Program, ...]:
        """The compiled programs that do not essentially abort."""
        return tuple(p for p in self.programs if not essentially_aborts(p))

    def evaluate(
        self,
        observable: Observable | np.ndarray,
        state: DensityState,
        binding: ParameterBinding,
        *,
        targets: Sequence[str] | None = None,
    ) -> float:
        """Exactly evaluate the derivative readout ``Σ_i tr((Z_A⊗O)[[P'_i]](|0⟩⟨0|⊗ρ))``.

        With ``targets`` the observable acts only on those variables of the
        input register, so ``Z_A ⊗ O`` stays a small (1+k)-local operator
        that the contraction kernels read out in ``O(4^n)``.  Without
        ``targets`` the observable covers the whole original register and the
        readout contracts ``Z_A`` blockwise against the output state — the
        full-space Kronecker product ``Z_A ⊗ O`` is never materialized
        either way.
        """
        matrix = observable.matrix if isinstance(observable, Observable) else np.asarray(observable)
        extended = state.extended(self.ancilla, dim=2, front=True)
        total = 0.0
        if targets is not None:
            expected = int(np.prod([state.layout.dim_of(name) for name in targets]))
            if matrix.shape != (expected, expected):
                raise SemanticsError("observable dimension does not match the target variables")
            combined = np.kron(ANCILLA_OBSERVABLE, matrix)
            combined_targets = (self.ancilla,) + tuple(targets)
            for program in self.nonaborting_programs():
                output = denote(program, extended, binding)
                total += output.expectation(combined, combined_targets)
            return total
        if matrix.shape != (state.layout.total_dim, state.layout.total_dim):
            raise SemanticsError("observable dimension does not match the input state register")
        for program in self.nonaborting_programs():
            output = denote(program, extended, binding)
            total += kernels.two_factor_expectation_density(
                output.matrix, 2, ANCILLA_OBSERVABLE, matrix
            )
        return total

    def evaluate_sampled(
        self,
        observable: Observable | np.ndarray,
        state: DensityState,
        binding: ParameterBinding,
        *,
        precision: float = 0.1,
        confidence: float = 0.95,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Estimate the derivative readout with the sampling scheme of Section 7.

        Each compiled program is simulated exactly to obtain its output
        state, and the readout of ``Z_A ⊗ O`` is then *sampled* with the
        Chernoff-bounded repetition count for a sum of ``m`` programs.

        The combined observable is never formed: ``Z_A ⊗ O`` is measured by
        jointly reading the ancilla in the computational basis (eigenbasis of
        ``Z_A``) and the original register in the eigenbasis of ``O``, so the
        spectral decomposition happens once on the ``2^n``-dimensional ``O``
        instead of per program on the doubled space, and the per-outcome
        Born-rule weights come from the ancilla blocks of the output state.
        """
        matrix = observable.matrix if isinstance(observable, Observable) else np.asarray(observable)
        if matrix.shape != (state.layout.total_dim, state.layout.total_dim):
            raise SemanticsError("observable dimension does not match the input state register")
        spectral = (
            observable if isinstance(observable, Observable) else Observable(matrix)
        ).spectral_measurement()
        measurement, eigenvalues = spectral
        ancilla_signs = np.real(np.diag(ANCILLA_OBSERVABLE))
        extended = state.extended(self.ancilla, dim=2, front=True)
        dim = state.layout.total_dim
        distributions = []
        for program in self.nonaborting_programs():
            output = denote(program, extended, binding)
            blocks = output.matrix.reshape(2, dim, 2, dim)
            values = []
            weights = []
            for sign_index, sign in enumerate(ancilla_signs):
                block = blocks[sign_index, :, sign_index, :]
                for projector, eigenvalue in zip(measurement.operators, eigenvalues):
                    values.append(sign * eigenvalue)
                    weights.append(float(np.real(np.einsum("ij,ji->", projector, block))))
            distributions.append(normalized_distribution(values, weights))
        return estimate_distribution_sum(
            distributions, precision=precision, confidence=confidence, rng=rng
        )


def differentiate_and_compile(program: Program, parameter: Parameter) -> DerivativeProgramSet:
    """Run the compile-time half of the pipeline: transform then compile."""
    ancilla = ancilla_name_for(program, parameter)
    additive = differentiate(program, parameter, ancilla=ancilla)
    compiled = tuple(compile_additive(additive))
    return DerivativeProgramSet(program, parameter, ancilla, additive, compiled)


def expectation(
    program: Program,
    observable: Observable | np.ndarray,
    state: DensityState,
    binding: ParameterBinding,
) -> float:
    """The (undifferentiated) observable semantics ``tr(O[[P(θ*)]]ρ)``."""
    return observable_semantics(program, observable, state, binding)


def derivative_expectation(
    program: Program,
    parameter: Parameter,
    observable: Observable | np.ndarray,
    state: DensityState,
    binding: ParameterBinding,
) -> float:
    """Exactly compute ``∂/∂θ_j tr(O[[P(θ)]]ρ)`` at θ* via the full pipeline."""
    return differentiate_and_compile(program, parameter).evaluate(observable, state, binding)


def estimate_derivative_expectation(
    program: Program,
    parameter: Parameter,
    observable: Observable | np.ndarray,
    state: DensityState,
    binding: ParameterBinding,
    *,
    precision: float = 0.1,
    confidence: float = 0.95,
    rng: np.random.Generator | None = None,
) -> float:
    """Shot-based estimate of ``∂/∂θ_j tr(O[[P(θ)]]ρ)`` (Section 7 execution scheme)."""
    return differentiate_and_compile(program, parameter).evaluate_sampled(
        observable, state, binding, precision=precision, confidence=confidence, rng=rng
    )


def gradient(
    program: Program,
    parameters: Sequence[Parameter],
    observable: Observable | np.ndarray,
    state: DensityState,
    binding: ParameterBinding,
    *,
    program_sets: Sequence[DerivativeProgramSet] | None = None,
    targets: Sequence[str] | None = None,
) -> np.ndarray:
    """Full gradient of the observable semantics with respect to several parameters.

    ``program_sets`` may carry pre-built :class:`DerivativeProgramSet`
    objects (one per parameter, in order) so that training loops pay the
    transformation/compilation cost only once.  ``targets`` restricts the
    observable to a subset of the register exactly as in
    :meth:`DerivativeProgramSet.evaluate`.
    """
    if program_sets is None:
        program_sets = [differentiate_and_compile(program, parameter) for parameter in parameters]
    if len(program_sets) != len(parameters):
        raise SemanticsError("one derivative program set per parameter is required")
    values = [
        program_set.evaluate(observable, state, binding, targets=targets)
        for program_set in program_sets
    ]
    return np.array(values, dtype=float)
