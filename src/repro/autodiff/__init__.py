"""Differentiation of quantum programs — the paper's primary contribution.

* :mod:`repro.autodiff.gadgets` — the single-circuit differentiation gadget
  ``R'_σ(θ)`` of Definition 6.1 (Hadamard-conjugated controlled rotation on
  one ancilla qubit), replacing the two-circuit phase-shift rule;
* :mod:`repro.autodiff.transform` — the code-transformation rules of
  Figure 4, mapping a program ``S(θ)`` to the additive program
  ``∂S/∂θ_j`` over ``v ∪ {A_j}``;
* :mod:`repro.autodiff.logic` — the differentiation logic of Figure 5 with
  judgement ``S′(θ) | S(θ)``, derivation construction/checking and a
  numerical soundness validator (Theorem 6.2);
* :mod:`repro.autodiff.execution` — the end-to-end execution scheme of
  Section 7: transform, compile, run every compiled program with the
  ancilla observable ``Z_A ⊗ O``, exactly or with Chernoff-bounded shots.
"""

from repro.autodiff.gadgets import (
    rotation_prime,
    coupling_prime,
    differentiation_gadget,
    ANCILLA_OBSERVABLE,
)
from repro.autodiff.transform import (
    differentiate,
    ancilla_name_for,
    DifferentiationContext,
)
from repro.autodiff.logic import (
    Judgement,
    Derivation,
    derive,
    check_derivation,
    validate_soundness,
)
from repro.autodiff.execution import (
    DerivativeProgramSet,
    differentiate_and_compile,
    expectation,
    derivative_expectation,
    gradient,
    estimate_derivative_expectation,
)
from repro.autodiff.higher_order import (
    eliminate_controlled_rotations,
    iterated_derivative,
    higher_order_derivative_expectation,
)

__all__ = [
    "rotation_prime",
    "coupling_prime",
    "differentiation_gadget",
    "ANCILLA_OBSERVABLE",
    "differentiate",
    "ancilla_name_for",
    "DifferentiationContext",
    "Judgement",
    "Derivation",
    "derive",
    "check_derivation",
    "validate_soundness",
    "DerivativeProgramSet",
    "differentiate_and_compile",
    "expectation",
    "derivative_expectation",
    "gradient",
    "estimate_derivative_expectation",
    "eliminate_controlled_rotations",
    "iterated_derivative",
    "higher_order_derivative_expectation",
]
