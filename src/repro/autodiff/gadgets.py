"""The single-circuit differentiation gadget ``R'_σ(θ)`` (Definition 6.1).

For a rotation ``R_σ(θ) = exp(−iθσ/2)`` with ``σ² = I`` the entry-wise
derivative satisfies ``d/dθ R_σ(θ) = ½ R_σ(θ+π)`` (Lemma D.1).  The paper
exploits this through one extra ancilla qubit: the gadget

    R'_σ(θ)[A, q] ≡ A := H[A];  A,q := C_R_σ(θ)[A, q];  A := H[A]

with ``C_R_σ(θ) = |0⟩⟨0|⊗R_σ(θ) + |1⟩⟨1|⊗R_σ(θ+π)`` creates a superposition
of the original and the π-shifted circuit, and reading out ``Z_A ⊗ O`` on
the output recovers exactly ``∂/∂θ tr(O R_σ(θ) ρ R_σ(θ)†)``:

    tr((Z_A ⊗ O) [[R'_σ(θ)]](|0⟩⟨0|_A ⊗ ρ))
        = ½ tr(O (R_σ(θ) ρ R_σ(θ+π)† + R_σ(θ+π) ρ R_σ(θ)†)).

This uses *one* circuit per parameter occurrence where the phase-shift rule
of Schuld et al. needs two — the design difference the paper highlights and
which :mod:`repro.baselines.phase_shift` implements for comparison.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TransformError
from repro.lang.ast import Program, Seq, UnitaryApp
from repro.lang.builder import seq
from repro.lang.gates import (
    ControlledCoupling,
    ControlledRotation,
    Coupling,
    Rotation,
    hadamard,
)
from repro.lang.parameters import Parameter

#: The observable measured on the ancilla qubit: ``Z_A = |0⟩⟨0| − |1⟩⟨1|``.
ANCILLA_OBSERVABLE = np.array([[1, 0], [0, -1]], dtype=complex)


def rotation_prime(axis: str, angle: Parameter | float, ancilla: str, qubit: str) -> Program:
    """Build the gadget program ``R'_σ(θ)[A, q]`` for a single-qubit rotation."""
    h = hadamard()
    return seq(
        [
            UnitaryApp(h, (ancilla,)),
            UnitaryApp(ControlledRotation(axis, angle), (ancilla, qubit)),
            UnitaryApp(h, (ancilla,)),
        ]
    )


def coupling_prime(
    axis: str,
    angle: Parameter | float,
    ancilla: str,
    qubit1: str,
    qubit2: str,
) -> Program:
    """Build the gadget program ``R'_{σ⊗σ}(θ)[A, q1, q2]`` for a two-qubit coupling."""
    h = hadamard()
    return seq(
        [
            UnitaryApp(h, (ancilla,)),
            UnitaryApp(ControlledCoupling(axis, angle), (ancilla, qubit1, qubit2)),
            UnitaryApp(h, (ancilla,)),
        ]
    )


def differentiation_gadget(statement: UnitaryApp, ancilla: str) -> Program:
    """Return the gadget program replacing a parameterized rotation/coupling statement.

    Implements the (1-qb) and (2-qb) code-transformation rules of Figure 4.
    Raises :class:`~repro.errors.TransformError` for any other gate — the
    paper's rule set covers exactly the Pauli rotations and couplings.
    """
    gate = statement.gate
    if isinstance(gate, Rotation):
        (qubit,) = statement.qubits
        return rotation_prime(gate.axis, gate.angle, ancilla, qubit)
    if isinstance(gate, Coupling):
        qubit1, qubit2 = statement.qubits
        return coupling_prime(gate.axis, gate.angle, ancilla, qubit1, qubit2)
    raise TransformError(
        f"no differentiation rule for gate {gate.display()}; only Pauli rotations "
        "R_σ(θ) and couplings R_{σ⊗σ}(θ) are supported (Figure 4)"
    )
