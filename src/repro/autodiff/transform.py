"""The code-transformation rules ``∂/∂θ_j(·)`` of Figure 4.

``differentiate(S, θ_j)`` maps an additive program ``S(θ)`` over variables
``v`` to the additive program ``∂S/∂θ_j`` over ``v ∪ {A_j}``, where ``A_j``
is a fresh one-qubit ancilla.  The rules:

* **Trivial** — ``abort``, ``skip``, ``q := |0⟩`` and unitaries that do not
  use θ_j transform to ``abort[v ∪ {A}]`` (their observable semantics does
  not depend on θ_j, so the derivative program contributes nothing);
* **1-qb / 2-qb** — a rotation/coupling using θ_j transforms to the gadget
  ``R'``/``R'_{σ⊗σ}`` of Definition 6.1;
* **Sequence** — the quantum product rule
  ``∂(S₁;S₂) = (S₁; ∂S₂) + (∂S₁; S₂)``, expressed with the additive choice
  because no-cloning forbids running both summands on one copy of the state;
* **Case** — differentiate each branch under the same guard;
* **While(T)** — differentiate the case/sequence macro expansion
  (Eq. 3.1 / the ``Seq_T`` program of Appendix D);
* **S-C** — ``∂(S₁+S₂) = ∂S₁ + ∂S₂``.

The transformation itself never needs the parameter's numeric value; it is a
purely syntactic compile-time step, exactly as in classical source-to-source
automatic differentiation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import TransformError
from repro.lang.ast import (
    Abort,
    Case,
    Init,
    Program,
    Seq,
    Skip,
    Sum,
    UnitaryApp,
    While,
)
from repro.lang.parameters import Parameter
from repro.lang.traversal import unfold_while
from repro.lang.gates import Coupling, Rotation
from repro.autodiff.gadgets import differentiation_gadget


def ancilla_name_for(program: Program, parameter: Parameter) -> str:
    """Return a fresh ancilla variable name ``A_{j}`` for differentiating ``program``.

    The name embeds the parameter so that ancillae of different partial
    derivatives never collide; a numeric suffix is appended in the unlikely
    event that the program already uses the name (e.g. iterated
    differentiation with respect to the same parameter).
    """
    used = program.qvars()
    base = f"anc_{parameter.name}"
    if base not in used:
        return base
    counter = 1
    while f"{base}_{counter}" in used:
        counter += 1
    return f"{base}_{counter}"


@dataclass(frozen=True)
class DifferentiationContext:
    """Everything fixed during one application of ``∂/∂θ_j``.

    ``variables`` is the full variable set ``v`` of the root program, used
    to build the canonical ``abort[v ∪ {A}]`` of the trivial rules;
    ``ancilla`` is the fresh control qubit ``A_j``.
    """

    parameter: Parameter
    ancilla: str
    variables: tuple[str, ...]

    def trivial_abort(self) -> Abort:
        """The ``abort[v ∪ {A}]`` statement used by the Trivial rules."""
        return Abort(tuple(sorted(set(self.variables) | {self.ancilla})))


def differentiate(
    program: Program,
    parameter: Parameter,
    *,
    ancilla: str | None = None,
    variables: Iterable[str] | None = None,
) -> Program:
    """Apply the code-transformation rules of Figure 4: return ``∂ program / ∂ parameter``.

    Parameters
    ----------
    program:
        A normal or additive program ``S(θ)``.
    parameter:
        The parameter θ_j to differentiate with respect to.
    ancilla:
        Name of the ancilla qubit ``A_j``; a fresh one is chosen by default.
    variables:
        The variable universe ``v``; defaults to ``qVar(program)``.  Passing
        a larger universe only changes the variable annotation of the
        ``abort`` statements produced by the trivial rules.
    """
    variable_set = tuple(sorted(set(variables) if variables is not None else program.qvars()))
    ancilla = ancilla if ancilla is not None else ancilla_name_for(program, parameter)
    if ancilla in variable_set:
        raise TransformError(
            f"ancilla {ancilla!r} collides with a program variable; choose a fresh name"
        )
    context = DifferentiationContext(parameter, ancilla, variable_set)
    return _transform(program, context)


def _transform(program: Program, context: DifferentiationContext) -> Program:
    if isinstance(program, (Abort, Skip, Init)):
        # (Trivial): these statements do not depend on any parameter.
        return context.trivial_abort()
    if isinstance(program, UnitaryApp):
        return _transform_unitary(program, context)
    if isinstance(program, Seq):
        # (Sequence): ∂(S1; S2) ≡ (S1; ∂S2) + (∂S1; S2).
        first_kept = Seq(program.first, _transform(program.second, context))
        second_kept = Seq(_transform(program.first, context), program.second)
        return Sum(first_kept, second_kept)
    if isinstance(program, Case):
        # (Case): differentiate every branch under the same guard.
        return Case(
            program.measurement,
            program.qubits,
            [(outcome, _transform(branch, context)) for outcome, branch in program.branches],
        )
    if isinstance(program, While):
        # (While(T)): differentiate the case/sequence macro expansion.
        return _transform(unfold_while(program), context)
    if isinstance(program, Sum):
        # (S-C): ∂ distributes over the additive choice.
        return Sum(_transform(program.left, context), _transform(program.right, context))
    raise TransformError(f"unknown program node {type(program).__name__}")


def _transform_unitary(statement: UnitaryApp, context: DifferentiationContext) -> Program:
    gate = statement.gate
    if not gate.uses(context.parameter):
        # (Trivial-U): the gate only trivially uses θ_j.
        return context.trivial_abort()
    if isinstance(gate, (Rotation, Coupling)):
        # (1-qb) / (2-qb): replace the rotation by the R' gadget.
        return differentiation_gadget(statement, context.ancilla)
    raise TransformError(
        f"gate {gate.display()} depends on parameter {context.parameter.name!r} but is not "
        "a Pauli rotation or coupling; Figure 4 has no rule for it"
    )
