"""The controlled-VQC classifiers of the Section 8.1 case study.

``Q(Γ)`` is one layer of single-qubit rotations — ``R_X`` then ``R_Y`` then
``R_Z`` on each of the four data qubits (twelve parameters).  The two
classifiers compared in Figure 6 are

* ``P1(Θ, Φ) = Q(Θ); Q(Φ)`` — a plain circuit, 24 parameters, differentiable
  with the phase-shift baseline as well;
* ``P2(Θ, Φ, Ψ) = Q(Θ); case M[q1] = 0 → Q(Φ), 1 → Q(Ψ) end`` — the same
  gate count per run but with a measurement-controlled branch, 36
  parameters, differentiable only with the paper's scheme.

An input bitstring ``z`` is loaded as the basis state ``|z⟩`` of the data
qubits; the classifier's output ``l_θ(z)`` is the probability of reading 1
when measuring the fourth qubit, i.e. the observable ``|1⟩⟨1|`` on ``q4``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

import numpy as np

from repro.errors import TrainingError
from repro.lang.ast import Program
from repro.lang.builder import bounded_while_on_qubit, case_on_qubit, rx, ry, rz, seq
from repro.lang.parameters import Parameter, ParameterBinding, ParameterVector
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.sim.statevector import StateVector
from repro.api import Backend, Estimator
from repro.autodiff.execution import DerivativeProgramSet

DATA_QUBITS = ("q1", "q2", "q3", "q4")
READOUT_QUBIT = "q4"

#: Single-qubit projector |1⟩⟨1| used as the readout observable.
_PROJECTOR_ONE = np.array([[0, 0], [0, 1]], dtype=complex)


def build_q_layer(parameters: Sequence[Parameter], qubits: Sequence[str] = DATA_QUBITS) -> Program:
    """Build ``Q(Γ)``: R_X on each qubit, then R_Y on each, then R_Z on each.

    ``parameters`` must contain ``3 × len(qubits)`` entries ordered exactly as
    in the paper: the X angles, then the Y angles, then the Z angles.
    """
    qubits = tuple(qubits)
    expected = 3 * len(qubits)
    if len(parameters) != expected:
        raise TrainingError(f"Q layer over {len(qubits)} qubits needs {expected} parameters")
    statements: list[Program] = []
    n = len(qubits)
    statements.extend(rx(parameters[i], qubits[i]) for i in range(n))
    statements.extend(ry(parameters[n + i], qubits[i]) for i in range(n))
    statements.extend(rz(parameters[2 * n + i], qubits[i]) for i in range(n))
    return seq(statements)


def build_p1(
    theta: Sequence[Parameter] | None = None,
    phi: Sequence[Parameter] | None = None,
) -> "BooleanClassifier":
    """Build the no-control classifier ``P1(Θ, Φ) = Q(Θ); Q(Φ)`` (Eq. 8.1)."""
    theta = tuple(theta) if theta is not None else ParameterVector("theta", 12).as_tuple()
    phi = tuple(phi) if phi is not None else ParameterVector("phi", 12).as_tuple()
    program = seq([build_q_layer(theta), build_q_layer(phi)])
    return BooleanClassifier(
        name="P1 (no control)",
        program=program,
        parameters=theta + phi,
        data_qubits=DATA_QUBITS,
        readout_qubit=READOUT_QUBIT,
    )


def build_p2(
    theta: Sequence[Parameter] | None = None,
    phi: Sequence[Parameter] | None = None,
    psi: Sequence[Parameter] | None = None,
) -> "BooleanClassifier":
    """Build the controlled classifier ``P2(Θ, Φ, Ψ)`` of Eq. (8.2).

    After the first layer the first qubit is measured; depending on the
    outcome either ``Q(Φ)`` or ``Q(Ψ)`` runs.  Each execution applies the
    same number of gates as ``P1``.
    """
    theta = tuple(theta) if theta is not None else ParameterVector("theta", 12).as_tuple()
    phi = tuple(phi) if phi is not None else ParameterVector("phi", 12).as_tuple()
    psi = tuple(psi) if psi is not None else ParameterVector("psi", 12).as_tuple()
    program = seq(
        [
            build_q_layer(theta),
            case_on_qubit("q1", {0: build_q_layer(phi), 1: build_q_layer(psi)}),
        ]
    )
    return BooleanClassifier(
        name="P2 (with control)",
        program=program,
        parameters=theta + phi + psi,
        data_qubits=DATA_QUBITS,
        readout_qubit=READOUT_QUBIT,
    )


def build_p3(
    theta: Sequence[Parameter] | None = None,
    psi: Sequence[Parameter] | None = None,
    *,
    bound: int = 2,
) -> "BooleanClassifier":
    """Build the loop-controlled classifier ``P3(Θ, Ψ)``.

    ``P3(Θ, Ψ) = Q(Θ); while(T) M[q1] = 1 do Q(Ψ) done`` — the bounded
    ``while`` variant of ``P2``: as long as the guard measurement of the
    first qubit reads 1, another ``Q(Ψ)`` layer runs (at most ``T`` times;
    the still-running branch then aborts, so predictions are read from the
    sub-normalized terminated state, exactly the paper's partiality
    convention).  It exercises the full bounded-while differentiation rules
    and, on ``backend="auto"``, the branch-splitting trajectory tier with
    one branch per unrolled loop prefix.
    """
    theta = tuple(theta) if theta is not None else ParameterVector("theta", 12).as_tuple()
    psi = tuple(psi) if psi is not None else ParameterVector("psi", 12).as_tuple()
    program = seq(
        [
            build_q_layer(theta),
            bounded_while_on_qubit("q1", build_q_layer(psi), bound),
        ]
    )
    return BooleanClassifier(
        name="P3 (with loop)",
        program=program,
        parameters=theta + psi,
        data_qubits=DATA_QUBITS,
        readout_qubit=READOUT_QUBIT,
    )


@dataclass(frozen=True)
class BooleanClassifier:
    """A VQC classifier over boolean inputs with a single-qubit 0/1 readout."""

    name: str
    program: Program
    parameters: tuple[Parameter, ...]
    data_qubits: tuple[str, ...]
    readout_qubit: str

    def layout(self) -> RegisterLayout:
        """The register layout: the data qubits plus any extra program qubits."""
        extra = tuple(sorted(self.program.qvars() - set(self.data_qubits)))
        return RegisterLayout(self.data_qubits + extra)

    def readout_observable(self) -> np.ndarray:
        """The observable ``|1⟩⟨1|`` on the readout qubit, embedded in the full register.

        Reference form; the simulation paths use
        :meth:`readout_local_observable` so the readout stays a 1-local
        contraction instead of a full-space matrix.
        """
        return self.layout().embed_operator(_PROJECTOR_ONE, [self.readout_qubit])

    def readout_local_observable(self) -> tuple[np.ndarray, tuple[str, ...]]:
        """The readout observable in local form: ``(|1⟩⟨1|, (readout_qubit,))``."""
        return _PROJECTOR_ONE, (self.readout_qubit,)

    def input_state(self, bits: Sequence[int]) -> DensityState:
        """Encode a bitstring as the computational basis state of the data qubits."""
        return DensityState.basis_state(self.layout(), self._assignment(bits))

    def input_statevector(self, bits: Sequence[int]) -> StateVector:
        """The same basis state as :meth:`input_state`, as a pure statevector.

        Every backend accepts it; the statevector tier reads the amplitudes
        directly, so the ``O(4^n)`` density matrix (and its rank-1
        verification) never exists on a measurement-free path.  The trainer
        feeds this form.
        """
        return StateVector.basis_state(self.layout(), self._assignment(bits))

    def _assignment(self, bits: Sequence[int]) -> dict[str, int]:
        if len(bits) != len(self.data_qubits):
            raise TrainingError(
                f"expected {len(self.data_qubits)} input bits, got {len(bits)}"
            )
        return {q: int(b) for q, b in zip(self.data_qubits, bits)}

    @cached_property
    def _estimator(self) -> Estimator:
        """The classifier's shared exact estimator (built once, lazily)."""
        observable, targets = self.readout_local_observable()
        return Estimator(
            self.program,
            observable,
            self.layout(),
            targets=targets,
            parameters=self.parameters,
        )

    def estimator(self, backend: "Backend | str | None" = None) -> Estimator:
        """An :class:`~repro.api.Estimator` of the readout on this classifier.

        With ``backend=None`` the classifier's own shared exact estimator is
        returned; :meth:`predict_probability`, :meth:`accuracy` and the
        trainer all go through it, so its denotation cache makes repeated
        evaluations at the same ``(binding, input)`` point free.  A
        non-default backend — an instance or a name such as ``"auto"``
        (see :func:`repro.api.resolve_backend`) — yields a sibling
        estimator that reuses the same compiled derivative program sets and
        density denotation cache.
        """
        if backend is None:
            return self._estimator
        return self._estimator.with_backend(backend)

    def predict_probability(self, bits: Sequence[int], binding: ParameterBinding) -> float:
        """Return ``l_θ(z)``: the probability of reading 1 on the readout qubit."""
        return self._estimator.value(self.input_state(bits), binding)

    @staticmethod
    def label_from_probability(probability: float) -> int:
        """Threshold a readout probability at ½ into a hard 0/1 label."""
        return 1 if probability >= 0.5 else 0

    def predict_label(self, bits: Sequence[int], binding: ParameterBinding) -> int:
        """The hard 0/1 label of one input (see :meth:`label_from_probability`)."""
        return self.label_from_probability(self.predict_probability(bits, binding))

    def accuracy(self, dataset: Sequence[tuple[Sequence[int], int]], binding: ParameterBinding) -> float:
        """Fraction of dataset points whose hard label matches the ground truth."""
        if not dataset:
            raise TrainingError("cannot compute the accuracy of an empty dataset")
        correct = sum(
            1 for bits, label in dataset if self.predict_label(bits, binding) == int(label)
        )
        return correct / len(dataset)

    def derivative_program_sets(self) -> tuple[DerivativeProgramSet, ...]:
        """Pre-compile the derivative program multiset for every parameter.

        This is the compile-time half of the differentiation pipeline; it
        delegates to the shared estimator, which builds each multiset at most
        once and reuses it at every epoch.
        """
        return tuple(
            self._estimator.program_set(parameter) for parameter in self.parameters
        )

    def initial_binding(self, seed: int = 0, spread: float = 0.1) -> ParameterBinding:
        """Small random initial parameter values (deterministic given the seed)."""
        rng = np.random.default_rng(seed)
        values = rng.uniform(-spread, spread, size=len(self.parameters))
        return ParameterBinding.from_values(self.parameters, values)
