"""Variational quantum circuits: the paper's evaluation workloads (Section 8).

* :mod:`repro.vqc.generators` — the QNN / VQE / QAOA program families of
  Appendix F.2 at small/medium/large scale with basic/shared/if/while
  control-flow variants: the instances behind Tables 2 and 3;
* :mod:`repro.vqc.classifier` — the 4-qubit classifiers P1 (no control) and
  P2 (with control) of Section 8.1, the loop-controlled extension P3, and
  the boolean labelling task ``f(z) = ¬(z1 ⊕ z4)``;
* :mod:`repro.vqc.datasets` — boolean-function datasets and input-state
  encoding;
* :mod:`repro.vqc.training` — loss functions and the gradient-descent
  training loop used to reproduce Figure 6.
"""

from repro.vqc.generators import (
    VQCInstance,
    build_instance,
    qnn_block,
    vqe_block,
    qaoa_block,
    table2_suite,
    table3_suite,
)
from repro.vqc.classifier import (
    BooleanClassifier,
    build_q_layer,
    build_p1,
    build_p2,
    build_p3,
)
from repro.vqc.datasets import (
    paper_label_function,
    boolean_dataset,
    all_bitstrings,
)
from repro.vqc.training import (
    TrainingConfig,
    TrainingResult,
    GradientDescentTrainer,
    squared_loss,
    negative_log_likelihood,
)

__all__ = [
    "VQCInstance",
    "build_instance",
    "qnn_block",
    "vqe_block",
    "qaoa_block",
    "table2_suite",
    "table3_suite",
    "BooleanClassifier",
    "build_q_layer",
    "build_p1",
    "build_p2",
    "build_p3",
    "paper_label_function",
    "boolean_dataset",
    "all_bitstrings",
    "TrainingConfig",
    "TrainingResult",
    "GradientDescentTrainer",
    "squared_loss",
    "negative_log_likelihood",
]
