"""Generators for the benchmark VQC program families (Appendix F.2).

The paper evaluates its compiler on enriched instances of three VQC
families — quantum neural networks (QNN), variational quantum eigensolvers
(VQE) and the quantum approximate optimization algorithm (QAOA) — each built
from a basic "rotate–entangle" block and enlarged with measurement-based
control flow:

* **basic** (``b``) — a single block, in which the distinguished parameter
  θ₁ occurs exactly once;
* **shared** (``s``) — a single block in which θ₁ is shared by several gates
  (the family-specific "shared set" below);
* **if** (``i``) — a first basic layer followed by layers of
  ``case M[q1] = 0 → B, 1 → B′ end``, each layer acting on its own group of
  qubits;
* **while** (``w``) — a first basic layer followed by *nested* 2-bounded
  while-loops, one per remaining group, exactly the "wrap the next block in
  a 2-bounded loop" construction the appendix describes.

Block contents (per group of ``n`` qubits):

=======  ==========================================================  ==========
family   block gates                                                  shared set
=======  ==========================================================  ==========
QNN      R_Z, R_X, R_Z on every qubit, then R_{X⊗X} on all pairs      all R_X + the first two couplings
VQE      R_X, R_Z on every qubit; H on every qubit and CNOTs on the   the stage-one R_X on every qubit
         ring (both directions); then R_Z, R_X, R_Z on every qubit
QAOA     H on every qubit and ring CNOTs (both directions), then      all R_X
         R_X on every qubit
=======  ==========================================================  ==========

Scales (number of groups × group size): QNN/QAOA — S: 1 group (4 / 3
qubits), M: 3×6, L: 6×6; VQE — S: 1×2, M: 3×4, L: 5×8.  With these choices
the generated instances match the paper's reported gate counts and
occurrence counts for the large majority of the Table 2 / Table 3 rows
(EXPERIMENTS.md lists paper vs. measured values row by row).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterator

from repro.errors import TrainingError
from repro.lang.ast import Program
from repro.lang.builder import (
    bounded_while_on_qubit,
    case_on_qubit,
    rx,
    rxx,
    rz,
    seq,
)
from repro.lang.gates import cnot, hadamard
from repro.lang.ast import UnitaryApp
from repro.lang.parameters import Parameter

#: The distinguished parameter θ₁ whose occurrence count the tables report.
SHARED_PARAMETER = Parameter("theta_1")

FAMILIES = ("QNN", "VQE", "QAOA")
SCALES = ("S", "M", "L")
VARIANTS = ("b", "s", "i", "w")

#: (number of groups, qubits per group) for every family and scale.
_GROUP_SHAPES: dict[tuple[str, str], tuple[int, int]] = {
    ("QNN", "S"): (1, 4),
    ("QNN", "M"): (3, 6),
    ("QNN", "L"): (6, 6),
    ("VQE", "S"): (1, 2),
    ("VQE", "M"): (3, 4),
    ("VQE", "L"): (5, 8),
    ("QAOA", "S"): (1, 3),
    ("QAOA", "M"): (3, 6),
    ("QAOA", "L"): (6, 6),
}


class _ParameterSupply:
    """Hands out fresh parameters with deterministic names."""

    def __init__(self, prefix: str):
        self._prefix = prefix
        self._count = 0

    def fresh(self) -> Parameter:
        self._count += 1
        return Parameter(f"{self._prefix}_{self._count}")


def _ring_edges(qubits: list[str]) -> list[tuple[str, str]]:
    """Undirected nearest-neighbour ring edges over a group of qubits."""
    n = len(qubits)
    if n < 2:
        return []
    if n == 2:
        return [(qubits[0], qubits[1])]
    return [(qubits[i], qubits[(i + 1) % n]) for i in range(n)]


def qnn_block(
    qubits: list[str],
    supply: _ParameterSupply,
    shared: Parameter | None = None,
) -> Program:
    """The QNN rotate–entangle block (Figure 7 of the paper, simplified).

    Rotation stage: parameterized Z, X, Z on every qubit.  Entanglement
    stage: parameterized X⊗X couplings on all qubit pairs.  When ``shared``
    is given, every R_X rotation and the first two couplings use it; all
    other angles are fresh parameters.
    """
    statements: list[Program] = []
    statements.extend(rz(supply.fresh(), q) for q in qubits)
    for q in qubits:
        angle = shared if shared is not None else supply.fresh()
        statements.append(rx(angle, q))
    statements.extend(rz(supply.fresh(), q) for q in qubits)
    for index, (q1, q2) in enumerate(combinations(qubits, 2)):
        angle = shared if shared is not None and index < 2 else supply.fresh()
        statements.append(rxx(angle, q1, q2))
    return seq(statements)


def vqe_block(
    qubits: list[str],
    supply: _ParameterSupply,
    shared: Parameter | None = None,
) -> Program:
    """The VQE hardware-efficient ansatz block.

    Stage one: parameterized X then Z on every qubit; stage two: Hadamard on
    every qubit and CNOTs along the ring in both directions; stage three:
    parameterized Z, X, Z on every qubit.  The shared set is the stage-one
    R_X on every qubit.
    """
    statements: list[Program] = []
    for q in qubits:
        angle = shared if shared is not None else supply.fresh()
        statements.append(rx(angle, q))
    statements.extend(rz(supply.fresh(), q) for q in qubits)
    h = hadamard()
    c = cnot()
    statements.extend(UnitaryApp(h, (q,)) for q in qubits)
    for q1, q2 in _ring_edges(qubits):
        statements.append(UnitaryApp(c, (q1, q2)))
        statements.append(UnitaryApp(c, (q2, q1)))
    statements.extend(rz(supply.fresh(), q) for q in qubits)
    statements.extend(rx(supply.fresh(), q) for q in qubits)
    statements.extend(rz(supply.fresh(), q) for q in qubits)
    return seq(statements)


def qaoa_block(
    qubits: list[str],
    supply: _ParameterSupply,
    shared: Parameter | None = None,
) -> Program:
    """The QAOA alternating block: entangling layer then a parameterized mixer.

    Entanglement stage: Hadamard on every qubit and ring CNOTs in both
    directions; mixer stage: parameterized X rotation on every qubit (the
    shared set).
    """
    statements: list[Program] = []
    h = hadamard()
    c = cnot()
    statements.extend(UnitaryApp(h, (q,)) for q in qubits)
    for q1, q2 in _ring_edges(qubits):
        statements.append(UnitaryApp(c, (q1, q2)))
        statements.append(UnitaryApp(c, (q2, q1)))
    for q in qubits:
        angle = shared if shared is not None else supply.fresh()
        statements.append(rx(angle, q))
    return seq(statements)


_BLOCK_BUILDERS = {"QNN": qnn_block, "VQE": vqe_block, "QAOA": qaoa_block}


@dataclass(frozen=True)
class VQCInstance:
    """One benchmark instance: a program plus the metadata the tables report."""

    name: str
    family: str
    scale: str
    variant: str
    program: Program
    shared_parameter: Parameter
    num_qubits: int
    declared_layers: int

    @property
    def label(self) -> str:
        """The row label used in the paper's tables, e.g. ``QNN_{M,i}``."""
        return f"{self.family}_{self.scale},{self.variant}"


def _group_qubits(groups: int, per_group: int) -> list[list[str]]:
    qubits = [f"q{i + 1}" for i in range(groups * per_group)]
    return [qubits[g * per_group : (g + 1) * per_group] for g in range(groups)]


def build_instance(family: str, scale: str, variant: str) -> VQCInstance:
    """Build one benchmark instance of the given family, scale and control-flow variant."""
    family = family.upper()
    scale = scale.upper()
    variant = variant.lower()
    if family not in FAMILIES:
        raise TrainingError(f"unknown family {family!r}; expected one of {FAMILIES}")
    if (family, scale) not in _GROUP_SHAPES:
        raise TrainingError(f"unknown scale {scale!r} for family {family}")
    if variant not in VARIANTS:
        raise TrainingError(f"unknown variant {variant!r}; expected one of {VARIANTS}")

    groups, per_group = _GROUP_SHAPES[(family, scale)]
    block_builder = _BLOCK_BUILDERS[family]
    supply = _ParameterSupply(f"{family.lower()}_{scale.lower()}_{variant}")
    group_qubits = _group_qubits(groups, per_group)
    guard_qubit = group_qubits[0][0]

    if variant == "b":
        program = _basic_block_single_occurrence(block_builder, group_qubits[0], supply)
        layers = 1
    elif variant == "s":
        program = block_builder(group_qubits[0], supply, shared=SHARED_PARAMETER)
        layers = 1
    elif variant == "i":
        program, layers = _if_instance(block_builder, group_qubits, guard_qubit, supply)
    else:
        program, layers = _while_instance(block_builder, group_qubits, guard_qubit, supply)

    return VQCInstance(
        name=f"{family}_{scale}_{variant}",
        family=family,
        scale=scale,
        variant=variant,
        program=program,
        shared_parameter=SHARED_PARAMETER,
        num_qubits=groups * per_group,
        declared_layers=layers,
    )


def _basic_block_single_occurrence(block_builder, qubits, supply) -> Program:
    """A single block in which θ₁ appears exactly once (the 'basic' variant).

    The block is built without sharing and its first parameterized-gate angle
    is then rebound to θ₁ by building the block again with a supply whose
    first fresh parameter is θ₁ — simplest is to build with sharing and then
    keep only one shared occurrence, but it is clearer to special-case: the
    first fresh parameter handed out is θ₁, all later ones are fresh.
    """

    class _FirstIsShared(_ParameterSupply):
        def __init__(self, inner: _ParameterSupply):
            super().__init__(inner._prefix)
            self._inner = inner
            self._handed_shared = False

        def fresh(self) -> Parameter:
            if not self._handed_shared:
                self._handed_shared = True
                return SHARED_PARAMETER
            return self._inner.fresh()

    return block_builder(qubits, _FirstIsShared(supply), shared=None)


def _if_instance(block_builder, group_qubits, guard_qubit, supply):
    """First layer basic, then one ``case`` layer per remaining group.

    At small scale there is a single group; the second layer then re-uses the
    same qubits (two layers total), matching the appendix's description of
    the small instances.
    """
    if len(group_qubits) == 1:
        layer_groups = [group_qubits[0], group_qubits[0]]
    else:
        layer_groups = group_qubits
    statements = [block_builder(layer_groups[0], supply, shared=SHARED_PARAMETER)]
    for qubits in layer_groups[1:]:
        branch0 = block_builder(qubits, supply, shared=SHARED_PARAMETER)
        branch1 = block_builder(qubits, supply, shared=SHARED_PARAMETER)
        statements.append(case_on_qubit(guard_qubit, {0: branch0, 1: branch1}))
    return seq(statements), len(layer_groups)


def _while_instance(block_builder, group_qubits, guard_qubit, supply):
    """First layer basic, then nested 2-bounded while-loops over the remaining groups.

    ``B₁; while(2) M[q1]=1 do (B₂; while(2) M[q1]=1 do (B₃; …) done) done`` —
    the "wrap the next block in a 2-bounded loop" construction.  At small
    scale the single group is re-used for the loop body.
    """
    if len(group_qubits) == 1:
        layer_groups = [group_qubits[0], group_qubits[0]]
    else:
        layer_groups = group_qubits
    body: Program | None = None
    for qubits in reversed(layer_groups[1:]):
        block = block_builder(qubits, supply, shared=SHARED_PARAMETER)
        body = block if body is None else seq([block, bounded_while_on_qubit(guard_qubit, body, 2)])
    first = block_builder(layer_groups[0], supply, shared=SHARED_PARAMETER)
    program = seq([first, bounded_while_on_qubit(guard_qubit, body, 2)])
    declared_layers = 2 ** (len(layer_groups) - 1) + 1
    return program, declared_layers


def table2_suite() -> list[VQCInstance]:
    """The twelve instances of Table 2 (medium and large, if and while variants)."""
    instances = []
    for family in FAMILIES:
        for scale in ("M", "L"):
            for variant in ("i", "w"):
                instances.append(build_instance(family, scale, variant))
    return instances


def table3_suite() -> list[VQCInstance]:
    """The twenty-four instances of Table 3.

    Small scale comes in all four variants (basic, shared, if, while); the
    medium and large scales come in the if and while variants only, exactly
    as in the paper's appendix table.
    """
    instances = []
    for family in FAMILIES:
        for scale in SCALES:
            variants = VARIANTS if scale == "S" else ("i", "w")
            for variant in variants:
                instances.append(build_instance(family, scale, variant))
    return instances


def iter_instances() -> Iterator[VQCInstance]:
    """Iterate over every Table 3 instance (convenience for scripts)."""
    yield from table3_suite()
